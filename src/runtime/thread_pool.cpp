#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "obs/trace.hpp"

namespace mbrc::runtime {

namespace {

// Identifies the owning pool and worker index of the current thread so
// submit() can push to the local deque and try_pop can prefer it.
struct WorkerContext {
  ThreadPool* pool = nullptr;
  int index = -1;
};

thread_local WorkerContext tls_worker;

// Exception-safe increment of the active-task gauge around task().
struct ActiveScope {
  explicit ActiveScope(std::atomic<int>& gauge) : gauge_(gauge) {
    gauge_.fetch_add(1, std::memory_order_relaxed);
  }
  ~ActiveScope() { gauge_.fetch_sub(1, std::memory_order_relaxed); }
  std::atomic<int>& gauge_;
};

}  // namespace

namespace detail {

void label_worker_for_trace() {
  if (obs::Tracer::active() == nullptr) return;
  if (tls_worker.pool == nullptr) return;  // a non-worker thread helping out
  obs::Tracer::set_thread_label("worker-" +
                                std::to_string(tls_worker.index));
}

}  // namespace detail

int default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int workers) {
  workers = std::max(0, workers);
  // At least one queue so external submissions have somewhere to land even
  // on a workerless pool (run_one drains it).
  queues_.reserve(static_cast<std::size_t>(std::max(1, workers)));
  for (int i = 0; i < std::max(1, workers); ++i)
    queues_.push_back(std::make_unique<Queue>());
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_.store(true);
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Drain anything left behind (tasks submitted to a workerless pool).
  while (run_one()) {
  }
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  if (tls_worker.pool == this) {
    target = static_cast<std::size_t>(tls_worker.index);
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  int depth;
  {
    // Publishing the pending count under sleep_mutex_ pairs with the wait
    // predicate in worker_loop; without it a notify can slip between a
    // worker's predicate check and its sleep and the task sits unseen.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    depth = pending_.fetch_add(1, std::memory_order_release) + 1;
  }
  int peak = peak_depth_.load(std::memory_order_relaxed);
  while (depth > peak &&
         !peak_depth_.compare_exchange_weak(peak, depth,
                                            std::memory_order_relaxed)) {
  }
  wake_.notify_one();
}

bool ThreadPool::try_pop(int preferred, std::function<void()>& out) {
  const std::size_t n = queues_.size();
  const std::size_t start =
      preferred >= 0 ? static_cast<std::size_t>(preferred) : 0;
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t q = (start + probe) % n;
    Queue& queue = *queues_[q];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.tasks.empty()) continue;
    if (probe == 0 && preferred >= 0) {
      // Own deque: newest first (LIFO keeps the working set hot).
      out = std::move(queue.tasks.back());
      queue.tasks.pop_back();
    } else {
      // Steal the oldest task from a sibling.
      out = std::move(queue.tasks.front());
      queue.tasks.pop_front();
    }
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  const int preferred = tls_worker.pool == this ? tls_worker.index : -1;
  if (!try_pop(preferred, task)) return false;
  ActiveScope active(active_);
  task();
  return true;
}

void ThreadPool::worker_loop(int self) {
  tls_worker.pool = this;
  tls_worker.index = self;
  std::function<void()> task;
  for (;;) {
    if (try_pop(self, task)) {
      {
        ActiveScope active(active_);
        task();
      }
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    wake_.wait(lock, [this] {
      return stop_.load() || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load() && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_jobs() - 1);
  return pool;
}

}  // namespace mbrc::runtime
