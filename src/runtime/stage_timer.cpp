#include "runtime/stage_timer.hpp"

#include <cstdio>

namespace mbrc::runtime {

std::string format_stage_table(const StageTable& stats) {
  std::string out;
  char line[160];
  for (const auto& [name, s] : stats) {
    std::snprintf(line, sizeof(line), "%-24s %6lld calls %10lld items %9.3f s\n",
                  name.c_str(), static_cast<long long>(s.calls),
                  static_cast<long long>(s.items), s.seconds);
    out += line;
  }
  return out;
}

std::string Metrics::report() const { return format_stage_table(snapshot()); }

}  // namespace mbrc::runtime
