// Per-stage flow instrumentation.
//
// A Metrics registry collects named StageStats counters (wall seconds,
// invocation count, item count); StageTimer is the RAII probe that records
// one timed section into it. Both are now thin views over the obs layer:
// Metrics wraps an obs::StageStore (interned stage slots, lock-free
// accumulation — probes in parallel stages neither serialize nor allocate),
// and StageTimer additionally opens an obs::Span so traced runs see every
// stage in the Chrome-trace timeline.
//
// Wall-clock values are measurement, not output: flow results compared
// across thread counts exclude them (see DESIGN.md §11); the deterministic
// work counts live in obs/counters.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/stage_store.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace mbrc::runtime {

using StageStats = obs::StageStats;
using StageTable = obs::StageTable;
using obs::format_stage_table;

class Metrics {
public:
  void record(std::string_view stage, double seconds, std::int64_t items = 0) {
    store_.slot(stage).record(seconds, items);
  }

  StageTable snapshot() const { return store_.snapshot(); }

  /// Formatted per-stage report (name, calls, items, seconds), one line per
  /// stage in name order.
  std::string report() const { return store_.report(); }

private:
  obs::StageStore store_;
};

/// RAII stage probe: times its scope, records into the registry on
/// destruction (or earlier via stop()), and spans the scope in the trace.
class StageTimer {
public:
  StageTimer(Metrics& metrics, std::string_view stage)
      : metrics_(&metrics), stage_(stage), span_(stage) {}

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() { stop(); }

  /// Attributes `count` work units to this section.
  void add_items(std::int64_t count) { items_ += count; }

  /// Records now instead of at scope exit; idempotent. The trace span still
  /// closes at scope exit.
  void stop() {
    if (metrics_ == nullptr) return;
    metrics_->record(stage_, clock_.seconds(), items_);
    metrics_ = nullptr;
  }

private:
  Metrics* metrics_;
  std::string stage_;
  std::int64_t items_ = 0;
  obs::Span span_;
  util::Stopwatch clock_;
};

}  // namespace mbrc::runtime
