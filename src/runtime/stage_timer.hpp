// Per-stage flow instrumentation.
//
// A Metrics registry collects named StageStats counters (wall seconds,
// invocation count, item count); StageTimer is the RAII probe that records
// one timed section into it. The registry is thread-safe so stages running
// on pool workers can record concurrently, but note that wall-clock values
// are measurement, not output: flow results compared across thread counts
// exclude them (see DESIGN.md, "Parallel runtime").
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "util/stopwatch.hpp"

namespace mbrc::runtime {

struct StageStats {
  double seconds = 0.0;     // accumulated wall time
  std::int64_t calls = 0;   // timed sections recorded
  std::int64_t items = 0;   // stage-defined work units (subgraphs, pins, ...)
};

/// Snapshot type handed to flow results: plain data, freely copyable.
using StageTable = std::map<std::string, StageStats, std::less<>>;

/// Formats a snapshot as one line per stage (name, calls, items, seconds),
/// in name order.
std::string format_stage_table(const StageTable& stats);

class Metrics {
public:
  void record(std::string_view stage, double seconds, std::int64_t items = 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    StageStats& s = stats_[std::string(stage)];
    s.seconds += seconds;
    s.calls += 1;
    s.items += items;
  }

  StageTable snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Formatted per-stage report (name, calls, items, seconds), one line per
  /// stage in name order.
  std::string report() const;

private:
  mutable std::mutex mutex_;
  StageTable stats_;
};

/// RAII stage probe: times its scope and records into the registry on
/// destruction (or earlier via stop()).
class StageTimer {
public:
  StageTimer(Metrics& metrics, std::string_view stage)
      : metrics_(&metrics), stage_(stage) {}

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() { stop(); }

  /// Attributes `count` work units to this section.
  void add_items(std::int64_t count) { items_ += count; }

  /// Records now instead of at scope exit; idempotent.
  void stop() {
    if (metrics_ == nullptr) return;
    metrics_->record(stage_, clock_.seconds(), items_);
    metrics_ = nullptr;
  }

private:
  Metrics* metrics_;
  std::string stage_;
  std::int64_t items_ = 0;
  util::Stopwatch clock_;
};

}  // namespace mbrc::runtime
