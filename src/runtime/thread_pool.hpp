// Parallel flow runtime: a work-stealing thread pool with deterministic
// fan-out helpers.
//
// Design contract (see DESIGN.md, "Parallel runtime"):
//   - Work items write their results into pre-sized, index-addressed slots;
//     no task ever observes another task's output.
//   - Reductions over those slots happen on the calling thread, in input
//     order. Together these make every parallel stage bit-identical to its
//     serial execution at any thread count.
//   - `jobs <= 1` (or a null pool) short-circuits to a plain serial loop:
//     no tasks, no synchronization, the exact serial code path.
//
// Scheduling: each worker owns a deque; it pops its own back (LIFO, cache
// warm) and steals other fronts (FIFO, oldest first). Threads that block on
// a parallel region help drain the pool instead of sleeping, so nested
// parallel_for calls cannot deadlock even when every worker is waiting.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/trace.hpp"

namespace mbrc::runtime {

/// Default parallelism for flow-level knobs: the hardware thread count
/// (at least 1).
int default_jobs();

class ThreadPool {
public:
  /// Spawns `workers` threads. Zero workers is valid: submitted tasks then
  /// run only when a caller drains them (run_one / parallel-region help
  /// loops), which is exactly what happens on a single-core host.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(threads_.size()); }

  /// Telemetry gauges for the service stats verb. Relaxed reads of
  /// instantaneous values: measurement-only, never part of any result.
  /// Tasks queued but not yet picked up by a thread.
  int queue_depth() const {
    return std::max(0, pending_.load(std::memory_order_relaxed));
  }
  /// High-water mark of queue_depth() since construction.
  int queue_depth_peak() const {
    return peak_depth_.load(std::memory_order_relaxed);
  }
  /// Threads currently inside a task (workers plus helpers in run_one).
  int active_workers() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Enqueues a task. Tasks submitted from a worker thread go to that
  /// worker's own deque (LIFO); external submissions round-robin across
  /// workers. Must not be called concurrently with destruction.
  void submit(std::function<void()> task);

  /// Pops (or steals) one pending task and runs it on the calling thread.
  /// Returns false when no task was available. This is the "help" primitive
  /// that keeps nested parallel regions deadlock-free.
  bool run_one();

  /// Runs `fn` on the pool and returns a future for its result. On a pool
  /// with no workers the call runs inline (the future is ready on return),
  /// so waiting on it never deadlocks on single-core hosts.
  template <class Fn>
  auto async(Fn fn) -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    if (worker_count() == 0) {
      (*task)();
      return result;
    }
    submit([task] { (*task)(); });
    return result;
  }

  /// The process-wide pool shared by the flow stages: default_jobs() - 1
  /// workers (the calling thread is the remaining lane).
  static ThreadPool& global();

private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(int self);
  bool try_pop(int preferred, std::function<void()>& out);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<int> pending_{0};
  std::atomic<int> peak_depth_{0};
  std::atomic<int> active_{0};
  std::atomic<bool> stop_{false};
  std::mutex sleep_mutex_;
  std::condition_variable wake_;
};

/// Waits for `future` while helping the pool drain pending tasks (so the
/// waiter contributes a lane instead of idling), then returns its value.
template <class T>
T help_get(ThreadPool& pool, std::future<T> future) {
  while (future.wait_for(std::chrono::seconds(0)) !=
         std::future_status::ready) {
    if (!pool.run_one())
      future.wait_for(std::chrono::microseconds(200));
  }
  return future.get();
}

/// RAII companion to ThreadPool::async for exception safety. Tasks whose
/// lambdas capture the submitting frame by reference dangle when an
/// exception unwinds past the help_get that was supposed to collect them;
/// a FutureDrain declared *before* the submissions blocks scope exit --
/// normal or exceptional -- until every watched future settled, helping
/// the pool drain instead of idling (same loop as help_get). mbrc-analyze
/// rule A2 recognizes this type as a wait that dominates every exit.
class FutureDrain {
 public:
  explicit FutureDrain(ThreadPool& pool) : pool_(&pool) {}
  FutureDrain(const FutureDrain&) = delete;
  FutureDrain& operator=(const FutureDrain&) = delete;

  /// Registers `future` to be drained on scope exit. The future stays
  /// usable: consuming it via get()/help_get marks it invalid and the
  /// destructor skips it.
  template <class T>
  void watch(std::future<T>& future) {
    waiters_.push_back([&future] {
      return future.valid() &&
             future.wait_for(std::chrono::seconds(0)) !=
                 std::future_status::ready;
    });
  }

  ~FutureDrain() {
    for (const auto& pending : waiters_)
      while (pending())
        if (!pool_->run_one())
          std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

 private:
  ThreadPool* pool_;
  std::vector<std::function<bool()>> waiters_;
};

namespace detail {

// Shared between the caller and its helper tasks via shared_ptr: the caller
// may observe live_helpers == 0 and return while the last helper is still
// inside its notify block, so the state must outlive the parallel_for call
// frame and die with the last referencing task.
struct ForState {
  std::atomic<std::size_t> next{0};
  std::size_t count = 0;
  std::size_t grain = 1;
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  std::atomic<int> live_helpers{0};
  std::mutex done_mutex;
  std::condition_variable done;
};

/// Labels the calling pool-worker thread in the active trace ("worker-N").
/// One relaxed atomic load when no tracer is installed.
void label_worker_for_trace();

}  // namespace detail

/// Runs `fn(i)` for i in [0, count) across up to `jobs` threads (the caller
/// plus at most jobs - 1 pool workers), `grain` consecutive indices per
/// task. Blocks until every index ran; while blocked the caller executes
/// pending pool tasks. The first exception thrown by `fn` cancels the
/// remaining chunks and is rethrown here. With `jobs <= 1`, a null pool, or
/// count <= grain, this is a plain serial loop.
template <class Fn>
void parallel_for(ThreadPool* pool, int jobs, std::size_t count,
                  std::size_t grain, Fn&& fn) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  if (pool == nullptr || jobs <= 1 || count <= grain) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  obs::Span region_span("parallel_for");

  auto state = std::make_shared<detail::ForState>();
  state->count = count;
  state->grain = grain;

  // `fn` is captured by reference: the caller's frame outlives every use
  // because it only returns after each helper's final run_chunks ended.
  const auto run_chunks = [&fn](detail::ForState& st) {
    while (!st.failed.load(std::memory_order_relaxed)) {
      const std::size_t begin = st.next.fetch_add(st.grain);
      if (begin >= st.count) return;
      const std::size_t end = std::min(st.count, begin + st.grain);
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(st.error_mutex);
        if (!st.error) st.error = std::current_exception();
        st.failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t chunks = (count + grain - 1) / grain;
  const int helpers = static_cast<int>(std::min<std::size_t>(
      {static_cast<std::size_t>(jobs - 1),
       static_cast<std::size_t>(pool->worker_count()), chunks - 1}));
  state->live_helpers.store(helpers);
  for (int h = 0; h < helpers; ++h) {
    // mbrc-analyze: allow(A2, run_chunks traps all exceptions in st.error so the drain loop below runs on every path)
    pool->submit([state, run_chunks] {
      {
        detail::label_worker_for_trace();
        obs::Span worker_span("parallel_for.worker");
        run_chunks(*state);
      }
      if (state->live_helpers.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(state->done_mutex);
        state->done.notify_all();
      }
    });
  }

  run_chunks(*state);
  while (state->live_helpers.load() > 0) {
    if (!pool->run_one()) {
      std::unique_lock<std::mutex> lock(state->done_mutex);
      state->done.wait_for(lock, std::chrono::milliseconds(1),
                          [&] { return state->live_helpers.load() == 0; });
    }
  }
  if (state->error) std::rethrow_exception(state->error);
}

/// parallel_for with the default per-task grain of one index.
template <class Fn>
void parallel_for(ThreadPool* pool, int jobs, std::size_t count, Fn&& fn) {
  parallel_for(pool, jobs, count, 1, std::forward<Fn>(fn));
}

/// Maps `fn` over `items`, returning results in input order regardless of
/// thread count (each task writes its own pre-sized slot). The result type
/// must be default-constructible.
template <class T, class Fn>
auto parallel_transform(ThreadPool* pool, int jobs, const std::vector<T>& items,
                        Fn&& fn, std::size_t grain = 1)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const T&>>> {
  std::vector<std::decay_t<std::invoke_result_t<Fn&, const T&>>> out(
      items.size());
  parallel_for(pool, jobs, items.size(), grain,
               [&](std::size_t i) { out[i] = fn(items[i]); });
  return out;
}

}  // namespace mbrc::runtime
