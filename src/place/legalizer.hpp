// Row-based placement model and Tetris-style legalizer.
//
// The core area is divided into standard-cell rows of fixed height and
// sites of fixed width. RowGrid tracks occupied intervals per row (with the
// occupying cell) so cells can be packed abutted. The legalizer supports the
// two uses MBR composition needs:
//   - building an initially legal placement (benchmark generator),
//   - incremental legalization of freshly placed MBR cells after the
//     replaced registers were removed (Sec. 4.2), minimizing displacement
//     from the LP-suggested location. Registers have placement priority:
//     small combinational cells in the way are evicted and re-legalized
//     nearby, exactly the behaviour the paper relies on ("registers are
//     larger and often have higher placement priority, so smaller movement
//     of fewer registers helps minimize the placement disturbance").
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "netlist/design.hpp"

namespace mbrc::place {

struct RowGridOptions {
  double row_height = 1.8;  // um
  double site_width = 0.2;  // um
};

/// Occupancy bookkeeping for legal placement: per row, a map of occupied
/// intervals keyed by start x, each remembering the occupying cell.
class RowGrid {
public:
  RowGrid(geom::Rect core, RowGridOptions options = {});

  int row_count() const { return static_cast<int>(rows_.size()); }
  double row_y(int row) const;
  int row_of(double y) const;
  const geom::Rect& core() const { return core_; }
  const RowGridOptions& options() const { return options_; }

  /// Marks [x, x+width) in `row` occupied by `cell`. Returns false (no
  /// change) when it would overlap an existing interval or leave the core.
  bool occupy(int row, double x, double width,
              netlist::CellId cell = netlist::CellId{});

  /// Releases a previously occupied interval (exact start x required).
  void release(int row, double x);

  /// True when [x, x+width) in `row` is free and inside the core.
  bool is_free(int row, double x, double width) const;

  /// Cells whose intervals intersect [x, x+width) in `row`, with their
  /// interval start positions.
  struct Occupant {
    double x = 0.0;
    double width = 0.0;
    netlist::CellId cell;
  };
  std::vector<Occupant> occupants(int row, double x, double width) const;

  /// Nearest free position for a cell of `width` around target `t`,
  /// scanning rows outward from the target row. Returns the snapped
  /// lower-left position, or nullopt when the grid is hopelessly full.
  std::optional<geom::Point> find_nearest_free(geom::Point t,
                                               double width) const;

  /// Snaps x to the site grid (toward -inf).
  double snap_x(double x) const;

  double occupied_length(int row) const;

private:
  struct Interval {
    double width = 0.0;
    netlist::CellId cell;
  };
  struct Row {
    std::map<double, Interval> intervals;  // start x -> interval
  };

  /// Free x closest to target_x in `row` for `width`; nullopt when full.
  std::optional<double> best_x_in_row(int row, double target_x,
                                      double width) const;

  geom::Rect core_;
  RowGridOptions options_;
  std::vector<Row> rows_;
};

struct LegalizeOptions {
  /// Take a free spot without evicting when it is at most this far from the
  /// target (um).
  double prefer_free_within = 6.0;
  /// Rows above/below the target row considered for eviction.
  int eviction_row_search = 3;
  /// Cost per um of evicted-cell width when comparing candidate spots
  /// (evicted cells are small and move by roughly their own span).
  double eviction_penalty = 0.3;
  bool allow_eviction = true;
};

struct LegalizeResult {
  bool success = false;
  double total_displacement = 0.0;  // um, over the placed cells themselves
  double max_displacement = 0.0;    // um
  int cells_moved = 0;
  int cells_evicted = 0;            // combinational cells pushed aside
  double evicted_displacement = 0.0;
};

/// Builds a RowGrid reflecting every live, placeable cell of `design`
/// except those in `ignore` (pass the cells about to be re-legalized).
RowGrid build_occupancy(const netlist::Design& design,
                        const std::vector<netlist::CellId>& ignore = {},
                        RowGridOptions options = {});

/// Legalizes `cells` (in the given order) into `grid`, moving each to the
/// nearest free location -- or, when the free options are far, evicting
/// combinational cells at the target and re-legalizing them nearby. Updates
/// the design's positions and the grid.
LegalizeResult legalize_cells(netlist::Design& design, RowGrid& grid,
                              const std::vector<netlist::CellId>& cells,
                              const LegalizeOptions& options = {});

}  // namespace mbrc::place
