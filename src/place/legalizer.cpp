#include "place/legalizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mbrc::place {

RowGrid::RowGrid(geom::Rect core, RowGridOptions options)
    : core_(core), options_(options) {
  MBRC_ASSERT(!core.is_empty());
  const int rows =
      std::max(1, static_cast<int>(core.height() / options.row_height));
  rows_.resize(rows);
}

double RowGrid::row_y(int row) const {
  return core_.ylo + row * options_.row_height;
}

int RowGrid::row_of(double y) const {
  const int row = static_cast<int>(std::floor((y - core_.ylo) /
                                              options_.row_height + 0.5));
  return std::clamp(row, 0, row_count() - 1);
}

double RowGrid::snap_x(double x) const {
  const double rel = x - core_.xlo;
  return core_.xlo + std::floor(rel / options_.site_width) * options_.site_width;
}

bool RowGrid::is_free(int row, double x, double width) const {
  if (row < 0 || row >= row_count()) return false;
  if (x < core_.xlo - 1e-9 || x + width > core_.xhi + 1e-9) return false;
  const auto& intervals = rows_[row].intervals;
  auto it = intervals.lower_bound(x);
  if (it != intervals.end() && it->first < x + width - 1e-9) return false;
  if (it != intervals.begin()) {
    --it;
    if (it->first + it->second.width > x + 1e-9) return false;
  }
  return true;
}

bool RowGrid::occupy(int row, double x, double width, netlist::CellId cell) {
  if (!is_free(row, x, width)) return false;
  rows_[row].intervals.emplace(x, Interval{width, cell});
  return true;
}

void RowGrid::release(int row, double x) {
  MBRC_ASSERT(row >= 0 && row < row_count());
  auto& intervals = rows_[row].intervals;
  const auto it = intervals.find(x);
  MBRC_ASSERT_MSG(it != intervals.end(), "release of unoccupied interval");
  intervals.erase(it);
}

std::vector<RowGrid::Occupant> RowGrid::occupants(int row, double x,
                                                  double width) const {
  std::vector<Occupant> result;
  if (row < 0 || row >= row_count()) return result;
  const auto& intervals = rows_[row].intervals;
  auto it = intervals.lower_bound(x);
  if (it != intervals.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.width > x + 1e-9)
      result.push_back({prev->first, prev->second.width, prev->second.cell});
  }
  for (; it != intervals.end() && it->first < x + width - 1e-9; ++it)
    result.push_back({it->first, it->second.width, it->second.cell});
  return result;
}

double RowGrid::occupied_length(int row) const {
  double total = 0.0;
  for (const auto& [x, interval] : rows_[row].intervals)
    total += interval.width;
  return total;
}

std::optional<double> RowGrid::best_x_in_row(int row, double target_x,
                                             double width) const {
  const auto& intervals = rows_[row].intervals;
  const double lo = core_.xlo;
  const double hi = core_.xhi - width;
  if (hi < lo) return std::nullopt;

  double best = std::numeric_limits<double>::quiet_NaN();
  double best_cost = std::numeric_limits<double>::infinity();
  auto consider = [&](double gap_lo, double gap_hi) -> bool {
    if (gap_hi - gap_lo < width - 1e-9) return false;
    double x = std::clamp(target_x, gap_lo, gap_hi - width);
    x = std::max(gap_lo, snap_x(x));
    if (x + width > gap_hi + 1e-9) x -= options_.site_width;
    if (x < gap_lo - 1e-9) return false;
    const double cost = std::abs(x - target_x);
    // Equal costs keep the leftmost x (the ascending scan this replaces
    // kept the first minimum it met).
    if (cost < best_cost || (cost == best_cost && x < best)) {
      best_cost = cost;
      best = x;
    }
    return true;
  };

  // Outward walk from the gap straddling target_x instead of scanning the
  // whole row: away from that gap the nearest feasible position per gap
  // moves strictly away from the target, so on each side the first gap
  // wide enough for `width` is that side's best and the walk stops there.
  // With packed rows this is O(1)-ish per probe where the full scan was
  // O(intervals in the row) — the dominant cost of large-design
  // legalization and benchmark generation.
  const auto right_begin = intervals.lower_bound(target_x);
  const double straddle_lo =
      right_begin == intervals.begin()
          ? lo
          : std::prev(right_begin)->first + std::prev(right_begin)->second.width;
  const double straddle_hi =
      right_begin == intervals.end() ? core_.xhi
                                     : std::min(right_begin->first, core_.xhi);
  consider(straddle_lo, straddle_hi);

  // Gaps entirely right of the target (cost = gap start - target, rising).
  for (auto it = right_begin; it != intervals.end();) {
    const double gap_lo = it->first + it->second.width;
    ++it;
    const double gap_hi =
        it == intervals.end() ? core_.xhi : std::min(it->first, core_.xhi);
    if (consider(gap_lo, gap_hi)) break;
    if (gap_lo - target_x > best_cost) break;  // even wider gaps sit further
  }

  // Gaps entirely left of the target (cost rising as the walk descends).
  for (auto it = right_begin; it != intervals.begin();) {
    --it;
    const double gap_hi = std::min(it->first, core_.xhi);
    const double gap_lo =
        it == intervals.begin()
            ? lo
            : std::prev(it)->first + std::prev(it)->second.width;
    if (consider(gap_lo, gap_hi)) break;
    if (target_x - gap_hi > best_cost) break;
  }

  if (std::isnan(best)) return std::nullopt;
  return best;
}

std::optional<geom::Point> RowGrid::find_nearest_free(geom::Point t,
                                                      double width) const {
  const int center = row_of(t.y);
  double best_cost = std::numeric_limits<double>::infinity();
  std::optional<geom::Point> best;
  for (int d = 0; d < row_count(); ++d) {
    if (center - d < 0 && center + d >= row_count()) break;
    // Once even the vertical distance alone exceeds the best found cost,
    // no further row can win.
    if (best && d * options_.row_height > best_cost) break;
    // d == 0 visits the center row twice; the second pass is a no-op since
    // it cannot beat the identical first pass.
    for (const int row : {center - d, center + d}) {
      if (row < 0 || row >= row_count()) continue;
      const double dy = std::abs(row_y(row) - t.y);
      if (dy >= best_cost) continue;
      const auto x = best_x_in_row(row, t.x, width);
      if (!x) continue;
      const double cost = dy + std::abs(*x - t.x);
      if (cost < best_cost) {
        best_cost = cost;
        best = geom::Point{*x, row_y(row)};
      }
    }
  }
  return best;
}

RowGrid build_occupancy(const netlist::Design& design,
                        const std::vector<netlist::CellId>& ignore,
                        RowGridOptions options) {
  RowGrid grid(design.core(), options);
  std::vector<bool> skip(design.cell_count(), false);
  for (netlist::CellId id : ignore) skip[id.index] = true;

  for (netlist::CellId id : design.live_cells()) {
    if (skip[id.index]) continue;
    const netlist::Cell& cell = design.cell(id);
    if (cell.kind == netlist::CellKind::kPort) continue;
    const int row = grid.row_of(cell.position.y);
    // Best effort: overlapping cells in the incoming placement are simply
    // ignored for occupancy purposes (the generator produces legal input).
    grid.occupy(row, cell.position.x, cell.width(), id);
  }
  return grid;
}

namespace {

// Whether every occupant of a span may be pushed aside for a register.
bool all_evictable(const netlist::Design& design,
                   const std::vector<RowGrid::Occupant>& occupants) {
  for (const auto& o : occupants) {
    if (!o.cell.valid()) return false;  // anonymous blockage
    const netlist::Cell& cell = design.cell(o.cell);
    if (cell.fixed) return false;
    if (cell.kind != netlist::CellKind::kComb &&
        cell.kind != netlist::CellKind::kClockBuffer)
      return false;  // never displace registers or ports
  }
  return true;
}

}  // namespace

LegalizeResult legalize_cells(netlist::Design& design, RowGrid& grid,
                              const std::vector<netlist::CellId>& cells,
                              const LegalizeOptions& options) {
  LegalizeResult result;
  result.success = true;

  for (netlist::CellId id : cells) {
    netlist::Cell& cell = design.cell(id);
    const double width = cell.width();
    const geom::Point target = cell.position;

    const auto free_spot = grid.find_nearest_free(target, width);
    const double free_cost = free_spot
                                 ? geom::manhattan(target, *free_spot)
                                 : std::numeric_limits<double>::infinity();

    // Candidate eviction spots: the snapped target x in nearby rows.
    struct Choice {
      geom::Point position;
      std::vector<RowGrid::Occupant> evicted;
      double cost = std::numeric_limits<double>::infinity();
    };
    Choice best;
    if (options.allow_eviction && free_cost > options.prefer_free_within) {
      const int center = grid.row_of(target.y);
      for (int dr = -options.eviction_row_search;
           dr <= options.eviction_row_search; ++dr) {
        const int row = center + dr;
        if (row < 0 || row >= grid.row_count()) continue;
        double x = grid.snap_x(std::clamp(
            target.x, grid.core().xlo, grid.core().xhi - width));
        if (x < grid.core().xlo || x + width > grid.core().xhi + 1e-9)
          continue;
        const auto occupants = grid.occupants(row, x, width);
        if (!all_evictable(design, occupants)) continue;
        double evicted_width = 0.0;
        for (const auto& o : occupants) evicted_width += o.width;
        const geom::Point pos{x, grid.row_y(row)};
        const double cost = geom::manhattan(target, pos) +
                            options.eviction_penalty * evicted_width;
        if (cost < best.cost) {
          best.cost = cost;
          best.position = pos;
          best.evicted = occupants;
        }
      }
    }

    geom::Point placed;
    if (best.cost < free_cost) {
      // Evict, then occupy.
      for (const auto& o : best.evicted)
        grid.release(grid.row_of(best.position.y), o.x);
      const bool ok =
          grid.occupy(grid.row_of(best.position.y), best.position.x, width, id);
      MBRC_ASSERT_MSG(ok, "eviction left the span occupied");
      placed = best.position;

      // Re-legalize the evicted combinational cells nearby.
      for (const auto& o : best.evicted) {
        netlist::Cell& evicted = design.cell(o.cell);
        const auto spot = grid.find_nearest_free(evicted.position, o.width);
        if (!spot) {
          result.success = false;
          continue;
        }
        const bool placed_ok =
            grid.occupy(grid.row_of(spot->y), spot->x, o.width, o.cell);
        MBRC_ASSERT(placed_ok);
        result.evicted_displacement +=
            geom::manhattan(evicted.position, *spot);
        evicted.position = *spot;
        design.notify_moved(o.cell);
        ++result.cells_evicted;
      }
    } else if (free_spot) {
      const bool ok =
          grid.occupy(grid.row_of(free_spot->y), free_spot->x, width, id);
      MBRC_ASSERT_MSG(ok, "legalizer chose an occupied interval");
      placed = *free_spot;
    } else {
      result.success = false;
      continue;
    }

    const double moved = geom::manhattan(target, placed);
    if (moved > 1e-12) {
      ++result.cells_moved;
      result.total_displacement += moved;
      result.max_displacement = std::max(result.max_displacement, moved);
    }
    // Journal any exact position change (the cells_moved epsilon above is a
    // reporting convention; incremental observers need every bit change).
    if (placed.x != cell.position.x || placed.y != cell.position.y)
      design.notify_moved(id);
    cell.position = placed;
  }
  return result;
}

}  // namespace mbrc::place
