// Linear-program model description shared by the LP (simplex) and ILP
// (branch & bound) solvers.
//
// The model is a plain builder: variables with bounds and objective
// coefficients, plus linear constraints. Variables may be marked integer;
// the simplex solver ignores integrality (it solves the relaxation), the
// branch & bound solver enforces it.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace mbrc::lp {

enum class Sense { kMinimize, kMaximize };
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

constexpr double kInfinity = std::numeric_limits<double>::infinity();

struct Term {
  int variable = 0;
  double coefficient = 0.0;
};

struct Constraint {
  std::vector<Term> terms;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

struct Variable {
  std::string name;
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  bool is_integer = false;
};

class Model {
public:
  /// Adds a variable and returns its index.
  int add_variable(std::string name, double lower, double upper,
                   double objective, bool is_integer = false) {
    MBRC_ASSERT_MSG(lower <= upper, "variable bounds crossed: " + name);
    variables_.push_back(
        {std::move(name), lower, upper, objective, is_integer});
    return static_cast<int>(variables_.size()) - 1;
  }

  /// Adds a binary {0,1} variable.
  int add_binary(std::string name, double objective) {
    return add_variable(std::move(name), 0.0, 1.0, objective, true);
  }

  /// Adds a continuous variable, unbounded below and above by default.
  int add_continuous(std::string name, double objective = 0.0,
                     double lower = -kInfinity, double upper = kInfinity) {
    return add_variable(std::move(name), lower, upper, objective, false);
  }

  void add_constraint(std::vector<Term> terms, Relation relation, double rhs) {
    for (const Term& t : terms)
      MBRC_ASSERT_MSG(t.variable >= 0 && t.variable < variable_count(),
                      "constraint references unknown variable");
    constraints_.push_back({std::move(terms), relation, rhs});
  }

  void set_sense(Sense sense) { sense_ = sense; }
  Sense sense() const { return sense_; }

  int variable_count() const { return static_cast<int>(variables_.size()); }
  int constraint_count() const { return static_cast<int>(constraints_.size()); }

  const Variable& variable(int i) const { return variables_[i]; }
  Variable& variable(int i) { return variables_[i]; }
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Objective value of an assignment (no feasibility check).
  double objective_value(const std::vector<double>& x) const {
    MBRC_ASSERT(static_cast<int>(x.size()) == variable_count());
    double v = 0.0;
    for (int i = 0; i < variable_count(); ++i) v += variables_[i].objective * x[i];
    return v;
  }

  /// Checks an assignment against bounds and constraints within `tol`.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

private:
  Sense sense_ = Sense::kMinimize;
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

}  // namespace mbrc::lp
