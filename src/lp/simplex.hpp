// Two-phase primal simplex over a dense tableau.
//
// Scope: the LPs in this library are small (MBR placement LPs have a handful
// of helper variables per pin; ILP relaxations have one column per MBR
// candidate in a <= 30-register subgraph), so a dense tableau with Dantzig
// pricing and a Bland's-rule anti-cycling fallback is simple and fast enough.
//
// General variable bounds are handled by substitution:
//   [l, u] with finite l     -> y = x - l >= 0 (u becomes a row when finite)
//   (-inf, u] with finite u  -> y = u - x >= 0
//   free                     -> x = y+ - y-
#pragma once

#include <string>
#include <vector>

#include "lp/model.hpp"

namespace mbrc::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

const char* to_string(SolveStatus status);

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // one entry per model variable
};

struct SimplexOptions {
  int max_iterations = 50'000;
  double tolerance = 1e-9;
};

/// Solves the LP relaxation of `model` (integrality flags are ignored).
Solution solve_lp(const Model& model, const SimplexOptions& options = {});

}  // namespace mbrc::lp
