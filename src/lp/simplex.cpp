#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "obs/counters.hpp"

namespace mbrc::lp {

namespace {

// How one model variable maps onto the non-negative standard-form variables.
struct Substitution {
  enum class Kind { kShifted, kNegatedShifted, kSplit } kind = Kind::kShifted;
  int primary = -1;    // standard-form column index
  int secondary = -1;  // second column for kSplit (the negative part)
  double offset = 0.0; // x = y + offset (kShifted) or x = offset - y (kNegatedShifted)
};

struct StandardForm {
  // Rows: A y (relation) b with b >= 0 after sign normalization.
  std::vector<std::vector<double>> rows;
  std::vector<double> rhs;
  std::vector<Relation> relations;
  std::vector<double> cost;           // phase-2 cost per standard column
  std::vector<Substitution> subs;     // per model variable
  int column_count = 0;
  double cost_offset = 0.0;           // constant term from substitutions
};

StandardForm build_standard_form(const Model& model) {
  StandardForm sf;
  const double sign = model.sense() == Sense::kMinimize ? 1.0 : -1.0;

  // Assign standard columns to model variables.
  sf.subs.resize(model.variable_count());
  for (int v = 0; v < model.variable_count(); ++v) {
    const Variable& var = model.variable(v);
    Substitution& sub = sf.subs[v];
    if (var.lower > -kInfinity) {
      sub.kind = Substitution::Kind::kShifted;
      sub.primary = sf.column_count++;
      sub.offset = var.lower;
    } else if (var.upper < kInfinity) {
      sub.kind = Substitution::Kind::kNegatedShifted;
      sub.primary = sf.column_count++;
      sub.offset = var.upper;
    } else {
      sub.kind = Substitution::Kind::kSplit;
      sub.primary = sf.column_count++;
      sub.secondary = sf.column_count++;
    }
  }

  sf.cost.assign(sf.column_count, 0.0);
  for (int v = 0; v < model.variable_count(); ++v) {
    const Variable& var = model.variable(v);
    const Substitution& sub = sf.subs[v];
    const double c = sign * var.objective;
    switch (sub.kind) {
      case Substitution::Kind::kShifted:
        sf.cost[sub.primary] += c;
        sf.cost_offset += c * sub.offset;
        break;
      case Substitution::Kind::kNegatedShifted:
        sf.cost[sub.primary] -= c;
        sf.cost_offset += c * sub.offset;
        break;
      case Substitution::Kind::kSplit:
        sf.cost[sub.primary] += c;
        sf.cost[sub.secondary] -= c;
        break;
    }
  }

  auto add_row = [&](const std::vector<Term>& terms, Relation rel, double rhs) {
    std::vector<double> row(sf.column_count, 0.0);
    double b = rhs;
    for (const Term& t : terms) {
      const Substitution& sub = sf.subs[t.variable];
      switch (sub.kind) {
        case Substitution::Kind::kShifted:
          row[sub.primary] += t.coefficient;
          b -= t.coefficient * sub.offset;
          break;
        case Substitution::Kind::kNegatedShifted:
          row[sub.primary] -= t.coefficient;
          b -= t.coefficient * sub.offset;
          break;
        case Substitution::Kind::kSplit:
          row[sub.primary] += t.coefficient;
          row[sub.secondary] -= t.coefficient;
          break;
      }
    }
    if (b < 0) {
      for (double& a : row) a = -a;
      b = -b;
      if (rel == Relation::kLessEqual)
        rel = Relation::kGreaterEqual;
      else if (rel == Relation::kGreaterEqual)
        rel = Relation::kLessEqual;
    }
    sf.rows.push_back(std::move(row));
    sf.rhs.push_back(b);
    sf.relations.push_back(rel);
  };

  for (const Constraint& con : model.constraints())
    add_row(con.terms, con.relation, con.rhs);

  // Finite second bounds become explicit rows.
  for (int v = 0; v < model.variable_count(); ++v) {
    const Variable& var = model.variable(v);
    if (var.lower > -kInfinity && var.upper < kInfinity)
      add_row({{v, 1.0}}, Relation::kLessEqual, var.upper);
  }
  return sf;
}

class Tableau {
public:
  Tableau(const StandardForm& sf, const SimplexOptions& options)
      : options_(options), structural_count_(sf.column_count) {
    const int m = static_cast<int>(sf.rows.size());
    // Count slack/surplus and artificial columns.
    int extra = 0;
    for (Relation rel : sf.relations)
      extra += (rel == Relation::kEqual) ? 1 : (rel == Relation::kGreaterEqual ? 2 : 1);
    total_cols_ = sf.column_count + extra;

    grid_.assign(m, std::vector<double>(total_cols_ + 1, 0.0));
    basis_.assign(m, -1);
    is_artificial_.assign(total_cols_, false);

    int next = sf.column_count;
    for (int r = 0; r < m; ++r) {
      auto& row = grid_[r];
      std::copy(sf.rows[r].begin(), sf.rows[r].end(), row.begin());
      row[total_cols_] = sf.rhs[r];
      switch (sf.relations[r]) {
        case Relation::kLessEqual:
          row[next] = 1.0;  // slack enters the basis
          basis_[r] = next;
          ++next;
          break;
        case Relation::kGreaterEqual:
          row[next] = -1.0;  // surplus
          ++next;
          row[next] = 1.0;  // artificial enters the basis
          is_artificial_[next] = true;
          basis_[r] = next;
          ++next;
          break;
        case Relation::kEqual:
          row[next] = 1.0;  // artificial enters the basis
          is_artificial_[next] = true;
          basis_[r] = next;
          ++next;
          break;
      }
      if (is_artificial_[basis_[r]])
        initial_infeasibility_ += std::abs(row[total_cols_]);
    }
  }

  int row_count() const { return static_cast<int>(grid_.size()); }

  // Minimizes `cost` (per-column, artificials get 0 unless phase 1) starting
  // from the current basis. Returns the status.
  SolveStatus run(const std::vector<double>& cost, bool forbid_artificials) {
    compute_reduced_costs(cost);
    int iterations = 0;
    int stalls = 0;
    while (true) {
      if (++iterations > options_.max_iterations)
        return SolveStatus::kIterationLimit;
      ++total_iterations_;

      const bool use_bland = stalls > 2 * total_cols_;
      const int entering = pick_entering(forbid_artificials, use_bland);
      if (entering < 0) return SolveStatus::kOptimal;

      const int leaving = pick_leaving(entering, use_bland);
      if (leaving < 0) return SolveStatus::kUnbounded;

      if (grid_[leaving][total_cols_] < options_.tolerance)
        ++stalls;  // degenerate pivot
      else
        stalls = 0;
      pivot(leaving, entering);
    }
  }

  double objective() const { return -reduced_[total_cols_]; }

  // Value of standard column c in the current basic solution.
  double value(int c) const {
    for (int r = 0; r < row_count(); ++r)
      if (basis_[r] == c) return grid_[r][total_cols_];
    return 0.0;
  }

  // Phase-1 feasibility threshold: the hand-off objective is a *sum* of
  // artificial values, so a fixed absolute cutoff misclassifies programs
  // whose coefficients are merely large (rounding scales with the data).
  // Scale the user tolerance by the starting infeasibility instead.
  double feasibility_tolerance() const {
    return options_.tolerance * std::max(1.0, initial_infeasibility_);
  }

  // After phase 1: pivot remaining artificial basics out where possible and
  // drop redundant rows. Returns false if any artificial remains with a
  // nonzero value (infeasible).
  bool eliminate_artificials() {
    for (int r = 0; r < row_count(); ++r) {
      if (!is_artificial_[basis_[r]]) continue;
      if (grid_[r][total_cols_] > feasibility_tolerance()) return false;
      // Try to pivot in any non-artificial column with a nonzero entry.
      int col = -1;
      for (int c = 0; c < total_cols_; ++c) {
        if (is_artificial_[c]) continue;
        if (std::abs(grid_[r][c]) > options_.tolerance) {
          col = c;
          break;
        }
      }
      if (col >= 0)
        pivot(r, col);
      // else: the row is all-zero (redundant constraint); the artificial
      // stays basic at value 0, which is harmless as long as it never
      // re-enters -- run() forbids artificial entering columns in phase 2.
    }
    return true;
  }

  const std::vector<bool>& artificial_mask() const { return is_artificial_; }
  int total_columns() const { return total_cols_; }

  /// Simplex loop iterations across both phases (the solver's unit of work).
  std::int64_t iterations() const { return total_iterations_; }

private:
  void compute_reduced_costs(const std::vector<double>& cost) {
    // reduced_ = cost row relative to the current basis:
    // start from cost and subtract c_B * B^{-1} A (accumulated row by row).
    reduced_.assign(total_cols_ + 1, 0.0);
    for (int c = 0; c < total_cols_; ++c)
      reduced_[c] = c < static_cast<int>(cost.size()) ? cost[c] : 0.0;
    for (int r = 0; r < row_count(); ++r) {
      const int b = basis_[r];
      const double cb = b < static_cast<int>(cost.size()) ? cost[b] : 0.0;
      if (cb == 0.0) continue;
      for (int c = 0; c <= total_cols_; ++c) reduced_[c] -= cb * grid_[r][c];
    }
  }

  int pick_entering(bool forbid_artificials, bool use_bland) const {
    int best = -1;
    double best_value = -options_.tolerance;
    for (int c = 0; c < total_cols_; ++c) {
      if (forbid_artificials && is_artificial_[c]) continue;
      const double rc = reduced_[c];
      if (rc < best_value) {
        if (use_bland) return c;  // first improving column
        best_value = rc;
        best = c;
      }
    }
    return best;
  }

  int pick_leaving(int entering, bool use_bland) const {
    int best = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int r = 0; r < row_count(); ++r) {
      const double a = grid_[r][entering];
      if (a <= options_.tolerance) continue;
      const double ratio = grid_[r][total_cols_] / a;
      if (ratio < best_ratio - options_.tolerance ||
          (ratio < best_ratio + options_.tolerance && best >= 0 &&
           (use_bland ? basis_[r] < basis_[best] : a > grid_[best][entering]))) {
        best_ratio = ratio;
        best = r;
      }
    }
    return best;
  }

  void pivot(int row, int col) {
    auto& prow = grid_[row];
    const double p = prow[col];
    for (double& v : prow) v /= p;
    for (int r = 0; r < row_count(); ++r) {
      if (r == row) continue;
      const double f = grid_[r][col];
      if (f == 0.0) continue;
      auto& other = grid_[r];
      for (int c = 0; c <= total_cols_; ++c) other[c] -= f * prow[c];
    }
    const double f = reduced_[col];
    if (f != 0.0)
      for (int c = 0; c <= total_cols_; ++c) reduced_[c] -= f * prow[c];
    basis_[row] = col;
  }

  SimplexOptions options_;
  std::int64_t total_iterations_ = 0;
  int structural_count_ = 0;
  double initial_infeasibility_ = 0.0;  // sum of |rhs| over artificial rows
  int total_cols_ = 0;
  std::vector<std::vector<double>> grid_;
  std::vector<double> reduced_;
  std::vector<int> basis_;
  std::vector<bool> is_artificial_;
};

}  // namespace

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

Solution solve_lp(const Model& model, const SimplexOptions& options) {
  Solution solution;
  const StandardForm sf = build_standard_form(model);
  Tableau tableau(sf, options);

  // Flushes the solve's work counts on every exit path; counts, never wall
  // time (DESIGN.md §11).
  struct CounterFlush {
    const Tableau& tableau;
    ~CounterFlush() {
      static obs::Counter& c_solves = obs::counter("lp.simplex.solves");
      static obs::Counter& c_iters = obs::counter("lp.simplex.iterations");
      static obs::Histogram& h_iters =
          obs::histogram("lp.simplex.iterations_per_solve");
      c_solves.add(1);
      c_iters.add(tableau.iterations());
      h_iters.record(tableau.iterations());
    }
  } counter_flush{tableau};

  // Phase 1: minimize the sum of artificials.
  bool needs_phase1 = false;
  std::vector<double> phase1_cost(tableau.total_columns(), 0.0);
  for (int c = 0; c < tableau.total_columns(); ++c) {
    if (tableau.artificial_mask()[c]) {
      phase1_cost[c] = 1.0;
      needs_phase1 = true;
    }
  }
  if (needs_phase1) {
    const SolveStatus s1 = tableau.run(phase1_cost, /*forbid_artificials=*/false);
    if (s1 == SolveStatus::kIterationLimit) {
      solution.status = s1;
      return solution;
    }
    if (tableau.objective() > tableau.feasibility_tolerance() ||
        !tableau.eliminate_artificials()) {
      solution.status = SolveStatus::kInfeasible;
      return solution;
    }
  }

  // Phase 2: original cost, artificial columns locked out.
  std::vector<double> phase2_cost(tableau.total_columns(), 0.0);
  std::copy(sf.cost.begin(), sf.cost.end(), phase2_cost.begin());
  const SolveStatus s2 = tableau.run(phase2_cost, /*forbid_artificials=*/true);
  if (s2 != SolveStatus::kOptimal) {
    solution.status = s2;
    return solution;
  }

  // Recover model-variable values from the standard-form solution.
  solution.values.assign(model.variable_count(), 0.0);
  for (int v = 0; v < model.variable_count(); ++v) {
    const auto& sub = sf.subs[v];
    double x = 0.0;
    switch (sub.kind) {
      case Substitution::Kind::kShifted:
        x = tableau.value(sub.primary) + sub.offset;
        break;
      case Substitution::Kind::kNegatedShifted:
        x = sub.offset - tableau.value(sub.primary);
        break;
      case Substitution::Kind::kSplit:
        x = tableau.value(sub.primary) - tableau.value(sub.secondary);
        break;
    }
    solution.values[v] = x;
  }
  solution.status = SolveStatus::kOptimal;
  solution.objective = model.objective_value(solution.values);
  return solution;
}

}  // namespace mbrc::lp
