#include "lp/model.hpp"

#include <cmath>

namespace mbrc::lp {

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != variable_count()) return false;
  for (int i = 0; i < variable_count(); ++i) {
    const Variable& v = variables_[i];
    if (x[i] < v.lower - tol || x[i] > v.upper + tol) return false;
    if (v.is_integer && std::abs(x[i] - std::round(x[i])) > tol) return false;
  }
  for (const Constraint& con : constraints_) {
    double lhs = 0.0;
    for (const Term& t : con.terms) lhs += t.coefficient * x[t.variable];
    switch (con.relation) {
      case Relation::kLessEqual:
        if (lhs > con.rhs + tol) return false;
        break;
      case Relation::kGreaterEqual:
        if (lhs < con.rhs - tol) return false;
        break;
      case Relation::kEqual:
        if (std::abs(lhs - con.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace mbrc::lp
