#include "benchgen/generator.hpp"

#include <algorithm>
#include <cmath>

#include "mbr/rewire.hpp"
#include "place/legalizer.hpp"
#include "sta/sta.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mbrc::benchgen {

namespace {

using netlist::CellId;
using netlist::Design;
using netlist::NetId;
using netlist::PinId;
using netlist::PinRole;

struct ClusterSpec {
  geom::Point center;
  int function_index = 0;  // into the class table below
  int clock_domain = 0;
  int gating_group = 0;
  int scan_partition = -1;
  int logic_depth = 2;               // shared cone depth: slack coherence
  int width = 1;                     // register banks hold words of one width
  double y_sigma = 2.2;              // strip-like bank vs 2-D blob
  std::vector<int> source_clusters;  // where this cluster's data comes from
  std::vector<CellId> registers;
};

// Functional classes used by the generator, with their sampling weight.
struct ClassSpec {
  lib::RegisterFunction function;
  double weight;
};

const std::vector<ClassSpec>& class_table() {
  static const std::vector<ClassSpec> table = {
      {{}, 0.30},
      {{.has_reset = true}, 0.30},
      {{.has_reset = true, .has_enable = true}, 0.15},
      {{.is_scan = true}, 0.15},
      {{.has_reset = true, .is_scan = true}, 0.10},
  };
  return table;
}

int sample_class(util::Rng& rng) {
  double total = 0.0;
  for (const ClassSpec& c : class_table()) total += c.weight;
  double draw = rng.uniform_real(0.0, total);
  for (std::size_t i = 0; i < class_table().size(); ++i) {
    draw -= class_table()[i].weight;
    if (draw <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(class_table().size()) - 1;
}

int sample_width(util::Rng& rng, const std::map<int, double>& mix) {
  double total = 0.0;
  for (const auto& [w, f] : mix) total += f;
  double draw = rng.uniform_real(0.0, total);
  for (const auto& [w, f] : mix) {
    draw -= f;
    if (draw <= 0.0) return w;
  }
  return mix.rbegin()->first;
}

// Picks the register cell of (function, width) with the sampled drive
// strength (X1-heavy), skipping per-bit-scan variants for initial cells.
const lib::RegisterCell* sample_register_cell(util::Rng& rng,
                                              const lib::Library& library,
                                              const lib::RegisterFunction& f,
                                              int width) {
  auto cells = library.cells_for(f, width);
  std::erase_if(cells, [](const lib::RegisterCell* c) {
    return c->scan_style == lib::ScanStyle::kPerBitPins;
  });
  MBRC_ASSERT_MSG(!cells.empty(), "library lacks a register class/width");
  // Weakest (highest resistance) first; name breaks resistance ties so the
  // draw below lands on the same cell on every platform.
  std::sort(cells.begin(), cells.end(),
            [](const lib::RegisterCell* a, const lib::RegisterCell* b) {
              if (a->drive_resistance != b->drive_resistance)
                return a->drive_resistance > b->drive_resistance;
              return a->name < b->name;
            });
  const double draw = rng.uniform_real(0.0, 1.0);
  const std::size_t index = draw < 0.80 ? 0 : (draw < 0.95 ? 1 : 2);
  return cells[std::min(index, cells.size() - 1)];
}

// For every cluster, the `pool` nearest clusters by manhattan center
// distance (the cluster itself included, at distance zero). Small counts
// keep the exact full sort the source-cluster wiring has always used; past
// the threshold -- scaled profiles reach tens of thousands of clusters,
// where C^2 log C comparisons dominate generation -- an expanding-ring
// search over a uniform bucket grid finds the same nearest set in roughly
// linear total time. Ties on distance are broken by cluster index; with
// centers drawn from a continuous distribution, exact ties do not occur, so
// both strategies select identical pools.
std::vector<std::vector<int>> nearest_cluster_pools(
    const std::vector<ClusterSpec>& clusters, double core_w, double core_h,
    int pool) {
  const int cluster_count = static_cast<int>(clusters.size());
  std::vector<std::vector<int>> pools(clusters.size());
  MBRC_ASSERT(pool >= 1 && pool <= cluster_count);

  if (cluster_count <= 2048) {
    std::vector<int> by_distance(clusters.size());
    for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
      const geom::Point center = clusters[ci].center;
      for (int k = 0; k < cluster_count; ++k) by_distance[k] = k;
      std::sort(by_distance.begin(), by_distance.end(), [&](int a, int b) {
        return geom::manhattan(clusters[a].center, center) <
               geom::manhattan(clusters[b].center, center);
      });
      pools[ci].assign(by_distance.begin(), by_distance.begin() + pool);
    }
    return pools;
  }

  // Bucket grid with ~one cluster per bucket.
  const int grid = std::max(
      1, static_cast<int>(std::sqrt(static_cast<double>(cluster_count))));
  const double cell_w = std::max(core_w, 1e-9) / grid;
  const double cell_h = std::max(core_h, 1e-9) / grid;
  const auto bucket_x = [&](double x) {
    return std::clamp(static_cast<int>(x / cell_w), 0, grid - 1);
  };
  const auto bucket_y = [&](double y) {
    return std::clamp(static_cast<int>(y / cell_h), 0, grid - 1);
  };
  std::vector<std::vector<int>> buckets(
      static_cast<std::size_t>(grid) * grid);
  for (int k = 0; k < cluster_count; ++k)
    buckets[static_cast<std::size_t>(bucket_y(clusters[k].center.y)) * grid +
            bucket_x(clusters[k].center.x)]
        .push_back(k);

  std::vector<std::pair<double, int>> best;  // (distance, index), ascending
  for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
    const geom::Point center = clusters[ci].center;
    const int cx = bucket_x(center.x);
    const int cy = bucket_y(center.y);
    best.clear();
    for (int ring = 0; ring < 2 * grid; ++ring) {
      bool visited_any = false;
      for (int by = cy - ring; by <= cy + ring; ++by) {
        if (by < 0 || by >= grid) continue;
        // Ring cells only: full row on the top/bottom edge, two cells else.
        const int step =
            (by == cy - ring || by == cy + ring) ? 1 : std::max(1, 2 * ring);
        for (int bx = cx - ring; bx <= cx + ring; bx += step) {
          if (bx < 0 || bx >= grid) continue;
          visited_any = true;
          for (int k :
               buckets[static_cast<std::size_t>(by) * grid + bx])
            best.emplace_back(geom::manhattan(clusters[k].center, center), k);
        }
      }
      std::sort(best.begin(), best.end());
      if (static_cast<int>(best.size()) > pool)
        best.resize(static_cast<std::size_t>(pool));
      // Everything beyond ring r sits at least (r * min cell extent) away;
      // once the pool's worst member beats that bound, no further ring can
      // improve it.
      const double ring_floor = ring * std::min(cell_w, cell_h);
      if (static_cast<int>(best.size()) == pool &&
          best.back().first < ring_floor)
        break;
      if (!visited_any && ring > 0) break;  // ring left the grid entirely
    }
    pools[ci].reserve(static_cast<std::size_t>(pool));
    for (const auto& [distance, k] : best) pools[ci].push_back(k);
  }
  return pools;
}

struct Builder {
  const lib::Library& library;
  const DesignProfile& profile;
  util::Rng rng;

  Builder(const lib::Library& lib, const DesignProfile& prof)
      : library(lib), profile(prof), rng(prof.seed) {}

  // Pre-sampled register plan entries.
  struct RegisterPlan {
    const lib::RegisterCell* cell;
    int cluster;
  };

  GeneratedDesign build() {
    // --- sample clusters and registers -------------------------------
    const int cluster_count =
        std::max(1, profile.register_cells * profile.clusters_per_1000_regs /
                        1000);
    std::vector<ClusterSpec> clusters(cluster_count);
    for (ClusterSpec& c : clusters) {
      c.function_index = sample_class(rng);
      c.clock_domain =
          static_cast<int>(rng.uniform_int(0, profile.clock_domains - 1));
      c.gating_group =
          static_cast<int>(rng.uniform_int(0, profile.gating_groups - 1));
      if (class_table()[c.function_index].function.is_scan)
        c.scan_partition =
            static_cast<int>(rng.uniform_int(0, profile.scan_partitions - 1));
      c.width = sample_width(rng, profile.width_mix);
      // Roughly half the banks are neat row strips, the rest 2-D pockets --
      // mixed geometry is where exact allocation beats greedy tiling.
      c.y_sigma = rng.chance(0.55) ? 2.2 : 5.5;
      if (rng.chance(profile.deep_cluster_fraction)) {
        c.logic_depth = static_cast<int>(rng.uniform_int(
            profile.deep_depth_min, profile.deep_depth_max));
      } else {
        c.logic_depth = 1;
        while (c.logic_depth < profile.max_shallow_depth &&
               rng.chance(profile.cone_extend_probability))
          ++c.logic_depth;
      }
    }

    std::vector<RegisterPlan> plans;
    plans.reserve(profile.register_cells);
    double register_area = 0.0;
    for (int i = 0; i < profile.register_cells; ++i) {
      const int cluster =
          static_cast<int>(rng.uniform_int(0, cluster_count - 1));
      const lib::RegisterFunction f =
          class_table()[clusters[cluster].function_index].function;
      // Banks are width-homogeneous (a word stored as N k-bit MBRs), with a
      // little contamination from nearby miscellaneous registers.
      const int width = rng.chance(0.85) ? clusters[cluster].width
                                         : sample_width(rng, profile.width_mix);
      const lib::RegisterCell* cell =
          sample_register_cell(rng, library, f, width);
      register_area += cell->area;
      plans.push_back({cell, cluster});
    }

    const int comb_budget = static_cast<int>(
        profile.register_cells * profile.comb_per_register);
    const double avg_comb_area = 1.6;
    const double total_area =
        (register_area + comb_budget * avg_comb_area) /
        profile.core_utilization;
    const double core_w = std::sqrt(total_area * profile.core_aspect);
    const double core_h = total_area / core_w;
    const geom::Rect core{0.0, 0.0, core_w, core_h};

    GeneratedDesign out{Design(&library, core), 0.0};
    Design& design = out.design;
    place::RowGrid grid(core);

    // Cluster centers away from the boundary.
    for (ClusterSpec& c : clusters) {
      c.center = {rng.uniform_real(core_w * 0.05, core_w * 0.95),
                  rng.uniform_real(core_h * 0.05, core_h * 0.95)};
    }

    // Data flows between nearby cluster pairs, the way pipeline stages feed
    // each other in a placed design: registers of one cluster then see
    // similar path lengths and end up with similar slacks (timing
    // compatibility), and wiring stays local (realistic congestion).
    // Only the `pool` nearest clusters are ever drawn from, so the pools are
    // computed before the rng draws (neighbor search consumes no rng either
    // way, keeping the stream identical across both search strategies).
    const int pool = std::min<int>(cluster_count, 5);
    const std::vector<std::vector<int>> near_pools =
        nearest_cluster_pools(clusters, core_w, core_h, pool);
    for (int ci = 0; ci < cluster_count; ++ci) {
      ClusterSpec& c = clusters[ci];
      const int fanin = rng.chance(0.75) ? 1 : 2;
      for (int s = 0; s < fanin; ++s)
        c.source_clusters.push_back(near_pools[static_cast<std::size_t>(ci)]
            [static_cast<std::size_t>(rng.uniform_int(0, pool - 1))]);
    }

    // --- clock, control and scan-enable infrastructure ----------------
    std::vector<NetId> clock_nets(profile.clock_domains);
    for (int d = 0; d < profile.clock_domains; ++d) {
      clock_nets[d] = design.create_net(/*is_clock=*/true);
      const CellId port = design.add_port("clk" + std::to_string(d), true,
                                          {0.0, core_h / 2});
      design.connect(design.cell(port).pins.front(), clock_nets[d]);
    }

    // Control nets shared per (domain, gating group): this is what makes
    // registers of different clusters functionally compatible.
    const auto control_driver = [&](const std::string& name) {
      const lib::CombCell* inv = library.comb_by_name("INV_X4");
      const geom::Point target{rng.uniform_real(0.0, core_w),
                               rng.uniform_real(0.0, core_h)};
      const auto spot = grid.find_nearest_free(target, inv->width);
      MBRC_ASSERT(spot.has_value());
      const CellId cell = design.add_comb(name, inv, *spot);
      grid.occupy(grid.row_of(spot->y), spot->x, inv->width);
      const NetId net = design.create_net();
      design.connect(design.cell(cell).pins.back(), net);  // output pin
      return net;
    };

    struct ControlNets {
      NetId reset, set, enable;
    };
    std::vector<ControlNets> controls(
        static_cast<std::size_t>(profile.clock_domains) *
        profile.gating_groups);
    for (int d = 0; d < profile.clock_domains; ++d) {
      for (int g = 0; g < profile.gating_groups; ++g) {
        auto& c = controls[d * profile.gating_groups + g];
        const std::string tag = std::to_string(d) + "_" + std::to_string(g);
        c.reset = control_driver("rst_drv" + tag);
        c.set = control_driver("set_drv" + tag);
        c.enable = control_driver("en_drv" + tag);
      }
    }
    std::vector<NetId> scan_enable(profile.scan_partitions);
    for (int p = 0; p < profile.scan_partitions; ++p)
      scan_enable[p] = control_driver("se_drv" + std::to_string(p));

    // --- place registers cluster by cluster ---------------------------
    std::vector<CellId> all_registers;
    all_registers.reserve(plans.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
      const RegisterPlan& plan = plans[i];
      ClusterSpec& cluster = clusters[plan.cluster];
      // Banks are row-oriented strips, as placers leave them: wide in x,
      // only a couple of rows tall. Consecutive runs then have clean convex
      // hulls, which is what the Sec. 3.2 weights reward.
      const geom::Point target{
          cluster.center.x + rng.gaussian(0.0, profile.cluster_radius),
          cluster.center.y + rng.gaussian(0.0, cluster.y_sigma)};
      const auto spot = grid.find_nearest_free(target, plan.cell->width);
      MBRC_ASSERT_MSG(spot.has_value(), "core too full for registers");
      const CellId reg = design.add_register(
          "reg" + std::to_string(i), plan.cell, *spot);
      grid.occupy(grid.row_of(spot->y), spot->x, plan.cell->width);

      netlist::Cell& cell = design.cell(reg);
      cell.gating_group = cluster.gating_group;
      cell.scan.partition = cluster.scan_partition;
      design.connect(design.register_clock_pin(reg),
                     clock_nets[cluster.clock_domain]);
      const ControlNets& ctrl =
          controls[cluster.clock_domain * profile.gating_groups +
                   cluster.gating_group];
      const auto connect_if = [&](PinRole role, NetId net) {
        const PinId pin = design.register_control_pin(reg, role);
        if (pin.valid()) design.connect(pin, net);
      };
      connect_if(PinRole::kReset, ctrl.reset);
      connect_if(PinRole::kSet, ctrl.set);
      connect_if(PinRole::kEnable, ctrl.enable);
      if (plan.cell->function.is_scan && cluster.scan_partition >= 0)
        connect_if(PinRole::kScanEnable,
                   scan_enable[cluster.scan_partition]);

      cluster.registers.push_back(reg);
      all_registers.push_back(reg);
    }

    // Designer constraints.
    for (CellId reg : all_registers) {
      const double draw = rng.uniform_real(0.0, 1.0);
      if (draw < profile.fixed_fraction)
        design.cell(reg).fixed = true;
      else if (draw < profile.fixed_fraction + profile.size_only_fraction)
        design.cell(reg).size_only = true;
    }

    // Ordered scan sections: consecutive runs of scan registers within a
    // cluster get (section, order) locks.
    int next_section = 0;
    for (ClusterSpec& cluster : clusters) {
      if (cluster.scan_partition < 0) continue;
      std::size_t i = 0;
      while (i < cluster.registers.size()) {
        if (!rng.chance(profile.ordered_section_fraction)) {
          ++i;
          continue;
        }
        const std::size_t take = std::min<std::size_t>(
            static_cast<std::size_t>(
                rng.uniform_int(2, profile.registers_per_section)),
            cluster.registers.size() - i);
        if (take < 2) break;
        for (std::size_t k = 0; k < take; ++k) {
          netlist::Cell& cell = design.cell(cluster.registers[i + k]);
          cell.scan.section = next_section;
          cell.scan.order = static_cast<int>(k);
        }
        ++next_section;
        i += take;
      }
    }

    // --- IO ports ------------------------------------------------------
    const int in_ports = std::max(4, profile.register_cells / 40);
    const int out_ports = std::max(4, profile.register_cells / 40);
    std::vector<PinId> input_drivers;
    for (int i = 0; i < in_ports; ++i) {
      const CellId port = design.add_port(
          "in" + std::to_string(i), true,
          {0.0, rng.uniform_real(0.0, core_h)});
      input_drivers.push_back(design.cell(port).pins.front());
    }

    // --- combinational cones -------------------------------------------
    const std::vector<const lib::CombCell*> gate_menu = {
        library.comb_by_name("NAND2_X1"), library.comb_by_name("NOR2_X1"),
        library.comb_by_name("AOI22_X1"), library.comb_by_name("XOR2_X1"),
        library.comb_by_name("INV_X1"),   library.comb_by_name("BUF_X2")};

    int comb_created = 0;
    std::vector<PinId> comb_outputs;  // global pool (output-port taps)
    comb_outputs.reserve(comb_budget);
    // Per-cluster pools keep fanout reuse local, preserving the slack
    // coherence that makes registers timing-compatible.
    std::vector<std::vector<PinId>> cluster_outputs(cluster_count);

    // A launch pin for logic feeding `sink_cluster`: a Q pin from one of its
    // source clusters (keeping path lengths, and so slacks, coherent within
    // the cluster), occasionally an existing comb output or an input port.
    const auto random_source = [&](int sink_cluster) -> PinId {
      const auto& local = cluster_outputs[sink_cluster];
      if (!local.empty() && rng.chance(0.15))
        return local[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(local.size()) - 1))];
      if (rng.chance(0.06))
        return input_drivers[static_cast<std::size_t>(
            rng.uniform_int(0, in_ports - 1))];
      const auto& sources = clusters[sink_cluster].source_clusters;
      for (int tries = 0; tries < 4; ++tries) {
        const int sc = sources[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(sources.size()) - 1))];
        if (clusters[sc].registers.empty()) continue;
        const CellId reg = clusters[sc].registers[static_cast<std::size_t>(
            rng.uniform_int(
                0,
                static_cast<std::int64_t>(clusters[sc].registers.size()) - 1))];
        const int bits = design.cell(reg).reg->bits;
        const int bit = static_cast<int>(rng.uniform_int(0, bits - 1));
        return design.register_q_pin(reg, bit);
      }
      // Degenerate fallback: any register at all.
      const CellId reg = all_registers[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(all_registers.size()) - 1))];
      return design.register_q_pin(reg, 0);
    };

    const auto net_of_driver = [&](PinId driver) {
      const NetId existing = design.pin(driver).net;
      if (existing.valid()) return existing;
      const NetId net = design.create_net();
      design.connect(driver, net);
      return net;
    };

    // Creates one gate near `near` fed from `sink_cluster`'s sources,
    // returns its output pin (invalid when the comb budget is exhausted).
    const auto make_gate = [&](const geom::Point& near,
                               int sink_cluster) -> PinId {
      if (comb_created >= comb_budget) return PinId{};
      const lib::CombCell* type = gate_menu[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(gate_menu.size()) - 1))];
      const geom::Point target{near.x + rng.gaussian(0.0, 10.0),
                               near.y + rng.gaussian(0.0, 10.0)};
      const auto spot = grid.find_nearest_free(target, type->width);
      if (!spot) return PinId{};
      const CellId gate = design.add_comb(
          "g" + std::to_string(comb_created), type, *spot);
      grid.occupy(grid.row_of(spot->y), spot->x, type->width);
      ++comb_created;

      PinId output;
      for (PinId pin : design.cell(gate).pins) {
        if (design.pin(pin).is_output) {
          output = pin;
        } else {
          const PinId src = random_source(sink_cluster);
          design.connect(pin, net_of_driver(src));
        }
      }
      comb_outputs.push_back(output);
      cluster_outputs[sink_cluster].push_back(output);
      return output;
    };

    // One cone per register D bit, generated cluster by cluster; the depth
    // is the cluster's (slightly jittered) and fanout reuse is local, so
    // registers of a cluster have similar arrival times.
    for (int sink_cluster = 0; sink_cluster < cluster_count; ++sink_cluster) {
    for (CellId reg : clusters[sink_cluster].registers) {
      const int bits = design.cell(reg).reg->bits;
      // Global placement never puts each register at its wire-optimal spot;
      // the cone is anchored a little off the register, leaving exactly the
      // slack the wire-length-minimizing MBR placement (Sec. 4.2) recovers.
      const geom::Point anchor{
          design.cell(reg).position.x + rng.gaussian(0.0, 7.0),
          design.cell(reg).position.y + rng.gaussian(0.0, 7.0)};
      for (int b = 0; b < bits; ++b) {
        const PinId d_pin = design.register_d_pin(reg, b);
        PinId driver;
        const auto& local_pool = cluster_outputs[sink_cluster];
        if (!local_pool.empty() &&
            rng.chance(profile.fanout_reuse_probability)) {
          driver = local_pool[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(local_pool.size()) - 1))];
        } else {
          int depth = clusters[sink_cluster].logic_depth;
          if (rng.chance(0.2)) depth += rng.chance(0.5) ? 1 : -1;
          depth = std::clamp(depth, 1, profile.deep_depth_max);
          PinId head;
          for (int level = 0; level < depth; ++level) {
            const PinId gate_out = make_gate(anchor, sink_cluster);
            if (!gate_out.valid()) break;
            if (head.valid()) {
              // Chain: previous head feeds one input of the new gate by
              // replacing one random input connection.
              const netlist::Cell& gate_cell =
                  design.cell(design.pin(gate_out).cell);
              for (PinId pin : gate_cell.pins) {
                if (!design.pin(pin).is_output) {
                  design.disconnect(pin);
                  design.connect(pin, net_of_driver(head));
                  break;
                }
              }
            }
            head = gate_out;
          }
          driver = head.valid() ? head : random_source(sink_cluster);
        }
        design.connect(d_pin, net_of_driver(driver));
      }
    }
    }

    // Output ports: tap random comb outputs / Q pins.
    for (int i = 0; i < out_ports; ++i) {
      const CellId port = design.add_port(
          "out" + std::to_string(i), false,
          {core_w, rng.uniform_real(0.0, core_h)});
      const PinId src = random_source(static_cast<int>(
          rng.uniform_int(0, cluster_count - 1)));
      design.connect(design.cell(port).pins.front(), net_of_driver(src));
    }

    // Scan chains.
    mbr::restitch_scan_chains(design);

    // --- clock-period calibration ---------------------------------------
    sta::TimingOptions probe;
    probe.clock_period = 1.0;
    const sta::TimingReport report = sta::run_sta(design, probe);
    std::vector<double> pressure;  // arrival + setup = period at zero slack
    pressure.reserve(report.endpoints.size());
    for (const auto& e : report.endpoints)
      pressure.push_back(probe.clock_period - e.slack);
    std::sort(pressure.begin(), pressure.end());
    const std::size_t keep = static_cast<std::size_t>(
        pressure.size() * (1.0 - profile.failing_endpoint_fraction));
    const std::size_t index = std::min(keep, pressure.size() - 1);
    out.calibrated_clock_period = std::max(0.05, pressure[index]);
    return out;
  }
};

}  // namespace

std::vector<DesignProfile> standard_profiles() {
  std::vector<DesignProfile> profiles(5);

  profiles[0].name = "D1";
  profiles[0].seed = 101;
  profiles[0].register_cells = 2940;
  profiles[0].width_mix = {{1, 0.55}, {2, 0.25}, {4, 0.15}, {8, 0.05}};
  profiles[0].comb_per_register = 8.0;

  profiles[1].name = "D2";
  profiles[1].seed = 202;
  profiles[1].register_cells = 3740;
  profiles[1].width_mix = {{1, 0.50}, {2, 0.30}, {4, 0.15}, {8, 0.05}};
  profiles[1].comb_per_register = 11.0;
  profiles[1].gating_groups = 8;

  profiles[2].name = "D3";
  profiles[2].seed = 303;
  profiles[2].register_cells = 3450;
  profiles[2].width_mix = {{1, 0.45}, {2, 0.30}, {4, 0.15}, {8, 0.10}};
  profiles[2].comb_per_register = 9.5;
  profiles[2].clock_domains = 2;

  profiles[3].name = "D4";  // already 8-bit rich: composition has less to do
  profiles[3].seed = 404;
  profiles[3].register_cells = 5040;
  profiles[3].width_mix = {{1, 0.20}, {2, 0.15}, {4, 0.25}, {8, 0.40}};
  profiles[3].comb_per_register = 15.0;
  profiles[3].gating_groups = 10;

  profiles[4].name = "D5";
  profiles[4].seed = 505;
  profiles[4].register_cells = 3450;
  profiles[4].width_mix = {{1, 0.50}, {2, 0.25}, {4, 0.15}, {8, 0.10}};
  profiles[4].comb_per_register = 10.0;
  profiles[4].scan_partitions = 6;

  return profiles;
}

std::vector<DesignProfile> scenario_profiles() {
  std::vector<DesignProfile> profiles(2);

  // DM: multi-clock stress for the bank/debank loop. Four domains shrink
  // the compatibility pockets (banks only form within a domain), and the
  // high failing fraction plus deep critical cones leave composed banks on
  // the critical path -- exactly the state debanking targets.
  profiles[0].name = "DM";
  profiles[0].seed = 606;
  profiles[0].register_cells = 1200;
  profiles[0].width_mix = {{1, 0.30}, {2, 0.20}, {4, 0.25}, {8, 0.25}};
  profiles[0].comb_per_register = 10.0;
  profiles[0].clock_domains = 4;
  profiles[0].gating_groups = 8;
  profiles[0].failing_endpoint_fraction = 0.45;
  profiles[0].deep_cluster_fraction = 0.40;

  // DP: power-capped scenario. Mostly 1-bit registers (maximal composition
  // headroom) under many gating groups: the beta/gamma-dominant cost
  // settings must hold clock power and area while the alpha-dominant ones
  // chase timing.
  profiles[1].name = "DP";
  profiles[1].seed = 707;
  profiles[1].register_cells = 1400;
  profiles[1].width_mix = {{1, 0.70}, {2, 0.20}, {4, 0.08}, {8, 0.02}};
  profiles[1].comb_per_register = 9.0;
  profiles[1].gating_groups = 12;
  profiles[1].failing_endpoint_fraction = 0.25;

  return profiles;
}

std::vector<DesignProfile> scaled_profiles(int factor) {
  MBRC_ASSERT(factor >= 1);
  std::vector<DesignProfile> profiles = standard_profiles();
  for (DesignProfile& p : profiles) {
    p.name += "x";
    p.name += std::to_string(factor);
    p.register_cells *= factor;
  }
  return profiles;
}

GeneratedDesign generate_design(const lib::Library& library,
                                const DesignProfile& profile) {
  Builder builder(library, profile);
  return builder.build();
}

}  // namespace mbrc::benchgen
