// Synthetic benchmark generator.
//
// The paper evaluates on five 28 nm industrial designs (D1..D5) that are
// rich in MBRs after logic synthesis. Those netlists are proprietary, so
// this module synthesizes placed designs that reproduce their *relative*
// structure (see DESIGN.md, substitutions):
//   - registers arrive in localized clusters of functionally compatible
//     cells (same clock/gating/control nets, same scan partition), the way
//     register banks and datapath registers appear in real floorplans;
//   - a configurable initial MBR width mix (D4 is 8-bit rich, so composition
//     has little left to do there -- the paper calls this out);
//   - random combinational cones between register stages, giving a realistic
//     slack distribution; the clock period is auto-calibrated so a target
//     fraction of endpoints fails (the paper reports ~38%);
//   - scan chains with partitions and some ordered sections, stitched
//     geometrically;
//   - designer constraints: a fraction of registers is fixed / size-only.
//
// Everything is seeded and deterministic.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lib/library.hpp"
#include "netlist/design.hpp"

namespace mbrc::benchgen {

struct DesignProfile {
  std::string name = "D";
  std::uint64_t seed = 1;

  int register_cells = 3000;       // register instances (each MBR counts 1)
  /// Initial width mix: width -> fraction of register cells.
  std::map<int, double> width_mix = {{1, 0.55}, {2, 0.25}, {4, 0.15}, {8, 0.05}};
  double comb_per_register = 8.0;  // combinational cells per register cell

  int clusters_per_1000_regs = 80;  // register clusters (compatibility pockets)
  double cluster_radius = 7.0;       // um, register spread inside a cluster (banks abut)

  int clock_domains = 1;
  int gating_groups = 6;     // clock-gating enable conditions per domain
  int scan_partitions = 4;
  double ordered_section_fraction = 0.10;  // registers with scan-order locks
  int registers_per_section = 6;

  double fixed_fraction = 0.06;      // dont_touch registers
  double size_only_fraction = 0.05;  // resizable but not composable

  double core_utilization = 0.62;
  double core_aspect = 1.0;

  /// Fraction of timing endpoints that should fail after calibration.
  double failing_endpoint_fraction = 0.38;
  /// Logic depth is bimodal, as in real designs: most clusters are shallow
  /// (comfortable slack), a critical minority is deep (these produce the
  /// failing endpoints). Shallow depth is 1 + geometric(p), capped.
  double cone_extend_probability = 0.45;
  int max_shallow_depth = 4;
  double deep_cluster_fraction = 0.30;
  int deep_depth_min = 7;
  int deep_depth_max = 10;
  /// Probability that a D pin taps an existing comb output (reconvergence).
  double fanout_reuse_probability = 0.12;
};

/// The five standard profiles mirroring Table 1's relative characteristics
/// at roughly 1/10 scale.
std::vector<DesignProfile> standard_profiles();

/// Scenario profiles exercising the multi-objective flow beyond Table 1:
/// "DM" is a multi-clock design (four domains, deep critical cones) that
/// stresses the bank/debank loop, "DP" a power-capped one (1-bit rich,
/// many gating groups) where the beta/gamma cost knobs must hold clock
/// power and area. Both are smaller than the D profiles so convergence
/// benches can afford several cost settings per run.
std::vector<DesignProfile> scenario_profiles();

/// The standard profiles with `factor`-times the register count (and the
/// proportional combinational budget) for scaling studies; structure per
/// register -- cluster size, width mix, logic depth, control diversity --
/// is unchanged, so a factor-F design is F small designs' worth of the same
/// fabric, not a different fabric. D1 at factor 340 is ~1M registers.
/// Names gain an "xF" suffix ("D1x100").
std::vector<DesignProfile> scaled_profiles(int factor);

struct GeneratedDesign {
  netlist::Design design;
  double calibrated_clock_period = 0.0;  // ns, hits the failing fraction
};

/// Synthesizes a placed design per `profile`. `library` must outlive the
/// returned design.
GeneratedDesign generate_design(const lib::Library& library,
                                const DesignProfile& profile);

}  // namespace mbrc::benchgen
