// Placed-netlist data model.
//
// A Design owns cells (registers, combinational gates, clock buffers, ports),
// their pins, and the nets connecting them, plus the placement (cell
// lower-left positions inside a core area), scan-chain attributes and
// clock-gating groups. It supports the incremental editing MBR composition
// needs: removing a group of registers and splicing a new multi-bit register
// into their former connectivity.
#pragma once

#include <string>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "lib/cells.hpp"
#include "lib/library.hpp"
#include "netlist/ids.hpp"
#include "util/assert.hpp"

namespace mbrc::netlist {

enum class CellKind { kRegister, kComb, kClockBuffer, kPort };

enum class PinRole {
  kD,           // register data input (per bit)
  kQ,           // register data output (per bit)
  kClock,       // register/clock-buffer clock input
  kReset,
  kSet,
  kEnable,
  kScanIn,      // per bit for per-bit-scan cells, single otherwise
  kScanOut,
  kScanEnable,
  kCombIn,
  kCombOut,
  kBufIn,       // clock buffer input
  kBufOut,
  kPort,        // top-level IO
};

struct Pin {
  CellId cell;
  NetId net;                 // invalid when unconnected
  PinRole role = PinRole::kCombIn;
  bool is_output = false;    // drives its net
  int bit = -1;              // bit index for kD/kQ/kScanIn/kScanOut
  geom::Point offset;        // relative to the cell's lower-left corner
  double cap = 0.0;          // input capacitance (fF); 0 for outputs
};

struct Net {
  PinId driver;              // invalid for undriven nets (e.g. constants)
  std::vector<PinId> sinks;  // input pins on the net
  bool is_clock = false;
};

/// Scan-chain attributes of a register (Sec. 2 scan compatibility): the
/// partition says which chains the register may be placed on; registers of an
/// ordered section must keep their relative scan order.
struct ScanInfo {
  int partition = -1;  // -1: not on any scan chain
  int section = -1;    // -1: no ordering constraint within the partition
  int order = -1;      // position within the ordered section
};

struct Cell {
  std::string name;
  CellKind kind = CellKind::kComb;
  const lib::RegisterCell* reg = nullptr;    // kind == kRegister
  const lib::CombCell* comb = nullptr;       // kind == kComb
  const lib::ClockBufferCell* buf = nullptr; // kind == kClockBuffer
  geom::Point position;                      // lower-left corner
  std::vector<PinId> pins;
  bool fixed = false;      // dont_touch: never composed or moved
  bool size_only = false;  // may be resized but not composed
  ScanInfo scan;
  int gating_group = 0;    // clock-gating enable condition id (0 = ungated)
  bool dead = false;       // tombstone left by remove_cell()

  double width() const;
  double height() const;
  double area() const;
  geom::Rect footprint() const {
    return {position.x, position.y, position.x + width(),
            position.y + height()};
  }
};

/// Aggregate counters reported by the benches (Table 1 columns).
struct DesignStats {
  std::int64_t cells = 0;           // live non-port cells
  double area = 0.0;                // um^2 of live non-port cells
  std::int64_t total_registers = 0; // every register cell counts once
  std::int64_t register_bits = 0;
  std::int64_t clock_buffers = 0;
  double clock_pin_cap = 0.0;       // fF, sum over register clock pins
};

class Design {
public:
  Design(const lib::Library* library, geom::Rect core)
      : library_(library), core_(core) {
    MBRC_ASSERT(library != nullptr);
  }

  const lib::Library& library() const { return *library_; }
  const geom::Rect& core() const { return core_; }

  // --- construction ----------------------------------------------------
  /// Adds a register instance; creates D/Q pins per bit, the clock pin,
  /// control pins per the cell's function, and scan pins per its scan style.
  CellId add_register(std::string name, const lib::RegisterCell* cell,
                      geom::Point position);
  CellId add_comb(std::string name, const lib::CombCell* cell,
                  geom::Point position);
  CellId add_clock_buffer(std::string name, const lib::ClockBufferCell* cell,
                          geom::Point position);
  CellId add_port(std::string name, bool is_input, geom::Point position);

  NetId create_net(bool is_clock = false);
  void connect(PinId pin, NetId net);
  void disconnect(PinId pin);

  /// Disconnects all pins and tombstones the cell. Ids of other entities
  /// remain stable.
  void remove_cell(CellId cell);

  /// Replaces a register's library cell with another of the same bit count,
  /// function and scan style (a sizing move): pin offsets and capacitances
  /// are updated in place, connectivity is preserved.
  void swap_register_cell(CellId cell, const lib::RegisterCell* replacement);

  // --- access ----------------------------------------------------------
  const Cell& cell(CellId id) const { return cells_[id.index]; }
  Cell& cell(CellId id) { return cells_[id.index]; }
  const Pin& pin(PinId id) const { return pins_[id.index]; }
  Pin& pin(PinId id) { return pins_[id.index]; }
  const Net& net(NetId id) const { return nets_[id.index]; }
  Net& net(NetId id) { return nets_[id.index]; }

  int cell_count() const { return static_cast<int>(cells_.size()); }
  int pin_count() const { return static_cast<int>(pins_.size()); }
  int net_count() const { return static_cast<int>(nets_.size()); }

  /// Ids of all live cells (skips tombstones).
  std::vector<CellId> live_cells() const;
  /// Ids of all live register cells.
  std::vector<CellId> registers() const;

  geom::Point pin_position(PinId id) const {
    const Pin& p = pins_[id.index];
    return cells_[p.cell.index].position + p.offset;
  }

  // --- register pin helpers ---------------------------------------------
  PinId register_d_pin(CellId cell, int bit) const;
  PinId register_q_pin(CellId cell, int bit) const;
  PinId register_clock_pin(CellId cell) const;
  /// The register's control pin of `role` (kReset/kSet/kEnable/kScanEnable),
  /// or an invalid id when the cell's function lacks it.
  PinId register_control_pin(CellId cell, PinRole role) const;
  /// Net driving the register's clock pin (invalid when unconnected).
  NetId register_clock_net(CellId cell) const;

  // --- statistics ---------------------------------------------------------
  DesignStats stats() const;

  /// Total half-perimeter wire-length split into clock nets and the rest
  /// (Table 1's two wire-length columns), in um.
  struct WireLength {
    double clock = 0.0;
    double other = 0.0;
  };
  WireLength wire_length() const;

  /// HPWL of one net (0 for nets with < 2 connected pins).
  double net_hpwl(NetId id) const;

  /// Consistency check: pins point at their cells/nets, net driver/sink
  /// lists match pin.net fields, dead cells have no connected pins. Throws
  /// util::AssertionError on violation; cheap enough to call in tests.
  void check_consistency() const;

  // --- edit journal -------------------------------------------------------
  // Incremental observers (sta::TimingEngine) stay in sync with the design
  // through two channels. Structural edits -- pins/nets created, pins
  // (dis)connected, cells removed -- bump `topology_version`; an observer
  // whose remembered version differs must rebuild its graph. Localized
  // value edits that keep the topology intact -- placement moves and
  // register sizing swaps -- append the cell to `touched_cells`; an
  // observer keeps a cursor into the journal and repairs only the cones of
  // the cells appended since its last sync.
  std::uint64_t topology_version() const { return topology_version_; }
  /// Every cell whose position or library cell changed, in edit order.
  /// Grows for the lifetime of the design (bounded by the edit count);
  /// observers index it with their own cursor.
  const std::vector<CellId>& touched_cells() const { return touched_cells_; }
  /// Records a placement move of `cell`. Anyone mutating Cell::position
  /// directly must call this, or incremental observers go stale (the
  /// legalizer does; run_sta-from-scratch users are unaffected).
  void notify_moved(CellId cell) { touched_cells_.push_back(cell); }

  // --- snapshot / rollback ------------------------------------------------
  // A Snapshot captures the full editable state (cells, pins, nets, the
  // edit journal) of this design; restore() brings the design back to it
  // bit-identically. The service's rollback request is built on this.
  //
  // Version semantics: topology_version is monotonic for the lifetime of
  // the design, across restores. restore() never rewinds it -- it bumps it
  // past every version handed out so far, even when the restored state
  // equals the current one. Observers therefore see a structural change
  // and rebuild, which is required: their journal cursors may point past
  // the end of the restored (shorter) journal.
  struct Snapshot {
    std::vector<Cell> cells;
    std::vector<Pin> pins;
    std::vector<Net> nets;
    std::uint64_t topology_version = 0;
    std::vector<CellId> touched_cells;
  };

  /// Captures the current state. O(design size); the library pointer and
  /// core are not part of the snapshot (they are immutable).
  Snapshot snapshot() const;

  /// Restores a snapshot previously taken from *this* design (the library
  /// the snapshot's cells reference must be the same object).
  void restore(const Snapshot& snapshot);

private:
  PinId add_pin(CellId cell, PinRole role, bool is_output, int bit,
                geom::Point offset, double cap);

  const lib::Library* library_;
  geom::Rect core_;
  std::vector<Cell> cells_;
  std::vector<Pin> pins_;
  std::vector<Net> nets_;
  std::uint64_t topology_version_ = 0;
  std::vector<CellId> touched_cells_;
};

}  // namespace mbrc::netlist
