// Structural Verilog writer.
//
// Emits the design as a flat gate-level module -- the interchange format
// every downstream EDA tool reads -- with one instance per live cell and
// one wire per connected net. Registers instantiate their library cell name
// with named port connections (D0..Dn-1, Q0.., CLK, RN, SN, EN, SI*, SO*,
// SE); combinational cells use A0..An-1/Y; ports become module ports.
//
// This writer is for hand-off and inspection; the round-trippable format
// (placement, scan attributes, designer constraints) is netlist/io.hpp.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/design.hpp"

namespace mbrc::netlist {

/// Writes `design` as structural Verilog to `os`.
void write_verilog(const Design& design, std::ostream& os,
                   const std::string& module_name = "mbrc_design");

/// Convenience: write to a file. Returns false when it cannot be opened.
bool write_verilog_file(const Design& design, const std::string& path,
                        const std::string& module_name = "mbrc_design");

}  // namespace mbrc::netlist
