#include "netlist/design.hpp"

#include <algorithm>

namespace mbrc::netlist {

double Cell::width() const {
  switch (kind) {
    case CellKind::kRegister: return reg->width;
    case CellKind::kComb: return comb->width;
    case CellKind::kClockBuffer: return buf->area / 1.8;
    case CellKind::kPort: return 0.0;
  }
  return 0.0;
}

double Cell::height() const {
  switch (kind) {
    case CellKind::kRegister: return reg->height;
    case CellKind::kComb: return comb->height;
    case CellKind::kClockBuffer: return 1.8;
    case CellKind::kPort: return 0.0;
  }
  return 0.0;
}

double Cell::area() const {
  switch (kind) {
    case CellKind::kRegister: return reg->area;
    case CellKind::kComb: return comb->area;
    case CellKind::kClockBuffer: return buf->area;
    case CellKind::kPort: return 0.0;
  }
  return 0.0;
}

PinId Design::add_pin(CellId cell, PinRole role, bool is_output, int bit,
                      geom::Point offset, double cap) {
  ++topology_version_;
  const PinId id{static_cast<std::int32_t>(pins_.size())};
  pins_.push_back({cell, NetId{}, role, is_output, bit, offset, cap});
  cells_[cell.index].pins.push_back(id);
  return id;
}

CellId Design::add_register(std::string name, const lib::RegisterCell* cell,
                            geom::Point position) {
  MBRC_ASSERT(cell != nullptr);
  const CellId id{static_cast<std::int32_t>(cells_.size())};
  Cell c;
  c.name = std::move(name);
  c.kind = CellKind::kRegister;
  c.reg = cell;
  c.position = position;
  cells_.push_back(std::move(c));

  for (int b = 0; b < cell->bits; ++b)
    add_pin(id, PinRole::kD, false, b, cell->d_pin_offsets[b],
            cell->data_pin_cap);
  for (int b = 0; b < cell->bits; ++b)
    add_pin(id, PinRole::kQ, true, b, cell->q_pin_offsets[b], 0.0);
  add_pin(id, PinRole::kClock, false, -1, cell->clock_pin_offset,
          cell->clock_pin_cap);

  const geom::Point ctrl{0.0, cell->height / 2};
  const double ctrl_cap = 0.6;  // fF, generic control pin
  if (cell->function.has_reset)
    add_pin(id, PinRole::kReset, false, -1, ctrl, ctrl_cap);
  if (cell->function.has_set)
    add_pin(id, PinRole::kSet, false, -1, ctrl, ctrl_cap);
  if (cell->function.has_enable)
    add_pin(id, PinRole::kEnable, false, -1, ctrl, ctrl_cap);

  if (cell->function.is_scan) {
    add_pin(id, PinRole::kScanEnable, false, -1, ctrl, ctrl_cap);
    if (cell->scan_style == lib::ScanStyle::kPerBitPins && cell->bits > 1) {
      for (int b = 0; b < cell->bits; ++b) {
        add_pin(id, PinRole::kScanIn, false, b, cell->d_pin_offsets[b],
                cell->data_pin_cap);
        add_pin(id, PinRole::kScanOut, true, b, cell->q_pin_offsets[b], 0.0);
      }
    } else {
      // Internal chain (or 1-bit): one SI at the first bit, one SO at the
      // last bit.
      add_pin(id, PinRole::kScanIn, false, 0, cell->d_pin_offsets.front(),
              cell->data_pin_cap);
      add_pin(id, PinRole::kScanOut, true, cell->bits - 1,
              cell->q_pin_offsets.back(), 0.0);
    }
  }
  return id;
}

CellId Design::add_comb(std::string name, const lib::CombCell* cell,
                        geom::Point position) {
  MBRC_ASSERT(cell != nullptr);
  const CellId id{static_cast<std::int32_t>(cells_.size())};
  Cell c;
  c.name = std::move(name);
  c.kind = CellKind::kComb;
  c.comb = cell;
  c.position = position;
  cells_.push_back(std::move(c));

  const geom::Point center{cell->width / 2, cell->height / 2};
  for (int i = 0; i < cell->fanin; ++i)
    add_pin(id, PinRole::kCombIn, false, i, center, cell->input_pin_cap);
  add_pin(id, PinRole::kCombOut, true, -1, center, 0.0);
  return id;
}

CellId Design::add_clock_buffer(std::string name,
                                const lib::ClockBufferCell* cell,
                                geom::Point position) {
  MBRC_ASSERT(cell != nullptr);
  const CellId id{static_cast<std::int32_t>(cells_.size())};
  Cell c;
  c.name = std::move(name);
  c.kind = CellKind::kClockBuffer;
  c.buf = cell;
  c.position = position;
  cells_.push_back(std::move(c));

  const geom::Point center{cell->area / 3.6, 0.9};
  add_pin(id, PinRole::kBufIn, false, -1, center, cell->input_pin_cap);
  add_pin(id, PinRole::kBufOut, true, -1, center, 0.0);
  return id;
}

CellId Design::add_port(std::string name, bool is_input,
                        geom::Point position) {
  const CellId id{static_cast<std::int32_t>(cells_.size())};
  Cell c;
  c.name = std::move(name);
  c.kind = CellKind::kPort;
  c.position = position;
  cells_.push_back(std::move(c));
  // An input port drives its net; an output port is a sink.
  add_pin(id, PinRole::kPort, is_input, -1, {0, 0}, is_input ? 0.0 : 0.4);
  return id;
}

NetId Design::create_net(bool is_clock) {
  ++topology_version_;
  const NetId id{static_cast<std::int32_t>(nets_.size())};
  Net net;
  net.is_clock = is_clock;
  nets_.push_back(std::move(net));
  return id;
}

void Design::connect(PinId pin_id, NetId net_id) {
  ++topology_version_;
  Pin& p = pins_[pin_id.index];
  MBRC_ASSERT_MSG(!p.net.valid(), "pin already connected; disconnect first");
  Net& n = nets_[net_id.index];
  if (p.is_output) {
    MBRC_ASSERT_MSG(!n.driver.valid(), "net already has a driver");
    n.driver = pin_id;
  } else {
    n.sinks.push_back(pin_id);
  }
  p.net = net_id;
}

void Design::disconnect(PinId pin_id) {
  Pin& p = pins_[pin_id.index];
  if (!p.net.valid()) return;
  ++topology_version_;
  Net& n = nets_[p.net.index];
  if (p.is_output && n.driver == pin_id) {
    n.driver = PinId{};
  } else {
    n.sinks.erase(std::remove(n.sinks.begin(), n.sinks.end(), pin_id),
                  n.sinks.end());
  }
  p.net = NetId{};
}

void Design::remove_cell(CellId cell_id) {
  Cell& c = cells_[cell_id.index];
  MBRC_ASSERT_MSG(!c.dead, "cell removed twice: " + c.name);
  for (PinId pin_id : c.pins) disconnect(pin_id);
  ++topology_version_;  // even a fully-disconnected cell leaves the graph
  c.dead = true;
}

void Design::swap_register_cell(CellId cell_id,
                                const lib::RegisterCell* replacement) {
  MBRC_ASSERT(replacement != nullptr);
  Cell& c = cells_[cell_id.index];
  MBRC_ASSERT(c.kind == CellKind::kRegister && !c.dead);
  MBRC_ASSERT_MSG(c.reg->bits == replacement->bits &&
                      c.reg->function == replacement->function &&
                      c.reg->scan_style == replacement->scan_style,
                  "swap_register_cell requires an equivalent cell");
  touched_cells_.push_back(cell_id);  // a sizing move keeps the topology
  c.reg = replacement;
  for (PinId pin_id : c.pins) {
    Pin& p = pins_[pin_id.index];
    switch (p.role) {
      case PinRole::kD:
        p.offset = replacement->d_pin_offsets[p.bit];
        p.cap = replacement->data_pin_cap;
        break;
      case PinRole::kQ:
        p.offset = replacement->q_pin_offsets[p.bit];
        break;
      case PinRole::kClock:
        p.offset = replacement->clock_pin_offset;
        p.cap = replacement->clock_pin_cap;
        break;
      case PinRole::kScanIn:
        p.offset = replacement->d_pin_offsets[p.bit];
        p.cap = replacement->data_pin_cap;
        break;
      case PinRole::kScanOut:
        p.offset = replacement->q_pin_offsets[p.bit];
        break;
      default:
        p.offset = {0.0, replacement->height / 2};
        break;
    }
  }
}

Design::Snapshot Design::snapshot() const {
  Snapshot s;
  s.cells = cells_;
  s.pins = pins_;
  s.nets = nets_;
  s.topology_version = topology_version_;
  s.touched_cells = touched_cells_;
  return s;
}

void Design::restore(const Snapshot& snapshot) {
  MBRC_ASSERT_MSG(snapshot.topology_version <= topology_version_,
                  "snapshot is from a different (or newer) design");
  cells_ = snapshot.cells;
  pins_ = snapshot.pins;
  nets_ = snapshot.nets;
  touched_cells_ = snapshot.touched_cells;
  // Monotonic bump past every version observers may have seen: rolling back
  // must read as a structural change, never as "nothing happened".
  ++topology_version_;
}

std::vector<CellId> Design::live_cells() const {
  std::vector<CellId> out;
  out.reserve(cells_.size());
  for (std::int32_t i = 0; i < cell_count(); ++i)
    if (!cells_[i].dead) out.push_back(CellId{i});
  return out;
}

std::vector<CellId> Design::registers() const {
  std::vector<CellId> out;
  for (std::int32_t i = 0; i < cell_count(); ++i)
    if (!cells_[i].dead && cells_[i].kind == CellKind::kRegister)
      out.push_back(CellId{i});
  return out;
}

namespace {

PinId find_pin(const Design& design, const Cell& cell, PinRole role, int bit) {
  for (PinId pin_id : cell.pins) {
    const Pin& p = design.pin(pin_id);
    if (p.role == role && (bit < 0 || p.bit == bit)) return pin_id;
  }
  return PinId{};
}

}  // namespace

PinId Design::register_d_pin(CellId cell_id, int bit) const {
  const Cell& c = cells_[cell_id.index];
  MBRC_ASSERT(c.kind == CellKind::kRegister && bit >= 0 && bit < c.reg->bits);
  return find_pin(*this, c, PinRole::kD, bit);
}

PinId Design::register_q_pin(CellId cell_id, int bit) const {
  const Cell& c = cells_[cell_id.index];
  MBRC_ASSERT(c.kind == CellKind::kRegister && bit >= 0 && bit < c.reg->bits);
  return find_pin(*this, c, PinRole::kQ, bit);
}

PinId Design::register_clock_pin(CellId cell_id) const {
  const Cell& c = cells_[cell_id.index];
  MBRC_ASSERT(c.kind == CellKind::kRegister);
  return find_pin(*this, c, PinRole::kClock, -1);
}

PinId Design::register_control_pin(CellId cell_id, PinRole role) const {
  const Cell& c = cells_[cell_id.index];
  MBRC_ASSERT(c.kind == CellKind::kRegister);
  return find_pin(*this, c, role, -1);
}

NetId Design::register_clock_net(CellId cell_id) const {
  const PinId clk = register_clock_pin(cell_id);
  return clk.valid() ? pins_[clk.index].net : NetId{};
}

DesignStats Design::stats() const {
  DesignStats s;
  for (const Cell& c : cells_) {
    if (c.dead || c.kind == CellKind::kPort) continue;
    ++s.cells;
    s.area += c.area();
    switch (c.kind) {
      case CellKind::kRegister:
        ++s.total_registers;
        s.register_bits += c.reg->bits;
        s.clock_pin_cap += c.reg->clock_pin_cap;
        break;
      case CellKind::kClockBuffer:
        ++s.clock_buffers;
        break;
      default:
        break;
    }
  }
  return s;
}

double Design::net_hpwl(NetId net_id) const {
  const Net& n = nets_[net_id.index];
  geom::Rect box = geom::Rect::empty();
  int pins = 0;
  if (n.driver.valid()) {
    box = box.expand(pin_position(n.driver));
    ++pins;
  }
  for (PinId s : n.sinks) {
    box = box.expand(pin_position(s));
    ++pins;
  }
  return pins >= 2 ? box.half_perimeter() : 0.0;
}

Design::WireLength Design::wire_length() const {
  WireLength wl;
  for (std::int32_t i = 0; i < net_count(); ++i) {
    const double h = net_hpwl(NetId{i});
    if (nets_[i].is_clock)
      wl.clock += h;
    else
      wl.other += h;
  }
  return wl;
}

void Design::check_consistency() const {
  for (std::int32_t i = 0; i < cell_count(); ++i) {
    const Cell& c = cells_[i];
    for (PinId pin_id : c.pins) {
      const Pin& p = pins_[pin_id.index];
      MBRC_ASSERT_MSG(p.cell == CellId{i}, "pin does not point at its cell");
      if (c.dead)
        MBRC_ASSERT_MSG(!p.net.valid(), "dead cell still connected: " + c.name);
    }
  }
  for (std::int32_t i = 0; i < net_count(); ++i) {
    const Net& n = nets_[i];
    if (n.driver.valid()) {
      const Pin& d = pins_[n.driver.index];
      MBRC_ASSERT_MSG(d.is_output && d.net == NetId{i},
                      "net driver mismatch");
    }
    for (PinId s : n.sinks) {
      const Pin& p = pins_[s.index];
      MBRC_ASSERT_MSG(!p.is_output && p.net == NetId{i}, "net sink mismatch");
    }
  }
  for (std::int32_t i = 0; i < pin_count(); ++i) {
    const Pin& p = pins_[i];
    if (!p.net.valid()) continue;
    const Net& n = nets_[p.net.index];
    if (p.is_output) {
      MBRC_ASSERT_MSG(n.driver == PinId{i}, "output pin not the net driver");
    } else {
      MBRC_ASSERT_MSG(
          std::find(n.sinks.begin(), n.sinks.end(), PinId{i}) != n.sinks.end(),
          "input pin missing from net sink list");
    }
  }
}

}  // namespace mbrc::netlist
