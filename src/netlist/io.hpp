// Plain-text serialization of a placed design.
//
// Format (line-oriented, whitespace-separated, '#' comments):
//
//   mbrc-design 1
//   core <xlo> <ylo> <xhi> <yhi>
//   cell <name> <kind> <libcell|-> <x> <y> <fixed> <size_only>
//        <scan_partition> <scan_section> <scan_order> <gating_group>
//   port <name> <in|out> <x> <y>
//   net <clock|signal> <npins> (<cell_index> <pin_ordinal>)*
//
// Cells appear in id order; nets reference cells by their index in that
// order and pins by their ordinal inside Cell::pins (stable for a given
// library). Dead cells are not written, so ids are compacted on save.
// Loading requires the same library the design was built against (cells
// are looked up by library cell name).
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/design.hpp"

namespace mbrc::netlist {

/// Writes `design` to `os`. Throws util::AssertionError on an inconsistent
/// design.
void save_design(const Design& design, std::ostream& os);

/// Convenience: save to a file. Returns false when the file cannot be
/// opened.
bool save_design_file(const Design& design, const std::string& path);

/// Reads a design written by save_design. Throws util::AssertionError on
/// malformed input or unknown library cells.
Design load_design(const lib::Library& library, std::istream& is);

/// Convenience: load from a file; throws on parse errors, returns nullopt
/// when the file cannot be opened.
std::optional<Design> load_design_file(const lib::Library& library,
                                       const std::string& path);

}  // namespace mbrc::netlist
