#include "netlist/io.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "util/assert.hpp"

namespace mbrc::netlist {

namespace {

const char* kind_name(CellKind kind) {
  switch (kind) {
    case CellKind::kRegister: return "register";
    case CellKind::kComb: return "comb";
    case CellKind::kClockBuffer: return "clkbuf";
    case CellKind::kPort: return "port";
  }
  return "?";
}

std::string library_cell_name(const Cell& cell) {
  switch (cell.kind) {
    case CellKind::kRegister: return cell.reg->name;
    case CellKind::kComb: return cell.comb->name;
    case CellKind::kClockBuffer: return cell.buf->name;
    case CellKind::kPort: return "-";
  }
  return "-";
}

}  // namespace

void save_design(const Design& design, std::ostream& os) {
  design.check_consistency();
  os.precision(17);  // round-trip-exact doubles
  os << "mbrc-design 1\n";
  const geom::Rect& core = design.core();
  os << "core " << core.xlo << ' ' << core.ylo << ' ' << core.xhi << ' '
     << core.yhi << '\n';

  // Compact live-cell ids and remember each pin's (cell, ordinal) address.
  std::unordered_map<std::int32_t, int> compact;  // CellId.index -> file idx
  std::unordered_map<std::int32_t, std::pair<int, int>> pin_address;
  const auto live = design.live_cells();
  for (std::size_t i = 0; i < live.size(); ++i) {
    const Cell& cell = design.cell(live[i]);
    compact[live[i].index] = static_cast<int>(i);
    for (std::size_t ordinal = 0; ordinal < cell.pins.size(); ++ordinal)
      pin_address[cell.pins[ordinal].index] = {static_cast<int>(i),
                                               static_cast<int>(ordinal)};
    if (cell.kind == CellKind::kPort) {
      const bool is_input = design.pin(cell.pins.front()).is_output;
      os << "port " << cell.name << ' ' << (is_input ? "in" : "out") << ' '
         << cell.position.x << ' ' << cell.position.y << '\n';
    } else {
      os << "cell " << cell.name << ' ' << kind_name(cell.kind) << ' '
         << library_cell_name(cell) << ' ' << cell.position.x << ' '
         << cell.position.y << ' ' << cell.fixed << ' ' << cell.size_only
         << ' ' << cell.scan.partition << ' ' << cell.scan.section << ' '
         << cell.scan.order << ' ' << cell.gating_group << '\n';
    }
  }

  for (std::int32_t n = 0; n < design.net_count(); ++n) {
    const Net& net = design.net(NetId{n});
    std::vector<PinId> pins;
    if (net.driver.valid()) pins.push_back(net.driver);
    for (PinId s : net.sinks) pins.push_back(s);
    if (pins.empty()) continue;  // dropped: nothing to reconnect
    os << "net " << (net.is_clock ? "clock" : "signal") << ' ' << pins.size();
    for (PinId p : pins) {
      const auto it = pin_address.find(p.index);
      MBRC_ASSERT_MSG(it != pin_address.end(),
                      "net references a pin of a dead cell");
      os << ' ' << it->second.first << ' ' << it->second.second;
    }
    os << '\n';
  }
}

bool save_design_file(const Design& design, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  save_design(design, os);
  return static_cast<bool>(os);
}

Design load_design(const lib::Library& library, std::istream& is) {
  std::string line;
  MBRC_ASSERT_MSG(std::getline(is, line) && line.rfind("mbrc-design", 0) == 0,
                  "missing mbrc-design header");

  std::optional<Design> design;
  std::vector<CellId> cells;  // by file index

  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    if (tag == "core") {
      geom::Rect core;
      ss >> core.xlo >> core.ylo >> core.xhi >> core.yhi;
      MBRC_ASSERT_MSG(ss && !core.is_empty(), "bad core line");
      design.emplace(&library, core);
    } else if (tag == "cell") {
      MBRC_ASSERT_MSG(design.has_value(), "cell before core");
      std::string name, kind, lib_name;
      geom::Point pos;
      bool fixed = false, size_only = false;
      ScanInfo scan;
      int gating = 0;
      ss >> name >> kind >> lib_name >> pos.x >> pos.y >> fixed >>
          size_only >> scan.partition >> scan.section >> scan.order >> gating;
      MBRC_ASSERT_MSG(static_cast<bool>(ss), "bad cell line: " + line);
      CellId id;
      if (kind == "register") {
        const lib::RegisterCell* cell = library.register_by_name(lib_name);
        MBRC_ASSERT_MSG(cell != nullptr, "unknown register cell " + lib_name);
        id = design->add_register(name, cell, pos);
      } else if (kind == "comb") {
        const lib::CombCell* cell = library.comb_by_name(lib_name);
        MBRC_ASSERT_MSG(cell != nullptr, "unknown comb cell " + lib_name);
        id = design->add_comb(name, cell, pos);
      } else if (kind == "clkbuf") {
        const lib::ClockBufferCell* cell = nullptr;
        for (const auto& buf : library.clock_buffers())
          if (buf.name == lib_name) cell = &buf;
        MBRC_ASSERT_MSG(cell != nullptr, "unknown clock buffer " + lib_name);
        id = design->add_clock_buffer(name, cell, pos);
      } else {
        MBRC_ASSERT_MSG(false, "unknown cell kind " + kind);
      }
      Cell& cell = design->cell(id);
      cell.fixed = fixed;
      cell.size_only = size_only;
      cell.scan = scan;
      cell.gating_group = gating;
      cells.push_back(id);
    } else if (tag == "port") {
      MBRC_ASSERT_MSG(design.has_value(), "port before core");
      std::string name, direction;
      geom::Point pos;
      ss >> name >> direction >> pos.x >> pos.y;
      MBRC_ASSERT_MSG(static_cast<bool>(ss), "bad port line: " + line);
      cells.push_back(design->add_port(name, direction == "in", pos));
    } else if (tag == "net") {
      MBRC_ASSERT_MSG(design.has_value(), "net before core");
      std::string type;
      std::size_t count = 0;
      ss >> type >> count;
      MBRC_ASSERT_MSG(static_cast<bool>(ss), "bad net line: " + line);
      const NetId net = design->create_net(type == "clock");
      for (std::size_t i = 0; i < count; ++i) {
        int cell_index = -1, ordinal = -1;
        ss >> cell_index >> ordinal;
        MBRC_ASSERT_MSG(static_cast<bool>(ss) && cell_index >= 0 &&
                            cell_index < static_cast<int>(cells.size()),
                        "bad net pin reference: " + line);
        const Cell& cell = design->cell(cells[cell_index]);
        MBRC_ASSERT_MSG(ordinal >= 0 &&
                            ordinal < static_cast<int>(cell.pins.size()),
                        "bad pin ordinal: " + line);
        design->connect(cell.pins[ordinal], net);
      }
    } else {
      MBRC_ASSERT_MSG(false, "unknown line tag " + tag);
    }
  }
  MBRC_ASSERT_MSG(design.has_value(), "file had no core line");
  design->check_consistency();
  return std::move(*design);
}

std::optional<Design> load_design_file(const lib::Library& library,
                                       const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  return load_design(library, is);
}

}  // namespace mbrc::netlist
