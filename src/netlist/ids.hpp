// Strongly-typed integer ids for netlist entities. Cells, pins and nets live
// in arena vectors inside Design; ids are indices wrapped in distinct types
// so that a PinId cannot be passed where a CellId is expected.
#pragma once

#include <cstdint>
#include <functional>

namespace mbrc::netlist {

template <class Tag>
struct Id {
  std::int32_t index = -1;

  constexpr Id() = default;
  constexpr explicit Id(std::int32_t i) : index(i) {}

  constexpr bool valid() const { return index >= 0; }
  friend constexpr bool operator==(const Id&, const Id&) = default;
  friend constexpr auto operator<=>(const Id&, const Id&) = default;
};

using CellId = Id<struct CellTag>;
using PinId = Id<struct PinTag>;
using NetId = Id<struct NetTag>;

}  // namespace mbrc::netlist

template <class Tag>
struct std::hash<mbrc::netlist::Id<Tag>> {
  std::size_t operator()(const mbrc::netlist::Id<Tag>& id) const noexcept {
    return std::hash<std::int32_t>{}(id.index);
  }
};
