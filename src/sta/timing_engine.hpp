// Persistent incremental STA engine.
//
// run_sta() rebuilds the timing graph and re-propagates every pin on every
// call; the composition flow calls it once per useful-skew iteration plus
// several more times around composition, so timing dominates the flow's
// wall time. TimingEngine amortizes that: the levelized CSR timing graph is
// built once per netlist *topology* and repeated queries are served by
// dirty-cone repair.
//
//   - A skew change on register R re-seeds R's launch arrivals and D-side
//     endpoint requirements, then re-propagates only R's fan-out cone
//     (arrivals, level order ascending) and fan-in cone (requireds,
//     descending), terminating early wherever a recomputed value equals the
//     cached one.
//   - A localized netlist edit that keeps the topology intact -- a
//     placement move or a register sizing swap -- reaches the engine
//     through the Design edit journal (Design::notify_moved /
//     swap_register_cell). The engine re-evaluates only the touched nets'
//     edge delays and repairs the cones behind the ones that changed.
//   - A structural edit (rewire, decompose, cell removal) bumps the
//     design's topology version; the next update() falls back to a full
//     rebuild, exactly run_sta's path.
//
// Determinism contract (inherited from the parallel runtime, DESIGN.md §6):
// every value is a pure max/min gather over a fixed operand set, so an
// incremental update is bit-identical to a from-scratch run_sta at any
// `jobs` count. tests/sta_incremental_test.cpp enforces this after
// randomized edit sequences.
#pragma once

#include <cstdint>
#include <vector>

#include "sta/sta.hpp"

namespace mbrc::sta {

class TimingEngine {
public:
  /// Binds the engine to `design` (which must outlive it). Nothing is
  /// built until the first update().
  TimingEngine(const netlist::Design& design, const TimingOptions& options);

  /// Brings the cached report in sync with the design and `skew` and
  /// returns it. Incremental (dirty-cone repair) when only skews changed
  /// or the design's edit journal holds topology-preserving edits; full
  /// rebuild after structural edits. The reference stays valid until the
  /// engine is destroyed but its contents mutate on the next update().
  const TimingReport& update(const SkewMap& skew = {});

  /// The report of the last update(). Invalid before the first update().
  const TimingReport& report() const { return report_; }

  const TimingOptions& options() const { return options_; }
  const netlist::Design& design() const { return design_; }

  /// Observability for tests and benches. The same quantities flow into
  /// the process-wide obs counter registry (sta.engine.*) once per
  /// update(), so traced runs and the flow report see them too.
  struct Stats {
    std::uint64_t full_builds = 0;
    std::uint64_t incremental_updates = 0;
    /// Repair visits that found the recomputed value equal to the cached
    /// one and stopped expanding the cone (cumulative).
    std::uint64_t early_stops = 0;
    /// Pins re-gathered by the last incremental repair (0 after a full
    /// build); the dirty-cone size, the engine's unit of work.
    std::size_t last_repaired_pins = 0;
  };
  const Stats& stats() const { return stats_; }

private:
  // --- delay model (identical to run_sta's; see sta.hpp header note) -----
  double register_skew(netlist::CellId cell) const;
  double driver_load(netlist::PinId driver) const;
  double wire_delay(netlist::PinId driver, netlist::PinId sink) const;
  double cell_arc_delay(netlist::PinId out) const;
  double launch_delay(netlist::PinId q_pin) const;

  // --- full build --------------------------------------------------------
  void full_build();
  void build_edges();
  void topo_and_levels();
  void seed_and_propagate();

  // --- incremental repair ------------------------------------------------
  void begin_epoch();
  void touch_cell(netlist::CellId cell);
  void touch_net(netlist::NetId net);
  void refresh_register_seeds(netlist::CellId reg);
  void apply_skew_diff(const SkewMap& skew);
  void mark_forward(std::int32_t pin);
  void mark_backward(std::int32_t pin);
  void mark_endpoint(std::int32_t pin);
  void repair_forward();
  void repair_backward();
  void refresh_endpoints();

  const netlist::Design& design_;
  const TimingOptions options_;
  SkewMap current_skew_;

  bool built_ = false;
  std::uint64_t seen_topology_ = 0;
  std::size_t journal_cursor_ = 0;

  // Levelized CSR timing graph: successor and transposed predecessor
  // adjacency with one cached delay per edge, plus cross-links so an edge's
  // delay can be updated in both views in O(1).
  std::vector<int> succ_offset_;
  std::vector<std::int32_t> succ_to_;
  std::vector<double> succ_delay_;
  std::vector<std::int32_t> succ_pred_index_;
  std::vector<int> pred_offset_;
  std::vector<std::int32_t> pred_to_;
  std::vector<double> pred_delay_;
  std::vector<std::int32_t> pred_succ_index_;
  std::vector<netlist::PinId> topo_;
  std::vector<std::int32_t> level_of_;
  std::vector<std::int32_t> by_level_;
  std::vector<std::size_t> level_begin_;

  // Per-pin propagation seeds: launch/input arrivals (kNoArrival when the
  // pin is not a source) and endpoint required times (setup; hold side is
  // kNoArrival when the pin carries no hold check).
  std::vector<double> seed_arrival_;
  std::vector<double> seed_required_;
  std::vector<double> seed_required_min_;
  std::vector<std::int32_t> endpoint_slot_;  // pin -> report_.endpoints index

  TimingReport report_;

  // Dirty tracking, epoch-stamped so nothing is cleared between updates.
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> fwd_stamp_;
  std::vector<std::uint64_t> bwd_stamp_;
  std::vector<std::uint64_t> net_stamp_;
  std::vector<std::uint64_t> ep_stamp_;
  std::vector<std::vector<std::int32_t>> fwd_bucket_;  // by level
  std::vector<std::vector<std::int32_t>> bwd_bucket_;
  std::int32_t fwd_lo_ = 0, fwd_hi_ = -1;  // touched level range
  std::int32_t bwd_lo_ = 0, bwd_hi_ = -1;
  std::vector<std::int32_t> ep_marks_;

  Stats stats_;
};

}  // namespace mbrc::sta
