// Useful-skew assignment (Fishburn-style iterative relaxation).
//
// Each register gets a clock arrival offset. Shifting a register's clock
// later by `s` improves the slack of paths ending at its D pins by `+s` and
// degrades the slack of paths launched from its Q pins by `-s`; the iteration
// therefore moves every register's skew toward the point that balances its
// worst D-side and Q-side slacks, re-running STA between passes.
//
// In the paper's flow (Fig. 4), useful skew is applied after MBR composition;
// because composition only merged timing-compatible registers (similar D/Q
// slacks), a single offset per MBR still fits every merged bit -- that is
// precisely the property the timing-compatibility rule protects.
#pragma once

#include <optional>
#include <unordered_set>

#include "sta/sta.hpp"

namespace mbrc::sta {

class TimingEngine;

struct UsefulSkewOptions {
  int iterations = 8;
  double max_abs_skew = 0.25;  // ns, |skew| bound per register
  double damping = 0.7;        // fraction of the balancing step applied
  /// Hold protection: each step consumes at most half of the relevant hold
  /// slack minus this margin (ns). Both ends of a min-path may move in the
  /// same iteration, so a full-budget step could overshoot; halving makes
  /// the combined move safe and the iteration re-splits what remains.
  double hold_margin = 0.005;
};

struct UsefulSkewResult {
  SkewMap skew;
  TimingReport report;  // STA with the final skews
  int iterations_run = 0;
};

/// Optimizes per-register skews starting from `initial`. When `allowed` is
/// non-null, only those registers may receive a (new) skew; others keep
/// their initial value.
///
/// The per-iteration STA runs through `engine` when one is supplied (it
/// must be bound to `design`); each pass then costs only a dirty-cone
/// repair of the registers whose skew moved, and the engine stays warm for
/// the caller's next query. Without an engine a private one is used, so the
/// loop is still one full build + N incremental repairs. Results are
/// bit-identical either way.
UsefulSkewResult optimize_useful_skew(
    const netlist::Design& design, const TimingOptions& timing,
    const UsefulSkewOptions& options, const SkewMap& initial = {},
    const std::unordered_set<netlist::CellId>* allowed = nullptr,
    TimingEngine* engine = nullptr);

}  // namespace mbrc::sta
