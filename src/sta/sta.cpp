#include "sta/sta.hpp"

#include <algorithm>

#include "sta/timing_engine.hpp"

namespace mbrc::sta {

double TimingReport::wns() const {
  double w = 0.0;
  for (const EndpointSlack& e : endpoints) w = std::min(w, e.slack);
  return w;
}

double TimingReport::tns() const {
  double t = 0.0;
  for (const EndpointSlack& e : endpoints)
    if (e.slack < 0) t += e.slack;
  return t;
}

int TimingReport::failing_endpoints() const {
  int n = 0;
  for (const EndpointSlack& e : endpoints)
    if (e.slack < 0) ++n;
  return n;
}

double TimingReport::hold_wns() const {
  double w = 0.0;
  for (const EndpointSlack& e : endpoints)
    if (e.hold_slack != kNoRequired) w = std::min(w, e.hold_slack);
  return w;
}

int TimingReport::failing_hold_endpoints() const {
  int n = 0;
  for (const EndpointSlack& e : endpoints)
    if (e.hold_slack != kNoRequired && e.hold_slack < 0) ++n;
  return n;
}

double TimingReport::register_d_hold_slack(const netlist::Design& design,
                                           netlist::CellId reg) const {
  const netlist::Cell& cell = design.cell(reg);
  double worst = kNoRequired;
  for (netlist::PinId pin_id : cell.pins) {
    const netlist::Pin& p = design.pin(pin_id);
    if ((p.role == netlist::PinRole::kD ||
         p.role == netlist::PinRole::kScanIn) &&
        p.net.valid())
      worst = std::min(worst, hold_slack(pin_id));
  }
  return worst;
}

double TimingReport::register_q_hold_slack(const netlist::Design& design,
                                           netlist::CellId reg) const {
  const netlist::Cell& cell = design.cell(reg);
  double worst = kNoRequired;
  for (netlist::PinId pin_id : cell.pins) {
    const netlist::Pin& p = design.pin(pin_id);
    if ((p.role == netlist::PinRole::kQ ||
         p.role == netlist::PinRole::kScanOut) &&
        p.net.valid())
      worst = std::min(worst, hold_slack(pin_id));
  }
  return worst;
}

double TimingReport::register_d_slack(const netlist::Design& design,
                                      netlist::CellId reg) const {
  const netlist::Cell& cell = design.cell(reg);
  double worst = kNoRequired;
  for (netlist::PinId pin_id : cell.pins) {
    const netlist::Pin& p = design.pin(pin_id);
    if ((p.role == netlist::PinRole::kD || p.role == netlist::PinRole::kScanIn) &&
        p.net.valid())
      worst = std::min(worst, slack(pin_id));
  }
  return worst;
}

double TimingReport::register_q_slack(const netlist::Design& design,
                                      netlist::CellId reg) const {
  const netlist::Cell& cell = design.cell(reg);
  double worst = kNoRequired;
  for (netlist::PinId pin_id : cell.pins) {
    const netlist::Pin& p = design.pin(pin_id);
    if ((p.role == netlist::PinRole::kQ || p.role == netlist::PinRole::kScanOut) &&
        p.net.valid())
      worst = std::min(worst, slack(pin_id));
  }
  return worst;
}

// One-shot oracle: a throwaway TimingEngine doing one full build + one
// propagation. Persistent callers hold a TimingEngine instead and get
// dirty-cone repair; the results are bit-identical either way (the engine
// computes every value as a max/min gather over the same operand sets at
// any jobs count -- see timing_engine.hpp).
TimingReport run_sta(const netlist::Design& design,
                     const TimingOptions& options, const SkewMap& skew) {
  TimingEngine engine(design, options);
  return engine.update(skew);
}

}  // namespace mbrc::sta
