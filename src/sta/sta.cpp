#include "sta/sta.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "runtime/thread_pool.hpp"
#include "util/assert.hpp"

namespace mbrc::sta {

namespace {

using netlist::CellId;
using netlist::CellKind;
using netlist::Design;
using netlist::NetId;
using netlist::Pin;
using netlist::PinId;
using netlist::PinRole;

// kOhm * fF = ps; delays are kept in ns.
constexpr double kNsPerKohmFf = 1e-3;

// Pins per parallel_for task in the propagation passes: a gather is a few
// dozen flops per pin, so batch enough of them to amortize scheduling.
constexpr std::size_t kLevelGrain = 256;

bool is_launch_role(PinRole role) {
  return role == PinRole::kQ || role == PinRole::kScanOut;
}
bool is_endpoint_role(PinRole role) {
  return role == PinRole::kD || role == PinRole::kScanIn;
}

struct Analyzer {
  const Design& design;
  const TimingOptions& options;
  const SkewMap& skew;

  std::vector<double> arrival;
  std::vector<double> arrival_min;
  std::vector<double> required;
  std::vector<int> indegree;
  std::vector<PinId> topo;

  // Parallel-path state: the timing graph cached in CSR form (successor and
  // transposed predecessor adjacency, edge delays computed once) plus the
  // pins grouped by level (longest edge distance from a source). Every edge
  // goes from a lower level to a strictly higher one, so all pins of one
  // level can be relaxed concurrently with a pure gather.
  std::vector<int> succ_offset;
  std::vector<std::int32_t> succ_to;
  std::vector<double> succ_delay;
  std::vector<int> pred_offset;
  std::vector<std::int32_t> pred_to;
  std::vector<double> pred_delay;
  std::vector<std::int32_t> by_level;
  std::vector<std::size_t> level_begin;  // level -> first index in by_level

  Analyzer(const Design& d, const TimingOptions& o, const SkewMap& s)
      : design(d), options(o), skew(s) {}

  double register_skew(CellId cell) const {
    const auto it = skew.find(cell);
    return it == skew.end() ? 0.0 : it->second;
  }

  // Total capacitive load a driver pin sees: connected sink pin caps plus
  // distributed wire cap over the net's HPWL.
  double driver_load(PinId driver) const {
    const Pin& p = design.pin(driver);
    if (!p.net.valid()) return 0.0;
    double load = design.net_hpwl(p.net) * options.wire_cap_per_um;
    for (PinId s : design.net(p.net).sinks) load += design.pin(s).cap;
    return load;
  }

  // Elmore wire delay from driver to one sink on the same net.
  double wire_delay(PinId driver, PinId sink) const {
    const double len =
        geom::manhattan(design.pin_position(driver), design.pin_position(sink));
    const double r = options.wire_res_per_um * len;
    const double c = options.wire_cap_per_um * len;
    return r * (c / 2 + design.pin(sink).cap) * kNsPerKohmFf;
  }

  // Delay of the cell arc ending at output pin `out` (comb input -> output or
  // clock buffer in -> out). Register clk->Q launch delay is handled at the
  // launch initialization.
  double cell_arc_delay(PinId out) const {
    const Pin& p = design.pin(out);
    const netlist::Cell& cell = design.cell(p.cell);
    double intrinsic = 0.0;
    double resistance = 0.0;
    switch (cell.kind) {
      case CellKind::kComb:
        intrinsic = cell.comb->intrinsic_delay;
        resistance = cell.comb->drive_resistance;
        break;
      case CellKind::kClockBuffer:
        intrinsic = cell.buf->intrinsic_delay;
        resistance = cell.buf->drive_resistance;
        break;
      default:
        return 0.0;
    }
    return intrinsic + resistance * driver_load(out) * kNsPerKohmFf;
  }

  double launch_delay(PinId q_pin) const {
    const Pin& p = design.pin(q_pin);
    const netlist::Cell& cell = design.cell(p.cell);
    return cell.reg->intrinsic_delay +
           cell.reg->drive_resistance * driver_load(q_pin) * kNsPerKohmFf;
  }

  // Data-graph successors of a pin, passed to `fn(PinId succ, double delay)`.
  template <class Fn>
  void for_each_successor(PinId pin_id, Fn&& fn) const {
    const Pin& p = design.pin(pin_id);
    if (p.is_output) {
      if (!p.net.valid() || design.net(p.net).is_clock) return;
      for (PinId s : design.net(p.net).sinks)
        fn(s, wire_delay(pin_id, s));
      return;
    }
    // Input pin: arcs to the output pin(s) of the same cell.
    const netlist::Cell& cell = design.cell(p.cell);
    switch (cell.kind) {
      case CellKind::kComb:
        if (p.role == PinRole::kCombIn) {
          for (PinId out : cell.pins)
            if (design.pin(out).role == PinRole::kCombOut)
              fn(out, cell_arc_delay(out));
        }
        break;
      case CellKind::kClockBuffer:
        if (p.role == PinRole::kBufIn) {
          for (PinId out : cell.pins)
            if (design.pin(out).role == PinRole::kBufOut)
              fn(out, cell_arc_delay(out));
        }
        break;
      default:
        break;  // register inputs and ports are endpoints: no data arcs out
    }
  }

  // Successor count of a pin without evaluating arc delays (mirrors
  // for_each_successor's structure; used to size the CSR arrays).
  int successor_count(PinId pin_id) const {
    const Pin& p = design.pin(pin_id);
    if (p.is_output) {
      if (!p.net.valid() || design.net(p.net).is_clock) return 0;
      return static_cast<int>(design.net(p.net).sinks.size());
    }
    const netlist::Cell& cell = design.cell(p.cell);
    int count = 0;
    switch (cell.kind) {
      case CellKind::kComb:
        if (p.role == PinRole::kCombIn)
          for (PinId out : cell.pins)
            if (design.pin(out).role == PinRole::kCombOut) ++count;
        break;
      case CellKind::kClockBuffer:
        if (p.role == PinRole::kBufIn)
          for (PinId out : cell.pins)
            if (design.pin(out).role == PinRole::kBufOut) ++count;
        break;
      default:
        break;
    }
    return count;
  }

  void topological_sort() {
    const int n = design.pin_count();
    indegree.assign(n, 0);
    for (std::int32_t i = 0; i < n; ++i) {
      const PinId pin{i};
      if (design.cell(design.pin(pin).cell).dead) continue;
      for_each_successor(pin, [&](PinId succ, double) {
        ++indegree[succ.index];
      });
    }
    topo.clear();
    topo.reserve(n);
    std::vector<PinId> queue;
    for (std::int32_t i = 0; i < n; ++i)
      if (indegree[i] == 0 && !design.cell(design.pin(PinId{i}).cell).dead)
        queue.push_back(PinId{i});
    std::size_t head = 0;
    std::vector<PinId> work = std::move(queue);
    while (head < work.size()) {
      const PinId pin = work[head++];
      topo.push_back(pin);
      for_each_successor(pin, [&](PinId succ, double) {
        if (--indegree[succ.index] == 0) work.push_back(succ);
      });
    }
    int live_pins = 0;
    for (std::int32_t i = 0; i < n; ++i)
      if (!design.cell(design.pin(PinId{i}).cell).dead) ++live_pins;
    MBRC_ASSERT_MSG(static_cast<int>(topo.size()) == live_pins,
                    "combinational cycle in design");
  }

  // Builds the successor CSR (one delay evaluation per edge) and its
  // transpose. Only live pins contribute edges, matching the serial pass.
  void build_edges() {
    const int n = design.pin_count();
    succ_offset.assign(static_cast<std::size_t>(n) + 1, 0);
    for (std::int32_t i = 0; i < n; ++i) {
      const PinId pin{i};
      if (design.cell(design.pin(pin).cell).dead) continue;
      succ_offset[static_cast<std::size_t>(i) + 1] = successor_count(pin);
    }
    for (int i = 0; i < n; ++i) succ_offset[i + 1] += succ_offset[i];
    const std::size_t edges = static_cast<std::size_t>(succ_offset[n]);
    succ_to.resize(edges);
    succ_delay.resize(edges);
    std::vector<int> cursor(succ_offset.begin(), succ_offset.end() - 1);
    for (std::int32_t i = 0; i < n; ++i) {
      const PinId pin{i};
      if (design.cell(design.pin(pin).cell).dead) continue;
      for_each_successor(pin, [&](PinId succ, double delay) {
        const int at = cursor[i]++;
        succ_to[at] = succ.index;
        succ_delay[at] = delay;
      });
    }

    pred_offset.assign(static_cast<std::size_t>(n) + 1, 0);
    for (std::size_t e = 0; e < edges; ++e)
      ++pred_offset[static_cast<std::size_t>(succ_to[e]) + 1];
    for (int i = 0; i < n; ++i) pred_offset[i + 1] += pred_offset[i];
    pred_to.resize(edges);
    pred_delay.resize(edges);
    cursor.assign(pred_offset.begin(), pred_offset.end() - 1);
    for (std::int32_t i = 0; i < n; ++i) {
      for (int e = succ_offset[i]; e < succ_offset[i + 1]; ++e) {
        const int at = cursor[succ_to[e]]++;
        pred_to[at] = i;
        pred_delay[at] = succ_delay[e];
      }
    }
  }

  // Kahn's algorithm over the cached CSR; produces the same `topo` order as
  // topological_sort() plus the level grouping for the parallel passes.
  void topo_and_levels() {
    const int n = design.pin_count();
    indegree.assign(n, 0);
    for (std::int32_t i = 0; i < n; ++i)
      indegree[i] = pred_offset[i + 1] - pred_offset[i];
    std::vector<int> level(n, 0);
    topo.clear();
    topo.reserve(n);
    std::vector<PinId> work;
    for (std::int32_t i = 0; i < n; ++i)
      if (indegree[i] == 0 && !design.cell(design.pin(PinId{i}).cell).dead)
        work.push_back(PinId{i});
    std::size_t head = 0;
    int max_level = 0;
    while (head < work.size()) {
      const PinId pin = work[head++];
      topo.push_back(pin);
      const int next_level = level[pin.index] + 1;
      for (int e = succ_offset[pin.index]; e < succ_offset[pin.index + 1];
           ++e) {
        const std::int32_t succ = succ_to[e];
        level[succ] = std::max(level[succ], next_level);
        max_level = std::max(max_level, level[succ]);
        if (--indegree[succ] == 0) work.push_back(PinId{succ});
      }
    }
    int live_pins = 0;
    for (std::int32_t i = 0; i < n; ++i)
      if (!design.cell(design.pin(PinId{i}).cell).dead) ++live_pins;
    MBRC_ASSERT_MSG(static_cast<int>(topo.size()) == live_pins,
                    "combinational cycle in design");

    // Counting sort of `topo` by level (stable within a level).
    std::vector<std::size_t> bucket(static_cast<std::size_t>(max_level) + 2,
                                    0);
    for (const PinId pin : topo) ++bucket[level[pin.index] + 1];
    for (std::size_t l = 1; l < bucket.size(); ++l) bucket[l] += bucket[l - 1];
    level_begin = bucket;  // bucket[l] = first slot of level l after shift
    by_level.resize(topo.size());
    for (const PinId pin : topo)
      by_level[bucket[level[pin.index]]++] = pin.index;
  }

  // Launch initialization. Launch timing is single-arc here, so the min
  // and max launch arrivals coincide.
  void init_launch_arrivals() {
    for (const PinId pin_id : topo) {
      const Pin& p = design.pin(pin_id);
      const netlist::Cell& cell = design.cell(p.cell);
      if (cell.kind == CellKind::kRegister && is_launch_role(p.role)) {
        arrival[pin_id.index] = register_skew(p.cell) + launch_delay(pin_id);
        arrival_min[pin_id.index] = arrival[pin_id.index];
      } else if (cell.kind == CellKind::kPort && p.is_output) {
        arrival[pin_id.index] = options.input_delay;
        arrival_min[pin_id.index] = options.input_delay;
      }
    }
  }

  // Endpoint required times and slacks (setup + hold), plus the hold-side
  // requirements that seed the backward min pass. Reads the final arrival
  // arrays; identical between the serial and parallel paths.
  std::vector<double> collect_endpoints(TimingReport& report) {
    for (const PinId pin_id : topo) {
      const Pin& p = design.pin(pin_id);
      const netlist::Cell& cell = design.cell(p.cell);
      double req = kNoRequired;
      double hold_req = kNoRequired;
      if (cell.kind == CellKind::kRegister && is_endpoint_role(p.role)) {
        if (p.net.valid()) {
          req = options.clock_period + register_skew(p.cell) -
                cell.reg->setup_time;
          hold_req = register_skew(p.cell) + cell.reg->hold_time;
        }
      } else if (cell.kind == CellKind::kPort && !p.is_output) {
        if (p.net.valid())
          req = options.clock_period - options.output_margin;
      }
      if (req != kNoRequired) {
        required[pin_id.index] = req;
        if (arrival[pin_id.index] != kNoArrival) {
          EndpointSlack ep;
          ep.pin = pin_id;
          ep.slack = req - arrival[pin_id.index];
          ep.hold_slack = (hold_req != kNoRequired &&
                           arrival_min[pin_id.index] != kNoRequired)
                              ? arrival_min[pin_id.index] - hold_req
                              : kNoRequired;
          report.endpoints.push_back(ep);
        }
      }
    }

    // Hold-side endpoint requirements feed the backward min pass.
    std::vector<double> req_min(design.pin_count(), kNoArrival);
    for (const EndpointSlack& ep : report.endpoints) {
      if (ep.hold_slack == kNoRequired) continue;
      // Reconstruct the endpoint's hold requirement from its slack.
      req_min[ep.pin.index] = arrival_min[ep.pin.index] - ep.hold_slack;
    }
    return req_min;
  }

  TimingReport run() {
    topological_sort();
    const int n = design.pin_count();
    arrival.assign(n, kNoArrival);
    arrival_min.assign(n, kNoRequired);  // +inf = unreachable for min pass
    required.assign(n, kNoRequired);

    init_launch_arrivals();

    // Forward propagation: latest (setup) and earliest (hold) arrivals.
    for (const PinId pin_id : topo) {
      const double a = arrival[pin_id.index];
      const double a_min = arrival_min[pin_id.index];
      for_each_successor(pin_id, [&](PinId succ, double delay) {
        if (a != kNoArrival)
          arrival[succ.index] = std::max(arrival[succ.index], a + delay);
        if (a_min != kNoRequired)
          arrival_min[succ.index] =
              std::min(arrival_min[succ.index], a_min + delay);
      });
    }

    TimingReport report;
    std::vector<double> req_min = collect_endpoints(report);

    // Backward propagation of required times (setup: min; hold: max).
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const PinId pin_id = *it;
      for_each_successor(pin_id, [&](PinId succ, double delay) {
        if (required[succ.index] != kNoRequired)
          required[pin_id.index] =
              std::min(required[pin_id.index], required[succ.index] - delay);
        if (req_min[succ.index] != kNoArrival)
          req_min[pin_id.index] =
              std::max(req_min[pin_id.index], req_min[succ.index] - delay);
      });
    }
    report.required_min = std::move(req_min);

    report.arrival = std::move(arrival);
    report.arrival_min = std::move(arrival_min);
    report.required = std::move(required);
    return report;
  }

  // Parallel path: identical results to run() at any thread count. The
  // scatter loops become per-level gathers -- each pin's value is a max/min
  // over the same operand set the serial pass folds in, and floating-point
  // max/min are order-independent, so the arrays match bit for bit.
  TimingReport run_parallel(runtime::ThreadPool& pool, int jobs) {
    build_edges();
    topo_and_levels();
    const int n = design.pin_count();
    arrival.assign(n, kNoArrival);
    arrival_min.assign(n, kNoRequired);
    required.assign(n, kNoRequired);

    init_launch_arrivals();

    const std::size_t levels = level_begin.empty() ? 0 : level_begin.size() - 1;
    for (std::size_t l = 0; l < levels; ++l) {
      const std::size_t lo = level_begin[l];
      const std::size_t hi = level_begin[l + 1];
      runtime::parallel_for(&pool, jobs, hi - lo, kLevelGrain,
                            [&](std::size_t k) {
        const std::int32_t pin = by_level[lo + k];
        double a = arrival[pin];
        double a_min = arrival_min[pin];
        for (int e = pred_offset[pin]; e < pred_offset[pin + 1]; ++e) {
          const double pa = arrival[pred_to[e]];
          if (pa != kNoArrival) a = std::max(a, pa + pred_delay[e]);
          const double pa_min = arrival_min[pred_to[e]];
          if (pa_min != kNoRequired)
            a_min = std::min(a_min, pa_min + pred_delay[e]);
        }
        arrival[pin] = a;
        arrival_min[pin] = a_min;
      });
    }

    TimingReport report;
    std::vector<double> req_min = collect_endpoints(report);

    for (std::size_t l = levels; l-- > 0;) {
      const std::size_t lo = level_begin[l];
      const std::size_t hi = level_begin[l + 1];
      runtime::parallel_for(&pool, jobs, hi - lo, kLevelGrain,
                            [&](std::size_t k) {
        const std::int32_t pin = by_level[lo + k];
        double r = required[pin];
        double r_min = req_min[pin];
        for (int e = succ_offset[pin]; e < succ_offset[pin + 1]; ++e) {
          const std::int32_t succ = succ_to[e];
          if (required[succ] != kNoRequired)
            r = std::min(r, required[succ] - succ_delay[e]);
          if (req_min[succ] != kNoArrival)
            r_min = std::max(r_min, req_min[succ] - succ_delay[e]);
        }
        required[pin] = r;
        req_min[pin] = r_min;
      });
    }
    report.required_min = std::move(req_min);

    report.arrival = std::move(arrival);
    report.arrival_min = std::move(arrival_min);
    report.required = std::move(required);
    return report;
  }
};

}  // namespace

double TimingReport::wns() const {
  double w = 0.0;
  for (const EndpointSlack& e : endpoints) w = std::min(w, e.slack);
  return w;
}

double TimingReport::tns() const {
  double t = 0.0;
  for (const EndpointSlack& e : endpoints)
    if (e.slack < 0) t += e.slack;
  return t;
}

int TimingReport::failing_endpoints() const {
  int n = 0;
  for (const EndpointSlack& e : endpoints)
    if (e.slack < 0) ++n;
  return n;
}

double TimingReport::hold_wns() const {
  double w = 0.0;
  for (const EndpointSlack& e : endpoints)
    if (e.hold_slack != kNoRequired) w = std::min(w, e.hold_slack);
  return w;
}

int TimingReport::failing_hold_endpoints() const {
  int n = 0;
  for (const EndpointSlack& e : endpoints)
    if (e.hold_slack != kNoRequired && e.hold_slack < 0) ++n;
  return n;
}

double TimingReport::register_d_hold_slack(const netlist::Design& design,
                                           netlist::CellId reg) const {
  const netlist::Cell& cell = design.cell(reg);
  double worst = kNoRequired;
  for (netlist::PinId pin_id : cell.pins) {
    const netlist::Pin& p = design.pin(pin_id);
    if ((p.role == netlist::PinRole::kD ||
         p.role == netlist::PinRole::kScanIn) &&
        p.net.valid())
      worst = std::min(worst, hold_slack(pin_id));
  }
  return worst;
}

double TimingReport::register_q_hold_slack(const netlist::Design& design,
                                           netlist::CellId reg) const {
  const netlist::Cell& cell = design.cell(reg);
  double worst = kNoRequired;
  for (netlist::PinId pin_id : cell.pins) {
    const netlist::Pin& p = design.pin(pin_id);
    if ((p.role == netlist::PinRole::kQ ||
         p.role == netlist::PinRole::kScanOut) &&
        p.net.valid())
      worst = std::min(worst, hold_slack(pin_id));
  }
  return worst;
}

double TimingReport::register_d_slack(const netlist::Design& design,
                                      netlist::CellId reg) const {
  const netlist::Cell& cell = design.cell(reg);
  double worst = kNoRequired;
  for (netlist::PinId pin_id : cell.pins) {
    const netlist::Pin& p = design.pin(pin_id);
    if ((p.role == netlist::PinRole::kD || p.role == netlist::PinRole::kScanIn) &&
        p.net.valid())
      worst = std::min(worst, slack(pin_id));
  }
  return worst;
}

double TimingReport::register_q_slack(const netlist::Design& design,
                                      netlist::CellId reg) const {
  const netlist::Cell& cell = design.cell(reg);
  double worst = kNoRequired;
  for (netlist::PinId pin_id : cell.pins) {
    const netlist::Pin& p = design.pin(pin_id);
    if ((p.role == netlist::PinRole::kQ || p.role == netlist::PinRole::kScanOut) &&
        p.net.valid())
      worst = std::min(worst, slack(pin_id));
  }
  return worst;
}

TimingReport run_sta(const netlist::Design& design,
                     const TimingOptions& options, const SkewMap& skew) {
  Analyzer analyzer(design, options, skew);
  if (options.jobs > 1)
    return analyzer.run_parallel(runtime::ThreadPool::global(), options.jobs);
  return analyzer.run();
}

}  // namespace mbrc::sta
