#include "sta/feasible_region.hpp"

#include <algorithm>

namespace mbrc::sta {

double slack_to_distance(double slack, const FeasibleRegionOptions& options) {
  if (slack == kNoRequired) return options.max_radius;  // unconstrained pin
  if (slack <= 0) return 0.0;
  return std::min(options.max_radius, slack / options.delay_per_um);
}

geom::Rect timing_feasible_region(const netlist::Design& design,
                                  const TimingReport& report,
                                  netlist::CellId reg,
                                  const FeasibleRegionOptions& options) {
  const netlist::Cell& cell = design.cell(reg);
  geom::Rect region = geom::Rect::universe();
  bool constrained = false;

  // Useful-skew balancing: one clock offset can shift slack between the D
  // and Q sides, so the budget both sides can rely on is their mean.
  double balanced = kNoRequired;
  if (options.skew_balanced) {
    const double d = report.register_d_slack(design, reg);
    const double q = report.register_q_slack(design, reg);
    if (d != kNoRequired && q != kNoRequired) balanced = (d + q) / 2;
  }

  for (netlist::PinId pin_id : cell.pins) {
    const netlist::Pin& p = design.pin(pin_id);
    const bool is_data =
        p.role == netlist::PinRole::kD || p.role == netlist::PinRole::kQ ||
        p.role == netlist::PinRole::kScanIn ||
        p.role == netlist::PinRole::kScanOut;
    if (!is_data || !p.net.valid()) continue;

    // Bounding box of the net's *other* pins: moving this pin inside it is
    // HPWL-neutral, so it cannot lengthen the wire and degrade timing --
    // this is the Sec. 2 rule that keeps negative-slack registers inside
    // compatibility checking. Positive slack additionally licenses a detour
    // of the equivalent distance outside the box.
    geom::Rect others = geom::Rect::empty();
    const netlist::Net& net = design.net(p.net);
    if (net.driver.valid() && net.driver != pin_id)
      others = others.expand(design.pin_position(net.driver));
    for (netlist::PinId s : net.sinks)
      if (s != pin_id) others = others.expand(design.pin_position(s));
    if (others.is_empty()) continue;  // single-pin net: unconstrained

    double slack = report.slack(pin_id);
    if (balanced != kNoRequired && slack != kNoRequired)
      slack = std::max(slack, balanced);
    const double radius = slack_to_distance(slack, options);
    region = region.intersect(others.inflate(radius));
    constrained = true;
  }

  if (!constrained) {
    // No connected data pins: the register can sit anywhere timing-wise;
    // give it a generous region around its current spot.
    region = cell.footprint().inflate(options.max_radius);
  }

  // The current location is always feasible (the register is already
  // there); keep the footprint inside the region so every register's region
  // is non-empty and contains itself.
  region = region.unite(cell.footprint());
  return region.intersect(design.core());
}

}  // namespace mbrc::sta
