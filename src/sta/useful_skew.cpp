#include "sta/useful_skew.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/counters.hpp"
#include "sta/timing_engine.hpp"
#include "util/assert.hpp"

namespace mbrc::sta {

namespace {

// Sign conventions (see run_sta): increasing a register's skew by ds
//   - raises its D-endpoint required time      -> D slack changes by +ds,
//   - raises its Q launch arrival              -> Q-side slack changes by -ds.
// The balancing step equalizes a failing side against the other, but is
// clamped so it never drives a currently-passing side negative: useful skew
// must not create new violations while fixing old ones (the paper's flow
// uses it strictly to improve the worst slack of each new MBR).
double desired_step(double d_slack, double q_slack) {
  const bool has_d = d_slack != kNoRequired;
  const bool has_q = q_slack != kNoRequired;
  if (has_d && has_q) {
    if (d_slack >= 0 && q_slack >= 0) return 0.0;  // nothing to fix
    const double balance = (q_slack - d_slack) / 2;
    if (d_slack < 0 && q_slack > 0)
      return std::min(balance, q_slack);   // don't push Q below zero
    if (q_slack < 0 && d_slack > 0)
      return std::max(balance, -d_slack);  // don't push D below zero
    return balance;  // both failing: split the misery (improves WNS)
  }
  if (has_d) return d_slack < 0 ? -d_slack : 0.0;  // capture-only register
  if (has_q) return q_slack < 0 ? q_slack : 0.0;   // launch-only register
  return 0.0;
}

}  // namespace

UsefulSkewResult optimize_useful_skew(
    const netlist::Design& design, const TimingOptions& timing,
    const UsefulSkewOptions& options, const SkewMap& initial,
    const std::unordered_set<netlist::CellId>* allowed,
    TimingEngine* engine) {
  UsefulSkewResult result;
  result.skew = initial;

  // The iteration's STA is one full build followed by per-pass dirty-cone
  // repairs: only the cones of registers whose skew moved are recomputed.
  std::optional<TimingEngine> local;
  if (engine == nullptr) {
    local.emplace(design, timing);
    engine = &*local;
  }
  MBRC_ASSERT_MSG(&engine->design() == &design,
                  "useful skew engine bound to a different design");

  const auto registers = design.registers();
  const TimingReport* report = &engine->update(result.skew);

  for (int iter = 0; iter < options.iterations; ++iter) {
    bool changed = false;
    for (netlist::CellId reg : registers) {
      if (allowed && !allowed->contains(reg)) continue;
      const double d_slack = report->register_d_slack(design, reg);
      const double q_slack = report->register_q_slack(design, reg);
      double step = options.damping * desired_step(d_slack, q_slack);
      // Hold awareness: shifting the clock later raises this register's own
      // hold requirement (clamp by its D-side hold slack); shifting it
      // earlier launches min-paths earlier into the downstream captures
      // (clamp by the Q-side hold slack). Never *create* hold violations.
      if (step > 0) {
        const double d_hold = report->register_d_hold_slack(design, reg);
        if (d_hold != kNoRequired)
          step = std::min(
              step, std::max(0.0, (d_hold - options.hold_margin) / 2));
      } else if (step < 0) {
        const double q_hold = report->register_q_hold_slack(design, reg);
        if (q_hold != kNoRequired)
          step = std::max(
              step, -std::max(0.0, (q_hold - options.hold_margin) / 2));
      }
      if (std::abs(step) < 1e-9) continue;
      const double before =
          result.skew.contains(reg) ? result.skew.at(reg) : 0.0;
      const double after = std::clamp(before + step, -options.max_abs_skew,
                                      options.max_abs_skew);
      if (std::abs(after - before) > 1e-9) {
        result.skew[reg] = after;
        changed = true;
      }
    }
    ++result.iterations_run;
    if (!changed) break;
    report = &engine->update(result.skew);
  }

  result.report = *report;

  static obs::Counter& c_calls = obs::counter("sta.useful_skew.calls");
  static obs::Counter& c_iters = obs::counter("sta.useful_skew.iterations");
  c_calls.add(1);
  c_iters.add(static_cast<std::int64_t>(result.iterations_run));
  return result;
}

}  // namespace mbrc::sta
