// Timing-feasible placement regions (Sec. 2, placement compatibility).
//
// Per connected D/Q pin: the bounding box of the net's other pins is always
// feasible (moving the pin inside it is HPWL-neutral, so it cannot lengthen
// the wire), and positive slack additionally licenses a detour of the
// slack-equivalent Manhattan distance outside that box. The register's
// region is the intersection over its data pins, united with its own
// footprint (its current location is trivially feasible) -- this keeps
// negative-slack registers inside compatibility checking, exactly the
// paper's rule ("the intersection of the bounding boxes of the violating
// pins with the feasible regions of the rest of the D and Q pins").
// The union is taken as a bounding box, a mild over-approximation; final
// timing is re-verified by the flow's closing STA.
#pragma once

#include "geom/rect.hpp"
#include "netlist/design.hpp"
#include "sta/sta.hpp"

namespace mbrc::sta {

struct FeasibleRegionOptions {
  /// Use the useful-skew-balanced slack, (d_slack + q_slack) / 2, as each
  /// data pin's movement budget when both sides are constrained. The paper
  /// merges registers *because* one clock offset can later rebalance their
  /// D/Q slacks (Sec. 1, Sec. 2); the balanced value is the slack that
  /// remains on both sides after that offset is applied.
  bool skew_balanced = true;
  /// Wire-delay sensitivity used to convert slack to distance (ns per um of
  /// added Manhattan detour). Conservative: includes the downstream load
  /// increase a move causes, not just the pin-to-pin wire.
  double delay_per_um = 0.0025;
  /// Cap on the converted distance (um); very large slacks do not license
  /// arbitrarily long moves (routing detours, congestion).
  double max_radius = 120.0;
};

/// The region within which `reg` may be placed without degrading timing:
/// its footprint inflated by the distance equivalent of its worst connected
/// D/Q slack (0 when any data pin has negative slack), clipped to the core.
geom::Rect timing_feasible_region(const netlist::Design& design,
                                  const TimingReport& report,
                                  netlist::CellId reg,
                                  const FeasibleRegionOptions& options = {});

/// Slack-to-distance conversion used above (clamped to [0, max_radius]).
double slack_to_distance(double slack, const FeasibleRegionOptions& options);

}  // namespace mbrc::sta
