// Graph-based static timing analysis over the placed netlist.
//
// Delay model (matching the library's linear model, Sec. 4.1 of the paper):
//   gate arc:  delay = intrinsic + R_drive * (wire cap + sink pin caps)
//   wire arc:  Elmore on Manhattan length from driver to each sink.
// The clock is ideal at the register clock pins except for an explicit
// per-register useful-skew offset (Sec. 1/5: useful skew is applied to the
// composed MBRs after composition).
//
// Launch points: register Q/SO pins and input ports. Capture points
// (endpoints): register D/SI pins (setup check against period + skew) and
// output ports. Register cells cut the graph, so a synthesizable netlist
// yields a DAG; a combinational cycle is reported as an error.
#pragma once

#include <limits>
#include <unordered_map>
#include <vector>

#include "netlist/design.hpp"

namespace mbrc::sta {

struct TimingOptions {
  double clock_period = 1.0;      // ns
  double wire_cap_per_um = 0.20;  // fF / um
  double wire_res_per_um = 0.003; // kOhm / um
  double input_delay = 0.05;      // ns of arrival at input ports
  double output_margin = 0.05;    // ns subtracted from output-port required
  /// Thread lanes for the levelized propagation passes. 1 runs the serial
  /// reference path; > 1 runs the parallel gather path, whose arrivals,
  /// requireds and endpoint report are bit-identical to serial at any lane
  /// count (max/min reductions over the same operand sets).
  int jobs = 1;
};

/// Per-register clock arrival offsets (useful skew), in ns. Registers not in
/// the map have zero skew.
using SkewMap = std::unordered_map<netlist::CellId, double>;

constexpr double kNoArrival = -std::numeric_limits<double>::infinity();
constexpr double kNoRequired = std::numeric_limits<double>::infinity();

struct EndpointSlack {
  netlist::PinId pin;
  double slack = 0.0;       // setup (max-delay) slack
  double hold_slack = 0.0;  // hold (min-delay) slack; kNoRequired if unchecked
};

/// Result of one STA run. Pin arrays are indexed by PinId.
class TimingReport {
public:
  std::vector<double> arrival;      // latest arrival; kNoArrival if unreachable
  std::vector<double> arrival_min;  // earliest arrival (hold analysis)
  std::vector<double> required;     // kNoRequired when unconstrained
  std::vector<double> required_min; // hold-side required; kNoArrival (-inf)
                                    // when no hold check is downstream
  std::vector<EndpointSlack> endpoints;

  double slack(netlist::PinId pin) const {
    const double a = arrival[pin.index];
    const double r = required[pin.index];
    if (a == kNoArrival || r == kNoRequired) return kNoRequired;
    return r - a;
  }

  /// Hold slack at a pin: earliest arrival minus the hold-side required
  /// time; kNoRequired when no hold check constrains the pin.
  double hold_slack(netlist::PinId pin) const {
    const double a = arrival_min[pin.index];
    const double r = required_min[pin.index];
    if (a == kNoRequired || r == kNoArrival) return kNoRequired;
    return a - r;
  }

  /// Worst negative slack (0 when nothing fails).
  double wns() const;
  /// Total negative slack over endpoints (ns, <= 0).
  double tns() const;
  int failing_endpoints() const;
  int total_endpoints() const { return static_cast<int>(endpoints.size()); }

  /// Hold-side aggregates (register D endpoints only; ports carry no hold
  /// check in this model).
  double hold_wns() const;
  int failing_hold_endpoints() const;

  /// Worst slack over the register's D (and SI) pins; kNoRequired when the
  /// register has no constrained data input.
  double register_d_slack(const netlist::Design& design,
                          netlist::CellId reg) const;
  /// Worst slack over the register's Q (and SO) pins.
  double register_q_slack(const netlist::Design& design,
                          netlist::CellId reg) const;

  /// Worst *hold* slack over the register's D/SI pins (its own capture
  /// checks) and over its Q/SO pins (the downstream capture checks its
  /// launches feed). Used by hold-aware useful skew.
  double register_d_hold_slack(const netlist::Design& design,
                               netlist::CellId reg) const;
  double register_q_hold_slack(const netlist::Design& design,
                               netlist::CellId reg) const;
};

/// Runs STA. `skew` supplies per-register useful-skew offsets.
TimingReport run_sta(const netlist::Design& design,
                     const TimingOptions& options, const SkewMap& skew = {});

}  // namespace mbrc::sta
