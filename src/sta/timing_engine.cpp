#include "sta/timing_engine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "util/assert.hpp"

namespace mbrc::sta {

namespace {

using netlist::CellId;
using netlist::CellKind;
using netlist::NetId;
using netlist::Pin;
using netlist::PinId;
using netlist::PinRole;

// kOhm * fF = ps; delays are kept in ns.
constexpr double kNsPerKohmFf = 1e-3;

// Pins per parallel_for task in the full-build propagation passes. The
// incremental repair runs serially: dirty cones are small by construction,
// and a serial gather keeps the worklist bookkeeping trivial.
constexpr std::size_t kLevelGrain = 256;

bool is_launch_role(PinRole role) {
  return role == PinRole::kQ || role == PinRole::kScanOut;
}
bool is_endpoint_role(PinRole role) {
  return role == PinRole::kD || role == PinRole::kScanIn;
}

}  // namespace

TimingEngine::TimingEngine(const netlist::Design& design,
                           const TimingOptions& options)
    : design_(design), options_(options) {}

double TimingEngine::register_skew(CellId cell) const {
  const auto it = current_skew_.find(cell);
  return it == current_skew_.end() ? 0.0 : it->second;
}

double TimingEngine::driver_load(PinId driver) const {
  const Pin& p = design_.pin(driver);
  if (!p.net.valid()) return 0.0;
  double load = design_.net_hpwl(p.net) * options_.wire_cap_per_um;
  for (PinId s : design_.net(p.net).sinks) load += design_.pin(s).cap;
  return load;
}

double TimingEngine::wire_delay(PinId driver, PinId sink) const {
  const double len = geom::manhattan(design_.pin_position(driver),
                                     design_.pin_position(sink));
  const double r = options_.wire_res_per_um * len;
  const double c = options_.wire_cap_per_um * len;
  return r * (c / 2 + design_.pin(sink).cap) * kNsPerKohmFf;
}

double TimingEngine::cell_arc_delay(PinId out) const {
  const Pin& p = design_.pin(out);
  const netlist::Cell& cell = design_.cell(p.cell);
  double intrinsic = 0.0;
  double resistance = 0.0;
  switch (cell.kind) {
    case CellKind::kComb:
      intrinsic = cell.comb->intrinsic_delay;
      resistance = cell.comb->drive_resistance;
      break;
    case CellKind::kClockBuffer:
      intrinsic = cell.buf->intrinsic_delay;
      resistance = cell.buf->drive_resistance;
      break;
    default:
      return 0.0;
  }
  return intrinsic + resistance * driver_load(out) * kNsPerKohmFf;
}

double TimingEngine::launch_delay(PinId q_pin) const {
  const Pin& p = design_.pin(q_pin);
  const netlist::Cell& cell = design_.cell(p.cell);
  return cell.reg->intrinsic_delay +
         cell.reg->drive_resistance * driver_load(q_pin) * kNsPerKohmFf;
}

// Builds the successor CSR (one delay evaluation per edge), its transpose,
// and the cross-links between the two views. Only live pins contribute
// edges. Edge enumeration mirrors run_sta's for_each_successor: an output
// pin's successors are its net's sinks (wire arcs, skipping clock nets); a
// comb/buffer input's successors are its cell's outputs (cell arcs).
void TimingEngine::build_edges() {
  const int n = design_.pin_count();

  const auto for_each_successor = [&](PinId pin_id, auto&& fn) {
    const Pin& p = design_.pin(pin_id);
    if (p.is_output) {
      if (!p.net.valid() || design_.net(p.net).is_clock) return;
      for (PinId s : design_.net(p.net).sinks) fn(s, wire_delay(pin_id, s));
      return;
    }
    const netlist::Cell& cell = design_.cell(p.cell);
    switch (cell.kind) {
      case CellKind::kComb:
        if (p.role == PinRole::kCombIn) {
          for (PinId out : cell.pins)
            if (design_.pin(out).role == PinRole::kCombOut)
              fn(out, cell_arc_delay(out));
        }
        break;
      case CellKind::kClockBuffer:
        if (p.role == PinRole::kBufIn) {
          for (PinId out : cell.pins)
            if (design_.pin(out).role == PinRole::kBufOut)
              fn(out, cell_arc_delay(out));
        }
        break;
      default:
        break;  // register inputs and ports are endpoints: no data arcs out
    }
  };

  succ_offset_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::int32_t i = 0; i < n; ++i) {
    const PinId pin{i};
    if (design_.cell(design_.pin(pin).cell).dead) continue;
    int count = 0;
    for_each_successor(pin, [&](PinId, double) { ++count; });
    succ_offset_[static_cast<std::size_t>(i) + 1] = count;
  }
  for (int i = 0; i < n; ++i) succ_offset_[i + 1] += succ_offset_[i];
  const std::size_t edges = static_cast<std::size_t>(succ_offset_[n]);
  succ_to_.resize(edges);
  succ_delay_.resize(edges);
  succ_pred_index_.resize(edges);
  std::vector<int> cursor(succ_offset_.begin(), succ_offset_.end() - 1);
  for (std::int32_t i = 0; i < n; ++i) {
    const PinId pin{i};
    if (design_.cell(design_.pin(pin).cell).dead) continue;
    for_each_successor(pin, [&](PinId succ, double delay) {
      const int at = cursor[i]++;
      succ_to_[at] = succ.index;
      succ_delay_[at] = delay;
    });
  }

  pred_offset_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::size_t e = 0; e < edges; ++e)
    ++pred_offset_[static_cast<std::size_t>(succ_to_[e]) + 1];
  for (int i = 0; i < n; ++i) pred_offset_[i + 1] += pred_offset_[i];
  pred_to_.resize(edges);
  pred_delay_.resize(edges);
  pred_succ_index_.resize(edges);
  cursor.assign(pred_offset_.begin(), pred_offset_.end() - 1);
  for (std::int32_t i = 0; i < n; ++i) {
    for (int e = succ_offset_[i]; e < succ_offset_[i + 1]; ++e) {
      const int at = cursor[succ_to_[e]]++;
      pred_to_[at] = i;
      pred_delay_[at] = succ_delay_[e];
      pred_succ_index_[at] = e;
      succ_pred_index_[e] = at;
    }
  }
}

// Kahn's algorithm over the cached CSR: topo order plus levels (longest
// edge distance from a source). Every edge goes from a lower level to a
// strictly higher one, so one level's pins can be gathered independently
// and a dirty pin's repair can only dirty higher (forward) or lower
// (backward) levels.
void TimingEngine::topo_and_levels() {
  const int n = design_.pin_count();
  std::vector<int> indegree(n, 0);
  for (std::int32_t i = 0; i < n; ++i)
    indegree[i] = pred_offset_[i + 1] - pred_offset_[i];
  level_of_.assign(n, 0);
  topo_.clear();
  topo_.reserve(n);
  std::vector<PinId> work;
  for (std::int32_t i = 0; i < n; ++i)
    if (indegree[i] == 0 && !design_.cell(design_.pin(PinId{i}).cell).dead)
      work.push_back(PinId{i});
  std::size_t head = 0;
  std::int32_t max_level = 0;
  while (head < work.size()) {
    const PinId pin = work[head++];
    topo_.push_back(pin);
    const std::int32_t next_level = level_of_[pin.index] + 1;
    for (int e = succ_offset_[pin.index]; e < succ_offset_[pin.index + 1];
         ++e) {
      const std::int32_t succ = succ_to_[e];
      level_of_[succ] = std::max(level_of_[succ], next_level);
      max_level = std::max(max_level, level_of_[succ]);
      if (--indegree[succ] == 0) work.push_back(PinId{succ});
    }
  }
  int live_pins = 0;
  for (std::int32_t i = 0; i < n; ++i)
    if (!design_.cell(design_.pin(PinId{i}).cell).dead) ++live_pins;
  MBRC_ASSERT_MSG(static_cast<int>(topo_.size()) == live_pins,
                  "combinational cycle in design");

  // Counting sort of `topo_` by level (stable within a level).
  std::vector<std::size_t> bucket(static_cast<std::size_t>(max_level) + 2, 0);
  for (const PinId pin : topo_) ++bucket[level_of_[pin.index] + 1];
  for (std::size_t l = 1; l < bucket.size(); ++l) bucket[l] += bucket[l - 1];
  level_begin_ = bucket;
  by_level_.resize(topo_.size());
  for (const PinId pin : topo_)
    by_level_[bucket[level_of_[pin.index]]++] = pin.index;
}

// Seeds, level sweeps and endpoint collection: the values are exactly
// run_sta's (max/min gathers over identical operand sets).
void TimingEngine::seed_and_propagate() {
  const int n = design_.pin_count();
  runtime::ThreadPool* pool =
      options_.jobs > 1 ? &runtime::ThreadPool::global() : nullptr;

  auto& arrival = report_.arrival;
  auto& arrival_min = report_.arrival_min;
  auto& required = report_.required;
  auto& req_min = report_.required_min;
  arrival.assign(n, kNoArrival);
  arrival_min.assign(n, kNoRequired);
  required.assign(n, kNoRequired);
  req_min.assign(n, kNoArrival);
  report_.endpoints.clear();

  // Launch/input seeds (single-arc launch timing: min and max coincide).
  seed_arrival_.assign(n, kNoArrival);
  for (const PinId pin_id : topo_) {
    const Pin& p = design_.pin(pin_id);
    const netlist::Cell& cell = design_.cell(p.cell);
    if (cell.kind == CellKind::kRegister && is_launch_role(p.role)) {
      seed_arrival_[pin_id.index] =
          register_skew(p.cell) + launch_delay(pin_id);
    } else if (cell.kind == CellKind::kPort && p.is_output) {
      seed_arrival_[pin_id.index] = options_.input_delay;
    }
    if (seed_arrival_[pin_id.index] != kNoArrival) {
      arrival[pin_id.index] = seed_arrival_[pin_id.index];
      arrival_min[pin_id.index] = seed_arrival_[pin_id.index];
    }
  }

  // Forward propagation: per-level gathers, parallel when jobs > 1.
  const std::size_t levels = level_begin_.empty() ? 0 : level_begin_.size() - 1;
  for (std::size_t l = 0; l < levels; ++l) {
    const std::size_t lo = level_begin_[l];
    const std::size_t hi = level_begin_[l + 1];
    runtime::parallel_for(pool, options_.jobs, hi - lo, kLevelGrain,
                          [&](std::size_t k) {
      const std::int32_t pin = by_level_[lo + k];
      double a = arrival[pin];
      double a_min = arrival_min[pin];
      for (int e = pred_offset_[pin]; e < pred_offset_[pin + 1]; ++e) {
        const double pa = arrival[pred_to_[e]];
        if (pa != kNoArrival) a = std::max(a, pa + pred_delay_[e]);
        const double pa_min = arrival_min[pred_to_[e]];
        if (pa_min != kNoRequired)
          a_min = std::min(a_min, pa_min + pred_delay_[e]);
      }
      arrival[pin] = a;
      arrival_min[pin] = a_min;
    });
  }

  // Endpoint seeds, required times and the endpoint report (topo order,
  // matching run_sta's historical iteration order).
  seed_required_.assign(n, kNoRequired);
  seed_required_min_.assign(n, kNoArrival);
  endpoint_slot_.assign(n, -1);
  for (const PinId pin_id : topo_) {
    const Pin& p = design_.pin(pin_id);
    const netlist::Cell& cell = design_.cell(p.cell);
    double req = kNoRequired;
    double hold_req = kNoRequired;
    if (cell.kind == CellKind::kRegister && is_endpoint_role(p.role)) {
      if (p.net.valid()) {
        req = options_.clock_period + register_skew(p.cell) -
              cell.reg->setup_time;
        hold_req = register_skew(p.cell) + cell.reg->hold_time;
      }
    } else if (cell.kind == CellKind::kPort && !p.is_output) {
      if (p.net.valid())
        req = options_.clock_period - options_.output_margin;
    }
    if (req == kNoRequired) continue;
    seed_required_[pin_id.index] = req;
    required[pin_id.index] = req;
    if (arrival[pin_id.index] == kNoArrival) continue;
    EndpointSlack ep;
    ep.pin = pin_id;
    ep.slack = req - arrival[pin_id.index];
    if (hold_req != kNoRequired &&
        arrival_min[pin_id.index] != kNoRequired) {
      seed_required_min_[pin_id.index] = hold_req;
      req_min[pin_id.index] = hold_req;
      ep.hold_slack = arrival_min[pin_id.index] - hold_req;
    } else {
      ep.hold_slack = kNoRequired;
    }
    endpoint_slot_[pin_id.index] =
        static_cast<std::int32_t>(report_.endpoints.size());
    report_.endpoints.push_back(ep);
  }

  // Backward propagation of required times (setup: min; hold: max).
  for (std::size_t l = levels; l-- > 0;) {
    const std::size_t lo = level_begin_[l];
    const std::size_t hi = level_begin_[l + 1];
    runtime::parallel_for(pool, options_.jobs, hi - lo, kLevelGrain,
                          [&](std::size_t k) {
      const std::int32_t pin = by_level_[lo + k];
      double r = required[pin];
      double r_min = req_min[pin];
      for (int e = succ_offset_[pin]; e < succ_offset_[pin + 1]; ++e) {
        const std::int32_t succ = succ_to_[e];
        if (required[succ] != kNoRequired)
          r = std::min(r, required[succ] - succ_delay_[e]);
        if (req_min[succ] != kNoArrival)
          r_min = std::max(r_min, req_min[succ] - succ_delay_[e]);
      }
      required[pin] = r;
      req_min[pin] = r_min;
    });
  }
}

void TimingEngine::full_build() {
  build_edges();
  topo_and_levels();
  seed_and_propagate();

  const std::size_t n = static_cast<std::size_t>(design_.pin_count());
  fwd_stamp_.assign(n, 0);
  bwd_stamp_.assign(n, 0);
  ep_stamp_.assign(n, 0);
  net_stamp_.assign(static_cast<std::size_t>(design_.net_count()), 0);
  const std::size_t levels = level_begin_.empty() ? 0 : level_begin_.size() - 1;
  fwd_bucket_.assign(levels, {});
  bwd_bucket_.assign(levels, {});
  epoch_ = 0;
}

const TimingReport& TimingEngine::update(const SkewMap& skew) {
  static obs::Counter& c_full = obs::counter("sta.engine.full_builds");
  static obs::Counter& c_inc = obs::counter("sta.engine.incremental_updates");
  static obs::Counter& c_early = obs::counter("sta.engine.early_stops");
  static obs::Histogram& h_cone = obs::histogram("sta.engine.repaired_pins");

  if (!built_ || design_.topology_version() != seen_topology_) {
    obs::Span span("sta.full_build");
    current_skew_ = skew;
    full_build();
    built_ = true;
    seen_topology_ = design_.topology_version();
    journal_cursor_ = design_.touched_cells().size();
    ++stats_.full_builds;
    stats_.last_repaired_pins = 0;
    c_full.add(1);
    return report_;
  }

  obs::Span span("sta.repair");
  const std::uint64_t early_before = stats_.early_stops;
  begin_epoch();
  apply_skew_diff(skew);
  const auto& journal = design_.touched_cells();
  for (std::size_t i = journal_cursor_; i < journal.size(); ++i)
    touch_cell(journal[i]);
  journal_cursor_ = journal.size();
  repair_forward();
  refresh_endpoints();
  repair_backward();
  ++stats_.incremental_updates;
  c_inc.add(1);
  c_early.add(static_cast<std::int64_t>(stats_.early_stops - early_before));
  h_cone.record(static_cast<std::int64_t>(stats_.last_repaired_pins));
  return report_;
}

void TimingEngine::begin_epoch() {
  ++epoch_;
  fwd_lo_ = static_cast<std::int32_t>(fwd_bucket_.size());
  fwd_hi_ = -1;
  bwd_lo_ = static_cast<std::int32_t>(bwd_bucket_.size());
  bwd_hi_ = -1;
  ep_marks_.clear();
  stats_.last_repaired_pins = 0;
}

void TimingEngine::mark_forward(std::int32_t pin) {
  if (fwd_stamp_[pin] == epoch_) return;
  fwd_stamp_[pin] = epoch_;
  const std::int32_t level = level_of_[pin];
  fwd_bucket_[level].push_back(pin);
  fwd_lo_ = std::min(fwd_lo_, level);
  fwd_hi_ = std::max(fwd_hi_, level);
}

void TimingEngine::mark_backward(std::int32_t pin) {
  if (bwd_stamp_[pin] == epoch_) return;
  bwd_stamp_[pin] = epoch_;
  const std::int32_t level = level_of_[pin];
  bwd_bucket_[level].push_back(pin);
  bwd_lo_ = std::min(bwd_lo_, level);
  bwd_hi_ = std::max(bwd_hi_, level);
}

void TimingEngine::mark_endpoint(std::int32_t pin) {
  if (ep_stamp_[pin] == epoch_) return;
  ep_stamp_[pin] = epoch_;
  ep_marks_.push_back(pin);
}

// Refreshes the seeds that depend on a register's own parameters: launch
// arrivals on the Q side (skew, intrinsic/drive, load) and endpoint
// requirements on the D side (skew, setup/hold). Reachability cannot change
// without a topology edit, so the endpoint *set* is stable here.
void TimingEngine::refresh_register_seeds(CellId reg) {
  const netlist::Cell& cell = design_.cell(reg);
  for (const PinId pin_id : cell.pins) {
    const Pin& p = design_.pin(pin_id);
    const std::int32_t i = pin_id.index;
    if (is_launch_role(p.role)) {
      const double seed = register_skew(reg) + launch_delay(pin_id);
      if (seed != seed_arrival_[i]) {
        seed_arrival_[i] = seed;
        mark_forward(i);
      }
    } else if (is_endpoint_role(p.role) && p.net.valid()) {
      const double req =
          options_.clock_period + register_skew(reg) - cell.reg->setup_time;
      const double hold_req = register_skew(reg) + cell.reg->hold_time;
      // The hold seed exists only for endpoints in the report (reachable
      // pins); endpoint_slot_ encodes exactly that.
      const double hold_seed =
          endpoint_slot_[i] >= 0 ? hold_req : kNoArrival;
      if (req != seed_required_[i] || hold_seed != seed_required_min_[i]) {
        seed_required_[i] = req;
        seed_required_min_[i] = hold_seed;
        mark_backward(i);
        if (endpoint_slot_[i] >= 0) mark_endpoint(i);
      }
    }
  }
}

// Re-evaluates every cached edge delay that depends on `net`: the cell arcs
// into its driver (the driver's load changed) and the wire arcs from the
// driver to each sink (an end moved). Changed delays dirty the edge head
// (forward) and tail (backward).
void TimingEngine::touch_net(NetId net_id) {
  if (net_stamp_[net_id.index] == epoch_) return;
  net_stamp_[net_id.index] = epoch_;
  const netlist::Net& net = design_.net(net_id);
  if (!net.driver.valid()) return;
  const std::int32_t d = net.driver.index;

  // Cell arcs into the driver first: its load includes this net even when
  // the net is a clock net (a clock buffer's in->out arc reads the clock
  // net's HPWL and sink caps, even though clock nets carry no wire arcs).
  if (pred_offset_[d + 1] > pred_offset_[d]) {
    const double arc = cell_arc_delay(net.driver);
    for (int e = pred_offset_[d]; e < pred_offset_[d + 1]; ++e) {
      if (pred_delay_[e] == arc) continue;
      pred_delay_[e] = arc;
      succ_delay_[pred_succ_index_[e]] = arc;
      mark_forward(d);
      mark_backward(pred_to_[e]);
    }
  }

  const Pin& dp = design_.pin(net.driver);
  const netlist::Cell& dc = design_.cell(dp.cell);
  if (dc.kind == CellKind::kRegister && is_launch_role(dp.role)) {
    const double seed = register_skew(dp.cell) + launch_delay(net.driver);
    if (seed != seed_arrival_[d]) {
      seed_arrival_[d] = seed;
      mark_forward(d);
    }
  }

  if (net.is_clock) return;  // clock nets carry no wire arcs

  for (int e = succ_offset_[d]; e < succ_offset_[d + 1]; ++e) {
    const PinId sink{succ_to_[e]};
    const double w = wire_delay(net.driver, sink);
    if (succ_delay_[e] == w) continue;
    succ_delay_[e] = w;
    pred_delay_[succ_pred_index_[e]] = w;
    mark_forward(sink.index);
    mark_backward(d);
  }
}

void TimingEngine::touch_cell(CellId cell_id) {
  const netlist::Cell& cell = design_.cell(cell_id);
  if (cell.dead) return;  // removal bumps the topology version anyway
  for (const PinId pin_id : cell.pins) {
    const Pin& p = design_.pin(pin_id);
    if (p.net.valid()) touch_net(p.net);
  }
  if (cell.kind == CellKind::kRegister) refresh_register_seeds(cell_id);
}

void TimingEngine::apply_skew_diff(const SkewMap& skew) {
  std::vector<CellId> changed;
  // mbrc-lint: allow(R1, collects into changed which is sorted below before any order-sensitive work)
  for (const auto& [cell, value] : skew) {
    const auto it = current_skew_.find(cell);
    if ((it == current_skew_.end() ? 0.0 : it->second) != value)
      changed.push_back(cell);
  }
  // mbrc-lint: allow(R1, collects into changed which is sorted below before any order-sensitive work)
  for (const auto& [cell, value] : current_skew_) {
    if (value != 0.0 && !skew.contains(cell)) changed.push_back(cell);
  }
  if (changed.empty()) return;
  // Canonicalize: the seeds are refreshed in cell-id order regardless of the
  // two hash maps' iteration order above.
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  current_skew_ = skew;
  for (const CellId cell : changed) {
    const netlist::Cell& c = design_.cell(cell);
    if (c.dead || c.kind != CellKind::kRegister) continue;
    refresh_register_seeds(cell);
  }
}

// Worklist repair of the max/min arrivals, ascending over the cached
// levels. A pin's new value is a gather over the same operand set the full
// sweep folds, so the result is bit-identical; when it equals the cached
// value the cone is not expanded further (early termination).
void TimingEngine::repair_forward() {
  auto& arrival = report_.arrival;
  auto& arrival_min = report_.arrival_min;
  std::size_t repaired = 0;
  std::uint64_t early = 0;
  for (std::int32_t level = fwd_lo_; level <= fwd_hi_; ++level) {
    auto& bucket = fwd_bucket_[level];
    for (std::size_t k = 0; k < bucket.size(); ++k) {
      const std::int32_t pin = bucket[k];
      double a = seed_arrival_[pin];
      double a_min = a == kNoArrival ? kNoRequired : a;
      for (int e = pred_offset_[pin]; e < pred_offset_[pin + 1]; ++e) {
        const double pa = arrival[pred_to_[e]];
        if (pa != kNoArrival) a = std::max(a, pa + pred_delay_[e]);
        const double pa_min = arrival_min[pred_to_[e]];
        if (pa_min != kNoRequired)
          a_min = std::min(a_min, pa_min + pred_delay_[e]);
      }
      ++repaired;
      if (a == arrival[pin] && a_min == arrival_min[pin]) {
        ++early;
        continue;
      }
      arrival[pin] = a;
      arrival_min[pin] = a_min;
      if (endpoint_slot_[pin] >= 0) mark_endpoint(pin);
      for (int e = succ_offset_[pin]; e < succ_offset_[pin + 1]; ++e)
        mark_forward(succ_to_[e]);  // strictly higher levels only
    }
    bucket.clear();
  }
  stats_.last_repaired_pins += repaired;
  stats_.early_stops += early;
}

// Mirror image of repair_forward: required times, descending levels,
// gathering over successors.
void TimingEngine::repair_backward() {
  auto& required = report_.required;
  auto& req_min = report_.required_min;
  std::size_t repaired = 0;
  std::uint64_t early = 0;
  for (std::int32_t level = bwd_hi_; level >= bwd_lo_; --level) {
    auto& bucket = bwd_bucket_[level];
    for (std::size_t k = 0; k < bucket.size(); ++k) {
      const std::int32_t pin = bucket[k];
      double r = seed_required_[pin];
      double r_min = seed_required_min_[pin];
      for (int e = succ_offset_[pin]; e < succ_offset_[pin + 1]; ++e) {
        const std::int32_t succ = succ_to_[e];
        if (required[succ] != kNoRequired)
          r = std::min(r, required[succ] - succ_delay_[e]);
        if (req_min[succ] != kNoArrival)
          r_min = std::max(r_min, req_min[succ] - succ_delay_[e]);
      }
      ++repaired;
      if (r == required[pin] && r_min == req_min[pin]) {
        ++early;
        continue;
      }
      required[pin] = r;
      req_min[pin] = r_min;
      for (int e = pred_offset_[pin]; e < pred_offset_[pin + 1]; ++e)
        mark_backward(pred_to_[e]);  // strictly lower levels only
    }
    bucket.clear();
  }
  stats_.last_repaired_pins += repaired;
  stats_.early_stops += early;
}

void TimingEngine::refresh_endpoints() {
  const auto& arrival = report_.arrival;
  const auto& arrival_min = report_.arrival_min;
  for (const std::int32_t pin : ep_marks_) {
    EndpointSlack& ep = report_.endpoints[endpoint_slot_[pin]];
    ep.slack = seed_required_[pin] - arrival[pin];
    ep.hold_slack = seed_required_min_[pin] == kNoArrival
                        ? kNoRequired
                        : arrival_min[pin] - seed_required_min_[pin];
  }
}

}  // namespace mbrc::sta
