#include "mbr/compatibility.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>
#include <unordered_map>

#include "runtime/thread_pool.hpp"
#include "util/assert.hpp"

namespace mbrc::mbr {

bool CompatibilityGraph::has_edge(int a, int b) const {
  MBRC_ASSERT_MSG(!dirty_, "CompatibilityGraph read before finalize()");
  const auto& adj = adjacency_[a];
  return std::binary_search(adj.begin(), adj.end(), b);
}

std::int64_t CompatibilityGraph::edge_count() const {
  MBRC_ASSERT_MSG(!dirty_, "CompatibilityGraph read before finalize()");
  std::int64_t total = 0;
  for (const auto& adj : adjacency_) total += static_cast<std::int64_t>(adj.size());
  return total / 2;
}

int CompatibilityGraph::add_node(RegisterInfo info) {
  nodes_.push_back(std::move(info));
  adjacency_.emplace_back();
  return node_count() - 1;
}

// O(1) append; a sorted-insert here is O(degree) per edge and turns dense
// subgraph construction quadratic. finalize() restores the sorted/unique
// representation has_edge's binary search relies on.
void CompatibilityGraph::add_edge(int a, int b) {
  MBRC_ASSERT(a != b && a >= 0 && b >= 0 && a < node_count() &&
              b < node_count());
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  dirty_ = true;
}

void CompatibilityGraph::reserve_degrees(const std::vector<int>& degrees) {
  MBRC_ASSERT(static_cast<int>(degrees.size()) == node_count());
  for (int i = 0; i < node_count(); ++i)
    adjacency_[i].reserve(static_cast<std::size_t>(degrees[i]));
}

void CompatibilityGraph::finalize() {
  for (auto& adj : adjacency_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
  dirty_ = false;
}

std::vector<std::vector<int>> CompatibilityGraph::connected_components() const {
  MBRC_ASSERT_MSG(!dirty_, "CompatibilityGraph read before finalize()");
  std::vector<int> component(node_count(), -1);
  std::vector<std::vector<int>> components;
  std::vector<int> stack;
  for (int start = 0; start < node_count(); ++start) {
    if (component[start] >= 0) continue;
    const int id = static_cast<int>(components.size());
    components.emplace_back();
    stack.push_back(start);
    component[start] = id;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      components[id].push_back(v);
      for (int u : adjacency_[v]) {
        if (component[u] < 0) {
          component[u] = id;
          stack.push_back(u);
        }
      }
    }
    std::sort(components[id].begin(), components[id].end());
  }
  return components;
}

bool is_composable(const netlist::Design& design, netlist::CellId cell_id) {
  const netlist::Cell& cell = design.cell(cell_id);
  if (cell.dead || cell.kind != netlist::CellKind::kRegister) return false;
  if (cell.fixed || cell.size_only) return false;
  if (!design.register_clock_net(cell_id).valid()) return false;
  const auto widths = design.library().available_widths(cell.reg->function);
  if (widths.empty()) return false;
  // A register already at the widest library MBR of its class cannot grow.
  return cell.reg->bits < widths.back();
}

namespace {

netlist::NetId control_net(const netlist::Design& design, netlist::CellId cell,
                           netlist::PinRole role) {
  const netlist::PinId pin = design.register_control_pin(cell, role);
  return pin.valid() ? design.pin(pin).net : netlist::NetId{};
}

double clamp_slack(double slack, const CompatibilityOptions& options) {
  if (slack == sta::kNoRequired) return options.slack_clamp;
  return std::clamp(slack, -options.slack_clamp, options.slack_clamp);
}

}  // namespace

RegisterInfo make_register_info(const netlist::Design& design,
                                const sta::TimingReport& timing,
                                netlist::CellId cell_id,
                                const CompatibilityOptions& options) {
  const netlist::Cell& cell = design.cell(cell_id);
  MBRC_ASSERT(cell.kind == netlist::CellKind::kRegister);
  RegisterInfo info;
  info.cell = cell_id;
  info.lib_cell = cell.reg;
  info.bits = cell.reg->bits;
  info.footprint = cell.footprint();
  info.region = sta::timing_feasible_region(design, timing, cell_id,
                                            options.region);
  info.d_slack = clamp_slack(timing.register_d_slack(design, cell_id), options);
  info.q_slack = clamp_slack(timing.register_q_slack(design, cell_id), options);
  info.drive_resistance = cell.reg->drive_resistance;
  info.clock_net = design.register_clock_net(cell_id);
  info.gating_group = cell.gating_group;
  info.reset_net = control_net(design, cell_id, netlist::PinRole::kReset);
  info.set_net = control_net(design, cell_id, netlist::PinRole::kSet);
  info.enable_net = control_net(design, cell_id, netlist::PinRole::kEnable);
  info.scan_enable_net =
      control_net(design, cell_id, netlist::PinRole::kScanEnable);
  info.scan = cell.scan;
  return info;
}

bool functionally_compatible(const RegisterInfo& a, const RegisterInfo& b) {
  return a.lib_cell->function == b.lib_cell->function &&
         a.clock_net == b.clock_net && a.gating_group == b.gating_group &&
         a.reset_net == b.reset_net && a.set_net == b.set_net &&
         a.enable_net == b.enable_net &&
         a.scan_enable_net == b.scan_enable_net;
}

bool scan_compatible(const RegisterInfo& a, const RegisterInfo& b) {
  // Registers may only share an MBR when they are allowed on the same scan
  // chain, i.e. belong to the same scan partition (Sec. 2). Whether an
  // ordered section additionally forces per-bit scan pins is decided per
  // candidate, where the full member set is known.
  return a.scan.partition == b.scan.partition;
}

bool placement_compatible(const RegisterInfo& a, const RegisterInfo& b,
                          const CompatibilityOptions& options) {
  if (geom::manhattan(a.center(), b.center()) > options.max_distance)
    return false;
  return a.region.overlaps(b.region);
}

bool timing_compatible(const RegisterInfo& a, const RegisterInfo& b,
                       const CompatibilityOptions& options) {
  // Opposite D/Q slack-sign profiles pull the useful-skew assignment of the
  // merged MBR in opposite directions (Sec. 2): a negative-D register wants
  // a later clock, a negative-Q register an earlier one.
  const double eps = options.sign_epsilon;
  const auto wants_later = [&](const RegisterInfo& r) {
    return r.d_slack < -eps && r.q_slack > eps;
  };
  const auto wants_earlier = [&](const RegisterInfo& r) {
    return r.q_slack < -eps && r.d_slack > eps;
  };
  if ((wants_later(a) && wants_earlier(b)) ||
      (wants_earlier(a) && wants_later(b)))
    return false;

  // Similar criticality on both sides.
  return std::abs(a.d_slack - b.d_slack) <= options.slack_similarity &&
         std::abs(a.q_slack - b.q_slack) <= options.slack_similarity;
}

CompatibilityGraph build_compatibility_graph(
    const netlist::Design& design, const sta::TimingReport& timing,
    const CompatibilityOptions& options) {
  CompatibilityGraph graph;
  // Node infos fan out over the pool: make_register_info only reads the
  // design and the timing report (timing_feasible_region dominates), each
  // writing its own pre-sized slot. add_node consumes the slots in register
  // order, so node ids match the serial loop at any job count.
  std::vector<netlist::CellId> composable;
  for (netlist::CellId cell : design.registers())
    if (is_composable(design, cell)) composable.push_back(cell);
  std::vector<RegisterInfo> infos = runtime::parallel_transform(
      &runtime::ThreadPool::global(), options.jobs, composable,
      [&](netlist::CellId cell) {
        return make_register_info(design, timing, cell, options);
      },
      /*grain=*/16);
  for (RegisterInfo& info : infos) graph.add_node(std::move(info));

  // Functional compatibility is an equivalence: group first, then do the
  // geometric/timing pair checks only within a group, with a spatial grid
  // to avoid the O(n^2) blowup on large designs.
  using Key = std::tuple<unsigned, std::int32_t, int, std::int32_t,
                         std::int32_t, std::int32_t, std::int32_t, int>;
  std::map<Key, std::vector<int>> groups;
  for (int i = 0; i < graph.node_count(); ++i) {
    const RegisterInfo& n = graph.node(i);
    groups[Key{n.lib_cell->function.encode(), n.clock_net.index,
               n.gating_group, n.reset_net.index, n.set_net.index,
               n.enable_net.index, n.scan_enable_net.index,
               n.scan.partition}]
        .push_back(i);
  }

  // Spatial hash per group: bin by center; candidate pairs live in the 3x3
  // block. Neighbor probing works in integer bin coordinates: re-deriving a
  // neighbor's key from the float point c + d*bin can land in the wrong
  // bin when c sits at a bin boundary (the rounded sum crosses it),
  // silently dropping compatible pairs.
  // The bins are a sorted flat (key, node) vector rather than a hash map:
  // probing walks a lower_bound range, so candidate pairs are visited in
  // (bin key, node index) order on every platform.
  const double bin = std::max(1.0, options.max_distance);
  auto key_of = [](std::int64_t bx, std::int64_t by) {
    return (bx << 32) ^ (by & 0xffffffff);
  };
  auto bin_coord = [&](double v) {
    return static_cast<std::int64_t>(std::floor(v / bin));
  };

  // Edge detection fans out per node: each task walks its own 3x3 bin block
  // and returns node i's forward (j > i) edges. Tasks only read the node
  // array and their group's bins; the reduction below appends the per-node
  // lists in (group, node) order and finalize() sorts each adjacency, so
  // the graph is byte-identical to the serial double loop at any job count.
  struct NodeTask {
    int node;
    const std::vector<std::pair<std::int64_t, int>>* bins;
  };
  std::vector<std::vector<std::pair<std::int64_t, int>>> group_bins;
  group_bins.reserve(groups.size());
  std::vector<NodeTask> tasks;
  tasks.reserve(graph.node_count());
  for (const auto& [key, members] : groups) {
    auto& bins_of_group = group_bins.emplace_back();
    bins_of_group.reserve(members.size());
    for (int i : members) {
      const geom::Point c = graph.node(i).center();
      bins_of_group.emplace_back(key_of(bin_coord(c.x), bin_coord(c.y)), i);
    }
    std::sort(bins_of_group.begin(), bins_of_group.end());
    for (int i : members) tasks.push_back({i, &bins_of_group});
  }

  const std::vector<std::vector<int>> forward = runtime::parallel_transform(
      &runtime::ThreadPool::global(), options.jobs, tasks,
      [&](const NodeTask& task) {
        std::vector<int> out;
        const int i = task.node;
        const RegisterInfo& a = graph.node(i);
        const geom::Point c = a.center();
        const std::int64_t bx = bin_coord(c.x);
        const std::int64_t by = bin_coord(c.y);
        for (int dx = -1; dx <= 1; ++dx) {
          for (int dy = -1; dy <= 1; ++dy) {
            const std::int64_t probe = key_of(bx + dx, by + dy);
            for (auto it = std::lower_bound(task.bins->begin(),
                                            task.bins->end(),
                                            std::pair{probe, -1});
                 it != task.bins->end() && it->first == probe; ++it) {
              const int j = it->second;
              if (j <= i) continue;  // each unordered pair once
              const RegisterInfo& b = graph.node(j);
              if (!placement_compatible(a, b, options)) continue;
              if (!timing_compatible(a, b, options)) continue;
              MBRC_ASSERT(functionally_compatible(a, b) &&
                          scan_compatible(a, b));
              out.push_back(j);
            }
          }
        }
        return out;
      },
      /*grain=*/32);

  // Exact degree pre-count so the bulk add_edge pass below appends into
  // right-sized adjacency lists instead of reallocating them as they grow.
  std::vector<int> degrees(graph.node_count(), 0);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    degrees[tasks[t].node] += static_cast<int>(forward[t].size());
    for (int j : forward[t]) ++degrees[j];
  }
  graph.reserve_degrees(degrees);
  for (std::size_t t = 0; t < tasks.size(); ++t)
    for (int j : forward[t]) graph.add_edge(tasks[t].node, j);
  graph.finalize();
  return graph;
}

}  // namespace mbrc::mbr
