// End-to-end incremental MBR composition flow (the paper's Fig. 4):
//
//   placed design -> STA -> compatibility graph -> partition -> candidate
//   enumeration -> per-subgraph ILP (or greedy heuristic) -> mapping ->
//   placement LP -> rewiring -> incremental legalization -> scan re-stitch
//   -> MBR sizing -> useful skew on the new MBRs -> evaluation.
//
// Also exposes the evaluation harness that produces the Table 1 metrics
// for a design state (before/after).
#pragma once

#include <string>
#include <vector>

#include "check/checker.hpp"
#include "cts/cts.hpp"
#include "mbr/composition.hpp"
#include "mbr/cost.hpp"
#include "mbr/debank.hpp"
#include "mbr/decompose.hpp"
#include "mbr/heuristic.hpp"
#include "mbr/mapping.hpp"
#include "mbr/placement.hpp"
#include "mbr/rewire.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "place/legalizer.hpp"
#include "route/congestion.hpp"
#include "runtime/stage_timer.hpp"
#include "runtime/thread_pool.hpp"
#include "sta/useful_skew.hpp"

namespace mbrc::sta {
class TimingEngine;
}

namespace mbrc::mbr {

enum class Allocator { kIlp, kHeuristic };

struct FlowOptions {
  sta::TimingOptions timing;
  CompositionOptions composition;
  MappingOptions mapping;
  PlacementOptions placement;
  cts::CtsOptions cts;
  route::RouteOptions route;
  Allocator allocator = Allocator::kIlp;
  /// Multi-objective cost model (mbr/cost.hpp): alpha scales the paper's
  /// placement-aware timing weight, beta prices the created cell's power
  /// proxy, gamma its area. The defaults (1, 0, 0) reproduce the paper's
  /// pure Sec. 3.2 objective bit-exactly. The same knobs weigh the
  /// combined-cost accept test of the bank/debank loop below.
  CostModel cost;
  /// Iterate bank/debank until converged: after the initial composition,
  /// repeatedly split the most timing-critical MBRs back into narrow
  /// registers (mbr/debank.hpp), re-legalize them, offer them to scoped
  /// recomposition with fresh useful skew, and keep the iteration only if
  /// the combined cost (alpha*TNS + beta*power + gamma*area) improved and
  /// hold did not get worse. Monotone by construction: a non-improving
  /// iteration is rolled back via design snapshot/restore and ends the
  /// loop. Deterministic at any `jobs`.
  bool debank_loop = false;
  DebankOptions debank;
  /// The paper's future-work extension: split pre-existing max-width MBRs
  /// into pieces before composition so they can regroup with neighbors
  /// (targets D4-like designs that are already 8-bit rich).
  bool decompose_wide_mbrs = false;
  DecomposeOptions decompose;
  bool apply_useful_skew = true;
  /// Useful skew is restricted to the newly composed MBRs (the paper's
  /// Fig. 4); set false to let every register move.
  bool skew_only_new_mbrs = true;
  sta::UsefulSkewOptions skew;
  /// Post-composition sizing: downsize each new MBR to the weakest drive
  /// variant that keeps its slacks non-negative.
  bool size_new_mbrs = true;
  /// Thread lanes for the parallel runtime (per-subgraph planning fan-out,
  /// levelized STA, overlapped evaluation). Results are bit-identical at
  /// any value; 1 runs the exact serial path. Defaults to the hardware
  /// thread count.
  int jobs = runtime::default_jobs();
  /// Flow-integrity checking (src/check): kOff costs nothing (release
  /// default); kStageBoundaries validates structural/placement/scan/
  /// conservation invariants after every flow stage; kParanoid additionally
  /// cross-validates the incremental timing engine against a fresh run_sta
  /// at each boundary. Violations throw util::AssertionError naming the
  /// first stage that broke an invariant.
  check::CheckLevel check_level = check::CheckLevel::kOff;
  /// Observability (DESIGN.md §11): when true, an obs::Tracer is installed
  /// for the duration of the run and FlowResult::trace holds the collected
  /// spans. When false (the default) every span probe in the flow is a
  /// single relaxed atomic load — zero-cost off.
  bool trace = false;
  /// When non-empty (and trace is on), the collected spans are also written
  /// here as Chrome trace_event JSON (Perfetto / chrome://tracing).
  std::string trace_path;
  /// When non-empty, a machine-readable flow_report.json (Table-1 metrics,
  /// stages, counters, options echo) is written here after the run.
  std::string report_path;
};

/// The Table 1 measurement set for one design state.
struct Metrics {
  netlist::DesignStats design;
  int composable_registers = 0;
  double wns = 0.0;
  double tns = 0.0;
  int failing_endpoints = 0;
  int total_endpoints = 0;
  double hold_wns = 0.0;
  int failing_hold_endpoints = 0;
  int clock_buffers = 0;      // CTS estimate (plus pre-existing buffers)
  double clock_cap = 0.0;     // fF, CTS estimate (sinks + buffers + wire)
  /// Dynamic clock power, P = C_clk * Vdd^2 * f (the clock toggles every
  /// cycle), in uW for fF * GHz * V^2. This is the paper's target metric.
  double clock_power_uw = 0.0;
  double leakage_nw = 0.0;    // sum of cell leakage
  double clock_wire = 0.0;    // um, CTS estimate
  double signal_wire = 0.0;   // um, HPWL of non-clock nets
  int overflow_edges = 0;
  double max_congestion = 0.0;
};

struct FlowResult {
  Metrics before;
  Metrics after;
  int mbrs_created = 0;
  int registers_merged = 0;      // members absorbed into new MBRs
  int rejected_at_mapping = 0;   // selections dropped by Sec. 4.1 rules
  int incomplete_mbrs = 0;
  DecomposeResult decomposition;  // empty unless decompose_wide_mbrs
  /// One entry per bank/debank loop iteration (debank_loop only). The cost
  /// fields are part of the deterministic output contract; `accepted` tells
  /// whether the iteration's state was kept or rolled back (a rejected
  /// iteration is always the last).
  struct DebankIteration {
    int banks_split = 0;
    int pieces_created = 0;
    int mbrs_created = 0;       // MBRs recomposed from the freed pieces
    double cost_before = 0.0;   // combined cost entering the iteration
    double cost_after = 0.0;    // combined cost of the iteration's state
    double tns = 0.0;           // TNS of the iteration's state (kept or not)
    double clock_power_uw = 0.0;
    double area = 0.0;
    bool accepted = false;
  };
  std::vector<DebankIteration> debank_iterations;
  /// Combined cost (FlowOptions::cost) of the final design state; with the
  /// loop on this is the minimum over all accepted iterations.
  double final_cost = 0.0;
  place::LegalizeResult legalization;
  RestitchStats restitch;
  sta::SkewMap skew;
  double compose_seconds = 0.0;  // plan + map + place + rewire + legalize
  double total_seconds = 0.0;
  /// Per-stage wall times and work counts (runtime::StageTimer probes).
  /// Measurement only: stage timings vary run to run and are excluded from
  /// the deterministic-output contract.
  runtime::StageTable stages;
  /// Work counts accumulated during this run (delta over the obs counter
  /// registry: solver nodes, simplex iterations, repair-cone sizes, cliques
  /// enumerated, ...). Deterministic output: bit-identical at any `jobs`
  /// value (tests/parallel_flow_test.cpp).
  obs::CountersSnapshot counters;
  /// Collected spans when FlowOptions::trace was on; empty otherwise.
  /// Wall-clock measurement only, like `stages`.
  obs::TraceData trace;
  CompositionPlan plan;          // the accepted plan (for reporting)
};

/// Measures a design state with the flow's substrates. `skew` is applied
/// during STA (pass the flow's resulting skew for 'after' measurements).
/// When `engine` is non-null (it must be bound to `design`), the timing
/// metrics come from an incremental engine update instead of a from-scratch
/// run; the numbers are bit-identical either way.
Metrics evaluate_design(const netlist::Design& design,
                        const FlowOptions& options,
                        const sta::SkewMap& skew = {},
                        sta::TimingEngine* engine = nullptr);

/// Post-composition sizing pass (FlowOptions::size_new_mbrs): moves each
/// cell in `new_cells` to the weakest drive variant whose Q-side setup and
/// hold slacks stay acceptable under `skew`. The report is re-queried from
/// `engine` after every swap so each decision sees the slack changes earlier
/// swaps caused (dirty-cone repair keeps the re-query cheap). Sizing is
/// placement-aware: a wider variant is skipped unless the extra sites next
/// to the cell are free, so the placement stays legal without any post-hoc
/// move that would invalidate the measured slacks. Exposed for targeted
/// regression testing.
void size_new_mbrs(netlist::Design& design,
                   const std::vector<netlist::CellId>& new_cells,
                   const sta::SkewMap& skew, sta::TimingEngine& engine);

/// Runs the full incremental composition flow, mutating `design`.
FlowResult run_composition_flow(netlist::Design& design,
                                const FlowOptions& options = {});

}  // namespace mbrc::mbr
