// Clique machinery over the compatibility graph (Sec. 3).
//
// Maximal cliques come from the Bron-Kerbosch algorithm with pivoting
// (paper ref [14]). Because maximal-clique enumeration is O(3^{n/3}), the
// graph is first split into connected components, and components larger than
// the subgraph bound are K-partitioned by the positions of the register
// clock pins (recursive geometric bisection), exactly as Sec. 3 prescribes
// with its <= 30-node bound.
#pragma once

#include <vector>

#include "mbr/compatibility.hpp"

namespace mbrc::mbr {

/// All maximal cliques of the subgraph induced by `nodes` (graph node
/// indices; at most 64). Cliques are sorted internally; the list is sorted
/// lexicographically. Singletons of isolated nodes are included (they are
/// maximal cliques of size 1).
std::vector<std::vector<int>> maximal_cliques(const CompatibilityGraph& graph,
                                              const std::vector<int>& nodes);

struct PartitionOptions {
  /// Subgraph bound; the paper found 30 to be the sweet spot (smaller
  /// loses QoR, larger only costs runtime).
  int max_nodes = 30;
};

/// Splits one connected component into subgraphs of at most
/// `options.max_nodes` nodes by recursively bisecting the register clock-pin
/// positions along the wider axis (median split). Edges between subgraphs
/// are implicitly dropped by downstream per-subgraph processing.
std::vector<std::vector<int>> partition_component(
    const CompatibilityGraph& graph, const netlist::Design& design,
    std::vector<int> component, const PartitionOptions& options = {});

/// Convenience: components -> partitioned subgraphs for the whole graph.
std::vector<std::vector<int>> partition_graph(
    const CompatibilityGraph& graph, const netlist::Design& design,
    const PartitionOptions& options = {});

}  // namespace mbrc::mbr
