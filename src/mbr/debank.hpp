// Strategic debanking -- the inverse move of composition, driven by timing.
//
// Composition trades clock-tree load for shared clock pins: every merge
// welds its members' launch edges together. When a bank ends up on the
// critical path, that weld is often the limiting constraint -- the bits of
// one MBR want *different* clock arrivals (one bit's D side is late, a
// sibling's Q side feeds a short path), but a shared clock pin can only
// realize one useful-skew offset for all of them. Splitting such a bank
// back into narrow pieces restores per-piece skew, sizing and placement
// freedom, at the price of the lost area/cap sharing.
//
// This pass selects the timing-critical banks worth that trade: MBRs whose
// worst constrained bit -- min over the bank's constrained D and Q pins --
// has slack below `slack_threshold`. It reuses the decompose machinery
// (split_register) so the structural invariants (per-bit D/Q connectivity,
// shared control nets, scan info) are maintained by exactly one piece of
// code. The flow's bank/debank loop (flow.cpp) then re-legalizes the
// pieces, offers them back to scoped recomposition, and keeps the result
// only if the combined cost (mbr/cost.hpp) improved.
#pragma once

#include <vector>

#include "mbr/decompose.hpp"
#include "netlist/design.hpp"
#include "sta/sta.hpp"

namespace mbrc::mbr {

struct DebankOptions {
  /// Split banks whose worst constrained bit has less slack (ns) than this.
  /// 0.0 means "split failing banks only"; raise it to also break up
  /// near-critical banks.
  double slack_threshold = 0.0;
  /// Width of the pieces the split produces (must exist in the library for
  /// the bank's functional class; piece widths that do not divide the bank
  /// width leave the bank untouched).
  int piece_bits = 1;
  /// Never split banks narrower than this (must be > piece_bits).
  int min_bits = 2;
  /// At most this many banks are split per call, worst slack first. Keeps
  /// each loop iteration's perturbation small enough that the accept/revert
  /// decision in the flow stays meaningful.
  int max_banks_per_iteration = 8;
  /// Iteration cap for the flow's bank/debank loop (flow.cpp); the loop
  /// also stops as soon as an iteration fails to improve the combined cost.
  int max_iterations = 4;
  /// An iteration must improve the combined cost by more than this to be
  /// accepted; guards the monotone-cost invariant against float noise.
  double cost_epsilon = 1e-9;
};

struct DebankResult {
  int banks_split = 0;
  int pieces_created = 0;
  /// The narrow registers created by the splits, in split order.
  std::vector<netlist::CellId> pieces;
  /// The bank cells that were removed, in split order (the flow uses this
  /// to drop their useful-skew entries).
  std::vector<netlist::CellId> removed;
};

/// Splits the most timing-critical eligible MBRs of `design` into
/// `piece_bits`-wide pieces (worst constrained slack first, capped at
/// `max_banks_per_iteration`). Only multi-bit, movable, non-scan-ordered
/// registers whose class offers the piece width are considered. The pieces
/// overlap the original footprints: the caller must legalize them and
/// re-stitch touched scan chains afterwards. Deterministic: the selection
/// depends only on `design` and `timing`, never on thread schedule.
DebankResult debank_critical_registers(const DebankOptions& options,
                                       netlist::Design& design,
                                       const sta::TimingReport& timing);

}  // namespace mbrc::mbr
