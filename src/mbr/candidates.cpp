#include "mbr/candidates.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/convex_hull.hpp"
#include "obs/counters.hpp"
#include "util/arena.hpp"
#include "util/assert.hpp"

namespace mbrc::mbr {

double candidate_weight(int bits, int blockers) {
  MBRC_ASSERT(bits >= 1 && blockers >= 0);
  if (blockers == 0) return 1.0 / bits;
  if (blockers < bits)
    return static_cast<double>(bits) * std::ldexp(1.0, blockers);  // b * 2^n
  return std::numeric_limits<double>::infinity();
}

BlockerIndex::BlockerIndex(const CompatibilityGraph& graph, double bin_size)
    : bin_size_(bin_size) {
  MBRC_ASSERT(bin_size > 0);
  for (int i = 0; i < graph.node_count(); ++i) {
    const geom::Point c = graph.node(i).center();
    bins_[key(c.x, c.y)].push_back({c, i});
  }
}

std::int64_t BlockerIndex::key(double x, double y) const {
  const auto bx = static_cast<std::int64_t>(std::floor(x / bin_size_));
  const auto by = static_cast<std::int64_t>(std::floor(y / bin_size_));
  return (bx << 32) ^ (by & 0xffffffff);
}

int BlockerIndex::count_blockers(const CompatibilityGraph& graph,
                                 const std::vector<int>& members) const {
  if (members.size() < 2) return 0;
  std::vector<geom::Rect> rects;
  rects.reserve(members.size());
  geom::Rect bbox = geom::Rect::empty();
  for (int m : members) {
    rects.push_back(graph.node(m).footprint);
    bbox = bbox.unite(rects.back());
  }
  const auto hull = geom::convex_hull_of_rects(rects);

  int count = 0;
  const auto lo_x = static_cast<std::int64_t>(std::floor(bbox.xlo / bin_size_));
  const auto hi_x = static_cast<std::int64_t>(std::floor(bbox.xhi / bin_size_));
  const auto lo_y = static_cast<std::int64_t>(std::floor(bbox.ylo / bin_size_));
  const auto hi_y = static_cast<std::int64_t>(std::floor(bbox.yhi / bin_size_));
  for (auto bx = lo_x; bx <= hi_x; ++bx) {
    for (auto by = lo_y; by <= hi_y; ++by) {
      const auto it = bins_.find((bx << 32) ^ (by & 0xffffffff));
      if (it == bins_.end()) continue;
      for (const Entry& e : it->second) {
        if (std::binary_search(members.begin(), members.end(), e.node))
          continue;
        if (geom::convex_contains_strict(hull, e.center)) ++count;
      }
    }
  }
  return count;
}

bool candidate_needs_per_bit_scan(const CompatibilityGraph& graph,
                                  const std::vector<int>& members) {
  // Collect the ordered-section memberships.
  int section = -2;  // -2: none seen yet
  std::vector<int> orders;
  bool mixed_sections = false;
  for (int m : members) {
    const netlist::ScanInfo& scan = graph.node(m).scan;
    if (scan.section < 0) continue;
    if (section == -2) {
      section = scan.section;
    } else if (section != scan.section) {
      mixed_sections = true;
    }
    orders.push_back(scan.order);
  }
  if (orders.empty()) return false;  // no ordering constraints at all
  if (mixed_sections) return true;   // two ordered chains cross the MBR
  if (orders.size() != members.size())
    return true;  // ordered and free registers mixed: chain exits and re-enters
  // Single section: an internal chain preserves the order only when the
  // member orders form one contiguous run of the section.
  std::sort(orders.begin(), orders.end());
  for (std::size_t i = 1; i < orders.size(); ++i)
    if (orders[i] != orders[i - 1] + 1) return true;
  return false;
}

namespace {

// Per-worker scratch arena for the enumeration DFS: one reset per subgraph,
// so the adjacency masks, the SoA node arrays and the DFS stack reuse the
// same cache-warm pages instead of hitting the global allocator from every
// pool lane.
thread_local util::Arena enumerate_arena;

struct Enumerator {
  const CompatibilityGraph& graph;
  const lib::Library& library;
  const BlockerIndex& blockers;
  const EnumerationOptions& options;
  util::Arena& arena;

  std::vector<int> nodes;              // subgraph, ascending graph indices
  util::ArenaVector<std::uint64_t> adjacency{
      util::ArenaAllocator<std::uint64_t>(&arena)};  // local masks
  std::vector<int> widths{};           // ascending library widths
  lib::RegisterFunction function{};
  bool has_per_bit_scan_cells = false;

  EnumerationResult result{};

  // DFS state. The inner loop reads only these flat SoA arrays (bit count
  // and feasible region per local node), not the ~150-byte RegisterInfo
  // records scattered through the graph's node table.
  util::ArenaVector<int> members_local{util::ArenaAllocator<int>(&arena)};
  util::ArenaVector<int> node_bits{util::ArenaAllocator<int>(&arena)};
  util::ArenaVector<geom::Rect> node_region{
      util::ArenaAllocator<geom::Rect>(&arena)};

  // The physical outcome the cost model prices: a keep-as-is singleton
  // keeps its own cell, a merge creates (at least) the cheapest cell of
  // the mapped width (the mapper's stand-in, matching the incomplete-MBR
  // area rule's convention). Null for hand-built graphs whose nodes carry
  // no library cell -- pricing then skips the beta/gamma terms.
  const lib::RegisterCell* priced_cell(const std::vector<int>& members,
                                       int mapped_width) const {
    if (members.size() == 1) return graph.node(members.front()).lib_cell;
    return library.cheapest_cell(function, mapped_width);
  }

  // Keep-as-is candidate for one node, priced exactly like the singletons
  // the main enumeration path emits: the paper weight with zero blockers
  // (a singleton's hull is its own footprint) and the node's own cell under
  // the cost model. The truncation guard below uses this so cap-recovered
  // singletons are never cheaper than their enumerated twins would have
  // been -- an unpriced singleton would bias the ILP toward leaving the
  // whole subgraph unmerged whenever the cap was hit.
  Candidate singleton_candidate(int graph_node) const {
    const RegisterInfo& info = graph.node(graph_node);
    Candidate singleton;
    singleton.nodes = {graph_node};
    singleton.bits = info.bits;
    singleton.mapped_width = info.bits;
    singleton.weight =
        options.use_weights ? candidate_weight(info.bits, 0) : 1.0;
    singleton.weight =
        options.cost.candidate_cost(singleton.weight, info.lib_cell);
    singleton.common_region = info.region;
    return singleton;
  }

  void emit(int bits, const geom::Rect& region) {
    if (result.candidates.size() >= options.max_candidates_per_subgraph) {
      result.truncated = true;
      return;
    }
    std::vector<int> members;
    members.reserve(members_local.size());
    for (int l : members_local) members.push_back(nodes[l]);
    std::sort(members.begin(), members.end());

    const bool complete =
        std::binary_search(widths.begin(), widths.end(), bits);
    int mapped_width = bits;
    if (!complete) {
      if (!options.allow_incomplete || members.size() < 2) return;
      const auto up = std::upper_bound(widths.begin(), widths.end(), bits);
      if (up == widths.end()) return;  // no wider cell
      mapped_width = *up;
      const lib::RegisterCell* cell =
          library.cheapest_cell(function, mapped_width);
      if (cell == nullptr) return;
      // Sec. 3: the incomplete MBR's area per (physical) bit must be below
      // the average area per bit of the registers it replaces.
      double replaced_area = 0.0;
      for (int m : members) replaced_area += graph.node(m).lib_cell->area;
      const double avg_per_bit = replaced_area / bits;
      if (cell->area / cell->bits >= avg_per_bit) return;
      // Flow-level 5% rule, applied eagerly with the cheapest cell so the
      // ILP never selects a candidate doomed at mapping time.
      if (cell->area >
          replaced_area * (1.0 + options.incomplete_area_overhead))
        return;
    }

    const bool per_bit_scan = candidate_needs_per_bit_scan(graph, members);
    if (per_bit_scan && members.size() > 1 && !has_per_bit_scan_cells)
      return;  // required scan style not in the library

    int n_blockers = 0;
    double weight = 1.0;
    if (options.use_weights) {
      n_blockers = blockers.count_blockers(graph, members);
      weight = candidate_weight(bits, n_blockers);
      if (!std::isfinite(weight)) {
        // n >= b: dropped (w = infinity). Tallied locally and flushed to
        // the flow.candidates.dropped_infinite_weight counter once per
        // subgraph, so the coverage loss is visible in flow_report.json.
        ++result.dropped_infinite_weight;
        return;
      }
    }
    weight = options.cost.candidate_cost(weight,
                                         priced_cell(members, mapped_width));

    Candidate candidate;
    candidate.nodes = std::move(members);
    candidate.bits = bits;
    candidate.mapped_width = mapped_width;
    candidate.blockers = n_blockers;
    candidate.weight = weight;
    candidate.needs_per_bit_scan = per_bit_scan;
    candidate.common_region = region;
    result.candidates.push_back(std::move(candidate));
  }

  void dfs(int last_local, int bits, const geom::Rect& region) {
    if (result.candidates.size() >= options.max_candidates_per_subgraph) {
      result.truncated = true;
      return;
    }
    const int n = static_cast<int>(nodes.size());
    const int max_width = widths.back();
    for (int v = last_local + 1; v < n; ++v) {
      // v must be adjacent to every current member (clique property).
      bool adjacent_to_all = true;
      for (int m : members_local) {
        if (!(adjacency[m] >> v & 1)) {
          adjacent_to_all = false;
          break;
        }
      }
      if (!adjacent_to_all) continue;

      const int new_bits = bits + node_bits[static_cast<std::size_t>(v)];
      if (new_bits > max_width) continue;  // other (narrower) nodes may fit
      const geom::Rect new_region =
          region.intersect(node_region[static_cast<std::size_t>(v)]);
      if (new_region.is_empty()) continue;  // no shared spot for the MBR

      members_local.push_back(v);
      emit(new_bits, new_region);
      dfs(v, new_bits, new_region);
      members_local.pop_back();
      if (result.truncated) return;
    }
  }

  void run() {
    const int n = static_cast<int>(nodes.size());
    MBRC_ASSERT_MSG(n <= 64, "subgraph larger than 64 nodes");
    if (n == 0) return;

    function = graph.node(nodes.front()).lib_cell->function;
    widths = library.available_widths(function);
    MBRC_ASSERT_MSG(!widths.empty(), "composable register with no widths");

    for (int width : widths) {
      for (const lib::RegisterCell* cell :
           library.cells_for(function, width)) {
        if (cell->scan_style == lib::ScanStyle::kPerBitPins)
          has_per_bit_scan_cells = true;
      }
    }

    // Local adjacency masks by merging each node's sorted neighbor list
    // against the sorted subgraph (O(degree + n) per node) instead of the
    // n^2/2 has_edge binary searches this replaces.
    adjacency.assign(static_cast<std::size_t>(n), 0);
    node_bits.resize(static_cast<std::size_t>(n));
    node_region.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const std::vector<int>& neighbors = graph.neighbors(nodes[i]);
      std::size_t a = 0;
      std::size_t b = 0;
      std::uint64_t mask = 0;
      while (a < neighbors.size() && b < nodes.size()) {
        if (neighbors[a] < nodes[b]) {
          ++a;
        } else if (neighbors[a] > nodes[b]) {
          ++b;
        } else {
          mask |= std::uint64_t{1} << b;
          ++a;
          ++b;
        }
      }
      adjacency[static_cast<std::size_t>(i)] = mask;
      const RegisterInfo& info = graph.node(nodes[i]);
      node_bits[static_cast<std::size_t>(i)] = info.bits;
      node_region[static_cast<std::size_t>(i)] = info.region;
    }

    // Singletons first (always feasible cover), then the DFS over cliques
    // of size >= 2 starting at each node.
    for (int v = 0; v < n; ++v) {
      members_local.assign(1, v);
      emit(node_bits[static_cast<std::size_t>(v)],
           node_region[static_cast<std::size_t>(v)]);
      dfs(v, node_bits[static_cast<std::size_t>(v)],
          node_region[static_cast<std::size_t>(v)]);
      members_local.clear();
    }

    // Truncation guard: the set-partitioning ILP needs a singleton per node
    // to stay feasible. If the candidate cap cut enumeration short, append
    // any singletons that were lost (no effect on non-truncated runs).
    if (result.truncated) {
      std::vector<bool> has_singleton(n, false);
      for (const Candidate& c : result.candidates)
        if (c.nodes.size() == 1)
          for (int v = 0; v < n; ++v)
            if (nodes[v] == c.nodes.front()) has_singleton[v] = true;
      for (int v = 0; v < n; ++v) {
        if (has_singleton[v]) continue;
        result.candidates.push_back(singleton_candidate(nodes[v]));
      }
    }
  }
};

}  // namespace

EnumerationResult enumerate_candidates(const CompatibilityGraph& graph,
                                       const lib::Library& library,
                                       const BlockerIndex& blockers,
                                       const std::vector<int>& subgraph,
                                       const EnumerationOptions& options) {
  enumerate_arena.reset();
  Enumerator enumerator{graph, library, blockers, options, enumerate_arena,
                        subgraph};
  enumerator.run();

  static obs::Counter& c_calls = obs::counter("mbr.candidates.calls");
  static obs::Counter& c_found = obs::counter("mbr.candidates.enumerated");
  static obs::Counter& c_dropped =
      obs::counter("flow.candidates.dropped_infinite_weight");
  static obs::Histogram& h_per =
      obs::histogram("mbr.candidates.per_subgraph");
  c_calls.add(1);
  c_found.add(static_cast<std::int64_t>(enumerator.result.candidates.size()));
  c_dropped.add(enumerator.result.dropped_infinite_weight);
  h_per.record(static_cast<std::int64_t>(enumerator.result.candidates.size()));
  return std::move(enumerator.result);
}

}  // namespace mbrc::mbr
