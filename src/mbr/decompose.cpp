#include "mbr/decompose.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mbrc::mbr {

namespace {

using netlist::CellId;
using netlist::Design;
using netlist::NetId;
using netlist::PinId;
using netlist::PinRole;

bool eligible(const Design& design, CellId cell_id,
              const DecomposeOptions& options,
              const sta::TimingReport* timing) {
  const netlist::Cell& cell = design.cell(cell_id);
  if (cell.dead || cell.kind != netlist::CellKind::kRegister) return false;
  if (cell.fixed || cell.size_only) return false;
  if (cell.reg->bits < options.min_bits) return false;
  if (cell.reg->bits % options.piece_bits != 0) return false;
  // Ordered scan sections pin the whole register's chain position; keep
  // those intact (splitting would need section renumbering).
  if (cell.scan.section >= 0) return false;
  if (timing != nullptr) {
    // Gate on the worst *constrained* bit of the bank: register_d_slack /
    // register_q_slack each minimize over the bank's constrained pins of
    // that side, so min(d, q) is the tightest slack any bit actually has
    // (kNoRequired is +infinity, so an unconstrained side drops out of the
    // min on its own). The earlier useful-skew-balanced average (d+q)/2
    // assumed a clock offset the flow only ever grants to *new* MBRs: a
    // bank whose D side was critical but Q side comfortable averaged above
    // the gate and was split even though its pieces' feasible regions were
    // pinned by the real (unskewed) slack -- they could never move, so the
    // split only paid the lost area/cap sharing.
    const double d = timing->register_d_slack(design, cell_id);
    const double q = timing->register_q_slack(design, cell_id);
    const double budget = std::min(d, q);
    if (budget != sta::kNoRequired && budget < options.min_slack)
      return false;
  }
  return decompose_piece_cell(design.library(), cell.reg->function,
                              options.piece_bits) != nullptr;
}

}  // namespace

const lib::RegisterCell* decompose_piece_cell(
    const lib::Library& library, const lib::RegisterFunction& function,
    int bits) {
  const auto cells = library.cells_for(function, bits);
  const lib::RegisterCell* best = nullptr;
  for (const lib::RegisterCell* cell : cells) {
    if (cell->scan_style == lib::ScanStyle::kPerBitPins) continue;
    if (best == nullptr || cell->drive_resistance > best->drive_resistance)
      best = cell;
  }
  return best;
}

void split_register(netlist::Design& design, CellId cell_id, int piece_bits,
                    DecomposeResult& result) {
  const netlist::Cell& cell = design.cell(cell_id);
  const lib::RegisterCell* piece = decompose_piece_cell(
      design.library(), cell.reg->function, piece_bits);
  MBRC_ASSERT_MSG(piece != nullptr && cell.reg->bits % piece_bits == 0,
                  "split_register: caller must check eligibility");
  const int pieces = cell.reg->bits / piece_bits;

  // Record connectivity before removing the original.
  struct BitNets {
    NetId d, q;
  };
  std::vector<BitNets> bits(cell.reg->bits);
  for (int b = 0; b < cell.reg->bits; ++b) {
    const PinId d = design.register_d_pin(cell_id, b);
    const PinId q = design.register_q_pin(cell_id, b);
    bits[b] = {design.pin(d).net, design.pin(q).net};
  }
  const NetId clock = design.register_clock_net(cell_id);
  const auto control = [&](PinRole role) {
    const PinId pin = design.register_control_pin(cell_id, role);
    return pin.valid() ? design.pin(pin).net : NetId{};
  };
  const NetId reset = control(PinRole::kReset);
  const NetId set = control(PinRole::kSet);
  const NetId enable = control(PinRole::kEnable);
  const NetId scan_enable = control(PinRole::kScanEnable);
  const geom::Point origin = cell.position;
  const std::string base_name = cell.name;
  const netlist::ScanInfo scan = cell.scan;
  const int gating = cell.gating_group;
  const double original_width = cell.reg->width;

  design.remove_cell(cell_id);

  std::vector<CellId> group;
  for (int p = 0; p < pieces; ++p) {
    // Pieces are distributed over the original footprint (their summed
    // width slightly exceeds it -- sharing lost); the follow-up
    // legalization resolves the small overlaps with minimal displacement.
    const double pitch = std::max(piece->width, original_width / pieces);
    const geom::Point position{origin.x + p * pitch, origin.y};
    const CellId new_cell = design.add_register(
        base_name + "_p" + std::to_string(p), piece, position);
    netlist::Cell& created = design.cell(new_cell);
    created.scan = scan;
    created.gating_group = gating;

    if (clock.valid())
      design.connect(design.register_clock_pin(new_cell), clock);
    const auto connect_control = [&](PinRole role, NetId net) {
      if (!net.valid()) return;
      const PinId pin = design.register_control_pin(new_cell, role);
      MBRC_ASSERT(pin.valid());
      design.connect(pin, net);
    };
    connect_control(PinRole::kReset, reset);
    connect_control(PinRole::kSet, set);
    connect_control(PinRole::kEnable, enable);
    connect_control(PinRole::kScanEnable, scan_enable);

    for (int b = 0; b < piece_bits; ++b) {
      const BitNets& nets = bits[p * piece_bits + b];
      if (nets.d.valid())
        design.connect(design.register_d_pin(new_cell, b), nets.d);
      if (nets.q.valid())
        design.connect(design.register_q_pin(new_cell, b), nets.q);
    }
    result.pieces.push_back(new_cell);
    group.push_back(new_cell);
    ++result.pieces_created;
  }
  result.sibling_groups.push_back(std::move(group));
  ++result.registers_split;
}

DecomposeResult decompose_registers(netlist::Design& design,
                                    const DecomposeOptions& options,
                                    const sta::TimingReport* timing) {
  MBRC_ASSERT(options.piece_bits >= 1 &&
              options.piece_bits < options.min_bits);
  DecomposeResult result;
  for (CellId cell_id : design.registers()) {
    if (!eligible(design, cell_id, options, timing)) continue;
    split_register(design, cell_id, options.piece_bits, result);
  }
  return result;
}

RecombineResult recombine_unused_pieces(
    netlist::Design& design, const DecomposeResult& decomposition) {
  RecombineResult result;
  for (const auto& group : decomposition.sibling_groups) {
    bool all_alive = true;
    int total_bits = 0;
    for (CellId piece : group) {
      if (design.cell(piece).dead) {
        all_alive = false;
        break;
      }
      total_bits += design.cell(piece).reg->bits;
    }
    if (!all_alive || group.empty()) continue;

    const netlist::Cell& first = design.cell(group.front());
    const lib::RegisterCell* wide = decompose_piece_cell(
        design.library(), first.reg->function, total_bits);
    if (wide == nullptr) continue;

    // Gather connectivity in piece order, then rebuild the original.
    std::vector<NetId> d_nets, q_nets;
    for (CellId piece : group) {
      for (int b = 0; b < design.cell(piece).reg->bits; ++b) {
        d_nets.push_back(
            design.pin(design.register_d_pin(piece, b)).net);
        q_nets.push_back(
            design.pin(design.register_q_pin(piece, b)).net);
      }
    }
    const NetId clock = design.register_clock_net(group.front());
    const auto control = [&](PinRole role) {
      const PinId pin = design.register_control_pin(group.front(), role);
      return pin.valid() ? design.pin(pin).net : NetId{};
    };
    const NetId reset = control(PinRole::kReset);
    const NetId set = control(PinRole::kSet);
    const NetId enable = control(PinRole::kEnable);
    const NetId scan_enable = control(PinRole::kScanEnable);
    const geom::Point origin = first.position;
    std::string name = first.name;
    if (const auto cut = name.rfind("_p"); cut != std::string::npos)
      name.resize(cut);
    const netlist::ScanInfo scan = first.scan;
    const int gating = first.gating_group;

    for (CellId piece : group) design.remove_cell(piece);

    const CellId restored = design.add_register(name + "_r", wide, origin);
    netlist::Cell& cell = design.cell(restored);
    cell.scan = scan;
    cell.gating_group = gating;
    if (clock.valid())
      design.connect(design.register_clock_pin(restored), clock);
    const auto connect_control = [&](PinRole role, NetId net) {
      if (!net.valid()) return;
      const PinId pin = design.register_control_pin(restored, role);
      MBRC_ASSERT(pin.valid());
      design.connect(pin, net);
    };
    connect_control(PinRole::kReset, reset);
    connect_control(PinRole::kSet, set);
    connect_control(PinRole::kEnable, enable);
    connect_control(PinRole::kScanEnable, scan_enable);
    for (std::size_t b = 0; b < d_nets.size(); ++b) {
      if (d_nets[b].valid())
        design.connect(design.register_d_pin(restored, static_cast<int>(b)),
                       d_nets[b]);
      if (q_nets[b].valid())
        design.connect(design.register_q_pin(restored, static_cast<int>(b)),
                       q_nets[b]);
    }
    result.restored.push_back(restored);
    ++result.groups_restored;
  }
  return result;
}

}  // namespace mbrc::mbr
