// Heuristic MBR allocation baseline (Fig. 6 comparison).
//
// The paper compares its ILP against "a maximal clique identification and
// MBR mapping heuristic" in the style of refs [8]/[12]. This baseline is a
// single pass: identify the maximal cliques of each compatibility subgraph
// (Bron-Kerbosch), map each clique to the widest fitting library width by
// trimming its farthest-from-centroid members, then commit greedily --
// most bits first -- skipping cliques that touch already-committed
// registers. No placement-aware weights, no incomplete MBRs, no exact
// cover: a big clique taken early strands its overlap-neighbors as
// singletons, which is precisely the fragmentation the set-partitioning
// ILP avoids (the paper reports ~12% fewer registers from the ILP).
#pragma once

#include "mbr/composition.hpp"

namespace mbrc::mbr {

/// Produces a CompositionPlan using the greedy maximal-clique heuristic
/// instead of the ILP; the plan is interchangeable with
/// plan_composition()'s downstream.
CompositionPlan plan_composition_heuristic(
    const netlist::Design& design, const sta::TimingReport& timing,
    const CompositionOptions& options = {});

}  // namespace mbrc::mbr
