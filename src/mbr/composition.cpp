#include "mbr/composition.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "util/assert.hpp"

namespace mbrc::mbr {

std::vector<const Selection*> CompositionPlan::merges() const {
  std::vector<const Selection*> out;
  for (const Selection& s : selections)
    if (s.candidate.nodes.size() >= 2) out.push_back(&s);
  return out;
}

ilp::SetPartitionResult solve_subgraph(
    const std::vector<int>& subgraph, const std::vector<Candidate>& candidates,
    const ilp::SetPartitionOptions& options) {
  // Map graph node ids to dense element ids. partition_graph hands out each
  // subgraph sorted ascending, so the dense id is the node's rank.
  const auto element_of = [&](int node) {
    const auto it = std::lower_bound(subgraph.begin(), subgraph.end(), node);
    MBRC_ASSERT_MSG(it != subgraph.end() && *it == node,
                    "candidate references node outside its subgraph");
    return static_cast<int>(it - subgraph.begin());
  };

  ilp::SetPartitionProblem problem;
  problem.element_count = static_cast<int>(subgraph.size());
  problem.candidates.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    ilp::SetPartitionCandidate spc;
    spc.weight = c.weight;
    spc.elements.reserve(c.nodes.size());
    for (int node : c.nodes) spc.elements.push_back(element_of(node));
    problem.candidates.push_back(std::move(spc));
  }
  return ilp::solve_set_partition(problem, options);
}

namespace {

// Shared back half of plan_composition / plan_composition_region: enumerate
// and solve the given subgraphs over an already-built graph, then reduce
// into the plan in deterministic order.
void plan_over_subgraphs(CompositionPlan& plan, const netlist::Design& design,
                         const std::vector<std::vector<int>>& subgraphs,
                         const CompositionOptions& options) {
  const BlockerIndex blockers(plan.graph);
  plan.subgraph_count = static_cast<int>(subgraphs.size());

  // Per-subgraph fan-out: enumeration and the branch & bound solve are
  // fused into one task per subgraph (better load balance than two barrier
  // stages), each writing its own pre-sized slot. The reduction below runs
  // on this thread in subgraph order, so the plan is identical to the
  // serial loop at any job count.
  struct SubgraphOutcome {
    EnumerationResult enumeration;
    ilp::SetPartitionResult solved;
  };
  const std::vector<SubgraphOutcome> outcomes = runtime::parallel_transform(
      &runtime::ThreadPool::global(), options.jobs, subgraphs,
      [&](const std::vector<int>& subgraph) {
        obs::Span span("plan.subgraph");
        SubgraphOutcome outcome;
        outcome.enumeration =
            enumerate_candidates(plan.graph, design.library(), blockers,
                                 subgraph, options.enumeration);
        outcome.solved = solve_subgraph(
            subgraph, outcome.enumeration.candidates, options.solver);
        return outcome;
      });

  for (const SubgraphOutcome& outcome : outcomes) {
    const EnumerationResult& enumeration = outcome.enumeration;
    plan.candidate_count +=
        static_cast<std::int64_t>(enumeration.candidates.size());
    if (enumeration.truncated) ++plan.truncated_subgraphs;

    const ilp::SetPartitionResult& solved = outcome.solved;
    MBRC_ASSERT_MSG(solved.feasible,
                    "subgraph ILP infeasible despite singleton candidates");
    plan.ilp_nodes += solved.nodes_explored;
    plan.objective += solved.objective;

    for (int index : solved.chosen) {
      Selection selection;
      selection.candidate = enumeration.candidates[index];
      for (int node : selection.candidate.nodes)
        selection.members.push_back(plan.graph.node(node).cell);
      plan.selections.push_back(std::move(selection));
    }
  }

  // Deterministic order: by first member cell id.
  std::sort(plan.selections.begin(), plan.selections.end(),
            [](const Selection& a, const Selection& b) {
              return a.members.front() < b.members.front();
            });
}

}  // namespace

namespace {

// The flow-wide jobs knob also drives the compatibility-graph fan-out.
CompatibilityOptions compatibility_with_jobs(const CompositionOptions& options) {
  CompatibilityOptions compatibility = options.compatibility;
  compatibility.jobs = options.jobs;
  return compatibility;
}

}  // namespace

CompositionPlan plan_composition(const netlist::Design& design,
                                 const sta::TimingReport& timing,
                                 const CompositionOptions& options) {
  CompositionPlan plan;
  plan.graph =
      build_compatibility_graph(design, timing, compatibility_with_jobs(options));
  const auto subgraphs = partition_graph(plan.graph, design, options.partition);
  plan_over_subgraphs(plan, design, subgraphs, options);
  return plan;
}

CompositionPlan plan_composition_region(
    const netlist::Design& design, const sta::TimingReport& timing,
    const std::vector<netlist::CellId>& region,
    const CompositionOptions& options) {
  CompositionPlan plan;
  plan.graph =
      build_compatibility_graph(design, timing, compatibility_with_jobs(options));

  std::vector<netlist::CellId> sorted_region = region;
  std::sort(sorted_region.begin(), sorted_region.end());

  auto subgraphs = partition_graph(plan.graph, design, options.partition);
  std::erase_if(subgraphs, [&](const std::vector<int>& subgraph) {
    for (int node : subgraph)
      if (std::binary_search(sorted_region.begin(), sorted_region.end(),
                             plan.graph.node(node).cell))
        return false;
    return true;
  });
  plan_over_subgraphs(plan, design, subgraphs, options);
  return plan;
}

}  // namespace mbrc::mbr
