// MBR allocation: the weighted set-partitioning ILP of Sec. 3.1.
//
// Per compatibility subgraph, every composable register must end up in
// exactly one selected candidate (possibly its own singleton), and the
// selection minimizes the sum of the placement-aware weights. Subgraphs are
// independent, so the global optimum is the union of per-subgraph optima.
#pragma once

#include <vector>

#include "ilp/set_partition.hpp"
#include "mbr/candidates.hpp"
#include "mbr/cliques.hpp"
#include "mbr/compatibility.hpp"

namespace mbrc::mbr {

struct CompositionOptions {
  CompatibilityOptions compatibility;
  PartitionOptions partition;
  EnumerationOptions enumeration;
  ilp::SetPartitionOptions solver;
  /// Thread lanes for the per-subgraph fan-out (candidate enumeration +
  /// branch & bound solve per subgraph). Subgraphs are independent and the
  /// reduction into the plan happens in subgraph order on the calling
  /// thread, so the plan -- selections, objective, node counts -- is
  /// identical at any job count; 1 runs the serial loop.
  int jobs = 1;
};

/// One selected MBR (or kept singleton) after solving the ILP.
struct Selection {
  Candidate candidate;
  std::vector<netlist::CellId> members;  // resolved from candidate.nodes
};

struct CompositionPlan {
  CompatibilityGraph graph;
  std::vector<Selection> selections;   // all, including kept singletons
  double objective = 0.0;              // sum of selected weights
  int subgraph_count = 0;
  std::int64_t candidate_count = 0;
  std::int64_t ilp_nodes = 0;          // branch & bound nodes over all subgraphs
  int truncated_subgraphs = 0;

  /// Selections that actually merge two or more registers.
  std::vector<const Selection*> merges() const;
  /// Final register count implied by the plan (each selection is one cell).
  int planned_register_count() const {
    return static_cast<int>(selections.size());
  }
};

/// Builds the compatibility graph, partitions it, enumerates candidates and
/// solves the per-subgraph ILPs. Does not modify the design.
CompositionPlan plan_composition(const netlist::Design& design,
                                 const sta::TimingReport& timing,
                                 const CompositionOptions& options = {});

/// Incremental planning for the service's recompose_region request: builds
/// the compatibility graph and partition exactly like plan_composition, but
/// enumerates candidates and solves ILPs only for the subgraphs containing
/// at least one cell of `region` (the cells a session's edits touched).
/// Untouched subgraphs are skipped entirely, so the cost scales with the
/// edited neighborhood, not the design. Within the retained subgraphs the
/// plan is identical to the full plan's (subgraphs are independent).
CompositionPlan plan_composition_region(
    const netlist::Design& design, const sta::TimingReport& timing,
    const std::vector<netlist::CellId>& region,
    const CompositionOptions& options = {});

/// Solves one subgraph's ILP given its enumerated candidates; exposed for
/// tests (cross-validation against the generic simplex-based B&B) and for
/// the worked-example bench.
ilp::SetPartitionResult solve_subgraph(
    const std::vector<int>& subgraph, const std::vector<Candidate>& candidates,
    const ilp::SetPartitionOptions& options = {});

}  // namespace mbrc::mbr
