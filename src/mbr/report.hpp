// Machine-readable flow run report (flow_report.json).
//
// One JSON document per run: schema version, FlowOptions echo, both Table-1
// Metrics blocks, flow outcome, per-stage wall times, the run's counter
// delta, and a trace summary. Everything is emitted through the shared
// obs::JsonWriter, so the report, the Chrome trace and the BENCH_*.json
// outputs share one escaping/formatting path.
//
// Lives in mbr (not obs) because it reads FlowResult; obs stays free of
// flow types.
#pragma once

#include <ostream>

namespace mbrc::mbr {

struct FlowOptions;
struct FlowResult;

/// Current value of the report's "schema" field; bump on layout changes so
/// trajectory tooling can branch on it.
inline constexpr int kFlowReportSchema = 1;

void write_flow_report(std::ostream& os, const FlowOptions& options,
                       const FlowResult& result);

}  // namespace mbrc::mbr
