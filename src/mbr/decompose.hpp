// MBR decomposition -- the paper's future-work extension (Sec. 5):
//
//   "To optimize such designs [rich in max-width MBRs, like D4], we plan in
//    the future to consider the decomposition of the initial 8-bit MBRs and
//    their recomposition using the proposed methodology, instead of
//    skipping them completely."
//
// This module implements that: selected wide MBRs are split into smaller
// registers of the same functional class (e.g. one 8-bit into two 4-bit),
// each keeping its bits' D/Q connectivity and the shared control nets. The
// pieces are placed side by side where the original stood, become ordinary
// composable registers, and the regular composition flow then regroups them
// -- now with the freedom to mix them with neighboring registers.
//
// Decomposition is conservative: only registers whose class offers the
// target split width, that are not fixed/size-only, and whose bits are not
// pinned by an ordered scan section are split.
#pragma once

#include <vector>

#include "netlist/design.hpp"
#include "sta/sta.hpp"

namespace mbrc::mbr {

struct DecomposeOptions {
  /// Split registers with at least this many bits.
  int min_bits = 8;
  /// Width of the pieces (must exist in the library for the class).
  int piece_bits = 4;
  /// Only split registers whose useful-skew-balanced slack,
  /// (d_slack + q_slack) / 2, is at least this (ns): critical registers
  /// gain nothing from being split -- their pieces cannot move, so they
  /// could never regroup with neighbors and the split would only pay the
  /// lost area/cap sharing.
  double min_slack = 0.02;
};

struct DecomposeResult {
  int registers_split = 0;
  int pieces_created = 0;
  std::vector<netlist::CellId> pieces;
  /// Pieces grouped by the register they came from (used by
  /// recombine_unused_pieces to undo splits that did not pay off).
  std::vector<std::vector<netlist::CellId>> sibling_groups;
};

/// Splits every eligible wide register of `design` into `piece_bits`-wide
/// pieces. `timing` gates the split on slack (pass nullptr to split
/// regardless). Scan chains touching split registers must be re-stitched
/// afterwards (the flow's restitch pass handles it).
DecomposeResult decompose_registers(netlist::Design& design,
                                    const DecomposeOptions& options = {},
                                    const sta::TimingReport* timing = nullptr);

struct RecombineResult {
  int groups_restored = 0;
  std::vector<netlist::CellId> restored;
};

/// Undoes splits that did not pay off: every sibling group whose pieces all
/// survived composition unmerged is recombined into a single register of
/// the original width at the group's location. Together with
/// decompose_registers this makes the pre-pass a no-lose transform: a piece
/// either joined a new MBR or its group is restored verbatim.
RecombineResult recombine_unused_pieces(netlist::Design& design,
                                        const DecomposeResult& decomposition);

}  // namespace mbrc::mbr
