// MBR decomposition -- the paper's future-work extension (Sec. 5):
//
//   "To optimize such designs [rich in max-width MBRs, like D4], we plan in
//    the future to consider the decomposition of the initial 8-bit MBRs and
//    their recomposition using the proposed methodology, instead of
//    skipping them completely."
//
// This module implements that: selected wide MBRs are split into smaller
// registers of the same functional class (e.g. one 8-bit into two 4-bit),
// each keeping its bits' D/Q connectivity and the shared control nets. The
// pieces are placed side by side where the original stood, become ordinary
// composable registers, and the regular composition flow then regroups them
// -- now with the freedom to mix them with neighboring registers.
//
// Decomposition is conservative: only registers whose class offers the
// target split width, that are not fixed/size-only, and whose bits are not
// pinned by an ordered scan section are split.
#pragma once

#include <vector>

#include "netlist/design.hpp"
#include "sta/sta.hpp"

namespace mbrc::mbr {

struct DecomposeOptions {
  /// Split registers with at least this many bits.
  int min_bits = 8;
  /// Width of the pieces (must exist in the library for the class).
  int piece_bits = 4;
  /// Only split registers whose worst *constrained* bit -- the minimum of
  /// the bank's D-side and Q-side slacks, each already a minimum over the
  /// bank's constrained pins -- has at least this much slack (ns): critical
  /// registers gain nothing from being split. Their pieces cannot move, so
  /// they could never regroup with neighbors and the split would only pay
  /// the lost area/cap sharing.
  double min_slack = 0.02;
};

struct DecomposeResult {
  int registers_split = 0;
  int pieces_created = 0;
  std::vector<netlist::CellId> pieces;
  /// Pieces grouped by the register they came from (used by
  /// recombine_unused_pieces to undo splits that did not pay off).
  std::vector<std::vector<netlist::CellId>> sibling_groups;
};

/// Splits every eligible wide register of `design` into `piece_bits`-wide
/// pieces. `timing` gates the split on slack (pass nullptr to split
/// regardless). Scan chains touching split registers must be re-stitched
/// afterwards (the flow's restitch pass handles it).
DecomposeResult decompose_registers(netlist::Design& design,
                                    const DecomposeOptions& options = {},
                                    const sta::TimingReport* timing = nullptr);

/// The weakest (max drive resistance) non-per-bit-scan cell of the class at
/// `bits`, or nullptr: the piece cell both split passes create (splitting
/// must not waste power; a follow-up mapper or sizing pass re-selects
/// drive). Exposed so the debank pass shares the decompose machinery.
const lib::RegisterCell* decompose_piece_cell(
    const lib::Library& library, const lib::RegisterFunction& function,
    int bits);

/// Splits one register into `piece_bits`-wide pieces of the class's weakest
/// drive variant, preserving per-bit D/Q connectivity, the shared
/// clock/control nets, scan info and the gating group; the original cell is
/// removed and the pieces plus their sibling group are appended to
/// `result`. The caller must have verified eligibility: the library offers
/// the piece width, `bits % piece_bits == 0`, and the register is not
/// pinned by an ordered scan section. Pieces overlap the original footprint
/// and must be legalized, and touched scan chains re-stitched, afterwards.
void split_register(netlist::Design& design, netlist::CellId cell_id,
                    int piece_bits, DecomposeResult& result);

struct RecombineResult {
  int groups_restored = 0;
  std::vector<netlist::CellId> restored;
};

/// Undoes splits that did not pay off: every sibling group whose pieces all
/// survived composition unmerged is recombined into a single register of
/// the original width at the group's location. Together with
/// decompose_registers this makes the pre-pass a no-lose transform: a piece
/// either joined a new MBR or its group is restored verbatim.
RecombineResult recombine_unused_pieces(netlist::Design& design,
                                        const DecomposeResult& decomposition);

}  // namespace mbrc::mbr
