#include "mbr/rewire.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace mbrc::mbr {

namespace {

using netlist::CellId;
using netlist::Design;
using netlist::NetId;
using netlist::PinId;
using netlist::PinRole;

struct BitNets {
  NetId d;
  NetId q;
};

NetId pin_net(const Design& design, PinId pin) {
  return pin.valid() ? design.pin(pin).net : NetId{};
}

}  // namespace

netlist::CellId rewire_candidate(netlist::Design& design,
                                 const CompatibilityGraph& graph,
                                 const Candidate& candidate,
                                 const Mapping& mapping, geom::Point position,
                                 const std::string& name) {
  MBRC_ASSERT(candidate.nodes.size() >= 2);
  const RegisterInfo& first = graph.node(candidate.nodes.front());

  // Shared nets -- identical across members by functional compatibility.
  const NetId clock_net = first.clock_net;
  const NetId reset_net = first.reset_net;
  const NetId set_net = first.set_net;
  const NetId enable_net = first.enable_net;
  const NetId scan_enable_net = first.scan_enable_net;

  // Per-bit data nets in MBR bit order.
  std::vector<BitNets> bit_nets;
  bit_nets.reserve(candidate.bits);
  for (std::size_t i = 0; i < mapping.member_order.size(); ++i) {
    const RegisterInfo& info = graph.node(mapping.member_order[i]);
    for (int b = 0; b < info.bits; ++b) {
      bit_nets.push_back(
          {pin_net(design, design.register_d_pin(info.cell, b)),
           pin_net(design, design.register_q_pin(info.cell, b))});
    }
  }
  MBRC_ASSERT(static_cast<int>(bit_nets.size()) == candidate.bits);

  // Merged scan attributes: a single shared section only when every member
  // belongs to it; the merged order slot is the smallest member order.
  netlist::ScanInfo scan;
  scan.partition = first.scan.partition;
  bool common_section = true;
  int min_order = -1;
  for (int node : candidate.nodes) {
    const netlist::ScanInfo& s = graph.node(node).scan;
    if (s.section != first.scan.section) common_section = false;
    if (s.order >= 0 && (min_order < 0 || s.order < min_order))
      min_order = s.order;
  }
  if (common_section && first.scan.section >= 0) {
    scan.section = first.scan.section;
    scan.order = min_order;
  }

  const int gating_group = graph.node(candidate.nodes.front()).gating_group;

  // Remove the members, then splice in the MBR.
  for (int node : candidate.nodes) design.remove_cell(graph.node(node).cell);

  const CellId mbr = design.add_register(name, mapping.cell, position);
  netlist::Cell& cell = design.cell(mbr);
  cell.scan = scan;
  cell.gating_group = gating_group;

  if (clock_net.valid())
    design.connect(design.register_clock_pin(mbr), clock_net);
  const auto connect_control = [&](PinRole role, NetId net) {
    if (!net.valid()) return;
    const PinId pin = design.register_control_pin(mbr, role);
    MBRC_ASSERT_MSG(pin.valid(), "mapped cell lacks a required control pin");
    design.connect(pin, net);
  };
  connect_control(PinRole::kReset, reset_net);
  connect_control(PinRole::kSet, set_net);
  connect_control(PinRole::kEnable, enable_net);
  connect_control(PinRole::kScanEnable, scan_enable_net);

  for (std::size_t k = 0; k < bit_nets.size(); ++k) {
    const int bit = static_cast<int>(k);
    if (bit_nets[k].d.valid())
      design.connect(design.register_d_pin(mbr, bit), bit_nets[k].d);
    if (bit_nets[k].q.valid())
      design.connect(design.register_q_pin(mbr, bit), bit_nets[k].q);
  }
  return mbr;
}

namespace {

// The scan elements of a register: (SI, SO) pin pairs in chain order.
// Internal-chain (and 1-bit) cells expose a single pair; per-bit cells one
// pair per bit.
std::vector<std::pair<PinId, PinId>> scan_elements(const Design& design,
                                                   CellId reg) {
  std::vector<PinId> si, so;
  for (PinId pin_id : design.cell(reg).pins) {
    const netlist::Pin& p = design.pin(pin_id);
    if (p.role == PinRole::kScanIn) si.push_back(pin_id);
    if (p.role == PinRole::kScanOut) so.push_back(pin_id);
  }
  auto by_bit = [&](PinId a, PinId b) {
    return design.pin(a).bit < design.pin(b).bit;
  };
  std::sort(si.begin(), si.end(), by_bit);
  std::sort(so.begin(), so.end(), by_bit);
  MBRC_ASSERT(si.size() == so.size());
  std::vector<std::pair<PinId, PinId>> out;
  for (std::size_t i = 0; i < si.size(); ++i) out.emplace_back(si[i], so[i]);
  return out;
}

}  // namespace

RestitchStats restitch_scan_chains(netlist::Design& design) {
  RestitchStats stats;

  std::map<int, std::vector<CellId>> partitions;
  for (CellId reg : design.registers()) {
    const netlist::Cell& cell = design.cell(reg);
    if (!cell.reg->function.is_scan || cell.scan.partition < 0) continue;
    partitions[cell.scan.partition].push_back(reg);
  }

  for (auto& [partition, regs] : partitions) {
    ++stats.chains;
    stats.registers += static_cast<int>(regs.size());

    // Drop the old chain links.
    for (CellId reg : regs)
      for (auto [si, so] : scan_elements(design, reg)) {
        design.disconnect(si);
        design.disconnect(so);
      }

    // Chain order: ordered sections first, in (section, order) sequence;
    // then the free registers by geometric nearest-neighbor from the tail.
    std::vector<CellId> ordered, free_regs;
    for (CellId reg : regs) {
      (design.cell(reg).scan.section >= 0 ? ordered : free_regs)
          .push_back(reg);
    }
    std::sort(ordered.begin(), ordered.end(), [&](CellId a, CellId b) {
      const netlist::ScanInfo& sa = design.cell(a).scan;
      const netlist::ScanInfo& sb = design.cell(b).scan;
      if (sa.section != sb.section) return sa.section < sb.section;
      if (sa.order != sb.order) return sa.order < sb.order;
      return a < b;
    });

    std::vector<CellId> chain = std::move(ordered);
    geom::Point cursor = chain.empty()
                             ? geom::Point{design.core().xlo, design.core().ylo}
                             : design.cell(chain.back()).position;
    std::vector<CellId> remaining = std::move(free_regs);
    while (!remaining.empty()) {
      std::size_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        const double d =
            geom::manhattan(cursor, design.cell(remaining[i]).position);
        if (d < best_dist) {
          best_dist = d;
          best = i;
        }
      }
      chain.push_back(remaining[best]);
      cursor = design.cell(remaining[best]).position;
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));
    }

    // Link consecutive scan elements with fresh nets.
    PinId previous_so;
    for (CellId reg : chain) {
      for (auto [si, so] : scan_elements(design, reg)) {
        if (previous_so.valid()) {
          const NetId net = design.create_net(false);
          design.connect(previous_so, net);
          design.connect(si, net);
          ++stats.links;
        }
        previous_so = so;
      }
    }
  }
  return stats;
}

}  // namespace mbrc::mbr
