#include "mbr/flow.hpp"

#include <algorithm>
#include <fstream>
#include <future>
#include <unordered_set>

#include "mbr/report.hpp"
#include "obs/counters.hpp"
#include "sta/timing_engine.hpp"
#include "util/assert.hpp"
#include "util/stopwatch.hpp"

namespace mbrc::mbr {

Metrics evaluate_design(const netlist::Design& design,
                        const FlowOptions& options, const sta::SkewMap& skew,
                        sta::TimingEngine* engine) {
  Metrics m;
  m.design = design.stats();

  sta::TimingOptions timing_options = options.timing;
  timing_options.jobs = options.jobs;

  // The three substrates (STA, CTS estimate, congestion map) only read the
  // design; with parallel lanes enabled the estimates run on the pool while
  // STA occupies the remaining lanes. Each writes its own result slot, so
  // the metrics are identical to the serial order below.
  runtime::ThreadPool& pool = runtime::ThreadPool::global();
  const bool overlap = options.jobs > 1;
  std::future<cts::ClockTreeStats> tree_future;
  std::future<route::CongestionMap> congestion_future;
  // Both tasks capture this frame by reference, and engine->update/run_sta
  // below can throw before the help_get calls collect them; the drain
  // guard blocks every exit path until the watched futures settle.
  runtime::FutureDrain frame_drain(pool);
  if (overlap) {
    tree_future = pool.async(
        [&] { return cts::estimate_clock_tree(design, options.cts); });
    frame_drain.watch(tree_future);
    congestion_future = pool.async(
        [&] { return route::estimate_congestion(design, options.route); });
    frame_drain.watch(congestion_future);
  }

  const sta::TimingReport& timing =
      engine ? engine->update(skew) : run_sta(design, timing_options, skew);
  m.wns = timing.wns();
  m.tns = timing.tns();
  m.failing_endpoints = timing.failing_endpoints();
  m.total_endpoints = timing.total_endpoints();
  m.hold_wns = timing.hold_wns();
  m.failing_hold_endpoints = timing.failing_hold_endpoints();

  for (netlist::CellId reg : design.registers())
    if (is_composable(design, reg)) ++m.composable_registers;

  const cts::ClockTreeStats tree =
      overlap ? runtime::help_get(pool, std::move(tree_future))
              : cts::estimate_clock_tree(design, options.cts);
  m.clock_buffers = tree.buffers;
  m.clock_cap = tree.total_cap();
  m.clock_wire = tree.wire_length;
  m.signal_wire = design.wire_length().other;

  // Clock dynamic power at Vdd = 0.9 V (28 nm-ish) and f = 1 / period:
  // fF * GHz * V^2 = uW. Registers' internal clock loads are inside the
  // clock_pin_cap model, so total_cap() is the switched capacitance.
  const double vdd = 0.9;
  const double f_ghz = 1.0 / options.timing.clock_period;
  m.clock_power_uw = m.clock_cap * vdd * vdd * f_ghz * 1e-3;
  for (netlist::CellId id : design.live_cells()) {
    const netlist::Cell& cell = design.cell(id);
    if (cell.kind == netlist::CellKind::kRegister)
      m.leakage_nw += cell.reg->leakage;
  }

  const route::CongestionMap congestion =
      overlap ? runtime::help_get(pool, std::move(congestion_future))
              : route::estimate_congestion(design, options.route);
  m.overflow_edges = congestion.overflow_edges();
  m.max_congestion = congestion.max_utilization();
  return m;
}

// Downsizes (or upsizes) each new MBR to the weakest drive variant whose
// Q-side slack stays non-negative.
void size_new_mbrs(netlist::Design& design,
                   const std::vector<netlist::CellId>& new_cells,
                   const sta::SkewMap& skew, sta::TimingEngine& engine) {
  if (new_cells.empty()) return;
  // Sizing is placement-aware: a wider variant is only eligible when the
  // extra sites to the right of the cell's current footprint are free, so
  // swaps never create overlaps and no cell moves after its timing was
  // measured (a post-sizing re-legalization move would invalidate the very
  // slacks the decision was based on).
  place::RowGrid grid = place::build_occupancy(design);

  for (netlist::CellId cell_id : new_cells) {
    // Re-query per cell: each accepted swap edits the design under the
    // loop's feet. A different drive variant has a different footprint, so
    // the swap moves the cell's pins and stretches (or shrinks) every net
    // touching it -- including nets *driven by other registers in this
    // list*. A neighbor sized against the pre-swap report keeps a Q slack
    // that no longer exists and skips the upsize that would repair it (or
    // upsizes for slack it no longer lacks). The engine's dirty-cone
    // repair makes the per-swap re-query cheap.
    const sta::TimingReport& timing = engine.update(skew);
    const netlist::Cell& cell = design.cell(cell_id);
    const lib::RegisterCell* current = cell.reg;

    // Drive variants of the same function/width/scan style, weakest first.
    auto variants =
        design.library().cells_for(current->function, current->bits);
    std::erase_if(variants, [&](const lib::RegisterCell* v) {
      return v->scan_style != current->scan_style;
    });
    std::sort(variants.begin(), variants.end(),
              [](const lib::RegisterCell* a, const lib::RegisterCell* b) {
                if (a->drive_resistance != b->drive_resistance)
                  return a->drive_resistance > b->drive_resistance;
                return a->name < b->name;
              });
    if (variants.size() <= 1) continue;

    const double q_slack = timing.register_q_slack(design, cell_id);
    if (q_slack == sta::kNoRequired) continue;

    // Margin available for weakening the drive: extra delay the Q paths can
    // absorb. delay = R * load, so a variant is acceptable when
    // (R_variant - R_current) * load <= q_slack.
    double load = 0.0;
    for (int b = 0; b < current->bits; ++b) {
      const netlist::PinId q = design.register_q_pin(cell_id, b);
      const netlist::Pin& p = design.pin(q);
      if (!p.net.valid()) continue;
      load = std::max(load, design.net_hpwl(p.net) * 0.2);
      for (netlist::PinId s : design.net(p.net).sinks)
        load += design.pin(s).cap;
    }

    const double q_hold = timing.register_q_hold_slack(design, cell_id);
    const int row = grid.row_of(cell.position.y);
    for (const lib::RegisterCell* variant : variants) {
      if (variant->width > current->width + 1e-9 &&
          !grid.is_free(row, cell.position.x + current->width,
                        variant->width - current->width))
        continue;  // wider footprint would overlap a neighbor (or the edge)
      const double extra =
          (variant->drive_resistance - current->drive_resistance) * load *
          1e-3;  // kOhm * fF -> ns; negative = faster launch (upsizing)
      if (extra > q_slack * 0.75) continue;  // keep 25% setup margin
      // Hold awareness: upsizing launches min-paths earlier into the
      // downstream captures; never spend more than the hold slack there.
      if (extra < 0 && q_hold != sta::kNoRequired &&
          -extra > std::max(0.0, q_hold - 0.005))
        continue;
      if (variant != current) {
        design.swap_register_cell(cell_id, variant);
        grid.release(row, cell.position.x);
        grid.occupy(row, cell.position.x, variant->width, cell_id);
      }
      break;
    }
  }
}

namespace {

// Outcome of applying one composition plan's merges (map -> place ->
// rewire); the flow runs this once for the main plan and once per
// bank/debank loop iteration for the scoped recomposition plans.
struct ApplyOutcome {
  std::vector<netlist::CellId> new_cells;
  int mbrs_created = 0;
  int registers_merged = 0;      // members absorbed into new MBRs
  int rejected_at_mapping = 0;   // selections dropped by Sec. 4.1 rules
  int incomplete_mbrs = 0;
};

// Applies the plan's merges: mapping and the per-MBR LP placement solves
// fan out over the pool as a *speculative* pass against the pre-apply
// design, each task writing its own pre-sized slot. map_candidate reads
// only the library and the plan graph, so its result never depends on
// apply order. place_mbr reads exactly the members' D/Q nets; each task
// records that read set, and the serial rewire loop below replays the
// solve in place for the few selections whose read set intersects a net an
// earlier rewire touched. Untouched selections keep the speculative bytes,
// touched ones are recomputed at the same point the serial loop would have
// -- the stage output is bit-identical to the serial flow at any `jobs`.
// New MBRs are named `name_prefix` + a per-call counter; callers must keep
// prefixes distinct across calls.
ApplyOutcome apply_plan_merges(netlist::Design& design,
                               const CompositionPlan& plan,
                               const FlowOptions& options,
                               const std::string& name_prefix) {
  ApplyOutcome result;
  const std::vector<const Selection*> merges = plan.merges();

  struct Prepared {
    std::optional<Mapping> mapping;
    geom::Point position;
    std::vector<std::int32_t> read_nets;  // member D/Q nets, sorted unique
  };
  const std::vector<Prepared> prepared = runtime::parallel_transform(
      &runtime::ThreadPool::global(), options.jobs, merges,
      [&](const Selection* selection) {
        obs::Span span("apply.map_place");
        Prepared p;
        p.mapping = map_candidate(design, plan.graph, selection->candidate,
                                  options.mapping);
        if (!p.mapping) return p;
        p.position = place_mbr(design, plan.graph, selection->candidate,
                               *p.mapping, options.placement);
        for (int node : selection->candidate.nodes) {
          const RegisterInfo& info = plan.graph.node(node);
          for (int bit = 0; bit < info.bits; ++bit) {
            for (const netlist::PinId pin :
                 {design.register_d_pin(info.cell, bit),
                  design.register_q_pin(info.cell, bit)}) {
              if (!pin.valid()) continue;
              const netlist::NetId net = design.pin(pin).net;
              if (net.valid()) p.read_nets.push_back(net.index);
            }
          }
        }
        std::sort(p.read_nets.begin(), p.read_nets.end());
        p.read_nets.erase(
            std::unique(p.read_nets.begin(), p.read_nets.end()),
            p.read_nets.end());
        return p;
      });

  static obs::Counter& replays = obs::counter("flow.apply.replayed");
  std::unordered_set<std::int32_t> touched_nets;
  const auto touch_cell_nets = [&](netlist::CellId id) {
    for (const netlist::PinId pin : design.cell(id).pins) {
      const netlist::NetId net = design.pin(pin).net;
      if (net.valid()) touched_nets.insert(net.index);
    }
  };

  int name_counter = 0;
  for (std::size_t m = 0; m < merges.size(); ++m) {
    const Selection* selection = merges[m];
    const Prepared& p = prepared[m];
    if (!p.mapping) {
      ++result.rejected_at_mapping;
      continue;
    }
    geom::Point position = p.position;
    const bool stale = std::any_of(
        p.read_nets.begin(), p.read_nets.end(),
        [&](std::int32_t net) { return touched_nets.count(net) > 0; });
    if (stale) {
      // An earlier rewire edited a net this solve read; redo it here,
      // where the design state matches the serial loop's.
      replays.add(1);
      position = place_mbr(design, plan.graph, selection->candidate,
                           *p.mapping, options.placement);
    }
    // The write set: every net incident to a member (the rewire moves or
    // drops those pins), plus the new MBR's nets afterwards.
    for (int node : selection->candidate.nodes)
      touch_cell_nets(plan.graph.node(node).cell);
    const netlist::CellId mbr = rewire_candidate(
        design, plan.graph, selection->candidate, *p.mapping, position,
        name_prefix + std::to_string(name_counter++));
    touch_cell_nets(mbr);
    result.new_cells.push_back(mbr);
    ++result.mbrs_created;
    result.registers_merged +=
        static_cast<int>(selection->candidate.nodes.size());
    if (selection->candidate.is_incomplete()) ++result.incomplete_mbrs;
  }
  return result;
}

// Incremental legalization of newly created cells (widest first: they are
// the hardest to fit and have placement priority).
place::LegalizeResult legalize_new_cells(
    netlist::Design& design, const std::vector<netlist::CellId>& cells) {
  std::vector<netlist::CellId> order = cells;
  std::sort(order.begin(), order.end(),
            [&](netlist::CellId a, netlist::CellId b) {
              const double wa = design.cell(a).width();
              const double wb = design.cell(b).width();
              if (wa != wb) return wa > wb;
              return a < b;
            });
  place::RowGrid grid = place::build_occupancy(design, order);
  return place::legalize_cells(design, grid, order);
}

// The flow stages proper; run_composition_flow wraps this with the
// observability envelope (tracer install, counter delta, report files).
FlowResult run_flow_stages(netlist::Design& design,
                           const FlowOptions& options) {
  obs::Span flow_span("flow");
  util::Stopwatch total_clock;
  runtime::Metrics stage_metrics;
  FlowResult result;

  // One jobs knob drives every stage: the copies push it into the nested
  // option structs the stages read.
  sta::TimingOptions timing_options = options.timing;
  timing_options.jobs = options.jobs;
  CompositionOptions composition_options = options.composition;
  composition_options.jobs = options.jobs;
  // The flow-level cost model reaches the candidate weights (and the
  // heuristic's merge gate) through the enumeration options.
  composition_options.enumeration.cost = options.cost;

  // One timing engine spans the whole flow: the timing graph is built once
  // per netlist topology and every later query is an incremental repair.
  // Structural stages (decompose, rewire) bump the design's topology
  // version, so the engine rebuilds exactly when it must; the useful-skew
  // loop and the post-compose queries ride on cheap dirty-cone updates.
  sta::TimingEngine engine(design, timing_options);

  // Flow-integrity checking (FlowOptions::check_level). `expect` tracks
  // which invariants hold at the current point of the flow: mid-flow states
  // legitimately run with dangling scan nets and unlegalized MBRs, and the
  // expectations are restored as the repairing stages run.
  const check::CheckLevel check_level = options.check_level;
  check::DesignChecker::Baseline check_baseline;
  if (check_level != check::CheckLevel::kOff)
    check_baseline = check::DesignChecker::capture(design);
  check::StageExpectations expect;
  const sta::SkewMap no_skew;
  const auto guard = [&](const char* stage, const sta::SkewMap& skew) {
    check::enforce_stage(design, stage, check_level, expect, check_baseline,
                         &engine, skew);
  };

  {
    runtime::StageTimer timer(stage_metrics, "evaluate.before");
    result.before = evaluate_design(design, options, {}, &engine);
  }
  guard("input", no_skew);

  util::Stopwatch compose_clock;

  // Optional pre-pass (the paper's future-work extension): break up wide
  // MBRs so composition can regroup their bits with neighbors. Slack-gated:
  // critical registers stay intact.
  if (options.decompose_wide_mbrs) {
    runtime::StageTimer timer(stage_metrics, "decompose");
    const sta::TimingReport& pre = engine.update();
    result.decomposition =
        decompose_registers(design, options.decompose, &pre);
    timer.add_items(
        static_cast<std::int64_t>(result.decomposition.pieces.size()));
    if (!result.decomposition.pieces.empty()) {
      place::RowGrid grid =
          place::build_occupancy(design, result.decomposition.pieces);
      const place::LegalizeResult legal = place::legalize_cells(
          design, grid, result.decomposition.pieces);
      MBRC_ASSERT_MSG(legal.success, "decomposition legalization failed");
      // Split pieces carry unstitched scan pins and the removed originals
      // leave their chain-link nets dangling until the restitch stage. The
      // splits also inflate the register count until composition and
      // recombination absorb the pieces; the no-increase guarantee is
      // re-armed at the output boundary.
      expect.scan_stitched = false;
      expect.nets_clean = false;
      expect.register_count_bounded = false;
    }
    guard("decompose", no_skew);
  }

  sta::TimingReport timing;
  {
    runtime::StageTimer timer(stage_metrics, "sta.plan");
    timing = engine.update();  // copy: planning reads it across later edits
  }

  {
    runtime::StageTimer timer(stage_metrics, "plan");
    result.plan = options.allocator == Allocator::kIlp
                      ? plan_composition(design, timing, composition_options)
                      : plan_composition_heuristic(design, timing,
                                                   composition_options);
    timer.add_items(result.plan.subgraph_count);
  }
  guard("plan", no_skew);

  // Apply the merges: map -> place -> rewire (speculative parallel
  // map/place, serial rewire with replay -- see apply_plan_merges).
  std::vector<netlist::CellId> new_cells;
  {
    runtime::StageTimer timer(stage_metrics, "apply");
    ApplyOutcome applied =
        apply_plan_merges(design, result.plan, options, "mbrc_");
    new_cells = std::move(applied.new_cells);
    result.mbrs_created = applied.mbrs_created;
    result.registers_merged = applied.registers_merged;
    result.rejected_at_mapping = applied.rejected_at_mapping;
    result.incomplete_mbrs = applied.incomplete_mbrs;
    timer.add_items(result.mbrs_created);
  }
  if (result.mbrs_created > 0) {
    // New MBRs sit at their LP positions (not yet legalized) with
    // unstitched scan pins; the replaced members' chain nets dangle.
    expect.placement_legal = false;
    expect.scan_stitched = false;
    expect.nets_clean = false;
  }
  guard("apply", no_skew);

  // Undo splits whose pieces found no partners (no-lose guarantee of the
  // decomposition pre-pass).
  if (options.decompose_wide_mbrs) {
    const RecombineResult recombined =
        recombine_unused_pieces(design, result.decomposition);
    for (netlist::CellId cell : recombined.restored)
      new_cells.push_back(cell);
  }

  // Incremental legalization of the new MBRs.
  if (!new_cells.empty()) {
    runtime::StageTimer timer(stage_metrics, "legalize");
    timer.add_items(static_cast<std::int64_t>(new_cells.size()));
    result.legalization = legalize_new_cells(design, new_cells);
    MBRC_ASSERT_MSG(result.legalization.success,
                    "MBR legalization failed: core too full");
    expect.placement_legal = true;
    guard("legalize", no_skew);
  }

  {
    runtime::StageTimer timer(stage_metrics, "scan_restitch");
    result.restitch = restitch_scan_chains(design);
  }
  expect.scan_stitched = true;
  expect.nets_clean = true;
  guard("restitch", no_skew);
  result.compose_seconds = compose_clock.seconds();

  // Useful skew on the new MBRs, then sizing under the final skews.
  if (options.apply_useful_skew && !new_cells.empty()) {
    runtime::StageTimer timer(stage_metrics, "useful_skew");
    std::unordered_set<netlist::CellId> allowed(new_cells.begin(),
                                                new_cells.end());
    const auto skew_result = optimize_useful_skew(
        design, timing_options, options.skew, {},
        options.skew_only_new_mbrs ? &allowed : nullptr, &engine);
    result.skew = skew_result.skew;
    timer.add_items(skew_result.iterations_run);
    guard("useful_skew", result.skew);
  }
  if (options.size_new_mbrs) {
    runtime::StageTimer timer(stage_metrics, "size_mbrs");
    size_new_mbrs(design, new_cells, result.skew, engine);
    timer.add_items(static_cast<std::int64_t>(new_cells.size()));
    guard("size_mbrs", result.skew);
  }

  // Bank/debank loop: repeatedly split the most timing-critical MBRs back
  // into narrow registers, re-legalize them, offer them to scoped
  // recomposition with fresh useful skew, and keep the iteration only if
  // the combined cost (FlowOptions::cost) improved without new hold
  // violations. A rejected iteration is rolled back bit-identically via
  // design snapshot/restore and ends the loop -- the accepted cost
  // trajectory is monotone non-increasing by construction.
  bool debank_accepted_any = false;
  if (options.debank_loop) {
    obs::Span debank_span("flow.debank");
    runtime::StageTimer timer(stage_metrics, "debank_loop");
    static obs::Counter& c_iterations = obs::counter("flow.debank.iterations");
    static obs::Counter& c_accepted = obs::counter("flow.debank.accepted");
    static obs::Counter& c_reverted = obs::counter("flow.debank.reverted");
    static obs::Counter& c_mbrs = obs::counter("flow.debank.mbrs_created");
    const auto combined = [&](const Metrics& m) {
      // Power term: dynamic clock power plus leakage, both in uW.
      return options.cost.combined_cost(
          m.tns, m.clock_power_uw + 1e-3 * m.leakage_nw, m.design.area);
    };

    const Metrics entry = evaluate_design(design, options, result.skew,
                                          &engine);
    double best_cost = combined(entry);
    // Hold protection: an iteration may not add failing hold endpoints
    // beyond what the flow already produced (normally zero).
    const int entry_hold_failures = entry.failing_hold_endpoints;

    for (int iter = 0; iter < options.debank.max_iterations; ++iter) {
      obs::Span iter_span("flow.debank.iteration");
      const netlist::Design::Snapshot saved_design = design.snapshot();
      const sta::SkewMap saved_skew = result.skew;

      const sta::TimingReport& critical_timing = engine.update(result.skew);
      const DebankResult split = debank_critical_registers(
          options.debank, design, critical_timing);
      if (split.banks_split == 0) break;  // nothing critical left to try
      c_iterations.add(1);

      FlowResult::DebankIteration record;
      record.banks_split = split.banks_split;
      record.pieces_created = split.pieces_created;
      record.cost_before = best_cost;

      // The removed banks' skews die with them; the pieces start unskewed
      // (the skew pass below may grant them fresh offsets).
      for (netlist::CellId removed : split.removed) result.skew.erase(removed);

      // The pieces overlap the old footprints and carry unstitched scan
      // pins; repair both before planning on the new state.
      expect.placement_legal = false;
      expect.scan_stitched = false;
      expect.nets_clean = false;
      expect.register_count_bounded = false;
      MBRC_ASSERT_MSG(legalize_new_cells(design, split.pieces).success,
                      "debank legalization failed");
      expect.placement_legal = true;
      restitch_scan_chains(design);
      expect.scan_stitched = true;
      expect.nets_clean = true;
      guard("debank.split", result.skew);

      // Scoped recomposition: only the subgraphs touching the freed pieces
      // are re-planned (the service's incremental-planning path), so the
      // iteration cost scales with the perturbation, not the design.
      const sta::TimingReport& replan_timing = engine.update(result.skew);
      CompositionPlan region_plan = plan_composition_region(
          design, replan_timing, split.pieces, composition_options);
      ApplyOutcome applied = apply_plan_merges(
          design, region_plan, options,
          "mbrc_d" + std::to_string(iter) + "_");
      record.mbrs_created = applied.mbrs_created;
      // Merged members die in the rewire; drop their stale skew entries so
      // the map only ever names live registers.
      for (auto it = result.skew.begin(); it != result.skew.end();) {
        if (design.cell(it->first).dead)
          it = result.skew.erase(it);
        else
          ++it;
      }
      if (!applied.new_cells.empty()) {
        expect.placement_legal = false;
        expect.scan_stitched = false;
        expect.nets_clean = false;
        MBRC_ASSERT_MSG(legalize_new_cells(design, applied.new_cells).success,
                        "debank recomposition legalization failed");
        expect.placement_legal = true;
        restitch_scan_chains(design);
        expect.scan_stitched = true;
        expect.nets_clean = true;
      }
      guard("debank.recompose", result.skew);

      // Fresh skew freedom is the point of the split: the surviving pieces
      // and the recomposed MBRs each get their own offset where the old
      // bank had to share one.
      std::vector<netlist::CellId> working = applied.new_cells;
      for (netlist::CellId piece : split.pieces)
        if (!design.cell(piece).dead) working.push_back(piece);
      if (options.apply_useful_skew && !working.empty()) {
        std::unordered_set<netlist::CellId> allowed(working.begin(),
                                                    working.end());
        const auto skew_result = optimize_useful_skew(
            design, timing_options, options.skew, result.skew,
            options.skew_only_new_mbrs ? &allowed : nullptr, &engine);
        result.skew = skew_result.skew;
        guard("debank.useful_skew", result.skew);
      }
      if (options.size_new_mbrs && !working.empty()) {
        size_new_mbrs(design, working, result.skew, engine);
        guard("debank.size_mbrs", result.skew);
      }

      const Metrics trial = evaluate_design(design, options, result.skew,
                                            &engine);
      record.cost_after = combined(trial);
      record.tns = trial.tns;
      record.clock_power_uw = trial.clock_power_uw;
      record.area = trial.design.area;
      const bool improved =
          record.cost_after < best_cost - options.debank.cost_epsilon;
      const bool hold_ok =
          trial.failing_hold_endpoints <= entry_hold_failures;
      record.accepted = improved && hold_ok;
      result.debank_iterations.push_back(record);

      if (record.accepted) {
        debank_accepted_any = true;
        best_cost = record.cost_after;
        result.mbrs_created += applied.mbrs_created;
        result.registers_merged += applied.registers_merged;
        result.rejected_at_mapping += applied.rejected_at_mapping;
        result.incomplete_mbrs += applied.incomplete_mbrs;
        c_accepted.add(1);
        c_mbrs.add(applied.mbrs_created);
      } else {
        // restore() bumps the topology version past every handed-out
        // version, so the engine fully rebuilds on its next update and the
        // later stages see the pre-iteration state bit-identically.
        design.restore(saved_design);
        result.skew = saved_skew;
        c_reverted.add(1);
        break;  // a non-improving perturbation ends the loop
      }
    }
    timer.add_items(
        static_cast<std::int64_t>(result.debank_iterations.size()));
    expect.placement_legal = true;
    expect.scan_stitched = true;
    expect.nets_clean = true;
  }

  {
    runtime::StageTimer timer(stage_metrics, "evaluate.after");
    result.after = evaluate_design(design, options, result.skew, &engine);
  }
  result.final_cost = options.cost.combined_cost(
      result.after.tns,
      result.after.clock_power_uw + 1e-3 * result.after.leakage_nw,
      result.after.design.area);
  // The paper's output guarantee -- composition never increases the
  // register count. An accepted debank iteration deliberately trades count
  // for timing (split pieces may outlive recomposition), so the bound is
  // only enforced when no iteration was kept.
  expect.register_count_bounded = !debank_accepted_any;
  guard("output", result.skew);
  result.total_seconds = total_clock.seconds();
  result.stages = stage_metrics.snapshot();
  return result;
}

}  // namespace

FlowResult run_composition_flow(netlist::Design& design,
                                const FlowOptions& options) {
  // Counter deltas bracket the stages so FlowResult::counters holds only
  // this run's work, comparable across sequential runs and `jobs` values.
  obs::Tracer tracer;
  if (options.trace) {
    tracer.install();
    obs::Tracer::set_thread_label("flow");
  }
  const obs::CountersSnapshot counters_before = obs::counters_snapshot();

  FlowResult result = run_flow_stages(design, options);

  result.counters =
      obs::counters_delta(counters_before, obs::counters_snapshot());
  if (options.trace) {
    // Every stage joined its parallel work, so all spans are closed and the
    // buffers are quiescent — safe to collect.
    tracer.uninstall();
    result.trace = tracer.take();
    if (!options.trace_path.empty()) {
      std::ofstream os(options.trace_path);
      MBRC_ASSERT_MSG(os.good(), "cannot open FlowOptions::trace_path");
      obs::write_chrome_trace(os, result.trace);
    }
  }
  if (!options.report_path.empty()) {
    std::ofstream os(options.report_path);
    MBRC_ASSERT_MSG(os.good(), "cannot open FlowOptions::report_path");
    write_flow_report(os, options, result);
  }
  return result;
}

}  // namespace mbrc::mbr
