// The paper's running example (Figs. 1-3): six registers A..F, where
// A, B, C, D are single-bit, E is a 4-bit MBR from synthesis, and F is a
// 2-bit MBR, with the compatibility edges of Fig. 1 and a placement shaped
// like Fig. 2 (D sits inside the hull of {A, B, C} and of {B, C}; E is off to
// the lower left paired with A and C; F off to the right paired with B and
// C). The library offers {1, 2, 3, 4, 8}-bit MBRs, so 5- and 6-bit cliques
// can only map to incomplete 8-bit cells.
//
// Used by the fig3 bench, the quickstart example and the unit tests.
#pragma once

#include <memory>

#include "mbr/compatibility.hpp"

namespace mbrc::mbr {

struct WorkedExample {
  std::shared_ptr<lib::Library> library;  // widths {1,2,3,4,8}
  CompatibilityGraph graph;               // nodes 0..5 = A..F
  CompatibilityOptions options;           // the options that produce Fig. 1

  static constexpr int kA = 0, kB = 1, kC = 2, kD = 3, kE = 4, kF = 5;
  static const char* node_name(int node);  // "A".."F"
};

/// Builds the example. The graph is constructed through the same pairwise
/// compatibility rules the real flow uses (not hand-wired), so the tests
/// double-check that the rules reproduce Fig. 1's edge set.
WorkedExample make_worked_example();

}  // namespace mbrc::mbr
