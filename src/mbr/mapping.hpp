// MBR mapping (Sec. 4.1): choose the concrete library cell for a selected
// candidate, and the bit order in which the replaced registers occupy it.
//
// The chosen cell must not degrade timing -- its drive resistance must match
// the strongest (minimum-resistance) replaced register -- and among the
// qualifying cells, the one with the lowest clock pin capacitance wins.
// External (per-bit) scan variants are penalized and picked only when the
// scan-order analysis demands them. Incomplete MBRs are additionally
// subject to the flow-level area rule: at most `incomplete_area_overhead`
// above the total area of the replaced registers (Sec. 5 uses 5%).
#pragma once

#include <optional>
#include <string>

#include "mbr/candidates.hpp"
#include "mbr/compatibility.hpp"

namespace mbrc::mbr {

struct MappingOptions {
  /// Max area overhead an incomplete MBR may add over the replaced
  /// registers (fraction; Sec. 5 allows 5%).
  double incomplete_area_overhead = 0.05;
};

struct Mapping {
  const lib::RegisterCell* cell = nullptr;
  /// Members (graph node indices) in MBR bit order; member i's bits occupy
  /// consecutive MBR bit indices starting at `bit_offset[i]`.
  std::vector<int> member_order;
  std::vector<int> bit_offset;
};

/// Maps a candidate to a library cell, or nullopt with `why` set when the
/// candidate must be rejected (no qualifying cell, or incomplete-MBR area
/// overhead above the limit).
std::optional<Mapping> map_candidate(const netlist::Design& design,
                                     const CompatibilityGraph& graph,
                                     const Candidate& candidate,
                                     const MappingOptions& options = {},
                                     std::string* why = nullptr);

}  // namespace mbrc::mbr
