#include "mbr/heuristic.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "util/assert.hpp"

namespace mbrc::mbr {

namespace {

// Trims a maximal clique to the widest library width that fits, dropping
// the member farthest from the clique centroid whenever the bit count has
// no library cell or the common feasible region is empty. Returns the
// trimmed member list (may end up a singleton).
std::vector<int> trim_to_width(const CompatibilityGraph& graph,
                               const std::vector<int>& widths,
                               std::vector<int> members) {
  while (members.size() >= 2) {
    int bits = 0;
    geom::Rect region = geom::Rect::universe();
    geom::Point centroid{0, 0};
    for (int m : members) {
      bits += graph.node(m).bits;
      region = region.intersect(graph.node(m).region);
      centroid = centroid + graph.node(m).center();
    }
    centroid = centroid * (1.0 / static_cast<double>(members.size()));

    if (std::binary_search(widths.begin(), widths.end(), bits) &&
        !region.is_empty())
      return members;

    std::size_t worst = 0;
    double worst_dist = -1.0;
    for (std::size_t i = 0; i < members.size(); ++i) {
      const double d =
          geom::manhattan(centroid, graph.node(members[i]).center());
      if (d > worst_dist) {
        worst_dist = d;
        worst = i;
      }
    }
    members.erase(members.begin() + static_cast<std::ptrdiff_t>(worst));
  }
  return members;
}

}  // namespace

CompositionPlan plan_composition_heuristic(const netlist::Design& design,
                                           const sta::TimingReport& timing,
                                           const CompositionOptions& options) {
  CompositionPlan plan;
  // The flow-wide jobs knob also drives the compatibility-graph fan-out.
  CompatibilityOptions compatibility = options.compatibility;
  compatibility.jobs = options.jobs;
  plan.graph = build_compatibility_graph(design, timing, compatibility);

  const auto subgraphs = partition_graph(plan.graph, design, options.partition);
  plan.subgraph_count = static_cast<int>(subgraphs.size());

  // Per-subgraph fan-out (Bron-Kerbosch + trim + greedy commit per task,
  // each into its own slot); the appends below run in subgraph order, so
  // the plan matches the serial loop at any job count.
  struct SubgraphOutcome {
    std::int64_t clique_count = 0;
    std::vector<Selection> selections;
  };
  std::vector<SubgraphOutcome> outcomes = runtime::parallel_transform(
      &runtime::ThreadPool::global(), options.jobs, subgraphs,
      [&](const std::vector<int>& subgraph) {
    obs::Span span("plan.subgraph");
    SubgraphOutcome outcome;
    if (subgraph.empty()) return outcome;
    const auto widths = design.library().available_widths(
        plan.graph.node(subgraph.front()).lib_cell->function);

    // Single pass, as in the refs-[8]/[12] style baseline: identify the
    // maximal cliques, map each to the widest fitting library cell by
    // trimming its farthest members, then commit greedily (most bits
    // first). Leftover members of overlapping cliques strand as singletons
    // -- exactly the fragmentation the exact ILP avoids.
    const auto cliques = maximal_cliques(plan.graph, subgraph);
    outcome.clique_count = static_cast<std::int64_t>(cliques.size());

    struct Mapped {
      std::vector<int> nodes;
      int bits = 0;
      double spread = 0.0;
    };
    const CostModel& cost = options.enumeration.cost;
    const lib::RegisterFunction function =
        plan.graph.node(subgraph.front()).lib_cell->function;

    std::vector<Mapped> mapped;
    mapped.reserve(cliques.size());
    for (const auto& clique : cliques) {
      auto trimmed = trim_to_width(plan.graph, widths, clique);
      if (trimmed.size() < 2) continue;
      Mapped m;
      m.bits = 0;
      geom::Rect bbox = geom::Rect::empty();
      for (int node : trimmed) {
        m.bits += plan.graph.node(node).bits;
        bbox = bbox.unite(plan.graph.node(node).footprint);
      }
      // Multi-objective gate (mbr/cost.hpp): refuse a merge whose created
      // cell prices worse than the member cells it replaces. With the
      // default model (beta = gamma = 0) both sides are zero and every
      // merge passes, reproducing the plain greedy baseline.
      if (cost.multi_objective()) {
        const lib::RegisterCell* merged =
            design.library().cheapest_cell(function, m.bits);
        // Per-clique fold, serial within this task (not a cross-task
        // reduction, so the order is fixed and deterministic).
        const double replaced = std::accumulate(
            trimmed.begin(), trimmed.end(), 0.0,
            [&](double sum, int node) {
              return sum + cost.cell_cost(*plan.graph.node(node).lib_cell);
            });
        if (merged == nullptr || cost.cell_cost(*merged) >= replaced)
          continue;
      }
      m.spread = bbox.half_perimeter();
      m.nodes = std::move(trimmed);
      mapped.push_back(std::move(m));
    }
    std::sort(mapped.begin(), mapped.end(), [](const Mapped& a,
                                               const Mapped& b) {
      if (a.bits != b.bits) return a.bits > b.bits;
      if (a.spread != b.spread) return a.spread < b.spread;
      return a.nodes < b.nodes;
    });

    std::vector<bool> used(plan.graph.node_count(), false);
    for (const Mapped& m : mapped) {
      bool free_nodes = true;
      for (int node : m.nodes)
        if (used[node]) {
          free_nodes = false;
          break;
        }
      if (!free_nodes) continue;

      geom::Rect region = geom::Rect::universe();
      for (int node : m.nodes)
        region = region.intersect(plan.graph.node(node).region);

      Selection selection;
      selection.candidate.nodes = m.nodes;
      selection.candidate.bits = m.bits;
      selection.candidate.mapped_width = m.bits;
      // The greedy baseline has no placement-aware weight (that is the
      // ILP's edge); price the created cell so the reported objective is
      // comparable across allocators under one cost model.
      selection.candidate.weight = cost.candidate_cost(
          1.0, design.library().cheapest_cell(function, m.bits));
      selection.candidate.needs_per_bit_scan =
          candidate_needs_per_bit_scan(plan.graph, m.nodes);
      selection.candidate.common_region = region;
      for (int node : m.nodes) {
        used[node] = true;
        selection.members.push_back(plan.graph.node(node).cell);
      }
      outcome.selections.push_back(std::move(selection));
    }

    for (int node : subgraph) {
      if (used[node]) continue;
      Selection selection;
      selection.candidate.nodes = {node};
      selection.candidate.bits = plan.graph.node(node).bits;
      selection.candidate.mapped_width = selection.candidate.bits;
      selection.candidate.weight =
          cost.candidate_cost(1.0, plan.graph.node(node).lib_cell);
      selection.candidate.common_region = plan.graph.node(node).region;
      selection.members.push_back(plan.graph.node(node).cell);
      outcome.selections.push_back(std::move(selection));
    }
    return outcome;
  });

  for (SubgraphOutcome& outcome : outcomes) {
    plan.candidate_count += outcome.clique_count;
    for (Selection& selection : outcome.selections)
      plan.selections.push_back(std::move(selection));
  }

  std::sort(plan.selections.begin(), plan.selections.end(),
            [](const Selection& a, const Selection& b) {
              return a.members.front() < b.members.front();
            });
  return plan;
}

}  // namespace mbrc::mbr
