#include "mbr/worked_example.hpp"

#include "util/assert.hpp"

namespace mbrc::mbr {

const char* WorkedExample::node_name(int node) {
  static const char* names[] = {"A", "B", "C", "D", "E", "F"};
  MBRC_ASSERT(node >= 0 && node < 6);
  return names[node];
}

namespace {

RegisterInfo make_node(const lib::Library& library, int bits,
                       geom::Point position, double slack,
                       const CompatibilityOptions& options) {
  const lib::RegisterCell* cell = nullptr;
  for (const lib::RegisterCell* c :
       library.cells_for(lib::RegisterFunction{}, bits)) {
    if (cell == nullptr || c->drive_resistance > cell->drive_resistance)
      cell = c;  // weakest (X1) variant
  }
  MBRC_ASSERT(cell != nullptr);

  RegisterInfo info;
  info.cell = netlist::CellId{};  // no backing design in the worked example
  info.lib_cell = cell;
  info.bits = bits;
  info.footprint = {position.x, position.y, position.x + cell->width,
                    position.y + cell->height};
  const double radius =
      std::min(options.region.max_radius, slack / options.region.delay_per_um);
  info.region = info.footprint.inflate(std::max(0.0, radius));
  info.d_slack = slack;
  info.q_slack = slack;
  info.drive_resistance = cell->drive_resistance;
  info.clock_net = netlist::NetId{0};  // one shared clock
  return info;
}

}  // namespace

WorkedExample make_worked_example() {
  WorkedExample example;
  lib::DefaultLibraryOptions lib_options;
  lib_options.widths = {1, 2, 4, 8};
  lib_options.include_width_3 = true;  // the paper's example library has 3-bit cells
  example.library =
      std::make_shared<lib::Library>(lib::make_default_library(lib_options));

  CompatibilityOptions& options = example.options;
  options.max_distance = 40.0;     // shapes Fig. 1's edge set geometrically
  options.slack_similarity = 0.20;

  // Placement shaped like Fig. 2. Slacks are picked so that timing
  // compatibility removes the D-E and D-F edges (both are geometrically
  // close) while keeping every Fig. 1 edge:
  //   A, B, C: 0.10 ns;  D: 0.02 ns (critical-ish);  E, F: 0.24 ns.
  auto& graph = example.graph;
  graph.add_node(make_node(*example.library, 1, {14.0, 24.0}, 0.10, options));
  graph.add_node(make_node(*example.library, 1, {34.0, 26.0}, 0.10, options));
  graph.add_node(make_node(*example.library, 1, {36.0, 8.0}, 0.10, options));
  graph.add_node(make_node(*example.library, 1, {34.5, 17.0}, 0.02, options));
  graph.add_node(make_node(*example.library, 4, {8.0, 6.0}, 0.24, options));
  graph.add_node(make_node(*example.library, 2, {48.0, 14.0}, 0.24, options));

  // Edges come from the real pairwise rules, not a hand-wired list; the
  // tests assert the result equals Fig. 1's edge set.
  for (int i = 0; i < graph.node_count(); ++i) {
    for (int j = i + 1; j < graph.node_count(); ++j) {
      const RegisterInfo& a = graph.node(i);
      const RegisterInfo& b = graph.node(j);
      if (functionally_compatible(a, b) && scan_compatible(a, b) &&
          placement_compatible(a, b, options) &&
          timing_compatible(a, b, options))
        graph.add_edge(i, j);
    }
  }
  graph.finalize();
  return example;
}

}  // namespace mbrc::mbr
