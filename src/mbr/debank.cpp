#include "mbr/debank.hpp"

#include <algorithm>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace mbrc::mbr {

namespace {

using netlist::CellId;

struct Critical {
  double slack = 0.0;
  CellId cell;
};

bool eligible(const netlist::Design& design, CellId cell_id,
              const DebankOptions& options) {
  const netlist::Cell& cell = design.cell(cell_id);
  if (cell.dead || cell.kind != netlist::CellKind::kRegister) return false;
  if (cell.fixed || cell.size_only) return false;
  const int bits = cell.reg->bits;
  if (bits < std::max(2, options.min_bits)) return false;
  if (bits % options.piece_bits != 0) return false;
  // Ordered scan sections pin the bank's chain position (same rule as the
  // decompose pre-pass).
  if (cell.scan.section >= 0) return false;
  return decompose_piece_cell(design.library(), cell.reg->function,
                              options.piece_bits) != nullptr;
}

}  // namespace

DebankResult debank_critical_registers(const DebankOptions& options,
                                       netlist::Design& design,
                                       const sta::TimingReport& timing) {
  MBRC_ASSERT(options.piece_bits >= 1 &&
              options.piece_bits < std::max(2, options.min_bits));
  obs::Span span("flow.debank.select");
  DebankResult result;

  std::vector<Critical> critical;
  for (CellId cell_id : design.registers()) {
    if (!eligible(design, cell_id, options)) continue;
    // Worst constrained bit of the bank: register_d_slack/register_q_slack
    // minimize over the constrained pins of each side, and kNoRequired is
    // +infinity, so an unconstrained side drops out of the min on its own.
    const double slack = std::min(timing.register_d_slack(design, cell_id),
                                  timing.register_q_slack(design, cell_id));
    if (slack == sta::kNoRequired) continue;  // fully unconstrained
    if (slack >= options.slack_threshold) continue;
    critical.push_back({slack, cell_id});
  }

  // Worst first; ties broken by cell id so the selection is a pure function
  // of (design, timing) -- the flow's jobs-invariance contract.
  std::sort(critical.begin(), critical.end(),
            [](const Critical& a, const Critical& b) {
              if (a.slack != b.slack) return a.slack < b.slack;
              return a.cell < b.cell;
            });
  if (options.max_banks_per_iteration >= 0 &&
      critical.size() >
          static_cast<std::size_t>(options.max_banks_per_iteration))
    critical.resize(static_cast<std::size_t>(options.max_banks_per_iteration));

  DecomposeResult split;
  for (const Critical& c : critical) {
    split_register(design, c.cell, options.piece_bits, split);
    result.removed.push_back(c.cell);
  }
  result.banks_split = split.registers_split;
  result.pieces_created = split.pieces_created;
  result.pieces = std::move(split.pieces);

  static obs::Counter& c_banks = obs::counter("flow.debank.banks_split");
  static obs::Counter& c_pieces = obs::counter("flow.debank.pieces_created");
  c_banks.add(result.banks_split);
  c_pieces.add(result.pieces_created);
  return result;
}

}  // namespace mbrc::mbr
