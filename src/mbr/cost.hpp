// Multi-objective candidate cost (ROADMAP item 4, production extension).
//
// The paper's Sec. 3.2 weight is purely placement/timing driven: 1/b for a
// clean candidate, b * 2^n when blocked. Production MBR flows optimize a
// combined objective instead,
//
//     cost = alpha * Timing + beta * Power + gamma * Area,
//
// (the multi-objective shape of arXiv:2303.09305). This module adds that
// parameterization on two levels sharing one knob set:
//
//   - per candidate: candidate_cost() scales the paper weight by alpha and
//     adds the priced library cell the selection would keep or create
//     (beta * power proxy + gamma * area). The set-partitioning ILP then
//     minimizes the combined cost with no solver change -- the weights ARE
//     the objective. The defaults (alpha=1, beta=gamma=0) reduce exactly to
//     the paper's weight, bit for bit.
//
//   - per design state: combined_cost() folds a measured (TNS, power, area)
//     triple into one scalar; the bank/debank loop in flow.cpp accepts an
//     iteration only when this scalar improves, which is what makes the
//     loop's cost trajectory monotone by construction.
//
// Determinism: the model is a pure function of its inputs (no iteration
// over unordered containers, no time, no randomness), so everything built
// on it stays bit-identical at any `jobs` value.
#pragma once

#include "lib/cells.hpp"

namespace mbrc::mbr {

struct CostModel {
  /// Timing emphasis: scales the paper's placement-aware weight per
  /// candidate and the (-TNS) term of the loop-level combined cost.
  double alpha = 1.0;
  /// Power emphasis: prices a candidate's cell by its power proxy
  /// (clock-pin cap + leakage, lib::RegisterCell::power_proxy) and the
  /// loop-level cost by the design's clock power + leakage (uW).
  double beta = 0.0;
  /// Area emphasis: prices a candidate's cell by its area (um^2) and the
  /// loop-level cost by the design area.
  double gamma = 0.0;

  /// True when the power/area terms participate at all; false means the
  /// model is the paper's pure timing weight (times alpha).
  bool multi_objective() const { return beta != 0.0 || gamma != 0.0; }

  /// beta/gamma price of keeping or creating one physical cell.
  double cell_cost(const lib::RegisterCell& cell) const {
    return beta * cell.power_proxy() + gamma * cell.area;
  }

  /// Combined per-candidate cost: alpha * paper weight plus the priced
  /// cell. `cell` is the candidate's physical outcome -- the register's own
  /// cell for a keep-as-is singleton, the cheapest cell of the mapped width
  /// for a merge (the mapper's stand-in, same convention as the
  /// incomplete-MBR area rule); nullptr (hand-built graphs without library
  /// backing) skips the beta/gamma terms. `paper_weight` must be finite:
  /// infinite-weight candidates are dropped before pricing.
  double candidate_cost(double paper_weight,
                        const lib::RegisterCell* cell) const {
    double cost = alpha * paper_weight;
    if (cell != nullptr) cost += cell_cost(*cell);
    return cost;
  }

  /// Loop-level combined cost of a measured design state. All three terms
  /// are non-negative (TNS <= 0 by definition), so the scalar is
  /// minimized and bounded below by zero.
  double combined_cost(double tns, double power_uw, double area) const {
    const double timing = tns < 0.0 ? -tns : 0.0;
    return alpha * timing + beta * power_uw + gamma * area;
  }
};

}  // namespace mbrc::mbr
