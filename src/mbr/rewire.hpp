// Netlist surgery for MBR composition: replace a group of registers with one
// mapped MBR cell, preserving the D/Q connectivity bit by bit and sharing the
// clock/control nets, then re-stitch the scan chains the merge disturbed.
#pragma once

#include <string>

#include "mbr/mapping.hpp"

namespace mbrc::mbr {

/// Replaces the candidate's member registers with a new MBR instance of
/// `mapping.cell` at `position` (lower-left corner, pre-legalization):
///   - bit i of member k drives/loads the nets its D/Q pins were on,
///   - clock and control pins connect to the shared nets (identical across
///     members by functional compatibility),
///   - scan pins are left unconnected; call restitch_scan_chains() after all
///     merges to rebuild the chains,
///   - members are removed (tombstoned).
/// For incomplete MBRs the extra D/Q pin pairs stay unconnected (tied off).
/// Returns the new cell id.
netlist::CellId rewire_candidate(netlist::Design& design,
                                 const CompatibilityGraph& graph,
                                 const Candidate& candidate,
                                 const Mapping& mapping, geom::Point position,
                                 const std::string& name);

struct RestitchStats {
  int chains = 0;     // scan partitions re-stitched
  int links = 0;      // SO -> SI nets created
  int registers = 0;  // scan registers on the chains
};

/// Rebuilds every scan chain: per partition, ordered sections first (in
/// section/order sequence), then the free registers in a nearest-neighbor
/// geometric order; consecutive registers are linked SO -> SI with fresh
/// nets. Existing SI/SO connections are dropped first. Registers whose MBR
/// has per-bit scan pins are chained through each bit in turn.
RestitchStats restitch_scan_chains(netlist::Design& design);

}  // namespace mbrc::mbr
