#include "mbr/report.hpp"

#include "mbr/flow.hpp"
#include "obs/json.hpp"
#include "util/assert.hpp"

namespace mbrc::mbr {

namespace {

const char* allocator_name(Allocator allocator) {
  switch (allocator) {
    case Allocator::kIlp: return "ilp";
    case Allocator::kHeuristic: return "heuristic";
  }
  return "unknown";
}

void write_metrics(obs::JsonWriter& w, const Metrics& m) {
  w.begin_object()
      .kv("cells", m.design.cells)
      .kv("area", m.design.area)
      .kv("total_registers", m.design.total_registers)
      .kv("register_bits", m.design.register_bits)
      .kv("composable_registers", m.composable_registers)
      .kv("wns", m.wns)
      .kv("tns", m.tns)
      .kv("failing_endpoints", m.failing_endpoints)
      .kv("total_endpoints", m.total_endpoints)
      .kv("hold_wns", m.hold_wns)
      .kv("failing_hold_endpoints", m.failing_hold_endpoints)
      .kv("clock_buffers", m.clock_buffers)
      .kv("clock_cap", m.clock_cap)
      .kv("clock_power_uw", m.clock_power_uw)
      .kv("leakage_nw", m.leakage_nw)
      .kv("clock_wire", m.clock_wire)
      .kv("signal_wire", m.signal_wire)
      .kv("overflow_edges", m.overflow_edges)
      .kv("max_congestion", m.max_congestion)
      .end_object();
}

}  // namespace

void write_flow_report(std::ostream& os, const FlowOptions& options,
                       const FlowResult& result) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", kFlowReportSchema);

  w.key("options").begin_object();
  w.kv("allocator", allocator_name(options.allocator))
      .kv("jobs", options.jobs)
      .kv("clock_period", options.timing.clock_period)
      .kv("decompose_wide_mbrs", options.decompose_wide_mbrs)
      .kv("apply_useful_skew", options.apply_useful_skew)
      .kv("skew_only_new_mbrs", options.skew_only_new_mbrs)
      .kv("size_new_mbrs", options.size_new_mbrs)
      .kv("check_level", static_cast<int>(options.check_level))
      .kv("trace", options.trace);
  w.end_object();

  w.key("table1").begin_object();
  w.key("before");
  write_metrics(w, result.before);
  w.key("after");
  write_metrics(w, result.after);
  w.end_object();

  w.key("flow").begin_object();
  w.kv("mbrs_created", result.mbrs_created)
      .kv("registers_merged", result.registers_merged)
      .kv("rejected_at_mapping", result.rejected_at_mapping)
      .kv("incomplete_mbrs", result.incomplete_mbrs)
      .kv("skewed_registers", result.skew.size())
      .kv("compose_seconds", result.compose_seconds)
      .kv("total_seconds", result.total_seconds);
  w.end_object();

  w.key("stages").begin_object();
  for (const auto& [name, s] : result.stages) {
    w.key(name).begin_object();
    w.kv("seconds", s.seconds).kv("calls", s.calls).kv("items", s.items);
    w.end_object();
  }
  w.end_object();

  w.key("counters").begin_object();
  for (const auto& [name, value] : result.counters.counters)
    w.kv(name, value);
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, hist] : result.counters.histograms) {
    w.key(name).begin_object();
    w.kv("count", hist.count).kv("sum", hist.sum);
    w.key("buckets").begin_object();
    for (const auto& [bucket, n] : hist.buckets)
      w.kv(std::to_string(bucket), n);
    w.end_object();
    w.end_object();
  }
  w.end_object();

  w.key("trace").begin_object();
  w.kv("enabled", options.trace)
      .kv("events", result.trace.events.size())
      .kv("threads", result.trace.thread_names.size());
  w.end_object();

  w.end_object();
  os << '\n';
  MBRC_ASSERT_MSG(w.complete(), "flow report document left unbalanced");
}

}  // namespace mbrc::mbr
