#include "mbr/report.hpp"

#include "mbr/flow.hpp"
#include "obs/json.hpp"
#include "util/assert.hpp"

namespace mbrc::mbr {

namespace {

const char* allocator_name(Allocator allocator) {
  switch (allocator) {
    case Allocator::kIlp: return "ilp";
    case Allocator::kHeuristic: return "heuristic";
  }
  return "unknown";
}

void write_metrics(obs::JsonWriter& w, const Metrics& m) {
  w.begin_object()
      .kv("cells", m.design.cells)
      .kv("area", m.design.area)
      .kv("total_registers", m.design.total_registers)
      .kv("register_bits", m.design.register_bits)
      .kv("composable_registers", m.composable_registers)
      .kv("wns", m.wns)
      .kv("tns", m.tns)
      .kv("failing_endpoints", m.failing_endpoints)
      .kv("total_endpoints", m.total_endpoints)
      .kv("hold_wns", m.hold_wns)
      .kv("failing_hold_endpoints", m.failing_hold_endpoints)
      .kv("clock_buffers", m.clock_buffers)
      .kv("clock_cap", m.clock_cap)
      .kv("clock_power_uw", m.clock_power_uw)
      .kv("leakage_nw", m.leakage_nw)
      .kv("clock_wire", m.clock_wire)
      .kv("signal_wire", m.signal_wire)
      .kv("overflow_edges", m.overflow_edges)
      .kv("max_congestion", m.max_congestion)
      .end_object();
}

}  // namespace

void write_flow_report(std::ostream& os, const FlowOptions& options,
                       const FlowResult& result) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", kFlowReportSchema);

  // Complete echo of FlowOptions, nested to mirror the struct: a report is
  // only reproducible if it records EVERY knob the run used.
  // tests/obs_test.cpp (FlowReport.OptionsEchoIsComplete) pins the exact
  // key-path set and asserts each leaf tracks its field -- extend both when
  // adding an option.
  w.key("options").begin_object();
  w.kv("allocator", allocator_name(options.allocator));
  w.key("timing").begin_object();
  w.kv("clock_period", options.timing.clock_period)
      .kv("wire_cap_per_um", options.timing.wire_cap_per_um)
      .kv("wire_res_per_um", options.timing.wire_res_per_um)
      .kv("input_delay", options.timing.input_delay)
      .kv("output_margin", options.timing.output_margin)
      .kv("jobs", options.timing.jobs);
  w.end_object();
  w.key("composition").begin_object();
  w.key("compatibility").begin_object();
  w.kv("slack_similarity", options.composition.compatibility.slack_similarity)
      .kv("slack_clamp", options.composition.compatibility.slack_clamp)
      .kv("sign_epsilon", options.composition.compatibility.sign_epsilon)
      .kv("max_distance", options.composition.compatibility.max_distance);
  w.key("region").begin_object();
  w.kv("skew_balanced", options.composition.compatibility.region.skew_balanced)
      .kv("delay_per_um", options.composition.compatibility.region.delay_per_um)
      .kv("max_radius", options.composition.compatibility.region.max_radius);
  w.end_object();
  w.end_object();
  w.key("partition").begin_object();
  w.kv("max_nodes", options.composition.partition.max_nodes);
  w.end_object();
  w.key("enumeration").begin_object();
  w.kv("allow_incomplete", options.composition.enumeration.allow_incomplete)
      .kv("incomplete_area_overhead",
          options.composition.enumeration.incomplete_area_overhead)
      .kv("use_weights", options.composition.enumeration.use_weights)
      .kv("max_candidates_per_subgraph",
          static_cast<std::int64_t>(
              options.composition.enumeration.max_candidates_per_subgraph));
  w.end_object();
  w.key("solver").begin_object();
  w.kv("max_nodes", options.composition.solver.max_nodes);
  w.end_object();
  w.kv("jobs", options.composition.jobs);
  w.end_object();
  w.key("mapping").begin_object();
  w.kv("incomplete_area_overhead", options.mapping.incomplete_area_overhead);
  w.end_object();
  w.key("placement").begin_object();
  w.kv("use_lp", options.placement.use_lp);
  w.end_object();
  w.key("cts").begin_object();
  w.kv("wire_cap_per_um", options.cts.wire_cap_per_um)
      .kv("load_utilization", options.cts.load_utilization)
      .kv("max_fanout", options.cts.max_fanout);
  w.end_object();
  w.key("route").begin_object();
  w.kv("gcell_size", options.route.gcell_size)
      .kv("h_capacity", options.route.h_capacity)
      .kv("v_capacity", options.route.v_capacity)
      .kv("pin_demand", options.route.pin_demand);
  w.end_object();
  w.key("cost").begin_object();
  w.kv("alpha", options.cost.alpha)
      .kv("beta", options.cost.beta)
      .kv("gamma", options.cost.gamma);
  w.end_object();
  w.kv("debank_loop", options.debank_loop);
  w.key("debank").begin_object();
  w.kv("slack_threshold", options.debank.slack_threshold)
      .kv("piece_bits", options.debank.piece_bits)
      .kv("min_bits", options.debank.min_bits)
      .kv("max_banks_per_iteration", options.debank.max_banks_per_iteration)
      .kv("max_iterations", options.debank.max_iterations)
      .kv("cost_epsilon", options.debank.cost_epsilon);
  w.end_object();
  w.kv("decompose_wide_mbrs", options.decompose_wide_mbrs);
  w.key("decompose").begin_object();
  w.kv("min_bits", options.decompose.min_bits)
      .kv("piece_bits", options.decompose.piece_bits)
      .kv("min_slack", options.decompose.min_slack);
  w.end_object();
  w.kv("apply_useful_skew", options.apply_useful_skew);
  w.kv("skew_only_new_mbrs", options.skew_only_new_mbrs);
  w.key("skew").begin_object();
  w.kv("iterations", options.skew.iterations)
      .kv("max_abs_skew", options.skew.max_abs_skew)
      .kv("damping", options.skew.damping)
      .kv("hold_margin", options.skew.hold_margin);
  w.end_object();
  w.kv("size_new_mbrs", options.size_new_mbrs);
  w.kv("jobs", options.jobs);
  w.kv("check_level", static_cast<int>(options.check_level));
  w.kv("trace", options.trace);
  w.kv("trace_path", options.trace_path);
  w.kv("report_path", options.report_path);
  w.end_object();

  w.key("table1").begin_object();
  w.key("before");
  write_metrics(w, result.before);
  w.key("after");
  write_metrics(w, result.after);
  w.end_object();

  w.key("flow").begin_object();
  w.kv("mbrs_created", result.mbrs_created)
      .kv("registers_merged", result.registers_merged)
      .kv("rejected_at_mapping", result.rejected_at_mapping)
      .kv("incomplete_mbrs", result.incomplete_mbrs)
      .kv("skewed_registers", result.skew.size())
      .kv("final_cost", result.final_cost)
      .kv("compose_seconds", result.compose_seconds)
      .kv("total_seconds", result.total_seconds);
  w.key("debank_iterations").begin_array();
  for (const auto& it : result.debank_iterations) {
    w.begin_object();
    w.kv("banks_split", it.banks_split)
        .kv("pieces_created", it.pieces_created)
        .kv("mbrs_created", it.mbrs_created)
        .kv("cost_before", it.cost_before)
        .kv("cost_after", it.cost_after)
        .kv("tns", it.tns)
        .kv("clock_power_uw", it.clock_power_uw)
        .kv("area", it.area)
        .kv("accepted", it.accepted);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("stages").begin_object();
  for (const auto& [name, s] : result.stages) {
    w.key(name).begin_object();
    w.kv("seconds", s.seconds).kv("calls", s.calls).kv("items", s.items);
    w.end_object();
  }
  w.end_object();

  w.key("counters").begin_object();
  for (const auto& [name, value] : result.counters.counters)
    w.kv(name, value);
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, hist] : result.counters.histograms) {
    w.key(name).begin_object();
    w.kv("count", hist.count).kv("sum", hist.sum);
    w.key("buckets").begin_object();
    for (const auto& [bucket, n] : hist.buckets)
      w.kv(std::to_string(bucket), n);
    w.end_object();
    w.end_object();
  }
  w.end_object();

  w.key("trace").begin_object();
  w.kv("enabled", options.trace)
      .kv("events", result.trace.events.size())
      .kv("threads", result.trace.thread_names.size());
  w.end_object();

  w.end_object();
  os << '\n';
  MBRC_ASSERT_MSG(w.complete(), "flow report document left unbalanced");
}

}  // namespace mbrc::mbr
