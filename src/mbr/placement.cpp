#include "mbr/placement.hpp"

#include <algorithm>
#include <cmath>

#include "lp/simplex.hpp"
#include "util/assert.hpp"

namespace mbrc::mbr {

std::vector<PinBox> collect_pin_boxes(const netlist::Design& design,
                                      const CompatibilityGraph& graph,
                                      const Candidate& candidate,
                                      const Mapping& mapping) {
  (void)candidate;  // the mapping's member order fully determines the boxes
  std::vector<PinBox> boxes;
  const lib::RegisterCell& cell = *mapping.cell;

  for (std::size_t i = 0; i < mapping.member_order.size(); ++i) {
    const RegisterInfo& info = graph.node(mapping.member_order[i]);
    const netlist::CellId member = info.cell;
    const int base = mapping.bit_offset[i];
    for (int bit = 0; bit < info.bits; ++bit) {
      const int mbr_bit = base + bit;
      // D pin: box over the net's pins other than the member's own.
      const auto add_box = [&](netlist::PinId own, geom::Point offset) {
        if (!own.valid()) return;
        const netlist::NetId net_id = design.pin(own).net;
        if (!net_id.valid()) return;
        const netlist::Net& net = design.net(net_id);
        geom::Rect box = geom::Rect::empty();
        int count = 0;
        if (net.driver.valid() && net.driver != own) {
          box = box.expand(design.pin_position(net.driver));
          ++count;
        }
        for (netlist::PinId s : net.sinks) {
          if (s == own) continue;
          box = box.expand(design.pin_position(s));
          ++count;
        }
        if (count == 0) return;
        boxes.push_back({box, offset});
      };
      add_box(design.register_d_pin(member, bit), cell.d_pin_offsets[mbr_bit]);
      add_box(design.register_q_pin(member, bit), cell.q_pin_offsets[mbr_bit]);
    }
  }
  return boxes;
}

double placement_objective(const std::vector<PinBox>& boxes,
                           geom::Point corner) {
  double total = 0.0;
  for (const PinBox& b : boxes) {
    const double px = corner.x + b.offset.x;
    const double py = corner.y + b.offset.y;
    total += std::max(b.box.xhi, px) - std::min(b.box.xlo, px);
    total += std::max(b.box.yhi, py) - std::min(b.box.ylo, py);
  }
  return total;
}

namespace {

// Minimizes sum_i of flat-valley terms over intervals [lo_i, hi_i]:
// f_i(t) = 0 inside the interval, growing with slope 1 outside. The
// derivative at t is |{hi_i < t}| - |{lo_i > t}|; the minimum sits where it
// first becomes >= 0. Result clamped to [bound_lo, bound_hi].
double valley_minimum(std::vector<double> lows, std::vector<double> highs,
                      double bound_lo, double bound_hi) {
  MBRC_ASSERT(!lows.empty() && lows.size() == highs.size());
  std::sort(lows.begin(), lows.end());
  std::sort(highs.begin(), highs.end());
  const std::size_t n = lows.size();

  // Sweep candidate points: all interval endpoints in ascending order.
  std::vector<double> points;
  points.reserve(2 * n);
  points.insert(points.end(), lows.begin(), lows.end());
  points.insert(points.end(), highs.begin(), highs.end());
  std::sort(points.begin(), points.end());

  double best = points.front();
  for (double t : points) {
    // Derivative immediately right of t.
    const auto below =
        std::lower_bound(highs.begin(), highs.end(), t) - highs.begin();
    const auto above = lows.end() - std::upper_bound(lows.begin(), lows.end(), t);
    const long deriv = static_cast<long>(below) - static_cast<long>(above);
    best = t;
    if (deriv >= 0) break;  // first non-negative derivative: minimum reached
  }
  MBRC_ASSERT(bound_lo <= bound_hi);
  return std::clamp(best, bound_lo, bound_hi);
}

}  // namespace

geom::Point optimal_position_median(const std::vector<PinBox>& boxes,
                                    const geom::Rect& corner_region) {
  if (boxes.empty()) return corner_region.center();
  std::vector<double> lx, hx, ly, hy;
  lx.reserve(boxes.size());
  hx.reserve(boxes.size());
  ly.reserve(boxes.size());
  hy.reserve(boxes.size());
  for (const PinBox& b : boxes) {
    lx.push_back(b.box.xlo - b.offset.x);
    hx.push_back(b.box.xhi - b.offset.x);
    ly.push_back(b.box.ylo - b.offset.y);
    hy.push_back(b.box.yhi - b.offset.y);
  }
  const double x = valley_minimum(std::move(lx), std::move(hx),
                                  corner_region.xlo, corner_region.xhi);
  const double y = valley_minimum(std::move(ly), std::move(hy),
                                  corner_region.ylo, corner_region.yhi);
  return {x, y};
}

geom::Point optimal_position_lp(const std::vector<PinBox>& boxes,
                                const geom::Rect& corner_region) {
  if (boxes.empty()) return corner_region.center();

  lp::Model model;
  const int x = model.add_continuous("x", 0.0, corner_region.xlo,
                                     std::max(corner_region.xlo,
                                              corner_region.xhi));
  const int y = model.add_continuous("y", 0.0, corner_region.ylo,
                                     std::max(corner_region.ylo,
                                              corner_region.yhi));
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    const PinBox& b = boxes[i];
    const std::string tag = std::to_string(i);
    // wl_i = (zx - mx) + (zy - my); z >= both maxima operands, m <= minima.
    const int zx = model.add_continuous("zx" + tag, 1.0, b.box.xhi);
    const int mx =
        model.add_continuous("mx" + tag, -1.0, -lp::kInfinity, b.box.xlo);
    const int zy = model.add_continuous("zy" + tag, 1.0, b.box.yhi);
    const int my =
        model.add_continuous("my" + tag, -1.0, -lp::kInfinity, b.box.ylo);
    model.add_constraint({{zx, 1.0}, {x, -1.0}}, lp::Relation::kGreaterEqual,
                         b.offset.x);
    model.add_constraint({{mx, 1.0}, {x, -1.0}}, lp::Relation::kLessEqual,
                         b.offset.x);
    model.add_constraint({{zy, 1.0}, {y, -1.0}}, lp::Relation::kGreaterEqual,
                         b.offset.y);
    model.add_constraint({{my, 1.0}, {y, -1.0}}, lp::Relation::kLessEqual,
                         b.offset.y);
  }
  const lp::Solution solution = lp::solve_lp(model);
  MBRC_ASSERT_MSG(solution.status == lp::SolveStatus::kOptimal,
                  "placement LP failed");
  return {solution.values[x], solution.values[y]};
}

geom::Point place_mbr(const netlist::Design& design,
                      const CompatibilityGraph& graph,
                      const Candidate& candidate, const Mapping& mapping,
                      const PlacementOptions& options) {
  const geom::Rect region = candidate.common_region;
  MBRC_ASSERT(!region.is_empty());
  // Region of legal lower-left corners: the cell must fit inside `region`
  // (degenerates to the region's lower-left when the cell is larger).
  geom::Rect corner{region.xlo, region.ylo,
                    std::max(region.xlo, region.xhi - mapping.cell->width),
                    std::max(region.ylo, region.yhi - mapping.cell->height)};

  const auto boxes = collect_pin_boxes(design, graph, candidate, mapping);
  return options.use_lp ? optimal_position_lp(boxes, corner)
                        : optimal_position_median(boxes, corner);
}

}  // namespace mbrc::mbr
