// MBR placement (Sec. 4.2): choose the location of a newly composed MBR
// that minimizes the half-perimeter wire-length of its D and Q pin
// connections, constrained to the members' common timing-feasible region.
//
// Every pin contributes wl_i = (max(xh, x+dx) - min(xl, x+dx)) +
// (max(yh, y+dy) - min(yl, y+dy)), with (x, y) the MBR's lower-left corner
// and (dx, dy) the pin offset inside the cell. Two solvers are provided:
//   - the paper's linear program, with the min/max linearized through helper
//     variables (src/lp simplex), and
//   - an O(n log n) weighted-median solution exploiting that the objective
//     is separable and convex piecewise-linear in x and in y.
// Both return the same optimum (property-tested); the median solver is the
// default in the flow.
#pragma once

#include <vector>

#include "mbr/mapping.hpp"

namespace mbrc::mbr {

/// One pin's connectivity: the bounding box of the fixed pins it connects
/// to, and the pin's offset inside the MBR cell.
struct PinBox {
  geom::Rect box;      // bbox of the already-placed pins on the net
  geom::Point offset;  // (dx, dy) of the MBR pin inside the cell
};

/// Collects the D/Q pin boxes of a mapped candidate from the members'
/// current connectivity (the members themselves are excluded from each box).
/// Pins on single-pin nets are skipped.
std::vector<PinBox> collect_pin_boxes(const netlist::Design& design,
                                      const CompatibilityGraph& graph,
                                      const Candidate& candidate,
                                      const Mapping& mapping);

/// Total HPWL objective of placing the cell's lower-left corner at `corner`.
double placement_objective(const std::vector<PinBox>& boxes,
                           geom::Point corner);

/// Exact minimizer via per-axis weighted median, constrained to
/// `corner_region` (the region of legal lower-left corners).
geom::Point optimal_position_median(const std::vector<PinBox>& boxes,
                                    const geom::Rect& corner_region);

/// Same optimum through the paper's LP formulation (helper variables for
/// min/max). Used for cross-validation and by callers who want the LP path.
geom::Point optimal_position_lp(const std::vector<PinBox>& boxes,
                                const geom::Rect& corner_region);

struct PlacementOptions {
  bool use_lp = false;  // default: weighted median (identical optimum)
};

/// End-to-end placement of a mapped candidate: derives the corner region
/// from the candidate's common feasible region and the cell dimensions,
/// collects pin boxes and solves. Falls back to the region center when the
/// MBR has no connected pins.
geom::Point place_mbr(const netlist::Design& design,
                      const CompatibilityGraph& graph,
                      const Candidate& candidate, const Mapping& mapping,
                      const PlacementOptions& options = {});

}  // namespace mbrc::mbr
