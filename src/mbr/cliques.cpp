#include "mbr/cliques.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "obs/counters.hpp"
#include "util/arena.hpp"
#include "util/assert.hpp"

namespace mbrc::mbr {

namespace {

using Mask = std::uint64_t;

// Per-worker scratch arena: clique enumeration runs once per subgraph on
// pool workers, and its short-lived mask/clique vectors otherwise hammer
// the global allocator from every lane. Each call rewinds its own arena.
thread_local util::Arena clique_arena;

struct BronKerbosch {
  const util::ArenaVector<Mask>& adjacency;  // local adjacency masks
  util::ArenaVector<Mask> cliques;

  void expand(Mask r, Mask p, Mask x) {
    if (p == 0 && x == 0) {
      cliques.push_back(r);
      return;
    }
    // Pivot: vertex of P|X with the most neighbors in P.
    Mask px = p | x;
    int pivot = -1, best = -1;
    for (Mask m = px; m;) {
      const int v = std::countr_zero(m);
      m &= m - 1;
      const int count = std::popcount(p & adjacency[v]);
      if (count > best) {
        best = count;
        pivot = v;
      }
    }
    Mask candidates = p & ~adjacency[pivot];
    for (Mask m = candidates; m;) {
      const int v = std::countr_zero(m);
      m &= m - 1;
      const Mask vbit = Mask{1} << v;
      expand(r | vbit, p & adjacency[v], x & adjacency[v]);
      p &= ~vbit;
      x |= vbit;
    }
  }
};

}  // namespace

std::vector<std::vector<int>> maximal_cliques(const CompatibilityGraph& graph,
                                              const std::vector<int>& nodes) {
  const int n = static_cast<int>(nodes.size());
  MBRC_ASSERT_MSG(n <= 64, "maximal_cliques subgraph larger than 64 nodes; "
                           "partition the component first");
  if (n == 0) return {};

  clique_arena.reset();
  const util::ArenaAllocator<Mask> alloc(&clique_arena);

  // Local adjacency masks restricted to `nodes`: merge each node's sorted
  // neighbor list against the sorted subgraph (O(degree + n) per node)
  // instead of the n^2/2 has_edge binary searches this replaces.
  util::ArenaVector<Mask> adjacency(static_cast<std::size_t>(n), 0, alloc);
  for (int i = 0; i < n; ++i) {
    const std::vector<int>& neighbors = graph.neighbors(nodes[i]);
    std::size_t a = 0;
    std::size_t b = 0;
    Mask mask = 0;
    while (a < neighbors.size() && b < nodes.size()) {
      if (neighbors[a] < nodes[b]) {
        ++a;
      } else if (neighbors[a] > nodes[b]) {
        ++b;
      } else {
        mask |= Mask{1} << b;
        ++a;
        ++b;
      }
    }
    adjacency[static_cast<std::size_t>(i)] = mask;
  }

  BronKerbosch bk{adjacency, util::ArenaVector<Mask>(alloc)};
  const Mask all = n == 64 ? ~Mask{0} : (Mask{1} << n) - 1;
  bk.expand(0, all, 0);

  // One flush per subgraph; runs concurrently on pool workers, but integer
  // totals are scheduling-independent (DESIGN.md §11).
  static obs::Counter& c_calls = obs::counter("mbr.cliques.calls");
  static obs::Counter& c_found = obs::counter("mbr.cliques.enumerated");
  static obs::Histogram& h_per =
      obs::histogram("mbr.cliques.per_subgraph");
  c_calls.add(1);
  c_found.add(static_cast<std::int64_t>(bk.cliques.size()));
  h_per.record(static_cast<std::int64_t>(bk.cliques.size()));

  std::vector<std::vector<int>> result;
  result.reserve(bk.cliques.size());
  for (Mask clique : bk.cliques) {
    std::vector<int> members;
    for (Mask m = clique; m;) {
      const int v = std::countr_zero(m);
      m &= m - 1;
      members.push_back(nodes[v]);
    }
    std::sort(members.begin(), members.end());
    result.push_back(std::move(members));
  }
  std::sort(result.begin(), result.end());
  return result;
}

namespace {

geom::Point clock_pin_position(const CompatibilityGraph& graph,
                               const netlist::Design& design, int node) {
  const netlist::CellId cell = graph.node(node).cell;
  return design.pin_position(design.register_clock_pin(cell));
}

void bisect(const CompatibilityGraph& graph, const netlist::Design& design,
            std::vector<int> nodes, int max_nodes,
            std::vector<std::vector<int>>& out) {
  if (static_cast<int>(nodes.size()) <= max_nodes) {
    out.push_back(std::move(nodes));
    return;
  }
  // Median split along the axis with the wider clock-pin spread: keeps each
  // side geometrically tight, which preserves the cliques that matter for
  // clock-power reduction (nearby registers).
  geom::Rect box = geom::Rect::empty();
  for (int v : nodes) box = box.expand(clock_pin_position(graph, design, v));
  const bool split_x = box.width() >= box.height();

  const auto mid = nodes.begin() + static_cast<std::ptrdiff_t>(nodes.size()) / 2;
  std::nth_element(nodes.begin(), mid, nodes.end(), [&](int a, int b) {
    const geom::Point pa = clock_pin_position(graph, design, a);
    const geom::Point pb = clock_pin_position(graph, design, b);
    if (split_x) return pa.x < pb.x || (pa.x == pb.x && a < b);
    return pa.y < pb.y || (pa.y == pb.y && a < b);
  });

  std::vector<int> left(nodes.begin(), mid);
  std::vector<int> right(mid, nodes.end());
  bisect(graph, design, std::move(left), max_nodes, out);
  bisect(graph, design, std::move(right), max_nodes, out);
}

}  // namespace

std::vector<std::vector<int>> partition_component(
    const CompatibilityGraph& graph, const netlist::Design& design,
    std::vector<int> component, const PartitionOptions& options) {
  MBRC_ASSERT(options.max_nodes >= 1);
  std::vector<std::vector<int>> out;
  bisect(graph, design, std::move(component), options.max_nodes, out);
  for (auto& part : out) std::sort(part.begin(), part.end());
  return out;
}

std::vector<std::vector<int>> partition_graph(const CompatibilityGraph& graph,
                                              const netlist::Design& design,
                                              const PartitionOptions& options) {
  std::vector<std::vector<int>> subgraphs;
  for (auto& component : graph.connected_components()) {
    auto parts = partition_component(graph, design, std::move(component),
                                     options);
    for (auto& p : parts) subgraphs.push_back(std::move(p));
  }
  return subgraphs;
}

}  // namespace mbrc::mbr
