#include "mbr/mapping.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace mbrc::mbr {

std::optional<Mapping> map_candidate(const netlist::Design& design,
                                     const CompatibilityGraph& graph,
                                     const Candidate& candidate,
                                     const MappingOptions& options,
                                     std::string* why) {
  MBRC_ASSERT(!candidate.nodes.empty());
  const RegisterInfo& first = graph.node(candidate.nodes.front());

  lib::MappingRequest request;
  request.function = first.lib_cell->function;
  request.bits = candidate.mapped_width;
  request.needs_per_bit_scan = candidate.needs_per_bit_scan;
  request.min_drive_resistance = std::numeric_limits<double>::infinity();
  double replaced_area = 0.0;
  for (int node : candidate.nodes) {
    const RegisterInfo& info = graph.node(node);
    request.min_drive_resistance =
        std::min(request.min_drive_resistance, info.drive_resistance);
    replaced_area += info.lib_cell->area;
  }

  const lib::RegisterCell* cell = design.library().map_register(request);
  if (cell == nullptr) {
    if (why) *why = "no library cell for function/width";
    return std::nullopt;
  }

  if (candidate.is_incomplete()) {
    // The area rule binds on the actual cell. If the drive-matched choice
    // busts the budget, fall back to the strongest variant that fits --
    // losing a little drive is better than abandoning the merge (the sizing
    // pass revisits the drive afterwards anyway).
    const double limit =
        replaced_area * (1.0 + options.incomplete_area_overhead);
    if (cell->area > limit) {
      const lib::RegisterCell* best = nullptr;
      for (const lib::RegisterCell* variant : design.library().cells_for(
               request.function, request.bits)) {
        if (variant->area > limit) continue;
        if (request.needs_per_bit_scan && request.function.is_scan &&
            variant->scan_style != lib::ScanStyle::kPerBitPins)
          continue;
        if (best == nullptr ||
            variant->drive_resistance < best->drive_resistance)
          best = variant;
      }
      if (best == nullptr) {
        if (why) *why = "incomplete MBR exceeds the area-overhead budget";
        return std::nullopt;
      }
      cell = best;
    }
  }

  // Bit order: scan-ordered members first in chain order (so an internal
  // scan chain remains monotone), then the rest left-to-right/bottom-up for
  // tidy D/Q wiring.
  Mapping mapping;
  mapping.cell = cell;
  mapping.member_order = candidate.nodes;
  std::sort(mapping.member_order.begin(), mapping.member_order.end(),
            [&](int a, int b) {
              const RegisterInfo& ra = graph.node(a);
              const RegisterInfo& rb = graph.node(b);
              const bool ordered_a = ra.scan.section >= 0;
              const bool ordered_b = rb.scan.section >= 0;
              if (ordered_a != ordered_b) return ordered_a;  // sections first
              if (ordered_a && ra.scan.section != rb.scan.section)
                return ra.scan.section < rb.scan.section;
              if (ordered_a && ra.scan.order != rb.scan.order)
                return ra.scan.order < rb.scan.order;
              const geom::Point ca = ra.center();
              const geom::Point cb = rb.center();
              if (ca.x != cb.x) return ca.x < cb.x;
              if (ca.y != cb.y) return ca.y < cb.y;
              return a < b;
            });

  int offset = 0;
  for (int node : mapping.member_order) {
    mapping.bit_offset.push_back(offset);
    offset += graph.node(node).bits;
  }
  MBRC_ASSERT(offset == candidate.bits && offset <= cell->bits);
  return mapping;
}

}  // namespace mbrc::mbr
