// Candidate MBR enumeration and the placement-aware weights (Sec. 3, 3.2).
//
// A candidate is a clique of the compatibility subgraph whose total bit
// count either equals an available library width (complete MBR) or lies
// below one (incomplete MBR, allowed when its area-per-physical-bit is below
// the average area-per-bit of the registers it replaces). Candidates whose
// members have no common timing-feasible region are rejected -- pairwise
// region overlap does not imply a shared spot for the merged cell.
//
// Weights (Sec. 3.2): with b = connected bits and n = number of other
// composable registers whose center falls strictly inside the convex hull of
// the member footprint corners,
//      w = 1/b          when n == 0        (clean: bigger is better)
//      w = b * 2^n      when 0 < n < b     (blocked: smaller/cleaner wins)
//      w = infinity     when n >= b        (dropped)
//
// Note on enumeration strategy: the paper runs Bron-Kerbosch and then
// enumerates valid sub-cliques of each maximal clique with dynamic
// programming. Because every valid candidate has at most max-library-width
// members, we enumerate the valid cliques directly with a bounded DFS over
// the (<= 30-node) subgraph; the resulting candidate *set* is identical and
// no deduplication across overlapping maximal cliques is needed (a property
// test in tests/candidates_test.cpp checks the equivalence).
#pragma once

#include <vector>

#include "mbr/cliques.hpp"
#include "mbr/compatibility.hpp"
#include "mbr/cost.hpp"

namespace mbrc::mbr {

struct EnumerationOptions {
  bool allow_incomplete = true;
  /// Flow-level area rule applied eagerly (Sec. 5): an incomplete MBR may
  /// cost at most this fraction more area than the registers it replaces.
  /// Checking it here keeps the ILP from selecting candidates the mapper
  /// would reject anyway (the mapper re-checks with the actual cell).
  double incomplete_area_overhead = 0.05;
  /// Ablation hook: false assigns every candidate weight 1 so the ILP
  /// minimizes the raw register count with no placement awareness.
  bool use_weights = true;
  /// Hard cap on candidates per subgraph (deterministic truncation guard;
  /// effectively never reached with the 30-node bound).
  std::size_t max_candidates_per_subgraph = 200'000;
  /// Multi-objective pricing applied on top of the paper weight (and on top
  /// of the flat weight 1 when use_weights is off). The defaults reproduce
  /// the paper's weights exactly; see mbr/cost.hpp.
  CostModel cost;
};

struct Candidate {
  std::vector<int> nodes;   // graph node indices, ascending
  int bits = 0;             // connected D/Q bit pairs
  int mapped_width = 0;     // library width (> bits for incomplete MBRs)
  int blockers = 0;         // n_i of Sec. 3.2
  double weight = 0.0;      // w_i of Sec. 3.2
  bool needs_per_bit_scan = false;
  geom::Rect common_region; // intersection of member feasible regions

  bool is_incomplete() const { return mapped_width > bits; }
  bool is_singleton() const { return nodes.size() == 1; }
};

struct EnumerationResult {
  std::vector<Candidate> candidates;
  bool truncated = false;
  /// Cliques discarded because their weight was infinite (blockers >= bits,
  /// Sec. 3.2). Flushed to the flow.candidates.dropped_infinite_weight
  /// counter so the coverage loss is visible in flow_report.json.
  std::int64_t dropped_infinite_weight = 0;
};

/// Sec. 3.2 weight formula. `blockers >= bits` yields +infinity.
double candidate_weight(int bits, int blockers);

/// Spatial index over the composable-register centers, used to count the
/// blocking registers of a candidate's convex hull.
class BlockerIndex {
public:
  BlockerIndex(const CompatibilityGraph& graph, double bin_size = 25.0);

  /// Registers (graph nodes) whose center lies strictly inside the convex
  /// hull of the members' footprint corners, excluding the members
  /// themselves. `members` must be sorted.
  int count_blockers(const CompatibilityGraph& graph,
                     const std::vector<int>& members) const;

private:
  struct Entry {
    geom::Point center;
    int node;
  };
  double bin_size_;
  std::unordered_map<std::int64_t, std::vector<Entry>> bins_;

  std::int64_t key(double x, double y) const;
};

/// Derives whether the member set can use an internal-scan MBR or requires
/// per-bit scan pins (ordered-section rules of Sec. 2). Returns false for
/// non-scan members.
bool candidate_needs_per_bit_scan(const CompatibilityGraph& graph,
                                  const std::vector<int>& members);

/// Enumerates all valid candidates of one subgraph (node indices into
/// `graph`, at most 64). Singleton keep-as-is candidates are always
/// included, so the downstream set-partitioning ILP is always feasible.
/// Only the library is needed (valid widths, incomplete-MBR area rule), so
/// hand-built graphs (e.g. the paper's worked example) work too.
EnumerationResult enumerate_candidates(const CompatibilityGraph& graph,
                                       const lib::Library& library,
                                       const BlockerIndex& blockers,
                                       const std::vector<int>& subgraph,
                                       const EnumerationOptions& options = {});

}  // namespace mbrc::mbr
