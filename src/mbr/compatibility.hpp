// Register compatibility rules and the compatibility graph (Sec. 2).
//
// Nodes are the *composable* registers of the design: not fixed/size-only,
// clocked, with a larger functionally-equivalent MBR available in the
// library. An edge connects two registers that are pairwise compatible in
// all four senses:
//   functional: same function signature, same clock net, same clock-gating
//               group, identical control nets (reset/set/enable/scan-enable);
//   scan:       same scan partition (ordered-section details are handled at
//               candidate granularity, where the per-bit-scan requirement is
//               derived);
//   placement:  timing-feasible regions overlap (plus a distance pre-filter);
//   timing:     same D/Q slack signs (no opposite useful-skew pull) and
//               similar slack magnitudes.
#pragma once

#include <vector>

#include "geom/rect.hpp"
#include "netlist/design.hpp"
#include "sta/feasible_region.hpp"
#include "sta/sta.hpp"

namespace mbrc::mbr {

struct CompatibilityOptions {
  /// Max |slack_a - slack_b| on the D side and on the Q side (ns). Sec. 2:
  /// registers of very different criticality must not merge.
  double slack_similarity = 0.20;
  /// Slacks are clamped to +/- this before sign/similarity checks, so a
  /// hugely positive slack does not block merging with a modest one.
  double slack_clamp = 0.40;
  /// Treat slacks within +/- this of zero as sign-neutral when enforcing the
  /// "no opposite D/Q signs" rule.
  double sign_epsilon = 0.01;
  /// Cheap pre-filter: register centers farther apart than this never merge
  /// (um). Keeps the graph sparse on large designs.
  double max_distance = 60.0;
  sta::FeasibleRegionOptions region;
  /// Thread lanes for the per-register info pass and the per-node edge
  /// detection. Both fan out over pre-sized slots and reduce on the calling
  /// thread in node order, so the graph is bit-identical at any job count;
  /// 1 runs the serial loops. plan_composition overrides this with the
  /// flow-wide jobs knob.
  int jobs = 1;
};

/// Everything the composition engine needs to know about one composable
/// register, precomputed once.
struct RegisterInfo {
  netlist::CellId cell;
  const lib::RegisterCell* lib_cell = nullptr;
  int bits = 1;
  geom::Rect footprint;
  geom::Rect region;  // timing-feasible placement region
  double d_slack = 0.0;  // worst D-side slack (clamped)
  double q_slack = 0.0;  // worst Q-side slack (clamped)
  double drive_resistance = 0.0;
  netlist::NetId clock_net;
  int gating_group = 0;
  // Control net signature (invalid ids when the function lacks the pin).
  netlist::NetId reset_net;
  netlist::NetId set_net;
  netlist::NetId enable_net;
  netlist::NetId scan_enable_net;
  netlist::ScanInfo scan;

  geom::Point center() const { return footprint.center(); }
};

class CompatibilityGraph {
public:
  const std::vector<RegisterInfo>& nodes() const { return nodes_; }
  const RegisterInfo& node(int i) const { return nodes_[i]; }
  /// Mutable access for hand-built graphs (tests, fixtures).
  RegisterInfo& node_mutable(int i) { return nodes_[i]; }
  int node_count() const { return static_cast<int>(nodes_.size()); }

  const std::vector<int>& neighbors(int i) const {
    MBRC_ASSERT_MSG(!dirty_, "CompatibilityGraph read before finalize()");
    return adjacency_[i];
  }
  bool has_edge(int a, int b) const;
  std::int64_t edge_count() const;

  /// Connected components, each a sorted list of node indices.
  std::vector<std::vector<int>> connected_components() const;

  // Construction (used by build_compatibility_graph and tests). Edges are
  // appended in O(1); call finalize() once after the last add_edge to sort
  // and deduplicate the adjacency lists. Reads (neighbors/has_edge/...)
  // assert that the graph is finalized.
  int add_node(RegisterInfo info);
  void add_edge(int a, int b);
  /// Pre-sizes each adjacency list from an exact (or upper-bound) degree
  /// count so the bulk add_edge pass never reallocates. Optional: add_edge
  /// works without it, at the cost of log(degree) grow-reallocations per
  /// list on large subgraph batches.
  void reserve_degrees(const std::vector<int>& degrees);
  void finalize();

private:
  std::vector<RegisterInfo> nodes_;
  std::vector<std::vector<int>> adjacency_;  // sorted once finalized
  bool dirty_ = false;                       // edges appended, not yet sorted
};

/// True when `cell` may be composed at all (Sec. 5's 'Comp-Regs' notion):
/// a live, clocked, non-fixed register whose functional class has a library
/// MBR wider than the register itself.
bool is_composable(const netlist::Design& design, netlist::CellId cell);

/// Collects the RegisterInfo of one composable register.
RegisterInfo make_register_info(const netlist::Design& design,
                                const sta::TimingReport& timing,
                                netlist::CellId cell,
                                const CompatibilityOptions& options);

// Pairwise rules (exposed for tests; build_compatibility_graph applies all).
bool functionally_compatible(const RegisterInfo& a, const RegisterInfo& b);
bool scan_compatible(const RegisterInfo& a, const RegisterInfo& b);
bool placement_compatible(const RegisterInfo& a, const RegisterInfo& b,
                          const CompatibilityOptions& options);
bool timing_compatible(const RegisterInfo& a, const RegisterInfo& b,
                       const CompatibilityOptions& options);

/// Builds the full compatibility graph of `design`.
CompatibilityGraph build_compatibility_graph(
    const netlist::Design& design, const sta::TimingReport& timing,
    const CompatibilityOptions& options = {});

}  // namespace mbrc::mbr
