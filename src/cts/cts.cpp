#include "cts/cts.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/assert.hpp"

namespace mbrc::cts {

namespace {

using netlist::CellId;
using netlist::Design;
using netlist::NetId;

struct Node {
  geom::Point position;
  double cap = 0.0;  // input cap seen by the level above
};

// Groups `nodes` into clusters bounded by load/fanout, inserting one buffer
// per cluster. Returns the next level's nodes and accumulates stats. With
// `fanout_only` the load budget is ignored and clusters close on max_fanout
// alone, so the level shrinks by that factor no matter how far apart the
// nodes sit (see the progress guarantee in collapse_to_root).
std::vector<Node> cluster_level(std::vector<Node> nodes,
                                const lib::Library& library,
                                const CtsOptions& options,
                                ClockTreeStats& stats,
                                bool fanout_only = false) {
  MBRC_ASSERT(!library.clock_buffers().empty());
  const auto& buffers = library.clock_buffers();
  const double max_load =
      options.load_utilization *
      std::max_element(buffers.begin(), buffers.end(),
                       [](const auto& a, const auto& b) {
                         // mbrc-lint: allow(R2, max_element is order-stable -- first maximum over the deterministic library order -- and only the max_load_cap value is read)
                         return a.max_load_cap < b.max_load_cap;
                       })
          ->max_load_cap;

  // Space-filling order: sort into horizontal bands, serpentine by x, so
  // consecutive nodes are geometrically close.
  double min_y = nodes.front().position.y, max_y = min_y;
  for (const Node& n : nodes) {
    min_y = std::min(min_y, n.position.y);
    max_y = std::max(max_y, n.position.y);
  }
  const double band = std::max(20.0, (max_y - min_y) / 24);
  std::sort(nodes.begin(), nodes.end(), [&](const Node& a, const Node& b) {
    const int band_a = static_cast<int>((a.position.y - min_y) / band);
    const int band_b = static_cast<int>((b.position.y - min_y) / band);
    if (band_a != band_b) return band_a < band_b;
    const bool reversed = band_a % 2;
    if (a.position.x != b.position.x)
      return reversed ? a.position.x > b.position.x
                      : a.position.x < b.position.x;
    if (a.position.y != b.position.y) return a.position.y < b.position.y;
    // mbrc-lint: allow(R2, nodes have no id to break ties with; nodes tying on band then x then y then cap are value-identical and interchangeable in the serpentine order)
    return a.cap < b.cap;
  });

  std::vector<Node> next;
  std::size_t i = 0;
  while (i < nodes.size()) {
    // Grow the cluster while the estimated load stays in budget.
    std::vector<const Node*> cluster;
    geom::Point centroid{0, 0};
    double sink_cap = 0.0;
    while (i < nodes.size() &&
           static_cast<int>(cluster.size()) < options.max_fanout) {
      const Node& cand = nodes[i];
      // Predict the star wire cap with the candidate included.
      geom::Point c{(centroid.x * cluster.size() + cand.position.x) /
                        (cluster.size() + 1),
                    (centroid.y * cluster.size() + cand.position.y) /
                        (cluster.size() + 1)};
      double star = 0.0;
      for (const Node* m : cluster) star += geom::manhattan(c, m->position);
      star += geom::manhattan(c, cand.position);
      const double load =
          sink_cap + cand.cap + star * options.wire_cap_per_um;
      if (!fanout_only && !cluster.empty() && load > max_load) break;
      cluster.push_back(&cand);
      centroid = c;
      sink_cap += cand.cap;
      ++i;
    }

    double star = 0.0;
    for (const Node* m : cluster)
      star += geom::manhattan(centroid, m->position);
    const double wire_cap = star * options.wire_cap_per_um;
    const double load = sink_cap + wire_cap;

    // Smallest buffer that can drive the cluster (largest as fallback).
    const lib::ClockBufferCell* chosen = &buffers.back();
    for (const auto& buf : buffers) {
      if (buf.max_load_cap >= load &&
          (chosen->max_load_cap < load ||
           buf.max_load_cap < chosen->max_load_cap))
        chosen = &buf;
    }

    ++stats.buffers;
    stats.wire_length += star;
    stats.wire_cap += wire_cap;
    stats.buffer_cap += chosen->input_pin_cap;
    next.push_back({centroid, chosen->input_pin_cap});
  }
  return next;
}

// Reduces one sink set to a single root, a buffered level at a time,
// returning the root node and folding the level count into stats.
//
// Progress guarantee: on a large enough core, two far-apart nodes carry
// more star-wire cap than even the largest clock buffer may drive, so a
// load-budgeted level can return every node as its own singleton cluster
// -- same size as its input, looping forever (a physical tree drives such
// spans through repeater chains instead of giving up). When a level makes
// no progress it is redone fanout-only, which shrinks it by max_fanout and
// charges the same wire and buffer caps; the overloaded buffers stand in
// for the repeaters the estimate does not model.
std::vector<Node> collapse_to_root(std::vector<Node> level,
                                   const lib::Library& library,
                                   const CtsOptions& options,
                                   ClockTreeStats& stats) {
  MBRC_ASSERT(options.max_fanout >= 2);
  int levels = 0;
  while (level.size() > 1) {
    const std::size_t before = level.size();
    level = cluster_level(std::move(level), library, options, stats);
    ++levels;
    if (level.size() == before) {
      level = cluster_level(std::move(level), library, options, stats,
                            /*fanout_only=*/true);
      ++levels;
    }
  }
  stats.levels = std::max(stats.levels, levels);
  return level;
}

}  // namespace

ClockTreeStats estimate_clock_tree(const netlist::Design& design,
                                   const CtsOptions& options) {
  ClockTreeStats stats;

  // Leaf sinks grouped by (clock net, gating group): each group forms its
  // own subtree below the gating cell.
  std::map<std::pair<std::int32_t, int>, std::vector<Node>> groups;
  for (CellId reg : design.registers()) {
    const netlist::Cell& cell = design.cell(reg);
    const NetId clock_net = design.register_clock_net(reg);
    if (!clock_net.valid()) continue;
    const netlist::PinId clk = design.register_clock_pin(reg);
    groups[{clock_net.index, cell.gating_group}].push_back(
        {design.pin_position(clk), cell.reg->clock_pin_cap});
    ++stats.sinks;
    stats.sink_cap += cell.reg->clock_pin_cap;
  }
  // Clock buffers already in the netlist also hang off the tree.
  for (CellId id : design.live_cells()) {
    const netlist::Cell& cell = design.cell(id);
    if (cell.kind != netlist::CellKind::kClockBuffer) continue;
    ++stats.buffers;
    stats.buffer_cap += cell.buf->input_pin_cap;
  }

  std::map<std::int32_t, std::vector<Node>> roots_per_clock;
  for (auto& [key, nodes] : groups) {
    std::vector<Node> level =
        collapse_to_root(std::move(nodes), design.library(), options, stats);
    if (!level.empty()) roots_per_clock[key.first].push_back(level.front());
  }

  // Combine gating-group roots up to one root per clock net.
  for (auto& [clock, roots] : roots_per_clock)
    collapse_to_root(std::move(roots), design.library(), options, stats);
  return stats;
}

}  // namespace mbrc::cts
