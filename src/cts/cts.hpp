// Clock-tree estimator.
//
// MBR composition is evaluated by its effect on the clock tree (Table 1:
// clock buffer count, clock capacitance, clock wire-length). This module
// builds a bottom-up clustered buffer tree over the register clock pins --
// the same greedy geometric matching style used by early CTS stages -- and
// reports its aggregate statistics. The tree is virtual: it estimates what
// a CTS run would build, it does not edit the netlist.
//
// Clock-gating structure is respected: registers of different gating groups
// (or different clock nets) sit under different subtrees, which are then
// combined up to a single root per clock net.
#pragma once

#include <vector>

#include "netlist/design.hpp"

namespace mbrc::cts {

struct CtsOptions {
  double wire_cap_per_um = 0.20;  // fF / um of clock wire
  /// Clusters are grown until this fraction of the largest buffer's max load
  /// is reached (head-room for the real CTS's skew balancing).
  double load_utilization = 0.85;
  /// Maximum sinks a single buffer may drive regardless of load.
  int max_fanout = 24;
};

struct ClockTreeStats {
  int sinks = 0;             // register clock pins
  int buffers = 0;           // inserted clock buffers (all levels)
  int levels = 0;            // depth of the deepest subtree
  double wire_length = 0.0;  // um of clock routing (star per cluster)
  double sink_cap = 0.0;     // fF of register clock pins
  double buffer_cap = 0.0;   // fF of buffer input pins
  double wire_cap = 0.0;     // fF of clock wire
  /// Everything the clock network switches: sinks + buffers + wire.
  double total_cap() const { return sink_cap + buffer_cap + wire_cap; }
};

/// Estimates the clock tree(s) for all clock nets of `design`.
ClockTreeStats estimate_clock_tree(const netlist::Design& design,
                                   const CtsOptions& options = {});

}  // namespace mbrc::cts
