// Convex hull (Andrew's monotone chain) and point-in-convex-polygon tests.
//
// The placement-aware weight of Sec. 3.2 tests whether the center of a
// non-participating register lies inside the convex hull of the corners of a
// candidate MBR's registers; these are the primitives behind that test.
#pragma once

#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace mbrc::geom {

/// Convex hull of `points` in counter-clockwise order, first point not
/// repeated. Collinear boundary points are dropped. Degenerate inputs
/// (0/1/2 points or all collinear) return the reduced chain (<= 2 points).
std::vector<Point> convex_hull(std::vector<Point> points);

/// True when `p` is inside or on the boundary of the convex polygon `hull`
/// (counter-clockwise order, as produced by convex_hull()). A degenerate hull
/// (segment or point) contains only points on it.
bool convex_contains(const std::vector<Point>& hull, const Point& p);

/// True when `p` is strictly inside the polygon (not on the boundary).
bool convex_contains_strict(const std::vector<Point>& hull, const Point& p);

/// Area of a convex polygon in counter-clockwise order (shoelace formula).
double convex_area(const std::vector<Point>& hull);

/// Convenience: hull of the 4 corners of each rect.
std::vector<Point> convex_hull_of_rects(const std::vector<Rect>& rects);

}  // namespace mbrc::geom
