// Axis-aligned rectangle. Used for cell footprints, timing-feasible regions
// and net bounding boxes. An "empty" rect (lo > hi on either axis) represents
// an infeasible/void region.
#pragma once

#include <algorithm>
#include <limits>
#include <ostream>

#include "geom/point.hpp"

namespace mbrc::geom {

struct Rect {
  double xlo = 0.0;
  double ylo = 0.0;
  double xhi = 0.0;
  double yhi = 0.0;

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  static constexpr Rect around(const Point& center, double half_w,
                               double half_h) {
    return {center.x - half_w, center.y - half_h, center.x + half_w,
            center.y + half_h};
  }

  /// A rect that behaves as the identity under intersect().
  static constexpr Rect universe() {
    constexpr double inf = std::numeric_limits<double>::infinity();
    return {-inf, -inf, inf, inf};
  }

  /// A rect that behaves as the identity under unite().
  static constexpr Rect empty() {
    constexpr double inf = std::numeric_limits<double>::infinity();
    return {inf, inf, -inf, -inf};
  }

  constexpr bool is_empty() const { return xlo > xhi || ylo > yhi; }

  constexpr double width() const { return is_empty() ? 0.0 : xhi - xlo; }
  constexpr double height() const { return is_empty() ? 0.0 : yhi - ylo; }
  constexpr double area() const { return width() * height(); }
  constexpr Point center() const { return {(xlo + xhi) / 2, (ylo + yhi) / 2}; }
  constexpr double half_perimeter() const { return width() + height(); }

  constexpr bool contains(const Point& p) const {
    return !is_empty() && p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi;
  }

  /// True when `p` is strictly inside (not on the boundary).
  constexpr bool contains_strict(const Point& p) const {
    return !is_empty() && p.x > xlo && p.x < xhi && p.y > ylo && p.y < yhi;
  }

  constexpr bool overlaps(const Rect& o) const {
    return !is_empty() && !o.is_empty() && xlo <= o.xhi && o.xlo <= xhi &&
           ylo <= o.yhi && o.ylo <= yhi;
  }

  constexpr Rect intersect(const Rect& o) const {
    return {std::max(xlo, o.xlo), std::max(ylo, o.ylo), std::min(xhi, o.xhi),
            std::min(yhi, o.yhi)};
  }

  constexpr Rect unite(const Rect& o) const {
    if (is_empty()) return o;
    if (o.is_empty()) return *this;
    return {std::min(xlo, o.xlo), std::min(ylo, o.ylo), std::max(xhi, o.xhi),
            std::max(yhi, o.yhi)};
  }

  /// Grows the rect by `d` on every side (shrinks when d < 0).
  constexpr Rect inflate(double d) const {
    return {xlo - d, ylo - d, xhi + d, yhi + d};
  }

  /// Expands the rect to cover `p`.
  constexpr Rect expand(const Point& p) const {
    if (is_empty()) return {p.x, p.y, p.x, p.y};
    return {std::min(xlo, p.x), std::min(ylo, p.y), std::max(xhi, p.x),
            std::max(yhi, p.y)};
  }

  /// Closest point of the rect to `p` (p itself when contained).
  constexpr Point clamp(const Point& p) const {
    return {std::clamp(p.x, xlo, xhi), std::clamp(p.y, ylo, yhi)};
  }
};

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.xlo << ", " << r.ylo << " .. " << r.xhi << ", "
            << r.yhi << ']';
}

}  // namespace mbrc::geom
