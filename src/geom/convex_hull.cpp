#include "geom/convex_hull.hpp"

#include <algorithm>
#include <cmath>

namespace mbrc::geom {

namespace {

constexpr double kEps = 1e-9;

// True when p lies on the closed segment [a, b].
bool on_segment(const Point& a, const Point& b, const Point& p) {
  if (std::abs(cross(a, b, p)) > kEps) return false;
  return p.x >= std::min(a.x, b.x) - kEps && p.x <= std::max(a.x, b.x) + kEps &&
         p.y >= std::min(a.y, b.y) - kEps && p.y <= std::max(a.y, b.y) + kEps;
}

}  // namespace

std::vector<Point> convex_hull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    // mbrc-lint: allow(R2, lexicographic on the full value -- ties are exact duplicates which the unique below erases)
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const std::size_t n = points.size();
  if (n <= 2) return points;

  std::vector<Point> hull(2 * n);
  std::size_t k = 0;
  // Lower chain.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 && cross(hull[k - 2], hull[k - 1], points[i]) <= kEps) --k;
    hull[k++] = points[i];
  }
  // Upper chain.
  const std::size_t lower_size = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    while (k >= lower_size && cross(hull[k - 2], hull[k - 1], points[i]) <= kEps)
      --k;
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // last point equals the first
  return hull;
}

bool convex_contains(const std::vector<Point>& hull, const Point& p) {
  const std::size_t n = hull.size();
  if (n == 0) return false;
  if (n == 1) return manhattan(hull[0], p) <= kEps;
  if (n == 2) return on_segment(hull[0], hull[1], p);
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = hull[i];
    const Point& b = hull[(i + 1) % n];
    if (cross(a, b, p) < -kEps) return false;  // right of a CCW edge: outside
  }
  return true;
}

bool convex_contains_strict(const std::vector<Point>& hull, const Point& p) {
  const std::size_t n = hull.size();
  if (n < 3) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = hull[i];
    const Point& b = hull[(i + 1) % n];
    if (cross(a, b, p) < kEps) return false;  // outside or on the boundary
  }
  return true;
}

double convex_area(const std::vector<Point>& hull) {
  const std::size_t n = hull.size();
  if (n < 3) return 0.0;
  double twice = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = hull[i];
    const Point& b = hull[(i + 1) % n];
    twice += a.x * b.y - b.x * a.y;
  }
  return twice / 2.0;
}

std::vector<Point> convex_hull_of_rects(const std::vector<Rect>& rects) {
  std::vector<Point> corners;
  corners.reserve(rects.size() * 4);
  for (const Rect& r : rects) {
    corners.push_back({r.xlo, r.ylo});
    corners.push_back({r.xlo, r.yhi});
    corners.push_back({r.xhi, r.ylo});
    corners.push_back({r.xhi, r.yhi});
  }
  return convex_hull(std::move(corners));
}

}  // namespace mbrc::geom
