// 2-D point in placement coordinates (microns).
#pragma once

#include <cmath>
#include <compare>
#include <ostream>

namespace mbrc::geom {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double k) const { return {x * k, y * k}; }
};

/// Manhattan (L1) distance; the distance metric used for timing-feasible
/// placement regions and wire-length estimates.
inline double manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Euclidean distance; used only for clustering geometry (K-partitioning).
inline double euclidean(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// z-component of the cross product (b - a) x (c - a). Positive when the
/// turn a->b->c is counter-clockwise.
constexpr double cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

}  // namespace mbrc::geom
