#include "ilp/branch_and_bound.hpp"

#include <cmath>
#include <limits>
#include <optional>

#include "obs/counters.hpp"

namespace mbrc::ilp {

namespace {

struct Incumbent {
  double objective = std::numeric_limits<double>::infinity();
  std::vector<double> values;
  bool found = false;
};

struct Searcher {
  const BranchAndBoundOptions& options;
  BranchAndBoundStats stats;
  Incumbent incumbent;
  double sense_sign = 1.0;  // +1 minimize, -1 maximize (we minimize internally)
  bool node_budget_hit = false;

  explicit Searcher(const BranchAndBoundOptions& opts) : options(opts) {}

  // Returns the index of the most-fractional integer variable, or -1 when
  // the LP point is integral.
  int pick_branch_variable(const lp::Model& model,
                           const std::vector<double>& x) const {
    int best = -1;
    double best_frac_dist = options.integrality_tolerance;
    for (int i = 0; i < model.variable_count(); ++i) {
      if (!model.variable(i).is_integer) continue;
      const double frac = x[i] - std::floor(x[i]);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist > best_frac_dist) {
        best_frac_dist = dist;
        best = i;
      }
    }
    return best;
  }

  void search(lp::Model& model) {
    if (stats.nodes_explored >= options.max_nodes) {
      node_budget_hit = true;
      return;
    }
    ++stats.nodes_explored;
    ++stats.lp_solves;
    const lp::Solution relax = lp::solve_lp(model, options.simplex);
    if (relax.status != lp::SolveStatus::kOptimal) return;  // prune

    const double bound = sense_sign * relax.objective;
    if (incumbent.found && bound >= incumbent.objective - options.absolute_gap)
      return;  // cannot improve

    const int branch = pick_branch_variable(model, relax.values);
    if (branch < 0) {
      // Integral point. Round to clean integers before storing.
      std::vector<double> x = relax.values;
      for (int i = 0; i < model.variable_count(); ++i)
        if (model.variable(i).is_integer) x[i] = std::round(x[i]);
      const double obj = sense_sign * model.objective_value(x);
      if (!incumbent.found || obj < incumbent.objective) {
        incumbent.objective = obj;
        incumbent.values = std::move(x);
        incumbent.found = true;
      }
      return;
    }

    const double value = relax.values[branch];
    lp::Variable& var = model.variable(branch);
    const double saved_lower = var.lower;
    const double saved_upper = var.upper;

    // Down child: x <= floor(value).
    var.upper = std::floor(value);
    if (var.lower <= var.upper) search(model);
    var.upper = saved_upper;

    // Up child: x >= ceil(value).
    var.lower = std::ceil(value);
    if (var.lower <= var.upper) search(model);
    var.lower = saved_lower;
  }
};

}  // namespace

lp::Solution solve_ilp(const lp::Model& model,
                       const BranchAndBoundOptions& options,
                       BranchAndBoundStats* stats) {
  Searcher searcher(options);
  searcher.sense_sign = model.sense() == lp::Sense::kMinimize ? 1.0 : -1.0;

  lp::Model working = model;  // bounds are tightened in place during search
  searcher.search(working);
  if (stats) *stats = searcher.stats;

  // One flush per solve: work counts, never wall time (DESIGN.md §11).
  static obs::Counter& c_solves = obs::counter("ilp.bnb.solves");
  static obs::Counter& c_nodes = obs::counter("ilp.bnb.nodes_explored");
  static obs::Counter& c_lp = obs::counter("ilp.bnb.lp_solves");
  static obs::Histogram& h_nodes = obs::histogram("ilp.bnb.nodes_per_solve");
  c_solves.add(1);
  c_nodes.add(static_cast<std::int64_t>(searcher.stats.nodes_explored));
  c_lp.add(static_cast<std::int64_t>(searcher.stats.lp_solves));
  h_nodes.record(static_cast<std::int64_t>(searcher.stats.nodes_explored));

  lp::Solution solution;
  if (!searcher.incumbent.found) {
    solution.status = searcher.node_budget_hit ? lp::SolveStatus::kIterationLimit
                                               : lp::SolveStatus::kInfeasible;
    return solution;
  }
  solution.status = searcher.node_budget_hit ? lp::SolveStatus::kIterationLimit
                                             : lp::SolveStatus::kOptimal;
  solution.values = searcher.incumbent.values;
  solution.objective = model.objective_value(solution.values);
  return solution;
}

}  // namespace mbrc::ilp
