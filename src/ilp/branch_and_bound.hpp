// Generic mixed-integer linear programming by branch & bound on the LP
// relaxation (src/lp simplex).
//
// Branching: most-fractional integer variable; depth-first with the
// round-down child explored first (keeps memory O(depth) and finds feasible
// incumbents quickly for the set-partitioning-like models this library
// generates). Pruning: LP bound vs. incumbent.
#pragma once

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace mbrc::ilp {

struct BranchAndBoundOptions {
  lp::SimplexOptions simplex;
  int max_nodes = 200'000;
  double integrality_tolerance = 1e-6;
  /// Prune children whose bound is not better than incumbent - gap.
  double absolute_gap = 1e-9;
};

struct BranchAndBoundStats {
  int nodes_explored = 0;
  int lp_solves = 0;
};

/// Solves `model` honoring the integrality flags on its variables.
/// Returns kOptimal with the best integer solution, kInfeasible when no
/// integer point exists, kIterationLimit when the node budget was exhausted
/// before proving optimality (the incumbent, if any, is still returned).
lp::Solution solve_ilp(const lp::Model& model,
                       const BranchAndBoundOptions& options = {},
                       BranchAndBoundStats* stats = nullptr);

}  // namespace mbrc::ilp
