#include "ilp/set_partition.hpp"

#include <algorithm>
#include <limits>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "util/assert.hpp"

namespace mbrc::ilp {

namespace {

struct Search {
  const SetPartitionProblem& problem;
  const SetPartitionOptions& options;

  // Element masks live SoA-flat: candidate c owns words
  // [c*words, (c+1)*words) of candidate_words, so building the search
  // state costs two allocations total instead of one per candidate, and
  // the masks the inner loop walks sit contiguously in cache.
  int words = 0;  // 64-bit words per element mask
  std::vector<std::uint64_t> candidate_words;
  std::vector<std::vector<int>> covering;    // per element: candidate ids by weight
  std::vector<double> min_ratio;             // per element: min w/|cover|

  std::vector<std::uint64_t> covered;
  std::vector<int> chosen;
  double cost = 0.0;
  double bound_remaining = 0.0;  // sum of min_ratio over uncovered elements

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> best_chosen;
  std::int64_t nodes = 0;
  std::int64_t bound_prunes = 0;
  bool budget_hit = false;

  const std::uint64_t* mask(int c) const {
    return candidate_words.data() + static_cast<std::size_t>(c) * words;
  }
  bool covered_test(int e) const {
    return (covered[e >> 6] >> (e & 63)) & 1;
  }
  bool mask_hits_covered(int c) const {
    const std::uint64_t* m = mask(c);
    for (int w = 0; w < words; ++w)
      if (m[w] & covered[w]) return true;
    return false;
  }

  Search(const SetPartitionProblem& p, const SetPartitionOptions& o)
      : problem(p),
        options(o),
        words((p.element_count + 63) / 64),
        covered(static_cast<std::size_t>((p.element_count + 63) / 64), 0) {
    const int n = p.element_count;
    covering.resize(n);
    min_ratio.assign(n, std::numeric_limits<double>::infinity());
    candidate_words.assign(p.candidates.size() * static_cast<std::size_t>(words),
                           0);
    for (std::size_t c = 0; c < p.candidates.size(); ++c) {
      const auto& cand = p.candidates[c];
      std::uint64_t* bits = candidate_words.data() + c * words;
      for (int e : cand.elements) {
        MBRC_ASSERT_MSG(e >= 0 && e < n, "element id out of range");
        MBRC_ASSERT_MSG(!((bits[e >> 6] >> (e & 63)) & 1),
                        "duplicate element in candidate");
        bits[e >> 6] |= std::uint64_t{1} << (e & 63);
      }
      if (cand.elements.empty()) continue;
      // The additive bound below charges every uncovered element
      // min(w / |cover|), which under-estimates the true cost only when
      // weights are non-negative. The MBR weights satisfy this by
      // construction: the paper's 1/b and b*2^n are positive, infinite
      // weights are dropped at enumeration, and the multi-objective
      // extension (mbr/cost.hpp) only adds non-negative power/area terms.
      MBRC_ASSERT_MSG(cand.weight >= 0.0 &&
                          cand.weight < std::numeric_limits<double>::infinity(),
                      "set-partition weights must be finite and non-negative");
      const double ratio =
          cand.weight / static_cast<double>(cand.elements.size());
      for (int e : cand.elements) {
        covering[e].push_back(static_cast<int>(c));
        min_ratio[e] = std::min(min_ratio[e], ratio);
      }
    }
    for (int e = 0; e < n; ++e) {
      std::sort(covering[e].begin(), covering[e].end(), [&](int a, int b) {
        const double wa = p.candidates[a].weight;
        const double wb = p.candidates[b].weight;
        if (wa != wb) return wa < wb;
        return a < b;  // branching explores equal-weight candidates in id order
      });
      if (!covering[e].empty()) bound_remaining += min_ratio[e];
    }
  }

  // The uncovered element with the fewest candidates that are still placeable
  // (no overlap with covered). Returns -1 when everything is covered, -2 when
  // some uncovered element has no placeable candidate (dead end).
  int pick_element() const {
    int best = -1;
    int best_count = std::numeric_limits<int>::max();
    for (int e = 0; e < problem.element_count; ++e) {
      if (covered_test(e)) continue;
      int count = 0;
      for (int c : covering[e]) {
        if (!mask_hits_covered(c)) {
          ++count;
          if (count >= best_count) break;
        }
      }
      if (count == 0) return -2;
      if (count < best_count) {
        best_count = count;
        best = e;
      }
    }
    return best;
  }

  void run() {
    if (budget_hit) return;
    if (++nodes > options.max_nodes) {
      budget_hit = true;
      return;
    }
    if (cost + bound_remaining >= best_cost) {  // bound prune
      ++bound_prunes;
      return;
    }

    const int element = pick_element();
    if (element == -2) return;  // uncoverable
    if (element == -1) {
      if (cost < best_cost) {
        best_cost = cost;
        best_chosen = chosen;
      }
      return;
    }

    for (int c : covering[element]) {
      const auto& cand = problem.candidates[c];
      if (mask_hits_covered(c)) continue;
      // Apply.
      const std::uint64_t* m = mask(c);
      for (int w = 0; w < words; ++w) covered[w] |= m[w];
      chosen.push_back(c);
      cost += cand.weight;
      double removed_bound = 0.0;
      for (int e : cand.elements) removed_bound += min_ratio[e];
      bound_remaining -= removed_bound;

      run();

      // Undo.
      bound_remaining += removed_bound;
      cost -= cand.weight;
      chosen.pop_back();
      for (int w = 0; w < words; ++w) covered[w] &= ~m[w];
      if (budget_hit) return;
    }
  }
};

}  // namespace

SetPartitionResult solve_set_partition(const SetPartitionProblem& problem,
                                       const SetPartitionOptions& options) {
  SetPartitionResult result;
  if (problem.element_count == 0) {
    result.feasible = true;
    return result;
  }
  obs::Span span("ilp.set_partition");
  Search search(problem, options);
  // Quick infeasibility check: every element needs at least one candidate.
  for (int e = 0; e < problem.element_count; ++e) {
    if (search.covering[e].empty()) return result;
  }
  search.run();
  result.nodes_explored = search.nodes;

  // One flush per solve: work counts, never wall time (DESIGN.md §11).
  static obs::Counter& c_solves = obs::counter("ilp.set_partition.solves");
  static obs::Counter& c_nodes = obs::counter("ilp.set_partition.nodes");
  static obs::Counter& c_prunes =
      obs::counter("ilp.set_partition.bound_prunes");
  static obs::Counter& c_budget =
      obs::counter("ilp.set_partition.budget_hits");
  static obs::Histogram& h_nodes =
      obs::histogram("ilp.set_partition.nodes_per_solve");
  c_solves.add(1);
  c_nodes.add(search.nodes);
  c_prunes.add(search.bound_prunes);
  if (search.budget_hit) c_budget.add(1);
  h_nodes.record(search.nodes);
  if (search.best_cost == std::numeric_limits<double>::infinity()) return result;
  result.feasible = true;
  result.objective = search.best_cost;
  result.chosen = std::move(search.best_chosen);
  std::sort(result.chosen.begin(), result.chosen.end());
  return result;
}

std::vector<SetPartitionResult> solve_set_partitions(
    const std::vector<SetPartitionProblem>& problems,
    const SetPartitionOptions& options, int jobs) {
  return runtime::parallel_transform(
      &runtime::ThreadPool::global(), jobs, problems,
      [&options](const SetPartitionProblem& problem) {
        return solve_set_partition(problem, options);
      });
}

}  // namespace mbrc::ilp
