// Exact weighted set-partitioning solver, specialized for the MBR
// composition ILP of Sec. 3.1:
//
//   minimize   sum_i w_i x_i
//   subject to for every element j:  sum_{i : j in M_i} x_i = 1
//              x_i in {0, 1}
//
// Elements are the composable registers of one compatibility subgraph
// (<= 30 by construction, Sec. 3); candidates are the valid MBR cliques.
// The solver is a best-first branch & bound on the element with the fewest
// available candidates, with an additive lower bound: each uncovered element
// must pay at least min over covering candidates of (w / cover-size).
//
// A generic simplex-based branch & bound (ilp/branch_and_bound.hpp) solves
// the same models in tests to cross-validate optimality.
#pragma once

#include <cstdint>
#include <vector>

namespace mbrc::ilp {

struct SetPartitionCandidate {
  std::vector<int> elements;  // distinct element ids in [0, element_count)
  double weight = 0.0;
};

struct SetPartitionProblem {
  int element_count = 0;
  std::vector<SetPartitionCandidate> candidates;
};

struct SetPartitionResult {
  bool feasible = false;
  double objective = 0.0;
  std::vector<int> chosen;  // indices into problem.candidates
  std::int64_t nodes_explored = 0;
};

struct SetPartitionOptions {
  /// Node budget; the search is exact well below this for <= 30-element
  /// instances. When exceeded, the best incumbent found so far is returned
  /// (feasible=true) but optimality is no longer guaranteed.
  std::int64_t max_nodes = 5'000'000;
};

/// Solves the weighted set-partitioning problem exactly (within the node
/// budget). Candidates with empty element lists are ignored.
SetPartitionResult solve_set_partition(const SetPartitionProblem& problem,
                                       const SetPartitionOptions& options = {});

/// Solves many independent instances, fanning the branch & bound searches
/// out across up to `jobs` threads. Every instance runs the same serial
/// search with its own state (no shared incumbents), and results come back
/// in input order, so the output -- including per-instance nodes_explored --
/// is identical to calling solve_set_partition in a loop at any job count.
std::vector<SetPartitionResult> solve_set_partitions(
    const std::vector<SetPartitionProblem>& problems,
    const SetPartitionOptions& options = {}, int jobs = 1);

}  // namespace mbrc::ilp
