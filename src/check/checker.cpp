#include "check/checker.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "sta/timing_engine.hpp"
#include "util/assert.hpp"

namespace mbrc::check {

namespace {

using netlist::CellId;
using netlist::CellKind;
using netlist::Design;
using netlist::NetId;
using netlist::PinId;
using netlist::PinRole;

std::string cell_label(const Design& design, CellId id) {
  const netlist::Cell& c = design.cell(id);
  return c.name + " (cell " + std::to_string(id.index) + ")";
}

/// True when `value` sits on the `step` grid starting at `origin`.
bool on_grid(double value, double origin, double step, double tolerance) {
  const double offset = value - origin;
  const double remainder = offset - std::floor(offset / step + 0.5) * step;
  return std::abs(remainder) <= tolerance;
}

}  // namespace

const char* to_string(CheckLevel level) {
  switch (level) {
    case CheckLevel::kOff: return "off";
    case CheckLevel::kStageBoundaries: return "stage-boundaries";
    case CheckLevel::kParanoid: return "paranoid";
  }
  return "unknown";
}

std::string CheckReport::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i) os << '\n';
    os << violations[i].check << ": " << violations[i].detail;
  }
  return os.str();
}

DesignChecker::Baseline DesignChecker::capture(const Design& design) {
  Baseline baseline;
  for (CellId reg : design.registers()) {
    ++baseline.register_count;
    const netlist::Cell& cell = design.cell(reg);
    for (int b = 0; b < cell.reg->bits; ++b) {
      const PinId d = design.register_d_pin(reg, b);
      if (d.valid() && design.pin(d).net.valid())
        ++baseline.connected_register_bits;
    }
  }
  return baseline;
}

DesignChecker::DesignChecker(const Design& design, CheckerOptions options)
    : design_(design), options_(options) {}

void DesignChecker::add(const char* check, std::string detail) {
  report_.violations.push_back({check, std::move(detail)});
}

DesignChecker& DesignChecker::check_structure() {
  for (std::int32_t i = 0; i < design_.cell_count(); ++i) {
    const CellId cell_id{i};
    const netlist::Cell& cell = design_.cell(cell_id);
    if (cell.kind == CellKind::kRegister) {
      if (cell.reg == nullptr) {
        add("structure", "register without a library cell: " + cell.name);
        continue;
      }
      if (cell.reg->bits <= 0)
        add("structure", "zero-bit register: " + cell_label(design_, cell_id));
    }
    for (PinId pin_id : cell.pins) {
      const netlist::Pin& p = design_.pin(pin_id);
      if (p.cell != cell_id)
        add("structure", "pin " + std::to_string(pin_id.index) +
                             " does not back-reference its cell " +
                             cell_label(design_, cell_id));
      if (cell.dead && p.net.valid())
        add("structure", "dead cell still connected: " +
                             cell_label(design_, cell_id) + " pin " +
                             std::to_string(pin_id.index));
    }
  }

  for (std::int32_t i = 0; i < design_.net_count(); ++i) {
    const NetId net_id{i};
    const netlist::Net& net = design_.net(net_id);
    if (net.driver.valid()) {
      const netlist::Pin& d = design_.pin(net.driver);
      if (!d.is_output || d.net != net_id)
        add("structure",
            "net " + std::to_string(i) + " driver mismatch (pin " +
                std::to_string(net.driver.index) + ")");
    }
    std::unordered_set<std::int32_t> seen;
    for (PinId sink : net.sinks) {
      const netlist::Pin& p = design_.pin(sink);
      if (p.is_output || p.net != net_id)
        add("structure", "net " + std::to_string(i) + " sink mismatch (pin " +
                             std::to_string(sink.index) + ")");
      if (!seen.insert(sink.index).second)
        add("structure", "net " + std::to_string(i) +
                             " lists sink pin " + std::to_string(sink.index) +
                             " more than once");
    }
  }

  for (std::int32_t i = 0; i < design_.pin_count(); ++i) {
    const PinId pin_id{i};
    const netlist::Pin& p = design_.pin(pin_id);
    if (!p.net.valid()) continue;
    const netlist::Net& net = design_.net(p.net);
    if (p.is_output) {
      if (net.driver != pin_id)
        add("structure", "output pin " + std::to_string(i) +
                             " is not the driver of its net " +
                             std::to_string(p.net.index));
    } else if (std::find(net.sinks.begin(), net.sinks.end(), pin_id) ==
               net.sinks.end()) {
      add("structure", "input pin " + std::to_string(i) +
                           " missing from the sink list of its net " +
                           std::to_string(p.net.index));
    }
  }
  return *this;
}

DesignChecker& DesignChecker::check_nets() {
  for (std::int32_t i = 0; i < design_.net_count(); ++i) {
    const netlist::Net& net = design_.net(NetId{i});
    if (net.is_clock) continue;
    if (!net.driver.valid() && !net.sinks.empty())
      add("nets", "net " + std::to_string(i) + " has " +
                      std::to_string(net.sinks.size()) +
                      " sink(s) but no driver (floating inputs)");
  }
  return *this;
}

DesignChecker& DesignChecker::check_placement() {
  const geom::Rect& core = design_.core();
  const double tol = options_.position_tolerance;
  const double row_height = options_.grid.row_height;

  struct Placed {
    double x;
    double width;
    CellId cell;
  };
  // Ordered map: overlap reports must come out in row order, not hash order.
  std::map<int, std::vector<Placed>> by_row;

  for (CellId cell_id : design_.live_cells()) {
    const netlist::Cell& cell = design_.cell(cell_id);
    if (cell.kind == CellKind::kPort || cell.width() <= 0.0) continue;
    const geom::Rect fp = cell.footprint();
    if (fp.xlo < core.xlo - tol || fp.xhi > core.xhi + tol ||
        fp.ylo < core.ylo - tol || fp.yhi > core.yhi + tol) {
      add("placement", "cell outside the core: " + cell_label(design_, cell_id));
      continue;
    }
    if (!on_grid(cell.position.y, core.ylo, row_height, tol))
      add("placement", "cell off the row grid (y=" +
                           std::to_string(cell.position.y) + "): " +
                           cell_label(design_, cell_id));
    const int row = static_cast<int>(
        std::floor((cell.position.y - core.ylo) / row_height + 0.5));
    by_row[row].push_back({cell.position.x, cell.width(), cell_id});
  }

  for (auto& [row, cells] : by_row) {
    std::sort(cells.begin(), cells.end(), [](const Placed& a, const Placed& b) {
      if (a.x != b.x) return a.x < b.x;
      return a.cell < b.cell;
    });
    for (std::size_t i = 1; i < cells.size(); ++i) {
      const Placed& prev = cells[i - 1];
      const Placed& next = cells[i];
      if (prev.x + prev.width > next.x + tol)
        add("placement", "overlap in row " + std::to_string(row) + ": " +
                             cell_label(design_, prev.cell) + " and " +
                             cell_label(design_, next.cell));
    }
  }
  return *this;
}

DesignChecker& DesignChecker::check_scan_chains() {
  // Scan elements: (SI, SO) pin pairs in chain order, per register.
  struct Element {
    CellId reg;
    PinId si;
    PinId so;
    bool first_of_register = false;
  };
  // Ordered map: chain diagnostics must come out in partition order.
  std::map<int, std::vector<Element>> partitions;
  for (CellId reg : design_.registers()) {
    const netlist::Cell& cell = design_.cell(reg);
    if (!cell.reg->function.is_scan || cell.scan.partition < 0) continue;
    std::vector<PinId> si, so;
    for (PinId pin_id : cell.pins) {
      const netlist::Pin& p = design_.pin(pin_id);
      if (p.role == PinRole::kScanIn) si.push_back(pin_id);
      if (p.role == PinRole::kScanOut) so.push_back(pin_id);
    }
    const auto by_bit = [&](PinId a, PinId b) {
      return design_.pin(a).bit < design_.pin(b).bit;
    };
    std::sort(si.begin(), si.end(), by_bit);
    std::sort(so.begin(), so.end(), by_bit);
    if (si.size() != so.size() || si.empty()) {
      add("scan", "register with mismatched SI/SO pins: " +
                      cell_label(design_, reg));
      continue;
    }
    auto& elements = partitions[cell.scan.partition];
    for (std::size_t b = 0; b < si.size(); ++b)
      elements.push_back({reg, si[b], so[b], b == 0});
  }

  for (const auto& [partition, elements] : partitions) {
    const std::string where = " in scan partition " + std::to_string(partition);

    // SI pin -> element index, and per-element successor via the SO net.
    std::unordered_map<std::int32_t, std::size_t> element_of_si;
    for (std::size_t e = 0; e < elements.size(); ++e)
      element_of_si.emplace(elements[e].si.index, e);

    std::vector<std::size_t> heads;
    std::vector<int> successor(elements.size(), -1);
    bool linked = true;
    for (std::size_t e = 0; e < elements.size(); ++e) {
      const Element& element = elements[e];
      if (!design_.pin(element.si).net.valid()) heads.push_back(e);
      const NetId so_net = design_.pin(element.so).net;
      if (!so_net.valid()) continue;  // tail
      const netlist::Net& net = design_.net(so_net);
      if (net.sinks.size() != 1) {
        add("scan", "scan link net " + std::to_string(so_net.index) + " of " +
                        cell_label(design_, element.reg) + " has " +
                        std::to_string(net.sinks.size()) + " sinks" + where);
        linked = false;
        continue;
      }
      const auto it = element_of_si.find(net.sinks.front().index);
      if (it == element_of_si.end()) {
        add("scan", "scan link from " + cell_label(design_, element.reg) +
                        " leaves the partition" + where);
        linked = false;
        continue;
      }
      successor[e] = static_cast<int>(it->second);
    }
    if (!linked) continue;
    if (heads.size() != 1) {
      add("scan", std::to_string(heads.size()) + " chain heads (expected 1)" +
                      where);
      continue;
    }

    // Walk the chain: every element exactly once, no cycle.
    std::vector<bool> visited(elements.size(), false);
    std::size_t count = 0;
    int cursor = static_cast<int>(heads.front());
    int last_section = -1;
    int last_order = -1;
    while (cursor >= 0) {
      if (visited[static_cast<std::size_t>(cursor)]) {
        add("scan", "cycle detected" + where);
        break;
      }
      visited[static_cast<std::size_t>(cursor)] = true;
      ++count;
      const Element& element = elements[static_cast<std::size_t>(cursor)];
      const netlist::ScanInfo& scan = design_.cell(element.reg).scan;
      if (element.first_of_register && scan.section >= 0) {
        if (scan.section < last_section ||
            (scan.section == last_section && scan.order <= last_order))
          add("scan", "ordered section out of sequence at " +
                          cell_label(design_, element.reg) + " (section " +
                          std::to_string(scan.section) + ", order " +
                          std::to_string(scan.order) + ")" + where);
        last_section = scan.section;
        last_order = scan.order;
      }
      cursor = successor[static_cast<std::size_t>(cursor)];
    }
    if (count != elements.size())
      add("scan", "chain links " + std::to_string(count) + " of " +
                      std::to_string(elements.size()) + " scan elements" +
                      where);
  }
  return *this;
}

DesignChecker& DesignChecker::check_conservation(const Baseline& baseline,
                                                 bool require_count_bounded) {
  const Baseline now = capture(design_);
  if (now.connected_register_bits != baseline.connected_register_bits)
    add("conservation",
        "connected register bits changed: " +
            std::to_string(baseline.connected_register_bits) + " -> " +
            std::to_string(now.connected_register_bits));
  if (require_count_bounded && now.register_count > baseline.register_count)
    add("conservation", "register count increased: " +
                            std::to_string(baseline.register_count) + " -> " +
                            std::to_string(now.register_count));
  return *this;
}

DesignChecker& DesignChecker::check_timing(sta::TimingEngine& engine,
                                           const sta::SkewMap& skew) {
  MBRC_ASSERT(&engine.design() == &design_);
  const sta::TimingReport fresh = run_sta(design_, engine.options(), skew);
  const sta::TimingReport& incremental = engine.update(skew);

  int mismatches = 0;
  const auto compare_array = [&](const char* name,
                                 const std::vector<double>& a,
                                 const std::vector<double>& b) {
    if (a.size() != b.size()) {
      add("timing", std::string(name) + " size mismatch: engine " +
                        std::to_string(a.size()) + " vs run_sta " +
                        std::to_string(b.size()));
      return;
    }
    for (std::size_t i = 0; i < a.size() && mismatches < 8; ++i) {
      if (a[i] == b[i]) continue;
      ++mismatches;
      std::ostringstream os;
      os << name << '[' << i << "] diverged: engine " << a[i] << " vs run_sta "
         << b[i];
      add("timing", os.str());
    }
  };
  compare_array("arrival", incremental.arrival, fresh.arrival);
  compare_array("arrival_min", incremental.arrival_min, fresh.arrival_min);
  compare_array("required", incremental.required, fresh.required);
  compare_array("required_min", incremental.required_min, fresh.required_min);

  if (incremental.endpoints.size() != fresh.endpoints.size()) {
    add("timing", "endpoint count mismatch: engine " +
                      std::to_string(incremental.endpoints.size()) +
                      " vs run_sta " + std::to_string(fresh.endpoints.size()));
  } else {
    for (std::size_t i = 0;
         i < fresh.endpoints.size() && mismatches < 8; ++i) {
      const sta::EndpointSlack& a = incremental.endpoints[i];
      const sta::EndpointSlack& b = fresh.endpoints[i];
      if (a.pin == b.pin && a.slack == b.slack && a.hold_slack == b.hold_slack)
        continue;
      ++mismatches;
      std::ostringstream os;
      os << "endpoint[" << i << "] diverged: engine (pin " << a.pin.index
         << ", " << a.slack << ", " << a.hold_slack << ") vs run_sta (pin "
         << b.pin.index << ", " << b.slack << ", " << b.hold_slack << ')';
      add("timing", os.str());
    }
  }
  return *this;
}

void enforce_stage(const Design& design, const char* stage, CheckLevel level,
                   const StageExpectations& expect,
                   const DesignChecker::Baseline& baseline,
                   sta::TimingEngine* engine, const sta::SkewMap& skew,
                   const CheckerOptions& options) {
  if (level == CheckLevel::kOff) return;
  DesignChecker checker(design, options);
  checker.check_structure().check_conservation(baseline,
                                               expect.register_count_bounded);
  if (expect.nets_clean) checker.check_nets();
  if (expect.placement_legal) checker.check_placement();
  if (expect.scan_stitched) checker.check_scan_chains();
  if (level == CheckLevel::kParanoid && engine)
    checker.check_timing(*engine, skew);
  if (!checker.report().ok())
    throw util::AssertionError("flow-integrity violation at stage '" +
                               std::string(stage) + "':\n" +
                               checker.report().to_string());
}

}  // namespace mbrc::check
