// Flow-integrity checking for the in-place composition flow.
//
// The flow mutates one Design across eight stages (decompose -> plan ->
// map/place/rewire -> legalize -> restitch -> skew -> size) with an
// incremental STA engine riding on an edit journal -- exactly the setup
// where a stale cache or a half-updated invariant corrupts results silently
// instead of crashing. DesignChecker validates the invariants each stage is
// supposed to preserve:
//
//   structure      every pin's net back-references it (driver/sink lists and
//                  pin.net agree, no duplicates), dead cells are fully
//                  disconnected, no zero-bit registers;
//   nets           no driverless signal net that still has sinks (a floating
//                  input is how a botched rewire shows up in STA as a
//                  silently-unconstrained cone);
//   placement      every live cell inside the core, on a legal row, and no
//                  two cells overlapping (x stays continuous: the legalizer
//                  packs cells abutted at arbitrary site offsets);
//   scan           per partition, the SO -> SI links form one acyclic chain
//                  covering every scan element exactly once, with ordered
//                  sections in (section, order) sequence;
//   conservation   connected register bits are conserved and the register
//                  count never grows across compose/decompose;
//   timing         the incremental engine's report is bit-identical to a
//                  fresh run_sta rebuild (the engine's core contract).
//
// Checks collect violations instead of throwing, so a fuzzer can report
// every broken invariant of a corrupted design at once; enforce_stage() is
// the throwing wrapper the flow uses at stage boundaries, gated by
// FlowOptions::check_level so release runs pay nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "place/legalizer.hpp"
#include "sta/sta.hpp"

namespace mbrc::sta {
class TimingEngine;
}

namespace mbrc::check {

/// How much flow-integrity checking run_composition_flow performs.
enum class CheckLevel {
  kOff,             // no checks (release default; zero cost)
  kStageBoundaries, // structural/placement/scan/conservation checks at every
                    // stage boundary
  kParanoid,        // kStageBoundaries plus engine-vs-run_sta bit-identity
                    // cross-validation at every boundary
};

const char* to_string(CheckLevel level);

struct Violation {
  std::string check;   // which invariant ("structure", "placement", ...)
  std::string detail;  // what broke, with ids/names
};

struct CheckReport {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  /// One line per violation, "check: detail".
  std::string to_string() const;
};

struct CheckerOptions {
  place::RowGridOptions grid;
  /// Slop for floating-point position comparisons (um).
  double position_tolerance = 1e-6;
};

/// Validates one design state. Each check_* appends violations to the
/// report; chain the ones the current flow stage guarantees.
class DesignChecker {
public:
  /// Conserved quantities captured before the flow starts mutating.
  struct Baseline {
    std::int64_t connected_register_bits = 0;
    std::int64_t register_count = 0;
  };
  static Baseline capture(const netlist::Design& design);

  explicit DesignChecker(const netlist::Design& design,
                         CheckerOptions options = {});

  /// Pin/net back-references, dead-cell disconnection, zero-bit registers.
  DesignChecker& check_structure();
  /// No non-clock net with sinks but no driver (floating inputs).
  DesignChecker& check_nets();
  /// Cells inside the core, row-aligned, overlap-free.
  DesignChecker& check_placement();
  /// Scan chains fully linked per partition, acyclic, section order kept.
  DesignChecker& check_scan_chains();
  /// Connected register bits conserved; when `require_count_bounded`, the
  /// register count must not exceed the baseline (true at the flow's input
  /// and output; mid-flow the decompose pre-pass legitimately inflates the
  /// count until composition and recombination absorb the pieces).
  DesignChecker& check_conservation(const Baseline& baseline,
                                    bool require_count_bounded = true);
  /// The incremental engine's report is bit-identical to a fresh run_sta.
  /// `engine` must be bound to this checker's design.
  DesignChecker& check_timing(sta::TimingEngine& engine,
                              const sta::SkewMap& skew);

  const CheckReport& report() const { return report_; }

private:
  void add(const char* check, std::string detail);

  const netlist::Design& design_;
  CheckerOptions options_;
  CheckReport report_;
};

/// Which invariants a given stage boundary guarantees. Mid-flow states
/// legitimately break some of them (e.g. scan chains are dangling between
/// rewiring and restitch), so the flow passes what the stage promises.
struct StageExpectations {
  bool placement_legal = true;
  bool scan_stitched = true;
  bool nets_clean = true;
  /// Register count <= baseline. False between the decompose pre-pass
  /// (which splits wide MBRs into more, narrower registers) and the output
  /// boundary, where the paper's no-increase guarantee must hold again.
  bool register_count_bounded = true;
};

/// Runs the checks `expect` warrants at `level` and throws
/// util::AssertionError naming `stage` on the first report with violations.
/// kParanoid adds the engine cross-validation (engine may be null to skip).
/// No-op at kOff.
void enforce_stage(const netlist::Design& design, const char* stage,
                   CheckLevel level, const StageExpectations& expect,
                   const DesignChecker::Baseline& baseline,
                   sta::TimingEngine* engine, const sta::SkewMap& skew,
                   const CheckerOptions& options = {});

}  // namespace mbrc::check
