#include "service/session.hpp"

#include <algorithm>
#include <cmath>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace mbrc::service {

Session::Session(const lib::Library& library, netlist::Design design,
                 SessionOptions options)
    : library_(library),
      design_(std::move(design)),
      options_(options),
      engine_(design_, options.timing),
      baseline_(check::DesignChecker::capture(design_)) {}

std::string Session::validate(const Edit& edit) const {
  if (!edit.cell.valid() || edit.cell.index >= design_.cell_count())
    return "unknown cell id";
  const netlist::Cell& cell = design_.cell(edit.cell);
  if (cell.dead) return "cell is dead: " + cell.name;

  switch (edit.op) {
    case Edit::Op::kMove: {
      if (cell.kind == netlist::CellKind::kPort)
        return "cannot move a port: " + cell.name;
      if (cell.fixed) return "cell is dont_touch: " + cell.name;
      if (!std::isfinite(edit.x) || !std::isfinite(edit.y))
        return "non-finite position";
      const geom::Rect& core = design_.core();
      if (edit.x < core.xlo || edit.x + cell.width() > core.xhi ||
          edit.y < core.ylo || edit.y + cell.height() > core.yhi)
        return "move places " + cell.name + " outside the core";
      return {};
    }
    case Edit::Op::kSwap: {
      if (cell.kind != netlist::CellKind::kRegister)
        return "swap target is not a register: " + cell.name;
      if (cell.fixed) return "cell is dont_touch: " + cell.name;
      const lib::RegisterCell* variant =
          library_.register_by_name(edit.variant);
      if (variant == nullptr)
        return "unknown library cell: " + edit.variant;
      if (variant->bits != cell.reg->bits ||
          !(variant->function == cell.reg->function) ||
          variant->scan_style != cell.reg->scan_style)
        return "variant " + edit.variant + " is not equivalent to " +
               cell.reg->name;
      return {};
    }
    case Edit::Op::kSkew: {
      if (cell.kind != netlist::CellKind::kRegister)
        return "skew target is not a register: " + cell.name;
      if (!edit.clear_skew && !std::isfinite(edit.skew))
        return "non-finite skew";
      return {};
    }
  }
  return "unknown edit op";
}

void Session::note_touched(netlist::CellId cell) {
  if (design_.cell(cell).kind == netlist::CellKind::kRegister)
    touched_.insert(cell);
}

void Session::apply_one(const Edit& edit) {
  switch (edit.op) {
    case Edit::Op::kMove: {
      netlist::Cell& cell = design_.cell(edit.cell);
      cell.position = {edit.x, edit.y};
      design_.notify_moved(edit.cell);
      break;
    }
    case Edit::Op::kSwap: {
      const lib::RegisterCell* variant =
          library_.register_by_name(edit.variant);
      if (variant != design_.cell(edit.cell).reg)
        design_.swap_register_cell(edit.cell, variant);
      break;
    }
    case Edit::Op::kSkew: {
      if (edit.clear_skew)
        skew_.erase(edit.cell);
      else
        skew_[edit.cell] = edit.skew;
      break;
    }
  }
  note_touched(edit.cell);
}

EditOutcome Session::apply(const std::vector<Edit>& edits) {
  obs::Span span("service.session.apply");
  static obs::Counter& c_edits = obs::counter("service.edits.applied");
  static obs::Counter& c_rejected = obs::counter("service.edits.rejected");

  EditOutcome outcome;
  for (std::size_t i = 0; i < edits.size(); ++i) {
    outcome.error = validate(edits[i]);
    if (!outcome.error.empty()) {
      outcome.error_index = static_cast<int>(i);
      c_rejected.add(1);
      break;
    }
    apply_one(edits[i]);
    ++outcome.applied;
  }
  c_edits.add(outcome.applied);
  outcome.topology_version = design_.topology_version();
  outcome.journal_length = design_.touched_cells().size();

  if (outcome.ok() && options_.check_level != check::CheckLevel::kOff) {
    check::DesignChecker checker(design_);
    checker.check_structure().check_nets().check_conservation(baseline_);
    if (!checker.report().ok()) {
      outcome.error = "post-edit check failed: " + checker.report().to_string();
      outcome.check_failed = true;
    }
  }
  return outcome;
}

TimingAnswer Session::query(const TimingQuery& query) {
  obs::Span span("service.session.query");

  TimingAnswer answer;
  for (netlist::PinId pin : query.pins)
    if (!pin.valid() || pin.index >= design_.pin_count()) {
      answer.error = "unknown pin id";
      return answer;
    }
  for (netlist::CellId cell : query.registers) {
    if (!cell.valid() || cell.index >= design_.cell_count() ||
        design_.cell(cell).dead ||
        design_.cell(cell).kind != netlist::CellKind::kRegister) {
      answer.error = "unknown register id";
      return answer;
    }
  }

  const sta::TimingReport& report = engine_.update(skew_);
  answer.wns = report.wns();
  answer.tns = report.tns();
  answer.failing_endpoints = report.failing_endpoints();
  answer.total_endpoints = report.total_endpoints();
  answer.hold_wns = report.hold_wns();
  for (netlist::PinId pin : query.pins)
    answer.pins.push_back({pin, report.slack(pin), report.hold_slack(pin)});
  for (netlist::CellId cell : query.registers)
    answer.registers.push_back({cell, report.register_d_slack(design_, cell),
                                report.register_q_slack(design_, cell)});
  answer.full_builds = engine_.stats().full_builds;
  answer.incremental_updates = engine_.stats().incremental_updates;
  answer.repaired_pins = engine_.stats().last_repaired_pins;

  if (options_.check_level == check::CheckLevel::kParanoid) {
    check::DesignChecker checker(design_);
    checker.check_timing(engine_, skew_);
    if (!checker.report().ok()) {
      answer.error =
          "paranoid timing cross-check failed: " + checker.report().to_string();
      answer.check_failed = true;
    }
  }
  return answer;
}

RecomposeAnswer Session::recompose(const std::vector<netlist::CellId>& region,
                                   const std::optional<mbr::CostModel>& cost) {
  obs::Span span("service.session.recompose");
  static obs::Counter& c_subgraphs = obs::counter("service.recompose.subgraphs");

  RecomposeAnswer answer;
  std::vector<netlist::CellId> cells;
  if (!region.empty()) {
    for (netlist::CellId cell : region) {
      if (!cell.valid() || cell.index >= design_.cell_count() ||
          design_.cell(cell).dead ||
          design_.cell(cell).kind != netlist::CellKind::kRegister) {
        answer.error = "unknown register id in region";
        return answer;
      }
    }
    cells = region;
  } else {
    cells.assign(touched_.begin(), touched_.end());
    touched_.clear();
  }
  answer.region_registers = static_cast<int>(cells.size());
  if (cells.empty()) return answer;  // nothing touched: empty plan

  const sta::TimingReport& report = engine_.update(skew_);
  mbr::CompositionOptions composition = options_.composition;
  if (cost) composition.enumeration.cost = *cost;
  const mbr::CompositionPlan plan = mbr::plan_composition_region(
      design_, report, cells, composition);

  answer.subgraphs = plan.subgraph_count;
  answer.candidates = plan.candidate_count;
  answer.ilp_nodes = plan.ilp_nodes;
  answer.objective = plan.objective;
  for (const mbr::Selection* merge : plan.merges()) {
    ++answer.planned_mbrs;
    answer.merged_registers += static_cast<int>(merge->members.size());
  }
  c_subgraphs.add(answer.subgraphs);
  return answer;
}

check::CheckReport Session::check(bool include_placement) {
  obs::Span span("service.session.check");
  check::DesignChecker checker(design_);
  // Placement legality is checked only on request: service edits are raw
  // placement moves; row legality is the batch legalizer's contract.
  checker.check_structure().check_nets().check_scan_chains().
      check_conservation(baseline_);
  if (include_placement) checker.check_placement();
  if (options_.check_level == check::CheckLevel::kParanoid)
    checker.check_timing(engine_, skew_);
  return checker.report();
}

Session::SnapshotOutcome Session::snapshot(const std::string& name) {
  obs::Span span("service.session.snapshot");
  SnapshotOutcome outcome;
  if (name.empty()) {
    outcome.error = "snapshot name must be non-empty";
    return outcome;
  }
  if (snapshots_.find(name) == snapshots_.end() &&
      snapshots_.size() >= options_.max_snapshots) {
    outcome.error = "snapshot limit reached";
    outcome.snapshot_count = snapshots_.size();
    return outcome;
  }
  snapshots_[name] = Saved{design_.snapshot(), skew_, touched_};
  outcome.snapshot_count = snapshots_.size();
  return outcome;
}

Session::SnapshotOutcome Session::rollback(const std::string& name) {
  obs::Span span("service.session.rollback");
  SnapshotOutcome outcome;
  const auto it = snapshots_.find(name);
  if (it == snapshots_.end()) {
    outcome.error = "unknown snapshot: " + name;
    outcome.snapshot_count = snapshots_.size();
    return outcome;
  }
  design_.restore(it->second.design);
  skew_ = it->second.skew;
  touched_ = it->second.touched;
  outcome.snapshot_count = snapshots_.size();
  return outcome;
}

}  // namespace mbrc::service
