// Unix-domain socket front-end for the composition daemon.
//
// Binds a stream socket at a filesystem path and serves the same
// newline-delimited JSON protocol as Daemon::serve, one connection per
// client thread. All connections share one Daemon, so sessions are global
// to the server: a client may open a session, disconnect, reconnect and
// keep editing it. Responses go to the connection that issued the request.
//
// Wall-clock policy: this file owns the service's only deadline sites (the
// accept-poll tick and the optional idle timeout). Both are liveness
// mechanisms -- they decide *when the server stops waiting*, never what any
// response contains -- and each clock read carries an mbrc-lint allow(R3)
// annotation saying so (DESIGN.md §11; tests/lint_test.cpp pins the rule).
#pragma once

#include <string>

#include "service/daemon.hpp"

namespace mbrc::service {

struct SocketServerOptions {
  std::string path;  // filesystem path of the listening socket
  int backlog = 8;
  /// Accept-poll tick (ms): bounds shutdown latency, not behavior.
  int poll_interval_ms = 100;
  /// Stop serving after this long with no connected client (seconds);
  /// <= 0 serves until a shutdown request.
  double idle_timeout_seconds = 0.0;
};

class SocketServer {
public:
  /// `daemon` must outlive the server.
  SocketServer(Daemon& daemon, SocketServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens. False on failure (see error()).
  bool start();

  /// Accept loop: serves connections until the daemon sees a shutdown
  /// request or the idle timeout expires. Joins every connection thread
  /// before returning. Returns the number of connections served.
  std::size_t run();

  const std::string& error() const { return error_; }
  const std::string& path() const { return options_.path; }

private:
  void serve_connection(int fd);

  Daemon& daemon_;
  SocketServerOptions options_;
  int listen_fd_ = -1;
  std::string error_;
};

}  // namespace mbrc::service
