// Per-verb request-latency instruments for the daemon's stats verb.
//
// Latencies are wall-clock and therefore measurement-only (DESIGN.md §11).
// The recorder deliberately lives OUTSIDE the obs counter/histogram
// registry: the registry's deltas are part of the bit-identity contract at
// any jobs count, and latency samples are scheduling-dependent, so mixing
// them in would break the contract the service tests pin.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mbrc::service {

class LatencyRecorder {
public:
  /// Samples retained per verb. Once full, the oldest sample ages out so a
  /// long-lived daemon's percentiles track recent behavior.
  static constexpr std::size_t kWindow = 4096;

  void record(std::string_view verb, double us);

  struct VerbStats {
    std::int64_t count = 0;  // lifetime requests, not just the window
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;  // max within the retained window
  };

  /// Exact percentiles (obs::Histogram::percentile) over each verb's
  /// retained window, in verb-name order.
  std::map<std::string, VerbStats> snapshot() const;

private:
  struct Verb {
    std::int64_t count = 0;
    std::vector<double> samples;  // grows to kWindow, then a ring
    std::size_t next = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Verb, std::less<>> verbs_;
};

}  // namespace mbrc::service
