// The composition daemon: newline-delimited JSON requests multiplexed over
// per-design Sessions.
//
// Protocol (one JSON object per line, response per request, matched by id):
//
//   {"id": 1, "cmd": "open_design", "session": "a", "profile": "D1"}
//   {"id": 2, "cmd": "apply_edits", "session": "a",
//    "edits": [{"op": "move", "cell": 7, "x": 12.0, "y": 8.4},
//              {"op": "swap", "cell": 9, "variant": "DFF_X2"},
//              {"op": "skew", "cell": 9, "skew": 0.05}]}
//   {"id": 3, "cmd": "query_timing", "session": "a",
//    "pins": [101, 102], "registers": [9]}
//   {"id": 4, "cmd": "recompose_region", "session": "a"}
//   {"id": 5, "cmd": "snapshot", "session": "a", "name": "base"}
//   {"id": 6, "cmd": "rollback", "session": "a", "name": "base"}
//   {"id": 7, "cmd": "check", "session": "a"}
//   {"id": 8, "cmd": "list_registers", "session": "a", "limit": 100}
//   {"id": 9, "cmd": "close", "session": "a"}
//   {"id": 10, "cmd": "shutdown"}
//
// Responses are compact single-line objects {"id": N, "ok": true, ...} or
// {"id": N, "ok": false, "error": "..."}. See DESIGN.md §12 for the full
// grammar.
//
// Concurrency model: every session is a strand. Requests for one session
// execute strictly in arrival order (FIFO), one at a time; requests for
// different sessions run concurrently on the daemon's thread pool when
// `jobs > 1`. With `jobs <= 1` every request executes inline on the calling
// thread, which makes the whole transcript serial -- the reference
// execution. Because a session's responses are a pure function of its own
// request order (Session's determinism contract), the response for any
// given request is byte-identical at any jobs count; only the interleaving
// of *different* sessions' response lines varies.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/json_reader.hpp"
#include "runtime/thread_pool.hpp"
#include "service/session.hpp"

namespace mbrc::service {

struct DaemonOptions {
  /// Request-execution lanes. <= 1: inline serial execution (deterministic
  /// transcript order); > 1: a pool of jobs - 1 workers plus the calling
  /// thread, sessions running concurrently, each internally FIFO.
  int jobs = 1;
  /// Defaults for sessions opened without explicit per-request overrides.
  SessionOptions session_defaults;
};

class Daemon {
public:
  explicit Daemon(const lib::Library& library, DaemonOptions options = {});
  /// Drains outstanding requests before tearing down.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Parses one request line and executes it on the owning session's
  /// strand. `sink` receives the response line (no trailing newline) and
  /// may be called from a pool thread; with jobs <= 1 it is always called
  /// before handle() returns. `sink` must be callable concurrently.
  void handle(std::string line, std::function<void(std::string)> sink);

  /// handle() + wait for this request's response: the synchronous
  /// round-trip a blocking client sees.
  std::string handle_sync(const std::string& line);

  /// NDJSON serve loop: reads request lines from `in` until EOF or a
  /// shutdown request, writing one response line each (mutex-serialized,
  /// flushed). Returns the number of requests served.
  std::size_t serve(std::istream& in, std::ostream& out);

  /// Blocks until every accepted request has delivered its response.
  void drain();

  /// True once a shutdown request was accepted (serve loops should stop
  /// reading; pending requests still complete).
  bool shutdown_requested() const;

  std::size_t session_count() const;
  const DaemonOptions& options() const { return options_; }

private:
  /// One open design and its FIFO request queue. `session` is null until
  /// the open_design job ran (requests queued behind a failed open report
  /// "session is not open").
  struct Strand {
    std::unique_ptr<Session> session;
    std::deque<std::function<void()>> queue;
    bool running = false;
    bool closed = false;
  };

  void post(const std::shared_ptr<Strand>& strand, std::function<void()> job);
  void run_strand(std::shared_ptr<Strand> strand);
  void finish_one();

  // Request execution (called on the strand, serialized per session).
  std::string execute(Strand& strand, const obs::JsonValue& request);
  std::string do_open(Strand& strand, const obs::JsonValue& request);
  std::string do_close(Strand& strand, const obs::JsonValue& request);

  const lib::Library& library_;
  DaemonOptions options_;
  std::unique_ptr<runtime::ThreadPool> pool_;  // null when jobs <= 1

  mutable std::mutex mutex_;  // guards sessions_, strand queues, counters
  std::map<std::string, std::shared_ptr<Strand>> sessions_;
  std::size_t outstanding_ = 0;
  std::condition_variable idle_;
  bool shutdown_ = false;
};

/// RAII drain for scopes that hand the daemon request sinks referencing
/// locals: the destructor runs Daemon::drain() on every exit path,
/// exceptional unwind included, so no posted job outlives what its sink
/// captured. mbrc-analyze rule A2 recognizes this type as a wait that
/// dominates every exit.
class DrainGuard {
 public:
  explicit DrainGuard(Daemon& daemon) : daemon_(daemon) {}
  DrainGuard(const DrainGuard&) = delete;
  DrainGuard& operator=(const DrainGuard&) = delete;
  ~DrainGuard() { daemon_.drain(); }

 private:
  Daemon& daemon_;
};

}  // namespace mbrc::service
