// The composition daemon: newline-delimited JSON requests multiplexed over
// per-design Sessions.
//
// Protocol (one JSON object per line, response per request, matched by id):
//
//   {"id": 1, "cmd": "open_design", "session": "a", "profile": "D1"}
//   {"id": 2, "cmd": "apply_edits", "session": "a",
//    "edits": [{"op": "move", "cell": 7, "x": 12.0, "y": 8.4},
//              {"op": "swap", "cell": 9, "variant": "DFF_X2"},
//              {"op": "skew", "cell": 9, "skew": 0.05}]}
//   {"id": 3, "cmd": "query_timing", "session": "a",
//    "pins": [101, 102], "registers": [9]}
//   {"id": 4, "cmd": "recompose_region", "session": "a"}
//   {"id": 5, "cmd": "snapshot", "session": "a", "name": "base"}
//   {"id": 6, "cmd": "rollback", "session": "a", "name": "base"}
//   {"id": 7, "cmd": "check", "session": "a", "placement": true}
//   {"id": 8, "cmd": "list_registers", "session": "a", "limit": 100}
//   {"id": 9, "cmd": "close", "session": "a"}
//   {"id": 10, "cmd": "stats"}
//   {"id": 11, "cmd": "trace_start", "path": "/tmp/daemon.trace.json"}
//   {"id": 12, "cmd": "trace_stop"}
//   {"id": 13, "cmd": "shutdown"}
//
// Responses are compact single-line objects {"id": N, "ok": true, ...} or
// {"id": N, "ok": false, "error": "..."}. See DESIGN.md §12 for the full
// grammar.
//
// Live telemetry (DESIGN.md §11): `stats` returns a snapshot of the obs
// counter/histogram registry plus per-verb latency percentiles, thread-pool
// gauges and per-session gauges. `trace_start`/`trace_stop` bracket a live
// obs::Span trace written as Chrome trace_event JSON, so a running daemon
// can be profiled in Perfetto without restarting. Both outputs are
// measurement-only and excluded from the byte-identity contract; the
// counter *deltas* inside consecutive stats responses stay bit-identical
// at any jobs count. Every request/edit/rollback is also recorded in the
// always-on obs flight recorder, dumped to options().flight_dump_path on a
// checker failure or protocol error.
//
// Concurrency model: every session is a strand. Requests for one session
// execute strictly in arrival order (FIFO), one at a time; requests for
// different sessions run concurrently on the daemon's thread pool when
// `jobs > 1`. With `jobs <= 1` every request executes inline on the calling
// thread, which makes the whole transcript serial -- the reference
// execution. Because a session's responses are a pure function of its own
// request order (Session's determinism contract), the response for any
// given request is byte-identical at any jobs count; only the interleaving
// of *different* sessions' response lines varies.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/json_reader.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "service/session.hpp"
#include "service/telemetry.hpp"

namespace mbrc::service {

struct DaemonOptions {
  /// Request-execution lanes. <= 1: inline serial execution (deterministic
  /// transcript order); > 1: a pool of jobs - 1 workers plus the calling
  /// thread, sessions running concurrently, each internally FIFO.
  int jobs = 1;
  /// Defaults for sessions opened without explicit per-request overrides.
  SessionOptions session_defaults;
  /// Flight-recorder dump destination for failure triggers (checker
  /// failure reported by any session command, malformed request line).
  /// Empty disables failure dumps; fatal-signal dumps are the transport
  /// binary's concern (tools/mbrc-serve).
  std::string flight_dump_path;
};

class Daemon {
public:
  explicit Daemon(const lib::Library& library, DaemonOptions options = {});
  /// Drains outstanding requests before tearing down.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Parses one request line and executes it on the owning session's
  /// strand. `sink` receives the response line (no trailing newline) and
  /// may be called from a pool thread; with jobs <= 1 it is always called
  /// before handle() returns. `sink` must be callable concurrently.
  void handle(std::string line, std::function<void(std::string)> sink);

  /// handle() + wait for this request's response: the synchronous
  /// round-trip a blocking client sees.
  std::string handle_sync(const std::string& line);

  /// NDJSON serve loop: reads request lines from `in` until EOF or a
  /// shutdown request, writing one response line each (mutex-serialized,
  /// flushed). Returns the number of requests served.
  std::size_t serve(std::istream& in, std::ostream& out);

  /// Blocks until every accepted request has delivered its response.
  void drain();

  /// True once a shutdown request was accepted (serve loops should stop
  /// reading; pending requests still complete).
  bool shutdown_requested() const;

  /// Flushes the live trace, if one is active: uninstalls the tracer,
  /// drains outstanding requests (so every span on every strand is closed)
  /// and writes the Chrome trace to the path given at trace_start. Called
  /// by the trace_stop verb, on shutdown, from transport teardown
  /// (SocketServer idle timeout) and from the destructor, so a traced run
  /// that never sent trace_stop still keeps its tail. Returns false when
  /// no trace was active.
  bool finish_trace();

  std::size_t session_count() const;
  const DaemonOptions& options() const { return options_; }

private:
  /// Per-session telemetry published from the strand (after each request)
  /// and read by the inline stats verb. Atomics because stats never joins
  /// a strand; relaxed order because these are gauges, not results.
  struct SessionGauges {
    std::atomic<std::int64_t> requests{0};
    std::atomic<std::int64_t> journal_length{0};
    std::atomic<std::int64_t> snapshots{0};
    std::atomic<std::int64_t> topology_version{0};
    std::atomic<std::int64_t> full_builds{0};
    std::atomic<std::int64_t> incremental_updates{0};
  };

  /// One open design and its FIFO request queue. `session` is null until
  /// the open_design job ran (requests queued behind a failed open report
  /// "session is not open").
  struct Strand {
    std::unique_ptr<Session> session;
    std::deque<std::function<void()>> queue;
    bool running = false;
    bool closed = false;
    SessionGauges gauges;
  };

  void post(const std::shared_ptr<Strand>& strand, std::function<void()> job);
  void run_strand(std::shared_ptr<Strand> strand);
  void finish_one();

  // Request execution (called on the strand, serialized per session).
  std::string execute(Strand& strand, const obs::JsonValue& request);
  std::string do_open(Strand& strand, const obs::JsonValue& request);
  std::string do_close(Strand& strand, const obs::JsonValue& request);
  void update_gauges(Strand& strand);

  // Telemetry verbs (inline on the calling thread; never touch Session
  // state, only atomic gauges and the registry snapshot).
  std::string do_stats(std::int64_t id);
  std::string do_trace_start(std::int64_t id, const obs::JsonValue& request);
  std::string do_trace_stop(std::int64_t id);
  /// Writes the flight recorder to options_.flight_dump_path (no-op when
  /// the path is empty).
  void dump_flight(const char* trigger);

  const lib::Library& library_;
  DaemonOptions options_;
  std::unique_ptr<runtime::ThreadPool> pool_;  // null when jobs <= 1
  LatencyRecorder latency_;

  mutable std::mutex mutex_;  // guards sessions_, strand queues, counters
  std::map<std::string, std::shared_ptr<Strand>> sessions_;
  std::size_t outstanding_ = 0;
  std::condition_variable idle_;
  bool shutdown_ = false;

  std::mutex trace_mutex_;  // guards the live-trace fields below
  std::unique_ptr<obs::Tracer> tracer_;
  std::string trace_path_;
  std::size_t trace_event_count_ = 0;  // from the most recent finish_trace
};

/// RAII drain for scopes that hand the daemon request sinks referencing
/// locals: the destructor runs Daemon::drain() on every exit path,
/// exceptional unwind included, so no posted job outlives what its sink
/// captured. mbrc-analyze rule A2 recognizes this type as a wait that
/// dominates every exit.
class DrainGuard {
 public:
  explicit DrainGuard(Daemon& daemon) : daemon_(daemon) {}
  DrainGuard(const DrainGuard&) = delete;
  DrainGuard& operator=(const DrainGuard&) = delete;
  ~DrainGuard() { daemon_.drain(); }

 private:
  Daemon& daemon_;
};

}  // namespace mbrc::service
