#include "service/daemon.hpp"

#include <chrono>
#include <fstream>
#include <future>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "benchgen/generator.hpp"
#include "netlist/io.hpp"
#include "obs/counters.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace mbrc::service {

namespace {

// Request latency is wall clock and therefore measurement-only: it is
// surfaced by the stats verb (DESIGN.md §11) and no response payload ever
// depends on it. The alias keeps the daemon's clock-exempt surface to this
// one declaration.
// mbrc-lint: allow(R3, request-latency measurement for the stats verb; measurement-only, no response content depends on it)
using LatencyClock = std::chrono::steady_clock;

double micros_since(LatencyClock::time_point start) {
  return std::chrono::duration<double, std::micro>(LatencyClock::now() -
                                                   start)
      .count();
}

std::string fail(std::int64_t id, const std::string& message) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object().kv("id", id).kv("ok", false).kv("error", message);
  w.end_object();
  return os.str();
}

std::int64_t request_id(const obs::JsonValue& request) {
  return request.int_or("id", -1);
}

/// Reads an optional array of non-negative entity ids. Returns false (with
/// `error` set) on a malformed list; an absent member is an empty list.
template <class IdT>
bool parse_ids(const obs::JsonValue& request, const char* key,
               std::vector<IdT>& out, std::string& error) {
  const obs::JsonValue* list = request.find(key);
  if (list == nullptr) return true;
  if (!list->is_array()) {
    error = std::string(key) + " must be an array of ids";
    return false;
  }
  for (const obs::JsonValue& item : list->array()) {
    const std::optional<std::int64_t> id = item.as_int();
    if (!id.has_value() || *id < 0 ||
        *id > std::numeric_limits<std::int32_t>::max()) {
      error = std::string(key) + " entries must be non-negative integers";
      return false;
    }
    out.push_back(IdT(static_cast<std::int32_t>(*id)));
  }
  return true;
}

bool parse_check_level(const std::string& text, check::CheckLevel& out) {
  if (text == "off") out = check::CheckLevel::kOff;
  else if (text == "stage") out = check::CheckLevel::kStageBoundaries;
  else if (text == "paranoid") out = check::CheckLevel::kParanoid;
  else return false;
  return true;
}

/// Decodes one apply_edits entry. Returns empty on success.
std::string parse_edit(const obs::JsonValue& entry, Edit& out) {
  if (!entry.is_object()) return "edit must be an object";
  const std::optional<std::int64_t> cell =
      entry.find("cell") != nullptr ? entry.find("cell")->as_int()
                                    : std::nullopt;
  if (!cell.has_value() || *cell < 0 ||
      *cell > std::numeric_limits<std::int32_t>::max())
    return "edit needs a non-negative integer cell id";
  out.cell = netlist::CellId(static_cast<std::int32_t>(*cell));

  const std::string op = entry.string_or("op", "");
  if (op == "move") {
    out.op = Edit::Op::kMove;
    const obs::JsonValue* x = entry.find("x");
    const obs::JsonValue* y = entry.find("y");
    if (x == nullptr || !x->is_number() || y == nullptr || !y->is_number())
      return "move needs numeric x and y";
    out.x = x->as_number();
    out.y = y->as_number();
  } else if (op == "swap") {
    out.op = Edit::Op::kSwap;
    out.variant = entry.string_or("variant", "");
    if (out.variant.empty()) return "swap needs a variant cell name";
  } else if (op == "skew") {
    out.op = Edit::Op::kSkew;
    out.clear_skew = entry.bool_or("clear", false);
    const obs::JsonValue* skew = entry.find("skew");
    if (!out.clear_skew && (skew == nullptr || !skew->is_number()))
      return "skew needs a numeric skew (or clear: true)";
    if (skew != nullptr && skew->is_number()) out.skew = skew->as_number();
  } else {
    return "unknown edit op: " + op;
  }
  return {};
}

}  // namespace

Daemon::Daemon(const lib::Library& library, DaemonOptions options)
    : library_(library), options_(options) {
  if (options_.jobs > 1)
    pool_ = std::make_unique<runtime::ThreadPool>(options_.jobs - 1);
}

Daemon::~Daemon() {
  finish_trace();  // a traced run that just hit EOF still keeps its tail
  drain();
}

bool Daemon::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_;
}

std::size_t Daemon::session_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

void Daemon::drain() {
  // The calling thread helps the pool while waiting so a drain from the
  // serve thread cannot starve strand jobs on a small pool.
  std::unique_lock<std::mutex> lock(mutex_);
  while (outstanding_ > 0) {
    if (pool_ != nullptr) {
      lock.unlock();
      if (!pool_->run_one()) {
        lock.lock();
        idle_.wait_for(lock, std::chrono::milliseconds(1));
        continue;
      }
      lock.lock();
    } else {
      idle_.wait(lock);
    }
  }
}

void Daemon::finish_one() {
  std::lock_guard<std::mutex> lock(mutex_);
  --outstanding_;
  if (outstanding_ == 0) idle_.notify_all();
}

void Daemon::run_strand(std::shared_ptr<Strand> strand) {
  for (;;) {
    std::function<void()> job;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (strand->queue.empty()) {
        strand->running = false;
        return;
      }
      job = std::move(strand->queue.front());
      strand->queue.pop_front();
    }
    job();
    finish_one();
  }
}

void Daemon::post(const std::shared_ptr<Strand>& strand,
                  std::function<void()> job) {
  bool start = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++outstanding_;
    strand->queue.push_back(std::move(job));
    if (!strand->running) {
      strand->running = true;
      start = true;
    }
  }
  if (!start) return;
  if (pool_ != nullptr) {
    std::shared_ptr<Strand> owned = strand;
    pool_->submit([this, owned] { run_strand(owned); });
  } else {
    run_strand(strand);
  }
}

void Daemon::handle(std::string line, std::function<void(std::string)> sink) {
  static obs::Counter& c_requests = obs::counter("service.requests");
  static obs::Counter& c_bad = obs::counter("service.requests.bad");
  c_requests.add(1);
  const LatencyClock::time_point t_received = LatencyClock::now();

  const obs::JsonParseResult parsed = obs::parse_json(line);
  if (!parsed.ok) {
    c_bad.add(1);
    obs::flight::record(obs::flight::EventKind::kProtocolError, "parse error",
                        -1);
    dump_flight("protocol error");
    sink(fail(-1, "parse error: " + parsed.error));
    return;
  }
  if (!parsed.value.is_object()) {
    c_bad.add(1);
    obs::flight::record(obs::flight::EventKind::kProtocolError,
                        "request not an object", -1);
    dump_flight("protocol error");
    sink(fail(-1, "request must be a JSON object"));
    return;
  }
  const std::int64_t id = request_id(parsed.value);
  const std::string cmd = parsed.value.string_or("cmd", "");

  // Global commands execute inline on the calling thread. They never touch
  // Session state: stats reads only atomic gauges and registry snapshots,
  // so it can answer while every strand is busy.
  if (cmd == "ping" || cmd == "shutdown" || cmd == "stats" ||
      cmd == "trace_start" || cmd == "trace_stop") {
    obs::flight::record(obs::flight::EventKind::kRequest, cmd, id);
    std::string response;
    if (cmd == "stats") {
      response = do_stats(id);
    } else if (cmd == "trace_start") {
      response = do_trace_start(id, parsed.value);
    } else if (cmd == "trace_stop") {
      response = do_trace_stop(id);
    } else {
      if (cmd == "shutdown") {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
      }
      std::ostringstream os;
      obs::JsonWriter w(os, 0);
      w.begin_object().kv("id", id).kv("ok", true);
      if (cmd == "shutdown") w.kv("shutdown", true);
      w.end_object();
      response = os.str();
    }
    latency_.record(cmd, micros_since(t_received));
    sink(std::move(response));
    // A traced run that ends via shutdown must not drop its tail. Flushed
    // after the response so the client is not blocked on the drain.
    if (cmd == "shutdown") finish_trace();
    return;
  }

  const std::string name = parsed.value.string_or("session", "");
  if (cmd.empty() || name.empty()) {
    c_bad.add(1);
    sink(fail(id, cmd.empty() ? "request needs a cmd"
                              : "request needs a session"));
    return;
  }

  std::shared_ptr<Strand> strand;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(name);
    if (cmd == "open_design") {
      if (it != sessions_.end()) {
        c_bad.add(1);
        // Fall through outside the lock: respond without touching the strand.
      } else {
        strand = std::make_shared<Strand>();
        sessions_[name] = strand;
      }
    } else if (it != sessions_.end()) {
      strand = it->second;
    }
  }
  if (strand == nullptr) {
    sink(fail(id, cmd == "open_design" ? "session already open: " + name
                                       : "unknown session: " + name));
    return;
  }

  // Session commands run on the strand: FIFO per session, concurrent
  // across sessions.
  std::shared_ptr<obs::JsonValue> request =
      std::make_shared<obs::JsonValue>(std::move(parsed.value));
  post(strand,
       [this, strand, request, name, t_received, sink = std::move(sink)] {
    // Strand span "req <id>: <cmd> @<session>" -- the request's timeline
    // row in Perfetto; the handler and engine spans nest inside it. The
    // name is built only while a tracer is live; spans are opened ONLY
    // inside posted strand jobs (tracked by outstanding_), which is what
    // lets finish_trace() uninstall-then-drain without racing a span.
    std::string span_name;
    if (obs::Tracer::active() != nullptr)
      span_name = "req " + std::to_string(request_id(*request)) + ": " +
                  request->string_or("cmd", "") + " @" + name;
    std::string response;
    {
      obs::Span strand_span(span_name);
      try {
        response = execute(*strand, *request);
      } catch (const std::exception& e) {
        if (request->string_or("cmd", "") == "open_design") {
          // A throwing open (e.g. a malformed artifact) vacates the name.
          std::lock_guard<std::mutex> lock(mutex_);
          strand->closed = true;
          sessions_.erase(name);
        }
        response = fail(request_id(*request),
                        std::string("request failed: ") + e.what());
      }
    }
    update_gauges(*strand);
    latency_.record(request->string_or("cmd", ""), micros_since(t_received));
    sink(std::move(response));
  });
}

void Daemon::update_gauges(Strand& strand) {
  SessionGauges& gauges = strand.gauges;
  gauges.requests.fetch_add(1, std::memory_order_relaxed);
  if (strand.session == nullptr) return;
  const Session& session = *strand.session;
  gauges.journal_length.store(
      static_cast<std::int64_t>(session.journal_length()),
      std::memory_order_relaxed);
  gauges.snapshots.store(static_cast<std::int64_t>(session.snapshot_count()),
                         std::memory_order_relaxed);
  gauges.topology_version.store(
      static_cast<std::int64_t>(session.design().topology_version()),
      std::memory_order_relaxed);
  const sta::TimingEngine::Stats& engine = session.engine_stats();
  gauges.full_builds.store(static_cast<std::int64_t>(engine.full_builds),
                           std::memory_order_relaxed);
  gauges.incremental_updates.store(
      static_cast<std::int64_t>(engine.incremental_updates),
      std::memory_order_relaxed);
}

std::string Daemon::handle_sync(const std::string& line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  handle(line, [&promise](std::string response) {
    promise.set_value(std::move(response));
  });
  if (pool_ != nullptr)
    return runtime::help_get(*pool_, std::move(future));
  return future.get();
}

std::size_t Daemon::serve(std::istream& in, std::ostream& out) {
  std::mutex out_mutex;
  // The sink captures this frame; a throw on the read loop's back edge
  // (getline, shutdown check) must still drain in-flight requests before
  // out/out_mutex die.
  DrainGuard drain_guard(*this);
  const auto sink = [&out, &out_mutex](std::string response) {
    std::lock_guard<std::mutex> lock(out_mutex);
    out << response << '\n';
    out.flush();
  };

  std::size_t served = 0;
  std::string line;
  while (!shutdown_requested() && std::getline(in, line)) {
    if (line.empty()) continue;
    handle(std::move(line), sink);
    ++served;
    line.clear();
  }
  return served;  // drain_guard drains before out/out_mutex go away
}

// ---------------------------------------------------------------------------
// Telemetry verbs (inline on the calling thread).
// ---------------------------------------------------------------------------

std::string Daemon::do_stats(std::int64_t id) {
  // Order matters for the pinned byte-layout test in service_test.cpp:
  // id, ok, service, verbs, pool, sessions, counters, histograms, trace.
  const std::map<std::string, LatencyRecorder::VerbStats> verbs =
      latency_.snapshot();
  const obs::CountersSnapshot registry = obs::counters_snapshot();

  std::vector<std::pair<std::string, std::shared_ptr<Strand>>> strands;
  bool shutdown;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    strands.assign(sessions_.begin(), sessions_.end());
    shutdown = shutdown_;
  }

  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object().kv("id", id).kv("ok", true);

  w.key("service").begin_object();
  w.kv("jobs", static_cast<std::int64_t>(options_.jobs));
  w.kv("sessions_open", static_cast<std::int64_t>(strands.size()));
  w.kv("shutdown", shutdown);
  w.end_object();

  w.key("verbs").begin_object();
  for (const auto& [verb, stats] : verbs) {
    w.key(verb).begin_object();
    w.kv("count", stats.count);
    w.kv("p50_us", stats.p50_us).kv("p95_us", stats.p95_us);
    w.kv("p99_us", stats.p99_us).kv("max_us", stats.max_us);
    w.end_object();
  }
  w.end_object();

  w.key("pool").begin_object();
  w.kv("workers",
       static_cast<std::int64_t>(pool_ != nullptr ? pool_->worker_count()
                                                  : 0));
  w.kv("queue_depth",
       static_cast<std::int64_t>(pool_ != nullptr ? pool_->queue_depth() : 0));
  w.kv("queue_depth_peak",
       static_cast<std::int64_t>(pool_ != nullptr ? pool_->queue_depth_peak()
                                                  : 0));
  w.kv("active_workers",
       static_cast<std::int64_t>(pool_ != nullptr ? pool_->active_workers()
                                                  : 0));
  w.end_object();

  w.key("sessions").begin_object();
  for (const auto& [name, strand] : strands) {
    const SessionGauges& g = strand->gauges;
    w.key(name).begin_object();
    w.kv("requests", g.requests.load(std::memory_order_relaxed));
    w.kv("journal_length", g.journal_length.load(std::memory_order_relaxed));
    w.kv("snapshots", g.snapshots.load(std::memory_order_relaxed));
    w.kv("topology_version",
         g.topology_version.load(std::memory_order_relaxed));
    w.key("engine").begin_object();
    w.kv("full_builds", g.full_builds.load(std::memory_order_relaxed));
    w.kv("incremental_updates",
         g.incremental_updates.load(std::memory_order_relaxed));
    w.end_object();
    w.end_object();
  }
  w.end_object();

  w.key("counters").begin_object();
  for (const auto& [name, value] : registry.counters) w.kv(name, value);
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, hist] : registry.histograms) {
    w.key(name).begin_object();
    w.kv("count", hist.count).kv("sum", hist.sum);
    w.key("buckets").begin_object();
    for (const auto& [bucket, n] : hist.buckets)
      w.kv(std::to_string(bucket), n);
    w.end_object();
    w.end_object();
  }
  w.end_object();

  w.key("trace").begin_object();
  {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    w.kv("active", tracer_ != nullptr);
    w.kv("path", trace_path_);
  }
  w.end_object();

  w.end_object();
  return os.str();
}

std::string Daemon::do_trace_start(std::int64_t id,
                                   const obs::JsonValue& request) {
  const std::string path = request.string_or("path", "");
  if (path.empty()) return fail(id, "trace_start needs a path");
  std::lock_guard<std::mutex> lock(trace_mutex_);
  if (tracer_ != nullptr)
    return fail(id, "a trace is already active: " + trace_path_);
  if (obs::Tracer::active() != nullptr)
    return fail(id, "another tracer is active in this process");
  tracer_ = std::make_unique<obs::Tracer>();
  trace_path_ = path;
  tracer_->install();
  obs::flight::record(obs::flight::EventKind::kTraceControl,
                      "trace_start " + path, id);
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object().kv("id", id).kv("ok", true).kv("tracing", true);
  w.kv("path", path).end_object();
  return os.str();
}

std::string Daemon::do_trace_stop(std::int64_t id) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    path = trace_path_;
  }
  if (!finish_trace()) return fail(id, "no trace is active");
  std::size_t events;
  {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    events = trace_event_count_;
  }
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object().kv("id", id).kv("ok", true).kv("tracing", false);
  w.kv("path", path).kv("events", static_cast<std::int64_t>(events));
  w.end_object();
  return os.str();
}

bool Daemon::finish_trace() {
  std::unique_ptr<obs::Tracer> tracer;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    if (tracer_ == nullptr) return false;
    tracer = std::move(tracer_);
    path = trace_path_;
    trace_path_.clear();
  }
  // Stop collection, then wait out every in-flight strand job: jobs
  // accepted before the uninstall are tracked in outstanding_, so after
  // drain() every span they opened is closed; jobs posted after the
  // uninstall see no active tracer and record nothing. That ordering is
  // what makes take() (which asserts all spans closed) safe on a live
  // daemon.
  tracer->uninstall();
  drain();
  const obs::TraceData data = tracer->take();
  {
    std::ofstream out(path);
    if (out) obs::write_chrome_trace(out, data);
  }
  {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    trace_event_count_ = data.events.size();
  }
  obs::flight::record(obs::flight::EventKind::kTraceControl,
                      "trace_stop " + path,
                      static_cast<std::int64_t>(data.events.size()));
  return true;
}

void Daemon::dump_flight(const char* trigger) {
  if (options_.flight_dump_path.empty()) return;
  obs::flight::dump_to_file(options_.flight_dump_path, trigger);
}

// ---------------------------------------------------------------------------
// Request execution (runs on the session's strand).
// ---------------------------------------------------------------------------

std::string Daemon::do_open(Strand& strand, const obs::JsonValue& request) {
  const std::int64_t id = request_id(request);
  const std::string name = request.string_or("session", "");
  // A failed open vacates the name so the client can retry it.
  const auto open_fail = [&](const std::string& message) {
    std::lock_guard<std::mutex> lock(mutex_);
    strand.closed = true;
    sessions_.erase(name);
    return fail(id, message);
  };
  SessionOptions session_options = options_.session_defaults;

  const std::string level_text = request.string_or("check_level", "");
  if (!level_text.empty() &&
      !parse_check_level(level_text, session_options.check_level))
    return open_fail("check_level must be off, stage or paranoid");
  const std::int64_t max_snapshots = request.int_or("max_snapshots", -1);
  if (max_snapshots >= 0)
    session_options.max_snapshots = static_cast<std::size_t>(max_snapshots);

  const std::string path = request.string_or("path", "");
  const std::string profile_name = request.string_or("profile", "");
  netlist::Design design(&library_, {});
  double clock_period = session_options.timing.clock_period;
  if (!path.empty()) {
    std::optional<netlist::Design> loaded =
        netlist::load_design_file(library_, path);
    if (!loaded.has_value()) return open_fail("cannot open design: " + path);
    design = std::move(*loaded);
  } else if (!profile_name.empty()) {
    benchgen::DesignProfile profile;
    bool found = false;
    for (const benchgen::DesignProfile& p : benchgen::standard_profiles())
      if (p.name == profile_name) {
        profile = p;
        found = true;
      }
    if (!found) {
      profile.name = profile_name;  // custom profile, parameterized below
      profile.register_cells = 200;
    }
    const std::int64_t registers = request.int_or("registers", 0);
    if (registers > 0) profile.register_cells = static_cast<int>(registers);
    const std::int64_t seed = request.int_or("seed", 0);
    if (seed > 0) profile.seed = static_cast<std::uint64_t>(seed);
    benchgen::GeneratedDesign generated =
        benchgen::generate_design(library_, profile);
    design = std::move(generated.design);
    clock_period = generated.calibrated_clock_period;
  } else {
    return open_fail("open_design needs a profile or a path");
  }

  const obs::JsonValue* period = request.find("clock_period");
  if (period != nullptr && period->is_number())
    clock_period = period->as_number();
  session_options.timing.clock_period = clock_period;

  strand.session = std::make_unique<Session>(library_, std::move(design),
                                             session_options);
  const netlist::DesignStats stats = strand.session->design().stats();
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object().kv("id", id).kv("ok", true);
  w.kv("cells", stats.cells).kv("registers", stats.total_registers);
  w.kv("register_bits", stats.register_bits);
  w.kv("clock_period", clock_period);
  const geom::Rect& core = strand.session->design().core();
  w.key("core").begin_array();
  w.value(core.xlo).value(core.ylo).value(core.xhi).value(core.yhi);
  w.end_array();
  w.kv("topology_version", static_cast<std::int64_t>(
                               strand.session->design().topology_version()));
  w.end_object();
  return os.str();
}

std::string Daemon::do_close(Strand& strand, const obs::JsonValue& request) {
  const std::int64_t id = request_id(request);
  const std::string name = request.string_or("session", "");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    strand.closed = true;
    sessions_.erase(name);
  }
  strand.session.reset();
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object().kv("id", id).kv("ok", true).kv("closed", name);
  w.end_object();
  return os.str();
}

std::string Daemon::execute(Strand& strand, const obs::JsonValue& request) {
  const std::int64_t id = request_id(request);
  const std::string cmd = request.string_or("cmd", "");
  const std::string session_name = request.string_or("session", "");

  // Handler span ("service.<cmd>"), nested inside the strand span; the
  // session/engine spans nest inside this one.
  std::string span_name;
  if (obs::Tracer::active() != nullptr) span_name = "service." + cmd;
  obs::Span handler_span(span_name);
  obs::flight::record(obs::flight::EventKind::kRequest,
                      session_name + " " + cmd, id);

  if (cmd == "open_design") return do_open(strand, request);
  if (strand.closed) return fail(id, "session is closed");
  if (strand.session == nullptr) return fail(id, "session is not open");
  if (cmd == "close") return do_close(strand, request);
  Session& session = *strand.session;

  if (cmd == "apply_edits") {
    const obs::JsonValue* list = request.find("edits");
    if (list == nullptr || !list->is_array())
      return fail(id, "apply_edits needs an edits array");
    std::vector<Edit> edits;
    edits.reserve(list->array().size());
    for (const obs::JsonValue& entry : list->array()) {
      Edit edit;
      const std::string error = parse_edit(entry, edit);
      if (!error.empty()) return fail(id, error);
      edits.push_back(std::move(edit));
    }
    for (const Edit& edit : edits) {
      const char* op = edit.op == Edit::Op::kMove   ? "move"
                       : edit.op == Edit::Op::kSwap ? "swap"
                                                    : "skew";
      obs::flight::record(obs::flight::EventKind::kEdit,
                          session_name + " " + op, edit.cell.index, id);
    }
    const EditOutcome outcome = session.apply(edits);
    if (outcome.check_failed) {
      obs::flight::record(obs::flight::EventKind::kCheckFailure,
                          session_name + " post-edit check", id);
      dump_flight("checker failure");
    }
    std::ostringstream os;
    obs::JsonWriter w(os, 0);
    w.begin_object().kv("id", id).kv("ok", outcome.ok());
    if (!outcome.ok())
      w.kv("error", outcome.error).kv("error_index", outcome.error_index);
    w.kv("applied", outcome.applied);
    w.kv("topology_version",
         static_cast<std::int64_t>(outcome.topology_version));
    w.kv("journal_length", outcome.journal_length);
    w.end_object();
    return os.str();
  }

  if (cmd == "query_timing") {
    TimingQuery query;
    std::string error;
    if (!parse_ids(request, "pins", query.pins, error) ||
        !parse_ids(request, "registers", query.registers, error))
      return fail(id, error);
    const TimingAnswer answer = session.query(query);
    if (answer.check_failed) {
      obs::flight::record(obs::flight::EventKind::kCheckFailure,
                          session_name + " paranoid cross-check", id);
      dump_flight("checker failure");
    }
    if (!answer.ok()) return fail(id, answer.error);
    std::ostringstream os;
    obs::JsonWriter w(os, 0);
    w.begin_object().kv("id", id).kv("ok", true);
    w.kv("wns", answer.wns).kv("tns", answer.tns);
    w.kv("failing_endpoints", answer.failing_endpoints);
    w.kv("total_endpoints", answer.total_endpoints);
    w.kv("hold_wns", answer.hold_wns);
    w.key("pins").begin_array();
    for (const TimingAnswer::PinSlack& pin : answer.pins) {
      w.begin_object().kv("pin", pin.pin.index).kv("slack", pin.slack);
      w.kv("hold_slack", pin.hold_slack).end_object();
    }
    w.end_array();
    w.key("registers").begin_array();
    for (const TimingAnswer::RegisterSlack& reg : answer.registers) {
      w.begin_object().kv("cell", reg.cell.index);
      w.kv("d_slack", reg.d_slack).kv("q_slack", reg.q_slack).end_object();
    }
    w.end_array();
    w.key("engine").begin_object();
    w.kv("full_builds", static_cast<std::int64_t>(answer.full_builds));
    w.kv("incremental_updates",
         static_cast<std::int64_t>(answer.incremental_updates));
    w.kv("repaired_pins", answer.repaired_pins);
    w.end_object();
    w.end_object();
    return os.str();
  }

  if (cmd == "recompose_region") {
    std::vector<netlist::CellId> region;
    std::string error;
    if (!parse_ids(request, "region", region, error)) return fail(id, error);
    // Optional per-request cost knobs (mbr/cost.hpp): any of alpha / beta /
    // gamma present overrides the session's model for this plan only;
    // absent knobs keep the session defaults.
    std::optional<mbr::CostModel> cost;
    if (request.find("alpha") != nullptr || request.find("beta") != nullptr ||
        request.find("gamma") != nullptr) {
      mbr::CostModel model =
          session.options().composition.enumeration.cost;
      model.alpha = request.number_or("alpha", model.alpha);
      model.beta = request.number_or("beta", model.beta);
      model.gamma = request.number_or("gamma", model.gamma);
      cost = model;
    }
    const RecomposeAnswer answer = session.recompose(region, cost);
    if (!answer.ok()) return fail(id, answer.error);
    const mbr::CostModel effective =
        cost ? *cost : session.options().composition.enumeration.cost;
    std::ostringstream os;
    obs::JsonWriter w(os, 0);
    w.begin_object().kv("id", id).kv("ok", true);
    w.kv("region_registers", answer.region_registers);
    w.kv("subgraphs", answer.subgraphs);
    w.kv("candidates", answer.candidates);
    w.kv("ilp_nodes", answer.ilp_nodes);
    w.kv("planned_mbrs", answer.planned_mbrs);
    w.kv("merged_registers", answer.merged_registers);
    w.kv("objective", answer.objective);
    w.key("cost").begin_object();
    w.kv("alpha", effective.alpha);
    w.kv("beta", effective.beta);
    w.kv("gamma", effective.gamma);
    w.end_object();
    w.end_object();
    return os.str();
  }

  if (cmd == "snapshot" || cmd == "rollback") {
    const std::string name = request.string_or("name", "");
    obs::flight::record(cmd == "snapshot"
                            ? obs::flight::EventKind::kSnapshot
                            : obs::flight::EventKind::kRollback,
                        session_name + " " + name, id);
    const Session::SnapshotOutcome outcome =
        cmd == "snapshot" ? session.snapshot(name) : session.rollback(name);
    if (!outcome.ok()) return fail(id, outcome.error);
    std::ostringstream os;
    obs::JsonWriter w(os, 0);
    w.begin_object().kv("id", id).kv("ok", true);
    w.kv("snapshots", outcome.snapshot_count);
    w.kv("topology_version", static_cast<std::int64_t>(
                                 session.design().topology_version()));
    w.end_object();
    return os.str();
  }

  if (cmd == "list_registers") {
    // Ids in id order (deterministic); movable/swappable status so clients
    // can build edit streams without guessing at dont_touch cells.
    const std::int64_t limit = request.int_or("limit", -1);
    std::ostringstream os;
    obs::JsonWriter w(os, 0);
    w.begin_object().kv("id", id).kv("ok", true);
    w.key("registers").begin_array();
    std::int64_t emitted = 0;
    for (netlist::CellId reg : session.design().registers()) {
      if (limit >= 0 && emitted >= limit) break;
      const netlist::Cell& cell = session.design().cell(reg);
      w.begin_object().kv("cell", reg.index).kv("bits", cell.reg->bits);
      w.kv("variant", cell.reg->name).kv("fixed", cell.fixed);
      w.kv("x", cell.position.x).kv("y", cell.position.y).end_object();
      ++emitted;
    }
    w.end_array();
    w.end_object();
    return os.str();
  }

  if (cmd == "check") {
    const bool placement = request.bool_or("placement", false);
    const check::CheckReport report = session.check(placement);
    if (!report.ok()) {
      obs::flight::record(obs::flight::EventKind::kCheckFailure,
                          session_name + " check", id,
                          static_cast<std::int64_t>(report.violations.size()));
      dump_flight("checker failure");
    }
    std::ostringstream os;
    obs::JsonWriter w(os, 0);
    w.begin_object().kv("id", id).kv("ok", report.ok());
    w.key("violations").begin_array();
    for (const check::Violation& v : report.violations) {
      w.begin_object().kv("check", v.check).kv("detail", v.detail);
      w.end_object();
    }
    w.end_array();
    if (!report.ok() && !options_.flight_dump_path.empty())
      w.kv("flight_dump", options_.flight_dump_path);
    w.end_object();
    return os.str();
  }

  return fail(id, "unknown cmd: " + cmd);
}

}  // namespace mbrc::service
