#include "service/telemetry.hpp"

#include <algorithm>

#include "obs/counters.hpp"

namespace mbrc::service {

void LatencyRecorder::record(std::string_view verb, double us) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = verbs_.find(verb);
  if (it == verbs_.end())
    it = verbs_.emplace(std::string(verb), Verb{}).first;
  Verb& entry = it->second;
  ++entry.count;
  if (entry.samples.size() < kWindow)
    entry.samples.push_back(us);
  else
    entry.samples[entry.next] = us;
  entry.next = (entry.next + 1) % kWindow;
}

std::map<std::string, LatencyRecorder::VerbStats> LatencyRecorder::snapshot()
    const {
  std::map<std::string, VerbStats> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, entry] : verbs_) {
    VerbStats stats;
    stats.count = entry.count;
    if (!entry.samples.empty()) {
      std::vector<double> sorted = entry.samples;
      std::sort(sorted.begin(), sorted.end());
      stats.p50_us = obs::Histogram::percentile(sorted, 0.50);
      stats.p95_us = obs::Histogram::percentile(sorted, 0.95);
      stats.p99_us = obs::Histogram::percentile(sorted, 0.99);
      stats.max_us = sorted.back();
    }
    out.emplace(name, stats);
  }
  return out;
}

}  // namespace mbrc::service
