// One open design inside the composition service.
//
// A Session owns the mutable state the daemon multiplexes: the placed
// netlist, the per-register useful-skew map, a persistent incremental
// TimingEngine riding on the design's edit journal, named snapshots for
// rollback, and the flow-integrity checker's conservation baseline. All
// methods must be called from one thread at a time (the daemon serializes a
// session's requests on a strand); distinct sessions are independent and may
// run concurrently.
//
// Determinism contract: every method is a pure function of the session's
// edit history. Timing queries are answered by dirty-cone repair and are
// bit-identical to a from-scratch run_sta after the same edits (the
// TimingEngine contract), so a recorded request stream replayed through the
// daemon at any `jobs` count yields byte-identical responses per session
// (tests/service_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "mbr/composition.hpp"
#include "netlist/design.hpp"
#include "sta/timing_engine.hpp"

namespace mbrc::service {

struct SessionOptions {
  sta::TimingOptions timing;  // jobs stays 1: parallelism lives across sessions
  mbr::CompositionOptions composition;
  /// Flow-integrity checking per request: kOff is free; kStageBoundaries
  /// validates structure/nets/conservation after every apply_edits batch;
  /// kParanoid additionally cross-validates the incremental engine against
  /// a fresh run_sta on every timing query.
  check::CheckLevel check_level = check::CheckLevel::kOff;
  /// Snapshots retained per session (each is a full design copy).
  std::size_t max_snapshots = 64;
};

/// One batched edit. `op` selects which of the remaining fields apply.
struct Edit {
  enum class Op { kMove, kSwap, kSkew };
  Op op = Op::kMove;
  netlist::CellId cell;
  double x = 0.0, y = 0.0;     // kMove
  std::string variant;         // kSwap: library register cell name
  double skew = 0.0;           // kSkew
  bool clear_skew = false;     // kSkew: erase the register's entry instead
};

struct EditOutcome {
  int applied = 0;             // edits applied before the first failure
  std::string error;           // empty on success
  int error_index = -1;        // index of the failing edit
  std::uint64_t topology_version = 0;
  std::size_t journal_length = 0;
  /// True when `error` came from the post-edit design checker (as opposed
  /// to a rejected edit): the daemon dumps the flight recorder on these.
  bool check_failed = false;

  bool ok() const { return error.empty(); }
};

struct TimingQuery {
  std::vector<netlist::PinId> pins;        // per-pin slack requests
  std::vector<netlist::CellId> registers;  // per-register D/Q slack requests
};

struct TimingAnswer {
  std::string error;  // non-empty when the query referenced a bad id
  /// True when `error` came from the paranoid engine cross-check rather
  /// than a bad id; triggers a flight-recorder dump in the daemon.
  bool check_failed = false;
  double wns = 0.0;
  double tns = 0.0;
  int failing_endpoints = 0;
  int total_endpoints = 0;
  double hold_wns = 0.0;
  struct PinSlack {
    netlist::PinId pin;
    double slack = 0.0;
    double hold_slack = 0.0;
  };
  std::vector<PinSlack> pins;
  struct RegisterSlack {
    netlist::CellId cell;
    double d_slack = 0.0;
    double q_slack = 0.0;
  };
  std::vector<RegisterSlack> registers;
  // Engine observability: proves queries are served incrementally
  // (full_builds stays at 1 until a structural edit or rollback).
  std::uint64_t full_builds = 0;
  std::uint64_t incremental_updates = 0;
  std::size_t repaired_pins = 0;

  bool ok() const { return error.empty(); }
};

struct RecomposeAnswer {
  std::string error;
  int region_registers = 0;   // registers the region resolved to
  int subgraphs = 0;          // touched subgraphs re-planned
  std::int64_t candidates = 0;
  std::int64_t ilp_nodes = 0;
  int planned_mbrs = 0;       // selections merging >= 2 registers
  int merged_registers = 0;   // members absorbed by those selections
  double objective = 0.0;

  bool ok() const { return error.empty(); }
};

class Session {
public:
  /// Takes ownership of `design` (which must reference `library`).
  Session(const lib::Library& library, netlist::Design design,
          SessionOptions options);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const netlist::Design& design() const { return design_; }
  const SessionOptions& options() const { return options_; }

  /// Applies a batch in order; stops at the first invalid edit (earlier
  /// edits stay applied -- use snapshot/rollback for atomic batches).
  EditOutcome apply(const std::vector<Edit>& edits);

  /// Brings the engine in sync (dirty-cone repair; full rebuild only after
  /// structural edits or rollback) and answers the query.
  TimingAnswer query(const TimingQuery& query);

  /// Re-runs candidate enumeration + ILP planning on the subgraphs touched
  /// by `region` (explicit register ids), or, when `region` is empty, by
  /// every register edited since the last implicit recompose (that set is
  /// consumed). Planning only: the design is not modified. `cost`, when
  /// present, overrides the session's multi-objective cost knobs
  /// (alpha/beta/gamma, mbr/cost.hpp) for this request only.
  RecomposeAnswer recompose(const std::vector<netlist::CellId>& region,
                            const std::optional<mbr::CostModel>& cost = {});

  /// Runs the design checker now (structure, nets, scan, conservation; the
  /// engine cross-check at kParanoid) regardless of options().check_level.
  /// Placement legality is opt-in via `include_placement` because service
  /// edits are raw placement moves (row legality is the batch legalizer's
  /// contract); operators can still request the full audit.
  check::CheckReport check(bool include_placement = false);

  struct SnapshotOutcome {
    std::string error;
    std::size_t snapshot_count = 0;
    bool ok() const { return error.empty(); }
  };
  SnapshotOutcome snapshot(const std::string& name);
  /// Restores design, skew map and touched-set to the named snapshot. The
  /// snapshot is retained (rolling back repeatedly is allowed).
  SnapshotOutcome rollback(const std::string& name);

  // Telemetry accessors for the daemon's stats verb (read on the strand,
  // published to the stats snapshot through atomic gauges).
  std::size_t journal_length() const { return design_.touched_cells().size(); }
  std::size_t snapshot_count() const { return snapshots_.size(); }
  const sta::TimingEngine::Stats& engine_stats() const {
    return engine_.stats();
  }

private:
  std::string validate(const Edit& edit) const;  // empty when applicable
  void apply_one(const Edit& edit);
  void note_touched(netlist::CellId cell);

  const lib::Library& library_;
  netlist::Design design_;
  SessionOptions options_;
  sta::TimingEngine engine_;
  sta::SkewMap skew_;
  /// Registers edited since the last implicit recompose, ordered by id
  /// (deterministic region resolution).
  std::set<netlist::CellId> touched_;
  struct Saved {
    netlist::Design::Snapshot design;
    sta::SkewMap skew;
    std::set<netlist::CellId> touched;
  };
  std::map<std::string, Saved> snapshots_;
  check::DesignChecker::Baseline baseline_;
};

}  // namespace mbrc::service
