#include "service/socket_server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace mbrc::service {

SocketServer::SocketServer(Daemon& daemon, SocketServerOptions options)
    : daemon_(daemon), options_(std::move(options)) {}

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.path.c_str());
  }
}

bool SocketServer::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.path.empty() ||
      options_.path.size() >= sizeof(addr.sun_path)) {
    error_ = "socket path empty or too long: " + options_.path;
    return false;
  }
  std::memcpy(addr.sun_path, options_.path.c_str(), options_.path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(options_.path.c_str());  // stale socket from a previous run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, options_.backlog) < 0) {
    error_ = std::string("bind/listen ") + options_.path + ": " +
             std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

std::size_t SocketServer::run() {
  // Idle-timeout deadline: liveness only -- it decides when the server
  // stops waiting for clients, never any response content.
  // mbrc-lint: allow(R3, idle-timeout deadline; liveness only, no flow result depends on it)
  using clock = std::chrono::steady_clock;
  clock::time_point idle_since = clock::now();

  std::size_t served = 0;
  std::vector<std::thread> connections;
  while (!daemon_.shutdown_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("poll: ") + std::strerror(errno);
      break;
    }
    if (ready == 0) {
      if (options_.idle_timeout_seconds > 0) {
        // mbrc-lint: allow(R3, idle-timeout check; stops the accept loop, responses are unaffected)
        const double idle = std::chrono::duration<double>(clock::now() -
                                                          idle_since)
                                .count();
        if (idle >= options_.idle_timeout_seconds) break;
      }
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    ++served;
    obs::flight::record(obs::flight::EventKind::kConnection, "accept", fd);
    // mbrc-lint: allow(R3, resets the idle deadline on activity; liveness only)
    idle_since = clock::now();
    connections.emplace_back([this, fd] { serve_connection(fd); });
  }
  for (std::thread& t : connections) t.join();
  daemon_.drain();
  // Idle-timeout teardown flushes a live trace the same way shutdown does,
  // so a traced run that ends by the server going idle keeps its tail.
  daemon_.finish_trace();
  return served;
}

void SocketServer::serve_connection(int fd) {
  // Teardown order on every exit path, exceptional unwind included:
  // destructors run in reverse, so the drain guard (declared second)
  // finishes this client's in-flight requests -- whose sinks capture fd
  // and write_mutex -- before the closer releases the socket.
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};
  std::mutex write_mutex;
  DrainGuard drain_guard(daemon_);
  const auto sink = [fd, &write_mutex](std::string response) {
    response += '\n';
    std::lock_guard<std::mutex> lock(write_mutex);
    std::size_t off = 0;
    while (off < response.size()) {
      const ssize_t n =
          ::send(fd, response.data() + off, response.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;  // peer went away; drop the rest
      off += static_cast<std::size_t>(n);
    }
  };

  std::string pending;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    pending.append(buffer, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = pending.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = pending.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty()) daemon_.handle(std::move(line), sink);
      if (daemon_.shutdown_requested()) break;
    }
    pending.erase(0, start);
    if (daemon_.shutdown_requested()) break;
  }
}

}  // namespace mbrc::service
