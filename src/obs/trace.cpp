#include "obs/trace.hpp"

#include <chrono>

#include "obs/json.hpp"
#include "util/assert.hpp"

namespace mbrc::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<std::uint64_t> next_generation{1};

// Caches the thread's buffer for one tracer generation. A stale generation
// (tracer uninstalled, possibly destroyed, maybe a new one installed) makes
// the cached pointer unreachable rather than dangling-dereferenced:
// generations are globally monotonic and never reused.
struct TlsSlot {
  std::uint64_t generation = 0;
  detail::ThreadBuffer* buffer = nullptr;
};

thread_local TlsSlot tls_slot;

}  // namespace

std::atomic<Tracer*> Tracer::active_{nullptr};

Tracer::~Tracer() {
  // Normally uninstall() already ran; self-deactivating here keeps a
  // mid-flow exception from leaving a dangling active tracer behind.
  Tracer* expected = this;
  active_.compare_exchange_strong(expected, nullptr,
                                  std::memory_order_acq_rel,
                                  std::memory_order_relaxed);
}

void Tracer::install() {
  MBRC_ASSERT_MSG(!installed_, "Tracer::install called twice");
  generation_ = next_generation.fetch_add(1, std::memory_order_relaxed);
  epoch_ns_ = steady_now_ns();
  installed_ = true;
  Tracer* expected = nullptr;
  const bool won = active_.compare_exchange_strong(
      expected, this, std::memory_order_release, std::memory_order_relaxed);
  MBRC_ASSERT_MSG(won, "another Tracer is already active");
}

void Tracer::uninstall() {
  Tracer* expected = this;
  const bool won = active_.compare_exchange_strong(
      expected, nullptr, std::memory_order_acq_rel,
      std::memory_order_relaxed);
  MBRC_ASSERT_MSG(won, "Tracer::uninstall on a tracer that is not active");
}

TraceData Tracer::take() {
  MBRC_ASSERT_MSG(active_.load(std::memory_order_relaxed) != this,
                  "Tracer::take before uninstall");
  std::lock_guard<std::mutex> lock(mutex_);
  TraceData data;
  std::size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->events.size();
  data.events.reserve(total);
  for (auto& buffer : buffers_) {
    MBRC_ASSERT_MSG(buffer->depth == 0,
                    "Tracer::take with a span still open");
    data.thread_names.emplace(buffer->tid, buffer->label);
    for (auto& event : buffer->events) data.events.push_back(std::move(event));
    buffer->events.clear();
  }
  return data;
}

detail::ThreadBuffer* Tracer::local_buffer() {
  if (tls_slot.generation == generation_) return tls_slot.buffer;
  std::lock_guard<std::mutex> lock(mutex_);
  auto buffer = std::make_unique<detail::ThreadBuffer>();
  buffer->tid = static_cast<std::uint32_t>(buffers_.size());
  buffer->label = "thread-" + std::to_string(buffer->tid);
  detail::ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  tls_slot = {generation_, raw};
  return raw;
}

std::int64_t Tracer::now_us() const {
  return (steady_now_ns() - epoch_ns_) / 1000;
}

void Tracer::set_thread_label(std::string_view label) {
  Tracer* tracer = active();
  if (tracer == nullptr) return;
  tracer->local_buffer()->label = std::string(label);
}

void Span::begin(Tracer* tracer, std::string_view name) {
  tracer_ = tracer;
  buffer_ = tracer->local_buffer();
  name_ = std::string(name);
  depth_ = buffer_->depth++;
  start_us_ = tracer->now_us();
}

void Span::end() {
  TraceEvent event;
  event.name = std::move(name_);
  event.tid = buffer_->tid;
  event.depth = depth_;
  event.start_us = start_us_;
  event.dur_us = tracer_->now_us() - start_us_;
  --buffer_->depth;
  buffer_->events.push_back(std::move(event));
  tracer_ = nullptr;
}

void write_chrome_trace(std::ostream& os, const TraceData& trace) {
  JsonWriter w(os, /*indent_width=*/0);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const auto& event : trace.events) {
    w.begin_object()
        .kv("name", std::string_view(event.name))
        .kv("ph", "X")
        .kv("pid", 0)
        .kv("tid", static_cast<std::int64_t>(event.tid))
        .kv("ts", event.start_us)
        .kv("dur", event.dur_us)
        .end_object();
  }
  for (const auto& [tid, label] : trace.thread_names) {
    w.begin_object()
        .kv("name", "thread_name")
        .kv("ph", "M")
        .kv("pid", 0)
        .kv("tid", static_cast<std::int64_t>(tid))
        .key("args")
        .begin_object()
        .kv("name", std::string_view(label))
        .end_object()
        .end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  MBRC_ASSERT_MSG(w.complete(), "chrome trace document left unbalanced");
}

}  // namespace mbrc::obs
