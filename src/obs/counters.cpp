#include "obs/counters.hpp"

#include <bit>
#include <cstdio>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "util/assert.hpp"

namespace mbrc::obs {

namespace {

/// The global registry. Interning takes the exclusive lock only on first
/// sight of a name; steady-state lookups share the lock and allocate
/// nothing (heterogeneous string_view find). Entry addresses are stable
/// (unique_ptr), so probe sites can cache references forever.
template <class T>
class Registry {
public:
  T& intern(std::string_view name) {
    {
      std::shared_lock<std::shared_mutex> lock(mutex_);
      const auto it = entries_.find(name);
      if (it != entries_.end()) return *it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto [it, inserted] =
        entries_.try_emplace(std::string(name), nullptr);
    if (inserted) it->second = std::make_unique<T>();
    return *it->second;
  }

  template <class Fn>
  void for_each(Fn&& fn) const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    for (const auto& [name, entry] : entries_) fn(name, *entry);
  }

private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<T>, std::less<>> entries_;
};

Registry<Counter>& counter_registry() {
  static Registry<Counter> registry;
  return registry;
}

Registry<Histogram>& histogram_registry() {
  static Registry<Histogram> registry;
  return registry;
}

}  // namespace

int Histogram::bucket_of(std::int64_t value) {
  MBRC_ASSERT_MSG(value >= 0, "Histogram records non-negative work counts");
  return std::bit_width(static_cast<std::uint64_t>(value));
}

double Histogram::percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[rank];
}

Counter& counter(std::string_view name) {
  return counter_registry().intern(name);
}

Histogram& histogram(std::string_view name) {
  return histogram_registry().intern(name);
}

CountersSnapshot counters_snapshot() {
  CountersSnapshot snapshot;
  counter_registry().for_each([&](const std::string& name, const Counter& c) {
    snapshot.counters.emplace(name, c.value());
  });
  histogram_registry().for_each(
      [&](const std::string& name, const Histogram& h) {
        HistogramSnapshot hs;
        hs.count = h.count();
        hs.sum = h.sum();
        for (int b = 0; b < Histogram::kBuckets; ++b)
          if (const std::int64_t n = h.bucket(b); n != 0)
            hs.buckets.emplace(b, n);
        snapshot.histograms.emplace(name, std::move(hs));
      });
  return snapshot;
}

CountersSnapshot counters_delta(const CountersSnapshot& before,
                                const CountersSnapshot& after) {
  CountersSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    const std::int64_t prev = it == before.counters.end() ? 0 : it->second;
    if (value != prev) delta.counters.emplace(name, value - prev);
  }
  for (const auto& [name, hist] : after.histograms) {
    const auto it = before.histograms.find(name);
    HistogramSnapshot d;
    if (it == before.histograms.end()) {
      d = hist;
    } else {
      d.count = hist.count - it->second.count;
      d.sum = hist.sum - it->second.sum;
      for (const auto& [bucket, n] : hist.buckets) {
        const auto bit = it->second.buckets.find(bucket);
        const std::int64_t prev =
            bit == it->second.buckets.end() ? 0 : bit->second;
        if (n != prev) d.buckets.emplace(bucket, n - prev);
      }
    }
    if (d.count != 0 || !d.buckets.empty())
      delta.histograms.emplace(name, std::move(d));
  }
  return delta;
}

std::string format_counters(const CountersSnapshot& snapshot) {
  std::string out;
  char line[192];
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(line, sizeof(line), "%-40s %14lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    std::snprintf(line, sizeof(line),
                  "%-40s count %10lld  sum %14lld  buckets", name.c_str(),
                  static_cast<long long>(hist.count),
                  static_cast<long long>(hist.sum));
    out += line;
    for (const auto& [bucket, n] : hist.buckets) {
      std::snprintf(line, sizeof(line), " %d:%lld", bucket,
                    static_cast<long long>(n));
      out += line;
    }
    out += '\n';
  }
  return out;
}

}  // namespace mbrc::obs
