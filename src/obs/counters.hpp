// Process-wide work-counter and histogram registry.
//
// Counters and histograms record *work counts* — solver nodes explored,
// simplex iterations, dirty-cone sizes, cliques enumerated — never wall
// time. That split carries the determinism contract (DESIGN.md §11): work
// counts are integer sums of per-call quantities that do not depend on
// scheduling, so a flow's counter delta is bit-identical at any `jobs`
// value and is part of the tested output
// (tests/parallel_flow_test.cpp). Wall-clock stays in the span tracer and
// StageStore, which are measurement-only.
//
// Usage at a probe site (one interning lookup ever, then relaxed atomic
// adds):
//
//   static obs::Counter& nodes = obs::counter("ilp.set_partition.nodes");
//   nodes.add(search.nodes);
//
// Probes flush once per call with locally accumulated totals; never put an
// atomic add inside a hot inner loop.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mbrc::obs {

/// Monotonic counter. Addition is commutative and associative over
/// integers, so concurrent probes from pool workers sum to the same total
/// regardless of interleaving.
class Counter {
public:
  void add(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::int64_t> value_{0};
};

/// Bucketed distribution of non-negative integer work counts. Bucket `b`
/// counts the values whose bit width is `b` (value 0 -> bucket 0, 1 -> 1,
/// 2..3 -> 2, 4..7 -> 3, ...): power-of-two buckets keep the table small
/// at any scale and make merging pure integer addition, so the same
/// determinism argument as Counter applies.
class Histogram {
public:
  static constexpr int kBuckets = 65;  // bit_width of an int64 plus bucket 0

  static int bucket_of(std::int64_t value);

  /// Exact percentile over raw samples: `sorted` must be ascending, `q` in
  /// [0, 1]. Rank convention: floor(q * size) clamped to the last element —
  /// the convention bench/service_throughput.cpp has always used, kept here
  /// so regenerated BENCH artifacts stay comparable across revisions. Used
  /// by the benches and the service stats verb; raw samples are wall-clock
  /// latencies and therefore measurement-only data.
  static double percentile(const std::vector<double>& sorted, double q);

  void record(std::int64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[static_cast<std::size_t>(bucket_of(value))].fetch_add(
        1, std::memory_order_relaxed);
  }

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }

private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
};

/// Interns `name` in the global registry and returns its counter. The
/// reference stays valid for the life of the process; cache it in a
/// function-local static at the probe site.
Counter& counter(std::string_view name);

/// Histogram analogue of counter().
Histogram& histogram(std::string_view name);

// ---------------------------------------------------------------------------
// Snapshots: plain comparable data for reports and tests.
// ---------------------------------------------------------------------------

struct HistogramSnapshot {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::map<int, std::int64_t> buckets;  // bucket index -> count, nonzero only

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

struct CountersSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  friend bool operator==(const CountersSnapshot&,
                         const CountersSnapshot&) = default;
};

/// Snapshot of the whole registry (cumulative since process start).
CountersSnapshot counters_snapshot();

/// `after - before`, entrywise; entries whose delta is entirely zero are
/// dropped so deltas over disjoint runs compare cleanly.
CountersSnapshot counters_delta(const CountersSnapshot& before,
                                const CountersSnapshot& after);

/// One line per entry, name order: for humans and test-failure output.
std::string format_counters(const CountersSnapshot& snapshot);

}  // namespace mbrc::obs
