#include "obs/flight_recorder.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <ostream>

#include "obs/json.hpp"

namespace mbrc::obs::flight {

namespace {

constexpr std::size_t kLabelBytes = 24;

char sanitize(char c) {
  if (c < 0x20 || c > 0x7e || c == '"' || c == '\\') return '_';
  return c;
}

/// One event slot. A per-slot seqlock (odd while the owner rewrites it)
/// layered over all-atomic fields: the owner's writes are wait-free, and a
/// concurrent dump detects mid-write or recycled slots and skips them.
struct Slot {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::int64_t> t_us{0};
  std::atomic<std::uint64_t> index{0};  // ring head at write: record order
  std::atomic<std::uint8_t> kind{0};
  std::atomic<std::int64_t> a{0};
  std::atomic<std::int64_t> b{0};
  std::atomic<std::uint8_t> len{0};
  std::array<std::atomic<char>, kDetailBytes> detail{};
};

struct ThreadRing {
  std::uint32_t id = 0;
  std::atomic<bool> in_use{false};
  std::atomic<std::uint64_t> head{0};  // next slot index; owner-only writes
  std::atomic<std::uint8_t> label_len{0};
  std::array<std::atomic<char>, kLabelBytes> label{};
  std::array<Slot, kRingCapacity> slots{};
};

/// Fixed table of ring pointers: readable from a signal handler without a
/// lock. Entries are published once and never freed; all members are
/// trivially destructible so process exit never tears the table down under
/// a late dump.
struct RingTable {
  std::array<std::atomic<ThreadRing*>, kMaxRings> rings{};
  std::atomic<std::uint32_t> count{0};
};

RingTable& table() {
  static RingTable t;
  return t;
}

std::int64_t now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                               epoch)
      .count();
}

/// Seqlock write of one slot: mark odd, store fields, release the even
/// mark. Fence-free so GCC's TSan (which rejects atomic_thread_fence) can
/// model it: the odd mark is an acquire RMW, whose acquire half forbids
/// the field stores from moving before it, and the even mark's release
/// half forbids them from moving after.
void write_slot(Slot& slot, std::int64_t t, std::uint64_t index,
                EventKind kind, std::string_view detail, std::int64_t a,
                std::int64_t b) {
  const std::uint32_t seq0 = slot.seq.load(std::memory_order_relaxed);
  slot.seq.exchange(seq0 + 1, std::memory_order_acq_rel);
  slot.t_us.store(t, std::memory_order_relaxed);
  slot.index.store(index, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  const std::size_t len = std::min(detail.size(), kDetailBytes);
  slot.len.store(static_cast<std::uint8_t>(len), std::memory_order_relaxed);
  for (std::size_t i = 0; i < len; ++i)
    slot.detail[i].store(sanitize(detail[i]), std::memory_order_relaxed);
  slot.seq.store(seq0 + 2, std::memory_order_release);
}

/// Decoded slot without heap storage, safe to build in a signal handler.
struct RawEvent {
  std::int64_t t_us = 0;
  std::uint64_t index = 0;
  EventKind kind = EventKind::kNone;
  std::int64_t a = 0;
  std::int64_t b = 0;
  char detail[kDetailBytes + 1] = {};
};

/// Seqlock read of one slot into `out`. False when the slot is empty, mid
/// write, or was recycled during the read. Allocation-free. The initial
/// acquire load pins the field loads after it; the recheck is an RMW whose
/// release half pins them before it (the fence-free reader dual of
/// write_slot -- readers do write the sequence word, but only dumps read,
/// so the cache-line traffic is negligible).
bool read_slot(Slot& slot, RawEvent& out) {
  const std::uint32_t seq0 = slot.seq.load(std::memory_order_acquire);
  if (seq0 % 2 != 0) return false;
  out.t_us = slot.t_us.load(std::memory_order_relaxed);
  out.index = slot.index.load(std::memory_order_relaxed);
  out.kind = static_cast<EventKind>(slot.kind.load(std::memory_order_relaxed));
  out.a = slot.a.load(std::memory_order_relaxed);
  out.b = slot.b.load(std::memory_order_relaxed);
  const std::size_t len =
      std::min<std::size_t>(slot.len.load(std::memory_order_relaxed),
                            kDetailBytes);
  for (std::size_t i = 0; i < len; ++i)
    out.detail[i] = slot.detail[i].load(std::memory_order_relaxed);
  out.detail[len] = '\0';
  if (slot.seq.fetch_add(0, std::memory_order_acq_rel) != seq0) return false;
  return out.kind != EventKind::kNone;
}

ThreadRing* acquire_ring() {
  RingTable& t = table();
  const std::uint32_t n =
      std::min<std::uint32_t>(t.count.load(std::memory_order_acquire),
                              kMaxRings);
  // Prefer a ring released by an exited thread: keeps the table bounded
  // under thread-per-connection transports.
  for (std::uint32_t i = 0; i < n; ++i) {
    ThreadRing* ring = t.rings[i].load(std::memory_order_acquire);
    bool expected = false;
    if (ring != nullptr &&
        ring->in_use.compare_exchange_strong(expected, true))
      return ring;
  }
  const std::uint32_t slot = t.count.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= kMaxRings) return nullptr;  // table full: drop events
  auto* ring = new ThreadRing;  // lives for the process, reused across threads
  ring->id = slot;
  ring->in_use.store(true, std::memory_order_relaxed);
  t.rings[slot].store(ring, std::memory_order_release);
  return ring;
}

/// Clears a ring on (re)acquisition so a reused ring does not attribute a
/// previous thread's events to the new owner.
void reset_ring(ThreadRing& ring) {
  ring.head.store(0, std::memory_order_relaxed);
  ring.label_len.store(0, std::memory_order_relaxed);
  for (Slot& slot : ring.slots)
    write_slot(slot, 0, 0, EventKind::kNone, {}, 0, 0);
}

struct TlsRing {
  ThreadRing* ring = nullptr;
  bool tried = false;
  ~TlsRing() {
    if (ring != nullptr) ring->in_use.store(false, std::memory_order_release);
  }
};

thread_local TlsRing tls_ring;

ThreadRing* local_ring() {
  if (!tls_ring.tried) {
    tls_ring.tried = true;
    tls_ring.ring = acquire_ring();
    if (tls_ring.ring != nullptr) reset_ring(*tls_ring.ring);
  }
  return tls_ring.ring;
}

std::string read_label(const ThreadRing& ring) {
  const std::size_t len =
      std::min<std::size_t>(ring.label_len.load(std::memory_order_relaxed),
                            kLabelBytes);
  std::string out;
  for (std::size_t i = 0; i < len; ++i)
    out.push_back(ring.label[i].load(std::memory_order_relaxed));
  return out;
}

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kNone: return "none";
    case EventKind::kRequest: return "request";
    case EventKind::kEdit: return "edit";
    case EventKind::kSnapshot: return "snapshot";
    case EventKind::kRollback: return "rollback";
    case EventKind::kCheckFailure: return "check_failure";
    case EventKind::kProtocolError: return "protocol_error";
    case EventKind::kTraceControl: return "trace_control";
    case EventKind::kConnection: return "connection";
    case EventKind::kNote: return "note";
  }
  return "unknown";
}

void record(EventKind kind, std::string_view detail, std::int64_t a,
            std::int64_t b) {
  ThreadRing* ring = local_ring();
  if (ring == nullptr) return;
  const std::uint64_t index =
      ring->head.fetch_add(1, std::memory_order_relaxed);
  write_slot(ring->slots[index % kRingCapacity], now_us(), index, kind, detail,
             a, b);
}

void set_thread_label(std::string_view label) {
  ThreadRing* ring = local_ring();
  if (ring == nullptr) return;
  const std::size_t len = std::min(label.size(), kLabelBytes);
  for (std::size_t i = 0; i < len; ++i)
    ring->label[i].store(sanitize(label[i]), std::memory_order_relaxed);
  ring->label_len.store(static_cast<std::uint8_t>(len),
                        std::memory_order_release);
}

std::vector<Event> snapshot() {
  std::vector<Event> events;
  RingTable& t = table();
  const std::uint32_t n =
      std::min<std::uint32_t>(t.count.load(std::memory_order_acquire),
                              kMaxRings);
  for (std::uint32_t i = 0; i < n; ++i) {
    ThreadRing* ring = t.rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::string label = read_label(*ring);
    for (Slot& slot : ring->slots) {
      RawEvent raw;
      if (!read_slot(slot, raw)) continue;
      Event event;
      event.t_us = raw.t_us;
      event.ring = ring->id;
      event.seq = raw.index;
      event.kind = raw.kind;
      event.a = raw.a;
      event.b = raw.b;
      event.detail = raw.detail;
      event.thread_label = label;
      events.push_back(std::move(event));
    }
  }
  // Microsecond timestamps collide for back-to-back records, so within a
  // ring the record sequence breaks the tie -- it IS the true order there.
  std::sort(events.begin(), events.end(), [](const Event& x, const Event& y) {
    if (x.t_us != y.t_us) return x.t_us < y.t_us;
    if (x.ring != y.ring) return x.ring < y.ring;
    return x.seq < y.seq;
  });
  return events;
}

void write_json(std::ostream& os, std::string_view trigger) {
  const std::vector<Event> events = snapshot();
  JsonWriter w(os, 2);
  w.begin_object();
  w.kv("schema", 1).kv("kind", "flight_recorder");
  w.kv("trigger", std::string(trigger));
  w.kv("events_retained", static_cast<std::int64_t>(events.size()));
  w.key("events").begin_array();
  for (const Event& event : events) {
    w.begin_object();
    w.kv("t_us", event.t_us);
    w.kv("ring", static_cast<std::int64_t>(event.ring));
    if (!event.thread_label.empty()) w.kv("thread", event.thread_label);
    w.kv("kind", to_string(event.kind));
    w.kv("detail", event.detail);
    w.kv("a", event.a).kv("b", event.b);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

bool dump_to_file(const std::string& path, std::string_view trigger) {
  // Two strands can trip failures at once; one file write at a time keeps
  // the dump parseable (last writer wins).
  static std::mutex dump_mutex;
  std::lock_guard<std::mutex> lock(dump_mutex);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write_json(out, trigger);
  return out.good();
}

namespace {

void fd_write(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

void fd_puts(int fd, const char* s) { fd_write(fd, s, std::strlen(s)); }

}  // namespace

void dump_to_fd(int fd, const char* trigger) {
  // Async-signal-safe: atomics, snprintf into stack buffers and write(2)
  // only. Detail/label bytes are pre-sanitized, so quoting needs no
  // escaping. Events come out in ring order, not time order.
  char buf[kDetailBytes + kLabelBytes + 160];
  std::snprintf(buf, sizeof(buf),
                "{\"schema\":1,\"kind\":\"flight_recorder\",\"trigger\":\"%s\","
                "\"events\":[",
                trigger);
  fd_puts(fd, buf);
  RingTable& t = table();
  const std::uint32_t n =
      std::min<std::uint32_t>(t.count.load(std::memory_order_acquire),
                              kMaxRings);
  bool first = true;
  for (std::uint32_t i = 0; i < n; ++i) {
    ThreadRing* ring = t.rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    char label[kLabelBytes + 1];
    const std::size_t label_len =
        std::min<std::size_t>(ring->label_len.load(std::memory_order_relaxed),
                              kLabelBytes);
    for (std::size_t k = 0; k < label_len; ++k)
      label[k] = ring->label[k].load(std::memory_order_relaxed);
    label[label_len] = '\0';
    for (Slot& slot : ring->slots) {
      RawEvent raw;
      if (!read_slot(slot, raw)) continue;
      std::snprintf(buf, sizeof(buf),
                    "%s{\"t_us\":%lld,\"ring\":%u,\"thread\":\"%s\","
                    "\"kind\":\"%s\",\"detail\":\"%s\",\"a\":%lld,"
                    "\"b\":%lld}",
                    first ? "" : ",", static_cast<long long>(raw.t_us),
                    ring->id, label, to_string(raw.kind), raw.detail,
                    static_cast<long long>(raw.a),
                    static_cast<long long>(raw.b));
      fd_puts(fd, buf);
      first = false;
    }
  }
  fd_puts(fd, "]}\n");
}

}  // namespace mbrc::obs::flight
