#include "obs/json_reader.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace mbrc::obs {

std::optional<std::int64_t> JsonValue::as_int() const {
  if (kind_ != Kind::kNumber) return std::nullopt;
  if (!(number_ >= -9007199254740992.0 && number_ <= 9007199254740992.0))
    return std::nullopt;  // outside the double-exact integer range (or NaN)
  const double rounded = std::nearbyint(number_);
  if (rounded != number_) return std::nullopt;
  return static_cast<std::int64_t>(rounded);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : members_)
    if (name == key) found = &value;  // last duplicate wins
  return found;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::int64_t JsonValue::int_or(std::string_view key,
                               std::int64_t fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr) return fallback;
  return v->as_int().value_or(fallback);
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::move(fallback);
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue j;
  j.kind_ = Kind::kArray;
  j.array_ = std::move(items);
  return j;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue j;
  j.kind_ = Kind::kObject;
  j.members_ = std::move(members);
  return j;
}

namespace {

class Parser {
public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonParseResult run() {
    JsonParseResult result;
    skip_ws();
    if (!parse_value(result.value, 0)) {
      result.error = error_;
      result.position = pos_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = "trailing content after JSON value";
      result.position = pos_;
      return result;
    }
    result.ok = true;
    result.position = pos_;
    return result;
  }

private:
  bool fail(const char* message) {
    error_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > max_depth_) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!consume_literal("null")) return fail("invalid literal");
        out = JsonValue::make_null();
        return true;
      case 't':
        if (!consume_literal("true")) return fail("invalid literal");
        out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!consume_literal("false")) return fail("invalid literal");
        out = JsonValue::make_bool(false);
        return true;
      case '"':
        return parse_string_value(out);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_number(JsonValue& out) {
    // Validate the JSON number grammar first (strtod accepts more: hex,
    // inf, nan, leading '+'), then convert with strtod, whose shortest-
    // round-trip behavior matches JsonWriter's emitter.
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !is_digit(text_[pos_]))
      return fail("invalid number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_]))
        return fail("invalid number");
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_]))
        return fail("invalid number");
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("invalid number");
    if (errno == ERANGE && !std::isfinite(value))
      return fail("number out of range");
    out = JsonValue::make_number(value);
    return true;
  }

  bool parse_string_value(JsonValue& out) {
    std::string s;
    if (!parse_string(s)) return false;
    out = JsonValue::make_string(std::move(s));
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return fail("unterminated escape");
      switch (text_[pos_]) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          ++pos_;
          unsigned code = 0;
          if (!parse_hex4(code)) return false;
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              return fail("unpaired surrogate");
            pos_ += 2;
            unsigned low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xdc00 || low > 0xdfff)
              return fail("unpaired surrogate");
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, code);
          continue;  // parse_hex4 already advanced pos_
        }
        default:
          return fail("invalid escape");
      }
      ++pos_;
    }
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9')
        out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        out |= static_cast<unsigned>(c - 'A' + 10);
      else
        return fail("invalid \\u escape");
    }
    pos_ += 4;
    return true;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out = JsonValue::make_array(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      skip_ws();
      if (!parse_value(item, depth + 1)) return false;
      items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        out = JsonValue::make_array(std::move(items));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out = JsonValue::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        out = JsonValue::make_object(std::move(members));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  static bool is_digit(char c) { return c >= '0' && c <= '9'; }

  std::string_view text_;
  int max_depth_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult parse_json(std::string_view text, int max_depth) {
  return Parser(text, max_depth).run();
}

}  // namespace mbrc::obs
