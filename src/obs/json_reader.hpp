// Minimal recursive-descent JSON reader, the read-side counterpart of
// JsonWriter: the service protocol (newline-delimited request objects) and
// tests that validate emitted reports parse through this one path.
//
// Scope: full RFC 8259 value grammar into a small DOM (JsonValue). Numbers
// are stored as double; JsonWriter emits doubles in shortest-round-trip
// form, so write -> read -> compare is bit-exact for finite values. Object
// members keep insertion order (duplicate keys: last one wins on lookup).
// Depth is bounded so hostile input cannot exhaust the stack.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mbrc::obs {

class JsonValue {
public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  /// The number as an integer (requests address cells/pins by id). Values
  /// outside the exactly-representable range or with a fractional part
  /// return nullopt.
  std::optional<std::int64_t> as_int() const;
  const std::string& as_string() const { return string_; }

  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Member lookup on an object; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  /// Typed conveniences for optional request fields: the member's value
  /// when present and of the right type, `fallback` otherwise.
  double number_or(std::string_view key, double fallback) const;
  std::int64_t int_or(std::string_view key, std::int64_t fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;      // empty when ok
  std::size_t position = 0;  // byte offset of the error (or end of value)
};

/// Parses one complete JSON value from `text`. Trailing content after the
/// value (other than whitespace) is an error, so a protocol line is exactly
/// one document. `max_depth` bounds array/object nesting.
JsonParseResult parse_json(std::string_view text, int max_depth = 64);

}  // namespace mbrc::obs
