// Hierarchical span tracer with Chrome trace_event export.
//
// One Tracer is installed for the duration of a traced flow run; `Span`
// probes throughout the codebase then record named, nested wall-clock
// intervals into per-thread buffers (lock-free on the recording path — each
// buffer is written only by its owning thread). The result loads in
// Perfetto / chrome://tracing.
//
// Zero-cost when off: with no tracer installed, constructing a Span is a
// single relaxed-failure atomic load and no clock read. Span durations are
// wall time and therefore *measurement, not output* — the mbrc-lint R6 rule
// enforces that they never feed flow results (DESIGN.md §11).
//
// Lifecycle contract: install() -> record spans -> join all worker activity
// -> uninstall() -> take(). The caller must quiesce every thread that
// recorded spans before uninstall(); the flow driver satisfies this because
// run_composition_flow joins all pool work before it finishes.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mbrc::obs {

/// One closed span. `start_us`/`dur_us` are microseconds relative to the
/// tracer's install time; `depth` is the nesting depth on its thread (0 =
/// top level), recorded so tests can assert well-nestedness exactly.
struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;
  int depth = 0;
  std::int64_t start_us = 0;
  std::int64_t dur_us = 0;
};

/// Everything a finished trace holds: events in per-thread completion order
/// (children complete before their parents) plus thread labels.
struct TraceData {
  std::vector<TraceEvent> events;
  std::map<std::uint32_t, std::string> thread_names;

  bool empty() const { return events.empty(); }
};

namespace detail {
struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::string label;
  std::vector<TraceEvent> events;  // written only by the owning thread
  int depth = 0;                   // currently open spans on that thread
};
}  // namespace detail

class Tracer {
public:
  Tracer() = default;
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Makes this tracer the process-wide active one and starts its clock.
  /// At most one tracer may be active at a time.
  void install();

  /// Stops collection. Every span must be closed and every recording
  /// thread quiesced before this is called.
  void uninstall();

  /// Moves the collected events out. Only valid after uninstall().
  TraceData take();

  /// The active tracer, or nullptr. This is the whole cost of a Span when
  /// tracing is off.
  static Tracer* active() {
    return active_.load(std::memory_order_acquire);
  }

  /// Labels the calling thread in the exported trace (e.g. "worker-3").
  /// No-op when no tracer is active.
  static void set_thread_label(std::string_view label);

private:
  friend class Span;

  /// The calling thread's buffer under this tracer, registering it on
  /// first use. The returned pointer is owned by the tracer and written
  /// only by the calling thread.
  detail::ThreadBuffer* local_buffer();

  std::int64_t now_us() const;

  static std::atomic<Tracer*> active_;

  std::uint64_t generation_ = 0;
  std::int64_t epoch_ns_ = 0;
  bool installed_ = false;
  std::mutex mutex_;  // guards buffer registration, not event appends
  std::vector<std::unique_ptr<detail::ThreadBuffer>> buffers_;
};

/// RAII span probe. Construct at the top of the region to measure; the
/// span closes (and the event is appended) at scope exit.
class Span {
public:
  explicit Span(std::string_view name) {
    if (Tracer* t = Tracer::active()) begin(t, name);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (tracer_ != nullptr) end();
  }

private:
  void begin(Tracer* tracer, std::string_view name);
  void end();

  Tracer* tracer_ = nullptr;
  detail::ThreadBuffer* buffer_ = nullptr;
  std::string name_;
  std::int64_t start_us_ = 0;
  int depth_ = 0;
};

/// Writes `trace` as Chrome trace_event JSON ("X" complete events plus
/// thread_name metadata), loadable in Perfetto / chrome://tracing.
void write_chrome_trace(std::ostream& os, const TraceData& trace);

}  // namespace mbrc::obs
