#include "obs/stage_store.hpp"

#include <cstdio>
#include <mutex>

namespace mbrc::obs {

std::string format_stage_table(const StageTable& stats) {
  std::string out;
  char line[160];
  for (const auto& [name, s] : stats) {
    std::snprintf(line, sizeof(line),
                  "%-24s %6lld calls %10lld items %9.3f s\n", name.c_str(),
                  static_cast<long long>(s.calls),
                  static_cast<long long>(s.items), s.seconds);
    out += line;
  }
  return out;
}

StageStore::Slot& StageStore::slot(std::string_view stage) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = slots_.find(stage);
    if (it != slots_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto [it, inserted] = slots_.try_emplace(std::string(stage), nullptr);
  if (inserted) it->second = std::make_unique<Slot>();
  return *it->second;
}

StageTable StageStore::snapshot() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  StageTable table;
  for (const auto& [name, slot] : slots_) table.emplace(name, slot->stats());
  return table;
}

}  // namespace mbrc::obs
