// Always-on flight recorder: a bounded, lock-free ring of recent events
// per thread, dumped as JSON when something goes wrong (checker failure,
// protocol error, fatal signal). The service records every request, edit,
// snapshot and rollback here so a crash or a failed invariant always
// leaves a post-mortem artifact naming what the daemon was doing.
//
// Design:
//   - Each thread owns a ring of kRingCapacity fixed-size slots. Recording
//     is wait-free for the owner: bump the head, seqlock-write one slot. No
//     allocation, no locks, no clock syscalls beyond one steady_clock read.
//   - Every slot field is an atomic and each slot carries a sequence word
//     (odd while being written), so a dump can run concurrently with
//     recording from any thread — including another thread's — without a
//     data race; torn slots are detected via the sequence and skipped.
//   - Rings live in a fixed global table and are never freed; a thread
//     that exits releases its ring to be reused by the next new thread.
//   - Detail strings are sanitized at record time (printable ASCII, no
//     quotes or backslashes), so the async-signal-safe dump path can quote
//     them into JSON without any escaping logic.
//
// Wall-clock timestamps make flight dumps measurement-only output
// (DESIGN.md §11): they never feed responses or flow results, and
// src/obs/ is clock-exempt under mbrc-lint rule R3.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mbrc::obs::flight {

enum class EventKind : std::uint8_t {
  kNone = 0,  // empty slot marker; never recorded explicitly
  kRequest,
  kEdit,
  kSnapshot,
  kRollback,
  kCheckFailure,
  kProtocolError,
  kTraceControl,
  kConnection,
  kNote,
};

const char* to_string(EventKind kind);

/// Slots retained per thread ring. 256 comfortably covers the "last >= 32
/// events on one strand" post-mortem contract with room for interleaved
/// per-edit events.
inline constexpr std::size_t kRingCapacity = 256;
/// Detail bytes retained per event (truncated, sanitized).
inline constexpr std::size_t kDetailBytes = 48;
/// Maximum simultaneously live recording threads; later threads drop
/// events rather than blocking.
inline constexpr std::size_t kMaxRings = 256;

/// Records one event on the calling thread's ring (wait-free; drops the
/// oldest event once the ring is full). `detail` is truncated to
/// kDetailBytes and sanitized to printable ASCII without quotes.
void record(EventKind kind, std::string_view detail, std::int64_t a = 0,
            std::int64_t b = 0);

/// Labels the calling thread's ring in dumps (e.g. a session name or
/// "serve"). Sanitized and truncated like a detail string.
void set_thread_label(std::string_view label);

/// One decoded event, as read back by snapshot().
struct Event {
  std::int64_t t_us = 0;  // microseconds since the recorder's first use
  std::uint32_t ring = 0;
  std::uint64_t seq = 0;  // record order within the ring
  EventKind kind = EventKind::kNone;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::string detail;
  std::string thread_label;
};

/// Stable view of every ring, oldest event first (sorted by t_us, ring).
/// Safe to call from any thread at any time; slots being concurrently
/// rewritten are skipped.
std::vector<Event> snapshot();

/// Writes the snapshot as a JSON document ({"kind": "flight_recorder",
/// "trigger": ..., "events": [...]}).
void write_json(std::ostream& os, std::string_view trigger);

/// write_json to `path` (truncating). Serialized internally so concurrent
/// failure triggers do not interleave in one file. Returns false when the
/// file cannot be written.
bool dump_to_file(const std::string& path, std::string_view trigger);

/// Async-signal-safe dump for fatal-signal handlers: walks the rings with
/// snprintf + write(2) only — no allocation, no locks, no sorting (events
/// appear in ring order rather than time order).
void dump_to_fd(int fd, const char* trigger);

}  // namespace mbrc::obs::flight
