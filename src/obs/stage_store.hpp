// Per-stage wall-clock accounting, subsuming the old runtime StageTable.
//
// A StageStore interns stage names once and then records through stable
// per-stage slots with lock-free atomic accumulation, so probes in parallel
// stages neither serialize on a global mutex nor allocate a key string per
// call (the old Metrics::record hot-path bug). runtime::Metrics is now a
// thin view over this store.
//
// Stage seconds are wall time: measurement, never output. Flow results
// compared across `jobs` values exclude them; the deterministic counterpart
// lives in obs/counters.hpp (DESIGN.md §11).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>

namespace mbrc::obs {

struct StageStats {
  double seconds = 0.0;     // accumulated wall time
  std::int64_t calls = 0;   // timed sections recorded
  std::int64_t items = 0;   // stage-defined work units (subgraphs, pins, ...)
};

/// Snapshot type handed to flow results: plain data, freely copyable.
using StageTable = std::map<std::string, StageStats, std::less<>>;

/// Formats a snapshot as one line per stage (name, calls, items, seconds),
/// in name order.
std::string format_stage_table(const StageTable& stats);

class StageStore {
public:
  /// One interned stage. Writable concurrently from any thread; address is
  /// stable for the life of the store.
  class Slot {
  public:
    void record(double seconds, std::int64_t items) {
      add_seconds(seconds);
      calls_.fetch_add(1, std::memory_order_relaxed);
      items_.fetch_add(items, std::memory_order_relaxed);
    }

    StageStats stats() const {
      return {seconds_.load(std::memory_order_relaxed),
              calls_.load(std::memory_order_relaxed),
              items_.load(std::memory_order_relaxed)};
    }

  private:
    void add_seconds(double s) {
      double current = seconds_.load(std::memory_order_relaxed);
      while (!seconds_.compare_exchange_weak(current, current + s,
                                             std::memory_order_relaxed)) {
      }
    }

    std::atomic<double> seconds_{0.0};
    std::atomic<std::int64_t> calls_{0};
    std::atomic<std::int64_t> items_{0};
  };

  /// Interns `stage` and returns its slot. Steady-state this is a shared
  /// lock and a heterogeneous string_view lookup — no allocation.
  Slot& slot(std::string_view stage);

  StageTable snapshot() const;

  /// Formatted per-stage report, one line per stage in name order.
  std::string report() const { return format_stage_table(snapshot()); }

private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Slot>, std::less<>> slots_;
};

}  // namespace mbrc::obs
