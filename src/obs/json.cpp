#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace mbrc::obs {

void JsonWriter::newline_indent() {
  if (indent_width_ <= 0) return;
  os_ << '\n';
  const int depth = static_cast<int>(stack_.size());
  for (int i = 0; i < depth * indent_width_; ++i) os_ << ' ';
}

void JsonWriter::separate() {
  if (pending_key_) {
    // The separator already ran when the key was written.
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) {
    MBRC_ASSERT_MSG(!wrote_top_level_,
                    "JsonWriter: a document has exactly one top-level value");
    return;
  }
  Level& level = stack_.back();
  MBRC_ASSERT_MSG(level.is_array,
                  "JsonWriter: object members need key() before value()");
  if (level.has_member) os_ << ',';
  level.has_member = true;
  newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << '{';
  stack_.push_back({/*is_array=*/false, /*has_member=*/false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MBRC_ASSERT_MSG(!stack_.empty() && !stack_.back().is_array &&
                      !pending_key_,
                  "JsonWriter: unbalanced end_object");
  const bool had_members = stack_.back().has_member;
  stack_.pop_back();
  if (had_members) newline_indent();
  os_ << '}';
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << '[';
  stack_.push_back({/*is_array=*/true, /*has_member=*/false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MBRC_ASSERT_MSG(!stack_.empty() && stack_.back().is_array,
                  "JsonWriter: unbalanced end_array");
  const bool had_members = stack_.back().has_member;
  stack_.pop_back();
  if (had_members) newline_indent();
  os_ << ']';
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  MBRC_ASSERT_MSG(!stack_.empty() && !stack_.back().is_array && !pending_key_,
                  "JsonWriter: key() is only valid inside an object");
  Level& level = stack_.back();
  if (level.has_member) os_ << ',';
  level.has_member = true;
  newline_indent();
  // Compact mode (indent 0) drops the space after the colon: the trace
  // export writes one object per span and the bytes add up.
  os_ << '"' << escape(name) << (indent_width_ > 0 ? "\": " : "\":");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separate();
  os_ << '"' << escape(s) << '"';
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Inf
  } else {
    // Shortest representation that round-trips a double.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = 0.0;
    std::sscanf(buf, "%lg", &parsed);
    if (parsed == v) {
      for (int precision = 1; precision < 17; ++precision) {
        char probe[32];
        std::snprintf(probe, sizeof(probe), "%.*g", precision, v);
        std::sscanf(probe, "%lg", &parsed);
        if (parsed == v) {
          std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
          break;
        }
      }
    }
    os_ << buf;
  }
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  os_ << v;
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
  if (stack_.empty()) wrote_top_level_ = true;
  return *this;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace mbrc::obs
