// Minimal streaming JSON writer shared by every machine-readable emitter in
// the project: the Chrome-trace export, the flow run report
// (flow_report.json) and the BENCH_*.json bench outputs.
//
// Scope: write-only, no DOM. The writer keeps a nesting stack and inserts
// commas/indentation, so call sites read like the document they produce and
// cannot emit mismatched separators. Strings are escaped per RFC 8259;
// non-finite doubles (which JSON cannot represent) are emitted as null.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mbrc::obs {

class JsonWriter {
public:
  /// Writes into `os` (which must outlive the writer). `indent_width` of 0
  /// produces compact single-line output.
  explicit JsonWriter(std::ostream& os, int indent_width = 2)
      : os_(os), indent_width_(indent_width) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value (or
  /// begin_object / begin_array).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::size_t v) {
    return value(static_cast<std::int64_t>(v));
  }
  JsonWriter& value(bool v);

  /// key + value in one call.
  template <class T>
  JsonWriter& kv(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  /// True once every begin_* has been matched by its end_* and a top-level
  /// value was written (i.e. the document is complete).
  bool complete() const { return stack_.empty() && wrote_top_level_; }

  static std::string escape(std::string_view s);

private:
  struct Level {
    bool is_array = false;
    bool has_member = false;
  };

  /// Emits the separator (comma, newline, indent) owed before the next key
  /// or array element.
  void separate();
  void newline_indent();

  std::ostream& os_;
  int indent_width_;
  std::vector<Level> stack_;
  bool pending_key_ = false;
  bool wrote_top_level_ = false;
};

}  // namespace mbrc::obs
