// Standard-cell library model.
//
// Registers use the linear delay model the paper's Sec. 4.1 describes for
// MBR mapping: delay = intrinsic + drive_resistance * load_capacitance.
// Multi-bit register (MBR) cells share clock/control circuitry, so their
// per-bit area and per-bit clock pin capacitance are lower than a single-bit
// register's -- that sharing is exactly what MBR composition exploits.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "geom/point.hpp"

namespace mbrc::lib {

/// Functional features of a register cell. Registers can only be merged into
/// an MBR of the *same* functional signature (Sec. 2, functional
/// compatibility), and only if the library offers an MBR with it.
struct RegisterFunction {
  bool has_reset = false;
  bool has_set = false;
  bool has_enable = false;  // synchronous load-enable pin
  bool is_scan = false;     // scan-capable flop
  bool is_latch = false;    // level-sensitive latch instead of a flop

  friend constexpr bool operator==(const RegisterFunction&,
                                   const RegisterFunction&) = default;

  /// Stable small integer encoding (used as a hash/grouping key).
  constexpr unsigned encode() const {
    return (has_reset ? 1u : 0u) | (has_set ? 2u : 0u) |
           (has_enable ? 4u : 0u) | (is_scan ? 8u : 0u) |
           (is_latch ? 16u : 0u);
  }
};

/// How scan connectivity crosses an MBR (Sec. 2, scan compatibility).
enum class ScanStyle {
  kNone,          // non-scan register
  kInternalChain, // one SI/SO pair; bits chained inside the cell in order
  kPerBitPins,    // independent SI/SO per bit; chains may cross the cell
};

/// A register cell (single-bit or multi-bit).
struct RegisterCell {
  std::string name;
  int bits = 1;
  RegisterFunction function;
  ScanStyle scan_style = ScanStyle::kNone;

  double area = 0.0;              // um^2
  double width = 0.0;             // um
  double height = 0.0;            // um
  double clock_pin_cap = 0.0;     // fF, single shared clock pin
  double data_pin_cap = 0.0;      // fF per D pin
  double drive_resistance = 0.0;  // kOhm, Q-pin linear delay model
  double intrinsic_delay = 0.0;   // ns, clk->Q
  double setup_time = 0.0;        // ns at the D pin
  double hold_time = 0.0;         // ns at the D pin (min-delay check)
  double leakage = 0.0;           // nW

  std::vector<geom::Point> d_pin_offsets;  // per bit, relative to lower-left
  std::vector<geom::Point> q_pin_offsets;  // per bit
  geom::Point clock_pin_offset;

  double area_per_bit() const { return area / bits; }
  /// Static power share of one bit (nW). MBR sharing lowers it: the merged
  /// control/clock circuitry leaks once instead of per bit.
  double leakage_per_bit() const { return leakage / bits; }
  /// Clock-pin switched capacitance per bit (fF) -- the dynamic-power lever
  /// MBR composition pulls (one shared clock pin toggles every cycle).
  double clock_cap_per_bit() const { return clock_pin_cap / bits; }
  /// Power proxy of the whole cell for the multi-objective cost model:
  /// clock-pin cap (fF, dominates at-speed) plus leakage (nW). Both are
  /// order-1 in this library, so the sum is a commensurate scalar; the
  /// cost-model knobs absorb any unit conversion.
  double power_proxy() const { return clock_pin_cap + leakage; }
};

/// A combinational cell (the logic between registers in the STA substrate).
struct CombCell {
  std::string name;
  int fanin = 2;
  double area = 0.0;
  double width = 0.0;
  double height = 0.0;
  double input_pin_cap = 0.0;     // fF per input
  double drive_resistance = 0.0;  // kOhm
  double intrinsic_delay = 0.0;   // ns
};

/// A clock buffer used by the clock-tree estimator.
struct ClockBufferCell {
  std::string name;
  double area = 0.0;
  double input_pin_cap = 0.0;     // fF
  double drive_resistance = 0.0;  // kOhm
  double intrinsic_delay = 0.0;   // ns
  double max_load_cap = 0.0;      // fF the buffer may drive
};

}  // namespace mbrc::lib

template <>
struct std::hash<mbrc::lib::RegisterFunction> {
  std::size_t operator()(const mbrc::lib::RegisterFunction& f) const noexcept {
    return f.encode();
  }
};
