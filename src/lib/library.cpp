#include "lib/library.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/assert.hpp"

namespace mbrc::lib {

int Library::add_register(RegisterCell cell) {
  MBRC_ASSERT_MSG(cell.bits >= 1, "register must have at least one bit");
  MBRC_ASSERT_MSG(static_cast<int>(cell.d_pin_offsets.size()) == cell.bits &&
                      static_cast<int>(cell.q_pin_offsets.size()) == cell.bits,
                  "pin offsets must match bit count: " + cell.name);
  MBRC_ASSERT_MSG(!register_index_.contains(cell.name),
                  "duplicate register cell name: " + cell.name);
  const int index = static_cast<int>(registers_.size());
  register_index_.emplace(cell.name, index);
  registers_.push_back(std::move(cell));
  return index;
}

int Library::add_comb(CombCell cell) {
  MBRC_ASSERT_MSG(!comb_index_.contains(cell.name),
                  "duplicate comb cell name: " + cell.name);
  const int index = static_cast<int>(combs_.size());
  comb_index_.emplace(cell.name, index);
  combs_.push_back(std::move(cell));
  return index;
}

int Library::add_clock_buffer(ClockBufferCell cell) {
  buffers_.push_back(std::move(cell));
  return static_cast<int>(buffers_.size()) - 1;
}

const RegisterCell* Library::register_by_name(const std::string& name) const {
  const auto it = register_index_.find(name);
  return it == register_index_.end() ? nullptr : &registers_[it->second];
}

const CombCell* Library::comb_by_name(const std::string& name) const {
  const auto it = comb_index_.find(name);
  return it == comb_index_.end() ? nullptr : &combs_[it->second];
}

std::vector<int> Library::available_widths(
    const RegisterFunction& function) const {
  std::set<int> widths;
  for (const RegisterCell& cell : registers_)
    if (cell.function == function) widths.insert(cell.bits);
  return {widths.begin(), widths.end()};
}

std::vector<const RegisterCell*> Library::cells_for(
    const RegisterFunction& function, int bits) const {
  std::vector<const RegisterCell*> out;
  for (const RegisterCell& cell : registers_)
    if (cell.function == function && cell.bits == bits) out.push_back(&cell);
  return out;
}

const RegisterCell* Library::map_register(const MappingRequest& request) const {
  const auto candidates = cells_for(request.function, request.bits);
  if (candidates.empty()) return nullptr;

  // Scan feasibility filter: ordered chains crossing the MBR need per-bit
  // scan pins; anything else can use any style of the same function.
  std::vector<const RegisterCell*> usable;
  for (const RegisterCell* cell : candidates) {
    if (request.needs_per_bit_scan && request.function.is_scan &&
        cell->bits > 1 && cell->scan_style != ScanStyle::kPerBitPins)
      continue;
    usable.push_back(cell);
  }
  if (usable.empty()) return nullptr;

  // Prefer cells that do not degrade timing: drive resistance at most the
  // strongest replaced register's. Fall back to the strongest available.
  std::vector<const RegisterCell*> strong;
  for (const RegisterCell* cell : usable)
    if (cell->drive_resistance <= request.min_drive_resistance + 1e-12)
      strong.push_back(cell);
  if (strong.empty()) {
    const auto strongest = std::min_element(
        usable.begin(), usable.end(),
        [](const RegisterCell* a, const RegisterCell* b) {
          // mbrc-lint: allow(R2, min_element is order-stable -- first minimum over usable which preserves the deterministic registration order)
          return a->drive_resistance < b->drive_resistance;
        });
    strong.push_back(*strongest);
  }

  // Among the qualifying cells: penalize external (per-bit) scan variants
  // unless they were required (Sec. 4.1 -- the external chain costs routing),
  // then minimize clock pin cap, then area.
  const auto rank = [&](const RegisterCell* cell) {
    const bool penalized = !request.needs_per_bit_scan &&
                           cell->scan_style == ScanStyle::kPerBitPins &&
                           cell->bits > 1;
    return std::tuple(penalized ? 1 : 0, cell->clock_pin_cap, cell->area);
  };
  return *std::min_element(strong.begin(), strong.end(),
                           [&](const RegisterCell* a, const RegisterCell* b) {
                             return rank(a) < rank(b);
                           });
}

bool Library::has_multibit(const RegisterFunction& function) const {
  for (const RegisterCell& cell : registers_)
    if (cell.function == function && cell.bits > 1) return true;
  return false;
}

const RegisterCell* Library::cheapest_cell(const RegisterFunction& function,
                                           int bits) const {
  const RegisterCell* best = nullptr;
  for (const RegisterCell* cell : cells_for(function, bits))
    if (best == nullptr || cell->area < best->area) best = cell;
  return best;
}

namespace {

std::string function_suffix(const RegisterFunction& f) {
  std::string s;
  if (f.has_reset) s += "R";
  if (f.has_set) s += "S";
  if (f.has_enable) s += "E";
  if (f.is_scan) s += "Q";  // scan ("SDFF" style)
  if (f.is_latch) s += "L";
  return s.empty() ? "P" : s;  // P = plain
}

RegisterCell make_register(const DefaultLibraryOptions& opt,
                           const RegisterFunction& function, int bits,
                           double strength, ScanStyle style) {
  RegisterCell cell;
  cell.bits = bits;
  cell.function = function;
  cell.scan_style = style;

  // Area: per-bit sharing discount for multi-bit cells, plus control-pin
  // overhead for reset/set/enable/scan and a size premium per drive step.
  const double sharing = 1.0 - opt.area_sharing * (1.0 - 1.0 / bits);
  double area = bits * opt.unit_area * sharing;
  double overhead = 1.0;
  if (function.has_reset) overhead += 0.06;
  if (function.has_set) overhead += 0.06;
  if (function.has_enable) overhead += 0.10;
  if (function.is_scan) overhead += 0.12;
  if (style == ScanStyle::kPerBitPins && bits > 1) overhead += 0.05;
  area *= overhead;
  area *= 0.85 + 0.15 * strength;  // stronger drive => larger output stage
  cell.area = area;

  cell.height = 1.8;  // um, single-row cell
  cell.width = area / cell.height;

  // Clock pin: one shared pin; cap grows sub-linearly with bits and mildly
  // with drive strength (bigger internal clock inverters), so downsizing an
  // MBR after useful skew also trims clock capacitance (paper Sec. 5).
  cell.clock_pin_cap = opt.unit_clock_cap *
                       (opt.clock_share_base + opt.clock_share_slope * bits) *
                       (0.92 + 0.08 * strength);
  cell.data_pin_cap = 0.55;                     // fF per D pin
  cell.drive_resistance = 2.4 / strength;       // kOhm
  cell.intrinsic_delay = 0.085 + 0.004 * bits;  // ns clk->Q
  cell.setup_time = 0.045;                      // ns
  cell.hold_time = 0.025;                       // ns
  cell.leakage = area * 1.35;                   // nW, proportional to area

  // Pin geometry: D pins up the left edge, Q pins up the right edge, clock
  // at the bottom center. For a single row cell the bits are spread in x.
  for (int b = 0; b < bits; ++b) {
    const double x = cell.width * (b + 0.25) / bits;
    cell.d_pin_offsets.push_back({x, 0.3 * cell.height});
    cell.q_pin_offsets.push_back(
        {cell.width * (b + 0.75) / bits, 0.7 * cell.height});
  }
  cell.clock_pin_offset = {cell.width / 2, 0.0};

  // Name: DFF<func>_B<bits>_X<strength>[_PBS]
  std::string name = function.is_latch ? "LAT" : "DFF";
  name += function_suffix(function);
  name += "_B" + std::to_string(bits);
  name += "_X" + std::to_string(static_cast<int>(strength));
  if (style == ScanStyle::kPerBitPins && bits > 1) name += "_PBS";
  cell.name = std::move(name);
  return cell;
}

}  // namespace

Library make_default_library(const DefaultLibraryOptions& options) {
  Library library;

  std::vector<int> widths = options.widths;
  if (options.include_width_3 &&
      std::find(widths.begin(), widths.end(), 3) == widths.end())
    widths.push_back(3);
  std::sort(widths.begin(), widths.end());

  for (const RegisterFunction& function : options.functions) {
    for (int bits : widths) {
      for (double strength : options.drive_strengths) {
        const ScanStyle base_style =
            function.is_scan ? ScanStyle::kInternalChain : ScanStyle::kNone;
        library.add_register(
            make_register(options, function, bits, strength, base_style));
        if (function.is_scan && options.per_bit_scan_variants && bits > 1)
          library.add_register(make_register(options, function, bits, strength,
                                             ScanStyle::kPerBitPins));
      }
    }
  }

  // A small combinational family for the STA substrate.
  auto add_comb = [&](std::string name, int fanin, double area, double cap,
                      double res, double delay) {
    CombCell cell;
    cell.name = std::move(name);
    cell.fanin = fanin;
    cell.area = area;
    cell.height = 1.8;
    cell.width = area / cell.height;
    cell.input_pin_cap = cap;
    cell.drive_resistance = res;
    cell.intrinsic_delay = delay;
    library.add_comb(std::move(cell));
  };
  add_comb("INV_X1", 1, 0.9, 0.45, 2.8, 0.012);
  add_comb("INV_X4", 1, 1.7, 1.45, 0.8, 0.014);
  add_comb("NAND2_X1", 2, 1.3, 0.50, 3.0, 0.018);
  add_comb("NOR2_X1", 2, 1.3, 0.52, 3.4, 0.020);
  add_comb("AOI22_X1", 4, 2.2, 0.55, 3.8, 0.028);
  add_comb("XOR2_X1", 2, 2.6, 0.80, 3.6, 0.034);
  add_comb("BUF_X2", 1, 1.4, 0.50, 1.5, 0.016);

  // Clock buffers for the CTS estimator.
  auto add_buffer = [&](std::string name, double area, double cap, double res,
                        double delay, double max_load) {
    library.add_clock_buffer({std::move(name), area, cap, res, delay, max_load});
  };
  add_buffer("CLKBUF_X2", 2.1, 0.8, 1.4, 0.022, 45.0);
  add_buffer("CLKBUF_X4", 3.4, 1.5, 0.7, 0.024, 90.0);
  add_buffer("CLKBUF_X8", 5.9, 2.9, 0.35, 0.027, 180.0);

  return library;
}

}  // namespace mbrc::lib
