// Library container and queries used by MBR composition:
//   - which MBR bit-widths exist for a functional class (valid clique sizes),
//   - the best cell for a given width / drive-resistance / scan requirement
//     (Sec. 4.1 mapping).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lib/cells.hpp"

namespace mbrc::lib {

/// What the mapper needs from a library MBR cell (Sec. 4.1): at least the
/// requested drive, then minimal clock-pin cap, with external-scan variants
/// penalized unless explicitly required.
struct MappingRequest {
  RegisterFunction function;
  int bits = 1;
  double min_drive_resistance = 0.0;  // strongest (smallest R) replaced register
  bool needs_per_bit_scan = false;    // ordered chains crossing the MBR
};

class Library {
public:
  /// Adds a register cell; retains insertion order. Returns its index.
  int add_register(RegisterCell cell);
  int add_comb(CombCell cell);
  int add_clock_buffer(ClockBufferCell cell);

  const std::vector<RegisterCell>& registers() const { return registers_; }
  const std::vector<CombCell>& combs() const { return combs_; }
  const std::vector<ClockBufferCell>& clock_buffers() const { return buffers_; }

  const RegisterCell* register_by_name(const std::string& name) const;
  const CombCell* comb_by_name(const std::string& name) const;

  /// Distinct MBR bit-widths available for `function`, ascending. These are
  /// the valid clique sizes during candidate enumeration (Sec. 3).
  std::vector<int> available_widths(const RegisterFunction& function) const;

  /// Cells of `function` with exactly `bits` bits.
  std::vector<const RegisterCell*> cells_for(const RegisterFunction& function,
                                             int bits) const;

  /// Sec. 4.1 mapping: choose the library cell for a composed MBR.
  /// Preference order:
  ///   1. drive resistance <= request.min_drive_resistance (no timing
  ///      degradation); if none qualifies, the strongest available,
  ///   2. scan style compatible (per-bit pins when needs_per_bit_scan;
  ///      external-scan cells are otherwise penalized),
  ///   3. smallest clock pin capacitance,
  ///   4. smallest area.
  /// Returns nullptr when the library has no cell of that function/width.
  const RegisterCell* map_register(const MappingRequest& request) const;

  /// True when `function` has any multi-bit cell, i.e. composition can do
  /// something for registers of this class.
  bool has_multibit(const RegisterFunction& function) const;

  /// The minimum-area cell of `function` at exactly `bits` bits (ties by
  /// insertion order), or nullptr when the class has no such width. This is
  /// the enumeration-time stand-in for the cell the mapper will pick: the
  /// incomplete-MBR area rule and the multi-objective cost model both price
  /// a candidate with it before mapping runs.
  const RegisterCell* cheapest_cell(const RegisterFunction& function,
                                    int bits) const;

private:
  std::vector<RegisterCell> registers_;
  std::vector<CombCell> combs_;
  std::vector<ClockBufferCell> buffers_;
  std::unordered_map<std::string, int> register_index_;
  std::unordered_map<std::string, int> comb_index_;
};

/// Parameters for the built-in parametric library (a 28 nm-flavored model).
struct DefaultLibraryOptions {
  /// Bit-widths generated for every register functional class.
  std::vector<int> widths = {1, 2, 4, 8};
  /// Extra widths (e.g. 3) useful for exercising odd-width libraries.
  bool include_width_3 = false;
  /// Drive variants per width (X1, X2, X4...) as resistance divisors.
  std::vector<double> drive_strengths = {1.0, 2.0, 4.0};
  /// Per-bit area of the 1-bit X1 register (um^2).
  double unit_area = 4.8;
  /// Area sharing: area(b) = b * unit_area * (1 - sharing * (1 - 1/b)).
  /// Published MBFF libraries report ~20-25% per-bit area savings at 4 bits
  /// and ~25-30% at 8 bits; 0.26 reproduces that band.
  double area_sharing = 0.26;
  /// Clock pin cap of the 1-bit X1 register (fF).
  double unit_clock_cap = 0.9;
  /// Clock cap model: cap(b) = unit * (share_base + share_slope * b).
  double clock_share_base = 0.55;
  double clock_share_slope = 0.17;
  /// Register functional classes to emit.
  std::vector<RegisterFunction> functions = {
      {},                                       // plain DFF
      {.has_reset = true},                      // DFF + async reset
      {.has_reset = true, .has_enable = true},  // reset + enable
      {.is_scan = true},                        // scan DFF
      {.has_reset = true, .is_scan = true},     // scan + reset
  };
  /// Also emit per-bit-scan variants of scan MBRs.
  bool per_bit_scan_variants = true;
};

/// Builds the parametric library described by `options`. Deterministic.
Library make_default_library(const DefaultLibraryOptions& options = {});

}  // namespace mbrc::lib
