#include "route/congestion.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mbrc::route {

CongestionMap::CongestionMap(geom::Rect core, const RouteOptions& options)
    : core_(core), options_(options) {
  MBRC_ASSERT(!core.is_empty() && options.gcell_size > 0);
  width_ = std::max(1, static_cast<int>(std::ceil(core.width() /
                                                  options.gcell_size)));
  height_ = std::max(1, static_cast<int>(std::ceil(core.height() /
                                                   options.gcell_size)));
  h_demand_.assign(static_cast<std::size_t>(width_) * height_, 0.0);
  v_demand_.assign(static_cast<std::size_t>(width_) * height_, 0.0);
}

int CongestionMap::gx_of(double x) const {
  const int g = static_cast<int>((x - core_.xlo) / options_.gcell_size);
  return std::clamp(g, 0, width_ - 1);
}

int CongestionMap::gy_of(double y) const {
  const int g = static_cast<int>((y - core_.ylo) / options_.gcell_size);
  return std::clamp(g, 0, height_ - 1);
}

int CongestionMap::overflow_edges() const {
  int count = 0;
  for (int gy = 0; gy < height_; ++gy) {
    for (int gx = 0; gx < width_; ++gx) {
      // The rightmost column has no right edge; the top row no up edge.
      if (gx + 1 < width_ && h_demand_[index(gx, gy)] > options_.h_capacity)
        ++count;
      if (gy + 1 < height_ && v_demand_[index(gx, gy)] > options_.v_capacity)
        ++count;
    }
  }
  return count;
}

double CongestionMap::total_overflow() const {
  double total = 0.0;
  for (int gy = 0; gy < height_; ++gy) {
    for (int gx = 0; gx < width_; ++gx) {
      if (gx + 1 < width_)
        total += std::max(0.0, h_demand_[index(gx, gy)] - options_.h_capacity);
      if (gy + 1 < height_)
        total += std::max(0.0, v_demand_[index(gx, gy)] - options_.v_capacity);
    }
  }
  return total;
}

double CongestionMap::max_utilization() const {
  double peak = 0.0;
  for (int gy = 0; gy < height_; ++gy) {
    for (int gx = 0; gx < width_; ++gx) {
      if (gx + 1 < width_)
        peak = std::max(peak, h_demand_[index(gx, gy)] / options_.h_capacity);
      if (gy + 1 < height_)
        peak = std::max(peak, v_demand_[index(gx, gy)] / options_.v_capacity);
    }
  }
  return peak;
}

CongestionMap estimate_congestion(const netlist::Design& design,
                                  const RouteOptions& options) {
  CongestionMap map(design.core(), options);

  std::vector<geom::Point> positions;
  for (std::int32_t i = 0; i < design.net_count(); ++i) {
    const netlist::NetId net_id{i};
    const netlist::Net& net = design.net(net_id);
    if (net.is_clock) continue;

    geom::Rect box = geom::Rect::empty();
    positions.clear();
    auto add_pin = [&](netlist::PinId pin) {
      const geom::Point pos = design.pin_position(pin);
      box = box.expand(pos);
      positions.push_back(pos);
    };
    if (net.driver.valid()) add_pin(net.driver);
    for (netlist::PinId s : net.sinks) add_pin(s);
    // Degenerate (sub-2-pin) nets carry no routing, so they must not leave
    // pin demand behind either; deposit access demand only for routable nets.
    const int pins = static_cast<int>(positions.size());
    if (pins < 2) continue;
    for (const geom::Point& pos : positions) {
      map.add_h_demand(map.gx_of(pos.x), map.gy_of(pos.y), options.pin_demand);
      map.add_v_demand(map.gx_of(pos.x), map.gy_of(pos.y), options.pin_demand);
    }

    const int gx_lo = map.gx_of(box.xlo);
    const int gx_hi = map.gx_of(box.xhi);
    const int gy_lo = map.gy_of(box.ylo);
    const int gy_hi = map.gy_of(box.yhi);
    const int cols = gx_hi - gx_lo + 1;
    const int rows = gy_hi - gy_lo + 1;

    // Multi-pin nets need roughly (pins-1)/2 extra traversals of the box.
    const double strands = 1.0 + std::max(0, pins - 2) * 0.25;

    // Horizontal demand: the net crosses each column once, spread uniformly
    // over the rows of the bounding box (probability 1/rows per row).
    if (cols > 1) {
      const double per_edge = strands / rows;
      for (int gy = gy_lo; gy <= gy_hi; ++gy)
        for (int gx = gx_lo; gx < gx_hi; ++gx)
          map.add_h_demand(gx, gy, per_edge);
    }
    if (rows > 1) {
      const double per_edge = strands / cols;
      for (int gx = gx_lo; gx <= gx_hi; ++gx)
        for (int gy = gy_lo; gy < gy_hi; ++gy)
          map.add_v_demand(gx, gy, per_edge);
    }
  }
  return map;
}

}  // namespace mbrc::route
