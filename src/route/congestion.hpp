// Probabilistic routing-congestion estimation.
//
// Signal nets deposit horizontal/vertical routing demand uniformly over the
// global-routing cells (gcells) of their bounding box -- the standard
// bounding-box probabilistic model (Sapatnekar et al., the paper's ref [15]).
// An edge between adjacent gcells overflows when its demand exceeds its track
// capacity; Table 1 reports the count of such overflow edges.
//
// Clock nets are excluded: they are routed as a buffered tree (see src/cts),
// not as a flat net, so their flat bounding box would be meaningless.
#pragma once

#include <vector>

#include "netlist/design.hpp"

namespace mbrc::route {

struct RouteOptions {
  double gcell_size = 10.0;     // um
  /// Track capacities per gcell edge. A 10 um gcell at 28 nm spans ~100
  /// routing tracks per layer; with 2-3 signal layers per direction and
  /// ~70% usable by the router, ~110-130 tracks is a realistic budget.
  double h_capacity = 130.0;    // tracks per horizontal gcell edge
  double v_capacity = 115.0;    // tracks per vertical gcell edge
  /// Extra demand per cell pin in its gcell (local/pin-access routing).
  double pin_demand = 0.05;
};

class CongestionMap {
public:
  CongestionMap(geom::Rect core, const RouteOptions& options);

  int width() const { return width_; }
  int height() const { return height_; }

  double h_demand(int gx, int gy) const { return h_demand_[index(gx, gy)]; }
  double v_demand(int gx, int gy) const { return v_demand_[index(gx, gy)]; }

  void add_h_demand(int gx, int gy, double d) { h_demand_[index(gx, gy)] += d; }
  void add_v_demand(int gx, int gy, double d) { v_demand_[index(gx, gy)] += d; }

  int gx_of(double x) const;
  int gy_of(double y) const;

  /// Number of gcell edges whose demand exceeds capacity.
  int overflow_edges() const;
  /// Total demand above capacity, summed over overflowing edges (tracks).
  double total_overflow() const;
  /// Peak demand / capacity over all edges.
  double max_utilization() const;

  const RouteOptions& options() const { return options_; }

private:
  int index(int gx, int gy) const { return gy * width_ + gx; }

  geom::Rect core_;
  RouteOptions options_;
  int width_ = 0;
  int height_ = 0;
  std::vector<double> h_demand_;  // demand on the edge to the right of gcell
  std::vector<double> v_demand_;  // demand on the edge above the gcell
};

/// Builds the congestion map for all live signal nets of `design`.
CongestionMap estimate_congestion(const netlist::Design& design,
                                  const RouteOptions& options = {});

}  // namespace mbrc::route
