// Plain-text table printer used by the bench binaries to emit paper-style
// tables (Table 1 rows, figure series) with aligned columns.
#pragma once

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace mbrc::util {

/// Collects rows of string cells and prints them with per-column alignment.
class Table {
public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row() {
    rows_.emplace_back();
    return *this;
  }

  Table& cell(const std::string& value) {
    MBRC_ASSERT_MSG(!rows_.empty(), "call row() before cell()");
    rows_.back().push_back(value);
    return *this;
  }

  Table& cell(double value, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return cell(os.str());
  }

  Table& cell(std::int64_t value) { return cell(std::to_string(value)); }
  Table& cell(int value) { return cell(std::to_string(value)); }
  Table& cell(std::size_t value) { return cell(std::to_string(value)); }

  /// Formats `fraction` (e.g. 0.291) as a percentage cell ("29.1 %").
  Table& percent(double fraction, int precision = 1) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << " %";
    return cell(os.str());
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], r[c].size());

    auto print_row = [&](const std::vector<std::string>& cells) {
      os << "| ";
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& text = c < cells.size() ? cells[c] : std::string{};
        os << std::left << std::setw(static_cast<int>(widths[c])) << text
           << " | ";
      }
      os << '\n';
    };

    print_row(header_);
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c)
      os << std::string(widths[c] + 2, '-') << '|';
    os << '\n';
    for (const auto& r : rows_) print_row(r);
  }

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mbrc::util
