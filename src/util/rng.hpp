// Deterministic pseudo-random number generation.
//
// All stochastic parts of the library (benchmark generator, partitioning
// tie-breaks, property tests) draw from this generator so that every run of
// every bench reproduces the same tables. xoshiro256** is used for speed and
// statistical quality; seeding goes through SplitMix64 as recommended by the
// xoshiro authors.
#pragma once

#include <array>
#include <cstdint>

#include "util/assert.hpp"

namespace mbrc::util {

/// SplitMix64 step; used to expand a 64-bit seed into a xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6d624253eed17ULL) : seed_(seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// The seed this generator was constructed from (unchanged by draws).
  std::uint64_t seed() const { return seed_; }

  /// Derives an independent deterministic sub-stream generator. The child
  /// depends only on (parent seed, stream) -- not on how many draws the
  /// parent has made -- and splitting does not advance the parent. This is
  /// the sanctioned way to hand randomness to parallel-runtime tasks: give
  /// task i `rng.split(i)` and the draws are reproducible at any thread
  /// count. Distinct streams give statistically independent sequences (the
  /// stream index is diffused through two SplitMix64 rounds before seeding
  /// xoshiro, so adjacent indices share no state structure).
  Rng split(std::uint64_t stream) const {
    std::uint64_t sm = seed_ ^ 0x53a862697364ULL;
    const std::uint64_t base = splitmix64(sm);
    sm = base + stream;
    const std::uint64_t child_seed = splitmix64(sm);
    return Rng(child_seed);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    MBRC_ASSERT(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    // Debiased modulo (Lemire-style rejection).
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return lo + static_cast<std::int64_t>(draw % span);
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    MBRC_ASSERT(lo <= hi);
    // 53 random mantissa bits -> uniform in [0, 1).
    const double unit =
        static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    return lo + unit * (hi - lo);
  }

  /// Bernoulli draw with probability `p` of returning true.
  bool chance(double p) { return uniform_real(0.0, 1.0) < p; }

  /// Approximately normal deviate (sum of uniforms; adequate for workload
  /// synthesis, avoids libm dependencies in hot loops).
  double gaussian(double mean, double stddev) {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) acc += uniform_real(0.0, 1.0);
    return mean + (acc - 6.0) * stddev;
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t seed_ = 0;
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mbrc::util
