// Lightweight precondition / invariant checking used across the library.
//
// MBRC_ASSERT is active in all build types: the composition flow mutates a
// netlist in place, and a silently-corrupted netlist is far more expensive to
// debug than the cost of the checks (the hot loops avoid asserting per
// element). Failures throw mbrc::util::AssertionError so tests can verify
// that invalid API use is rejected.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mbrc::util {

/// Thrown when a precondition or internal invariant is violated.
class AssertionError : public std::logic_error {
public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void assertion_failure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": assertion `" << expr << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw AssertionError(os.str());
}

}  // namespace mbrc::util

#define MBRC_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::mbrc::util::assertion_failure(#expr, __FILE__, __LINE__, {});      \
  } while (0)

#define MBRC_ASSERT_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr))                                                           \
      ::mbrc::util::assertion_failure(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)
