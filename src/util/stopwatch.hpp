// Wall-clock stopwatch used to report per-phase runtimes in the benches
// (Table 1's "Exec. Time" column).
#pragma once

#include <chrono>

namespace mbrc::util {

class Stopwatch {
public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last reset, in seconds.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double milliseconds() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mbrc::util
