// Monotonic bump-pointer arena and a std-compatible allocator over it.
//
// The per-subgraph solver hot paths (clique enumeration, candidate DFS)
// allocate many short-lived scratch vectors per subgraph; at hundreds of
// thousands of subgraph solves those allocations contend on the global
// allocator across pool workers and scatter the working set. An Arena hands
// out memory by bumping a cursor through geometrically-growing blocks,
// deallocation is a no-op, and reset() rewinds to reuse the blocks for the
// next subgraph -- so a worker's scratch stays in the same few cache-warm
// pages for its whole run.
//
// Not thread-safe by design: each worker owns its arena (thread_local in
// the solvers). Allocation order is deterministic for a deterministic
// caller, and nothing about arena placement leaks into results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "util/assert.hpp"

// Compile-time default for Arena reset poisoning (see Arena::set_poison).
// Debug builds default it on so stale arena views read as 0xCD garbage
// instead of plausible leftovers; the runtime knob exists because this
// header is inlined into many TUs and a per-TU macro would be an ODR trap.
#ifndef MBRC_ARENA_POISON
#ifdef NDEBUG
#define MBRC_ARENA_POISON 0
#else
#define MBRC_ARENA_POISON 1
#endif
#endif

namespace mbrc::util {

class Arena {
public:
  explicit Arena(std::size_t first_block_bytes = 1 << 16)
      : next_block_bytes_(first_block_bytes) {
    MBRC_ASSERT(first_block_bytes > 0);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    MBRC_ASSERT(align > 0 && (align & (align - 1)) == 0);
    std::uintptr_t p = (cursor_ + align - 1) & ~(std::uintptr_t{align} - 1);
    if (block_ >= blocks_.size() || p + bytes > limit_) {
      start_block(bytes + align);
      p = (cursor_ + align - 1) & ~(std::uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    bytes_allocated_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Rewinds to the first block, keeping every block for reuse. Outstanding
  /// allocations become invalid; with poisoning on, they become *loudly*
  /// invalid -- every block is memset to 0xCD so a dangling arena view
  /// (mbrc-analyze rule A1) fails fast instead of reading stale values.
  void reset() {
    if (poison_)
      for (Block& b : blocks_) std::memset(b.data.get(), 0xCD, b.size);
    block_ = 0;
    bytes_allocated_ = 0;
    if (blocks_.empty()) {
      cursor_ = 0;
      limit_ = 0;
    } else {
      enter_block(0);
    }
  }

  /// Debug poisoning knob; defaults to the MBRC_ARENA_POISON macro (on in
  /// debug builds). A runtime bool rather than compile-time dispatch so a
  /// test can flip it per-arena without ODR hazards from this inline header.
  void set_poison(bool on) { poison_ = on; }
  bool poison() const { return poison_; }

  /// Bytes handed out since construction or the last reset().
  std::size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total bytes owned across all blocks (the high-water footprint).
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void enter_block(std::size_t index) {
    block_ = index;
    cursor_ = reinterpret_cast<std::uintptr_t>(blocks_[index].data.get());
    limit_ = cursor_ + blocks_[index].size;
  }

  void start_block(std::size_t min_bytes) {
    // Advance through already-owned blocks first (after a reset), then grow.
    const std::size_t next = blocks_.empty() || block_ >= blocks_.size()
                                 ? blocks_.size()
                                 : block_ + 1;
    for (std::size_t i = next; i < blocks_.size(); ++i) {
      if (blocks_[i].size >= min_bytes) {
        enter_block(i);
        return;
      }
    }
    Block fresh;
    fresh.size = std::max(next_block_bytes_, min_bytes);
    fresh.data = std::make_unique<std::byte[]>(fresh.size);
    next_block_bytes_ = fresh.size * 2;
    blocks_.push_back(std::move(fresh));
    enter_block(blocks_.size() - 1);
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;   // index of the block the cursor lives in
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t next_block_bytes_;
  std::size_t bytes_allocated_ = 0;
  bool poison_ = MBRC_ARENA_POISON != 0;
};

/// std::allocator-shaped handle onto an Arena, for container scratch:
///   util::ArenaVector<int> scratch(util::ArenaAllocator<int>(&arena));
/// deallocate is a no-op; memory returns on Arena::reset().
template <class T>
class ArenaAllocator {
public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {
    MBRC_ASSERT(arena != nullptr);
  }
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}  // monotonic: freed by Arena::reset()

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

private:
  Arena* arena_;
};

template <class T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace mbrc::util
