file(REMOVE_RECURSE
  "CMakeFiles/lib_test.dir/lib_test.cpp.o"
  "CMakeFiles/lib_test.dir/lib_test.cpp.o.d"
  "lib_test"
  "lib_test.pdb"
  "lib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
