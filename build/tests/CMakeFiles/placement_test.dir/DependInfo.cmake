
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/placement_test.cpp" "tests/CMakeFiles/placement_test.dir/placement_test.cpp.o" "gcc" "tests/CMakeFiles/placement_test.dir/placement_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchgen/CMakeFiles/mbrc_benchgen.dir/DependInfo.cmake"
  "/root/repo/build/src/mbr/CMakeFiles/mbrc_mbr.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/mbrc_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mbrc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/mbrc_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/cts/CMakeFiles/mbrc_cts.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/mbrc_route.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/mbrc_place.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/mbrc_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/mbrc_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mbrc_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
