# Empty dependencies file for flow_smoke_test.
# This may be replaced when dependencies are built.
