file(REMOVE_RECURSE
  "CMakeFiles/flow_smoke_test.dir/flow_smoke_test.cpp.o"
  "CMakeFiles/flow_smoke_test.dir/flow_smoke_test.cpp.o.d"
  "flow_smoke_test"
  "flow_smoke_test.pdb"
  "flow_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
