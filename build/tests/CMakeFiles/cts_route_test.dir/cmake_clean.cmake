file(REMOVE_RECURSE
  "CMakeFiles/cts_route_test.dir/cts_route_test.cpp.o"
  "CMakeFiles/cts_route_test.dir/cts_route_test.cpp.o.d"
  "cts_route_test"
  "cts_route_test.pdb"
  "cts_route_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cts_route_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
