# Empty dependencies file for cts_route_test.
# This may be replaced when dependencies are built.
