# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/ilp_test[1]_include.cmake")
include("/root/repo/build/tests/lib_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/verilog_test[1]_include.cmake")
include("/root/repo/build/tests/place_test[1]_include.cmake")
include("/root/repo/build/tests/sta_test[1]_include.cmake")
include("/root/repo/build/tests/cts_route_test[1]_include.cmake")
include("/root/repo/build/tests/compatibility_test[1]_include.cmake")
include("/root/repo/build/tests/cliques_test[1]_include.cmake")
include("/root/repo/build/tests/candidates_test[1]_include.cmake")
include("/root/repo/build/tests/composition_test[1]_include.cmake")
include("/root/repo/build/tests/heuristic_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/mapping_test[1]_include.cmake")
include("/root/repo/build/tests/rewire_test[1]_include.cmake")
include("/root/repo/build/tests/decompose_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/benchgen_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/flow_smoke_test[1]_include.cmake")
