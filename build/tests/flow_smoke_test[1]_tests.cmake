add_test([=[FlowSmoke.SmallDesignEndToEnd]=]  /root/repo/build/tests/flow_smoke_test [==[--gtest_filter=FlowSmoke.SmallDesignEndToEnd]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[FlowSmoke.SmallDesignEndToEnd]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  flow_smoke_test_TESTS FlowSmoke.SmallDesignEndToEnd)
