# Empty dependencies file for mbrc_sta.
# This may be replaced when dependencies are built.
