file(REMOVE_RECURSE
  "libmbrc_sta.a"
)
