file(REMOVE_RECURSE
  "CMakeFiles/mbrc_sta.dir/feasible_region.cpp.o"
  "CMakeFiles/mbrc_sta.dir/feasible_region.cpp.o.d"
  "CMakeFiles/mbrc_sta.dir/sta.cpp.o"
  "CMakeFiles/mbrc_sta.dir/sta.cpp.o.d"
  "CMakeFiles/mbrc_sta.dir/useful_skew.cpp.o"
  "CMakeFiles/mbrc_sta.dir/useful_skew.cpp.o.d"
  "libmbrc_sta.a"
  "libmbrc_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbrc_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
