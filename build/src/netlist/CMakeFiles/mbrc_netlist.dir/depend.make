# Empty dependencies file for mbrc_netlist.
# This may be replaced when dependencies are built.
