file(REMOVE_RECURSE
  "CMakeFiles/mbrc_netlist.dir/design.cpp.o"
  "CMakeFiles/mbrc_netlist.dir/design.cpp.o.d"
  "CMakeFiles/mbrc_netlist.dir/io.cpp.o"
  "CMakeFiles/mbrc_netlist.dir/io.cpp.o.d"
  "CMakeFiles/mbrc_netlist.dir/verilog.cpp.o"
  "CMakeFiles/mbrc_netlist.dir/verilog.cpp.o.d"
  "libmbrc_netlist.a"
  "libmbrc_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbrc_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
