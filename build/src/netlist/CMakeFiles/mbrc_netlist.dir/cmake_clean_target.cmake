file(REMOVE_RECURSE
  "libmbrc_netlist.a"
)
