file(REMOVE_RECURSE
  "CMakeFiles/mbrc_benchgen.dir/generator.cpp.o"
  "CMakeFiles/mbrc_benchgen.dir/generator.cpp.o.d"
  "libmbrc_benchgen.a"
  "libmbrc_benchgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbrc_benchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
