file(REMOVE_RECURSE
  "libmbrc_benchgen.a"
)
