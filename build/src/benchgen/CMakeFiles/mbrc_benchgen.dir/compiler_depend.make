# Empty compiler generated dependencies file for mbrc_benchgen.
# This may be replaced when dependencies are built.
