file(REMOVE_RECURSE
  "libmbrc_place.a"
)
