file(REMOVE_RECURSE
  "CMakeFiles/mbrc_place.dir/legalizer.cpp.o"
  "CMakeFiles/mbrc_place.dir/legalizer.cpp.o.d"
  "libmbrc_place.a"
  "libmbrc_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbrc_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
