# Empty dependencies file for mbrc_place.
# This may be replaced when dependencies are built.
