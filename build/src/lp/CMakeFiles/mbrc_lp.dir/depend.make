# Empty dependencies file for mbrc_lp.
# This may be replaced when dependencies are built.
