file(REMOVE_RECURSE
  "libmbrc_lp.a"
)
