file(REMOVE_RECURSE
  "CMakeFiles/mbrc_lp.dir/model.cpp.o"
  "CMakeFiles/mbrc_lp.dir/model.cpp.o.d"
  "CMakeFiles/mbrc_lp.dir/simplex.cpp.o"
  "CMakeFiles/mbrc_lp.dir/simplex.cpp.o.d"
  "libmbrc_lp.a"
  "libmbrc_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbrc_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
