file(REMOVE_RECURSE
  "CMakeFiles/mbrc_cts.dir/cts.cpp.o"
  "CMakeFiles/mbrc_cts.dir/cts.cpp.o.d"
  "libmbrc_cts.a"
  "libmbrc_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbrc_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
