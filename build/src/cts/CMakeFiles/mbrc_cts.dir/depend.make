# Empty dependencies file for mbrc_cts.
# This may be replaced when dependencies are built.
