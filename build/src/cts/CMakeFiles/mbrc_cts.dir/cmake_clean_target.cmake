file(REMOVE_RECURSE
  "libmbrc_cts.a"
)
