file(REMOVE_RECURSE
  "CMakeFiles/mbrc_mbr.dir/candidates.cpp.o"
  "CMakeFiles/mbrc_mbr.dir/candidates.cpp.o.d"
  "CMakeFiles/mbrc_mbr.dir/cliques.cpp.o"
  "CMakeFiles/mbrc_mbr.dir/cliques.cpp.o.d"
  "CMakeFiles/mbrc_mbr.dir/compatibility.cpp.o"
  "CMakeFiles/mbrc_mbr.dir/compatibility.cpp.o.d"
  "CMakeFiles/mbrc_mbr.dir/composition.cpp.o"
  "CMakeFiles/mbrc_mbr.dir/composition.cpp.o.d"
  "CMakeFiles/mbrc_mbr.dir/decompose.cpp.o"
  "CMakeFiles/mbrc_mbr.dir/decompose.cpp.o.d"
  "CMakeFiles/mbrc_mbr.dir/flow.cpp.o"
  "CMakeFiles/mbrc_mbr.dir/flow.cpp.o.d"
  "CMakeFiles/mbrc_mbr.dir/heuristic.cpp.o"
  "CMakeFiles/mbrc_mbr.dir/heuristic.cpp.o.d"
  "CMakeFiles/mbrc_mbr.dir/mapping.cpp.o"
  "CMakeFiles/mbrc_mbr.dir/mapping.cpp.o.d"
  "CMakeFiles/mbrc_mbr.dir/placement.cpp.o"
  "CMakeFiles/mbrc_mbr.dir/placement.cpp.o.d"
  "CMakeFiles/mbrc_mbr.dir/rewire.cpp.o"
  "CMakeFiles/mbrc_mbr.dir/rewire.cpp.o.d"
  "CMakeFiles/mbrc_mbr.dir/worked_example.cpp.o"
  "CMakeFiles/mbrc_mbr.dir/worked_example.cpp.o.d"
  "libmbrc_mbr.a"
  "libmbrc_mbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbrc_mbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
