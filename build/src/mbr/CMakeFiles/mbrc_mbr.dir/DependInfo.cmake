
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mbr/candidates.cpp" "src/mbr/CMakeFiles/mbrc_mbr.dir/candidates.cpp.o" "gcc" "src/mbr/CMakeFiles/mbrc_mbr.dir/candidates.cpp.o.d"
  "/root/repo/src/mbr/cliques.cpp" "src/mbr/CMakeFiles/mbrc_mbr.dir/cliques.cpp.o" "gcc" "src/mbr/CMakeFiles/mbrc_mbr.dir/cliques.cpp.o.d"
  "/root/repo/src/mbr/compatibility.cpp" "src/mbr/CMakeFiles/mbrc_mbr.dir/compatibility.cpp.o" "gcc" "src/mbr/CMakeFiles/mbrc_mbr.dir/compatibility.cpp.o.d"
  "/root/repo/src/mbr/composition.cpp" "src/mbr/CMakeFiles/mbrc_mbr.dir/composition.cpp.o" "gcc" "src/mbr/CMakeFiles/mbrc_mbr.dir/composition.cpp.o.d"
  "/root/repo/src/mbr/decompose.cpp" "src/mbr/CMakeFiles/mbrc_mbr.dir/decompose.cpp.o" "gcc" "src/mbr/CMakeFiles/mbrc_mbr.dir/decompose.cpp.o.d"
  "/root/repo/src/mbr/flow.cpp" "src/mbr/CMakeFiles/mbrc_mbr.dir/flow.cpp.o" "gcc" "src/mbr/CMakeFiles/mbrc_mbr.dir/flow.cpp.o.d"
  "/root/repo/src/mbr/heuristic.cpp" "src/mbr/CMakeFiles/mbrc_mbr.dir/heuristic.cpp.o" "gcc" "src/mbr/CMakeFiles/mbrc_mbr.dir/heuristic.cpp.o.d"
  "/root/repo/src/mbr/mapping.cpp" "src/mbr/CMakeFiles/mbrc_mbr.dir/mapping.cpp.o" "gcc" "src/mbr/CMakeFiles/mbrc_mbr.dir/mapping.cpp.o.d"
  "/root/repo/src/mbr/placement.cpp" "src/mbr/CMakeFiles/mbrc_mbr.dir/placement.cpp.o" "gcc" "src/mbr/CMakeFiles/mbrc_mbr.dir/placement.cpp.o.d"
  "/root/repo/src/mbr/rewire.cpp" "src/mbr/CMakeFiles/mbrc_mbr.dir/rewire.cpp.o" "gcc" "src/mbr/CMakeFiles/mbrc_mbr.dir/rewire.cpp.o.d"
  "/root/repo/src/mbr/worked_example.cpp" "src/mbr/CMakeFiles/mbrc_mbr.dir/worked_example.cpp.o" "gcc" "src/mbr/CMakeFiles/mbrc_mbr.dir/worked_example.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ilp/CMakeFiles/mbrc_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mbrc_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/mbrc_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/cts/CMakeFiles/mbrc_cts.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/mbrc_route.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/mbrc_place.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/mbrc_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/mbrc_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mbrc_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
