file(REMOVE_RECURSE
  "libmbrc_mbr.a"
)
