# Empty dependencies file for mbrc_mbr.
# This may be replaced when dependencies are built.
