# Empty dependencies file for mbrc_lib.
# This may be replaced when dependencies are built.
