file(REMOVE_RECURSE
  "libmbrc_lib.a"
)
