file(REMOVE_RECURSE
  "CMakeFiles/mbrc_lib.dir/library.cpp.o"
  "CMakeFiles/mbrc_lib.dir/library.cpp.o.d"
  "libmbrc_lib.a"
  "libmbrc_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbrc_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
