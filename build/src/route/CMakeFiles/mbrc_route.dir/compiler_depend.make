# Empty compiler generated dependencies file for mbrc_route.
# This may be replaced when dependencies are built.
