file(REMOVE_RECURSE
  "CMakeFiles/mbrc_route.dir/congestion.cpp.o"
  "CMakeFiles/mbrc_route.dir/congestion.cpp.o.d"
  "libmbrc_route.a"
  "libmbrc_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbrc_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
