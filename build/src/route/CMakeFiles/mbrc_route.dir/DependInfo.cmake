
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/congestion.cpp" "src/route/CMakeFiles/mbrc_route.dir/congestion.cpp.o" "gcc" "src/route/CMakeFiles/mbrc_route.dir/congestion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/mbrc_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mbrc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/mbrc_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
