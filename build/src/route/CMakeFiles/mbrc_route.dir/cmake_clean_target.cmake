file(REMOVE_RECURSE
  "libmbrc_route.a"
)
