file(REMOVE_RECURSE
  "libmbrc_ilp.a"
)
