file(REMOVE_RECURSE
  "CMakeFiles/mbrc_ilp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/mbrc_ilp.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/mbrc_ilp.dir/set_partition.cpp.o"
  "CMakeFiles/mbrc_ilp.dir/set_partition.cpp.o.d"
  "libmbrc_ilp.a"
  "libmbrc_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbrc_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
