# Empty dependencies file for mbrc_ilp.
# This may be replaced when dependencies are built.
