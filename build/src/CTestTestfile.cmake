# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geom")
subdirs("lp")
subdirs("ilp")
subdirs("lib")
subdirs("netlist")
subdirs("place")
subdirs("sta")
subdirs("cts")
subdirs("route")
subdirs("mbr")
subdirs("benchgen")
