file(REMOVE_RECURSE
  "CMakeFiles/mbrc_geom.dir/convex_hull.cpp.o"
  "CMakeFiles/mbrc_geom.dir/convex_hull.cpp.o.d"
  "libmbrc_geom.a"
  "libmbrc_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbrc_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
