# Empty dependencies file for mbrc_geom.
# This may be replaced when dependencies are built.
