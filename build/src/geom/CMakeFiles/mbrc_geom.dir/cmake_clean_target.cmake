file(REMOVE_RECURSE
  "libmbrc_geom.a"
)
