file(REMOVE_RECURSE
  "CMakeFiles/ablation_partition_bound.dir/ablation_partition_bound.cpp.o"
  "CMakeFiles/ablation_partition_bound.dir/ablation_partition_bound.cpp.o.d"
  "ablation_partition_bound"
  "ablation_partition_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partition_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
