# Empty dependencies file for ablation_partition_bound.
# This may be replaced when dependencies are built.
