# Empty compiler generated dependencies file for table1_industrial.
# This may be replaced when dependencies are built.
