file(REMOVE_RECURSE
  "CMakeFiles/table1_industrial.dir/table1_industrial.cpp.o"
  "CMakeFiles/table1_industrial.dir/table1_industrial.cpp.o.d"
  "table1_industrial"
  "table1_industrial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_industrial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
