file(REMOVE_RECURSE
  "CMakeFiles/fig6_ilp_vs_heuristic.dir/fig6_ilp_vs_heuristic.cpp.o"
  "CMakeFiles/fig6_ilp_vs_heuristic.dir/fig6_ilp_vs_heuristic.cpp.o.d"
  "fig6_ilp_vs_heuristic"
  "fig6_ilp_vs_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ilp_vs_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
