# Empty dependencies file for fig6_ilp_vs_heuristic.
# This may be replaced when dependencies are built.
