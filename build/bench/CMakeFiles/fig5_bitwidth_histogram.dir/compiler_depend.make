# Empty compiler generated dependencies file for fig5_bitwidth_histogram.
# This may be replaced when dependencies are built.
