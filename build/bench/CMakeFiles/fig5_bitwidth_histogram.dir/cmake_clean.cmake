file(REMOVE_RECURSE
  "CMakeFiles/fig5_bitwidth_histogram.dir/fig5_bitwidth_histogram.cpp.o"
  "CMakeFiles/fig5_bitwidth_histogram.dir/fig5_bitwidth_histogram.cpp.o.d"
  "fig5_bitwidth_histogram"
  "fig5_bitwidth_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bitwidth_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
