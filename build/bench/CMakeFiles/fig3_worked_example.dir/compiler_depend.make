# Empty compiler generated dependencies file for fig3_worked_example.
# This may be replaced when dependencies are built.
