file(REMOVE_RECURSE
  "CMakeFiles/scan_aware_composition.dir/scan_aware_composition.cpp.o"
  "CMakeFiles/scan_aware_composition.dir/scan_aware_composition.cpp.o.d"
  "scan_aware_composition"
  "scan_aware_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_aware_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
