# Empty dependencies file for scan_aware_composition.
# This may be replaced when dependencies are built.
