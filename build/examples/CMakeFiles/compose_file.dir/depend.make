# Empty dependencies file for compose_file.
# This may be replaced when dependencies are built.
