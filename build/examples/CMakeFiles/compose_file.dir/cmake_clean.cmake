file(REMOVE_RECURSE
  "CMakeFiles/compose_file.dir/compose_file.cpp.o"
  "CMakeFiles/compose_file.dir/compose_file.cpp.o.d"
  "compose_file"
  "compose_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compose_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
