# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_incremental_flow]=] "/root/repo/build/examples/incremental_flow")
set_tests_properties([=[example_incremental_flow]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_scan_aware]=] "/root/repo/build/examples/scan_aware_composition")
set_tests_properties([=[example_scan_aware]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_custom_library]=] "/root/repo/build/examples/custom_library")
set_tests_properties([=[example_custom_library]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_compose_file]=] "/root/repo/build/examples/compose_file")
set_tests_properties([=[example_compose_file]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
