// Traced composition flow: runs the full incremental flow on a generated
// design with FlowOptions::trace enabled and writes the two observability
// artifacts (DESIGN.md §11):
//
//   flow_trace.json   Chrome trace_event spans -- open in Perfetto
//                     (https://ui.perfetto.dev) or chrome://tracing
//   flow_report.json  machine-readable run report: Table-1 metrics,
//                     per-stage wall times, work counters, options echo
//
//   ./traced_flow [trace.json] [report.json]
#include <iostream>
#include <string>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"

using namespace mbrc;

int main(int argc, char** argv) {
  const lib::Library library = lib::make_default_library();

  benchgen::DesignProfile profile;
  profile.name = "traced-demo";
  profile.register_cells = 800;
  profile.comb_per_register = 6.0;
  profile.seed = 2017;

  std::cout << "Generating design '" << profile.name << "' ("
            << profile.register_cells << " registers)...\n";
  benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);

  mbr::FlowOptions options;
  options.timing.clock_period = generated.calibrated_clock_period;
  options.trace = true;
  options.trace_path = argc > 1 ? argv[1] : "flow_trace.json";
  options.report_path = argc > 2 ? argv[2] : "flow_report.json";

  const mbr::FlowResult result =
      mbr::run_composition_flow(generated.design, options);

  std::cout << "Composition: " << result.mbrs_created << " new MBRs from "
            << result.registers_merged << " registers in "
            << result.total_seconds << " s\n\n";
  std::cout << "Stages:\n" << runtime::format_stage_table(result.stages);
  std::cout << "\nWork counters (bit-identical at any jobs value):\n"
            << obs::format_counters(result.counters);
  std::cout << "\nTrace: " << result.trace.events.size() << " spans on "
            << result.trace.thread_names.size() << " threads -> "
            << options.trace_path << "\nReport -> " << options.report_path
            << '\n';
  return 0;
}
