// Incremental MBR composition on an industrial-style design -- the
// workload the paper's evaluation targets (Table 1 rows).
//
// The program generates a placed, MBR-rich design (or one of the built-in
// D1..D5 profiles by name), runs the full flow -- compatibility graph ->
// placement-aware ILP -> mapping -> placement -> legalization -> useful
// skew -> sizing -- and prints the before/after metric sheet.
//
//   ./incremental_flow        # default medium design
//   ./incremental_flow D3     # one of the Table 1 profiles
#include <iostream>
#include <string>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "util/table.hpp"

using namespace mbrc;

int main(int argc, char** argv) {
  const lib::Library library = lib::make_default_library();

  benchgen::DesignProfile profile;
  profile.name = "demo";
  profile.register_cells = 1500;
  profile.comb_per_register = 6.0;
  profile.seed = 2017;  // the paper's year, why not
  if (argc > 1) {
    const std::string wanted = argv[1];
    bool found = false;
    for (const auto& p : benchgen::standard_profiles()) {
      if (p.name == wanted) {
        profile = p;
        found = true;
      }
    }
    if (!found) {
      std::cerr << "unknown profile '" << wanted << "' (use D1..D5)\n";
      return 1;
    }
  }

  std::cout << "Generating design '" << profile.name << "' ("
            << profile.register_cells << " registers)...\n";
  benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);

  mbr::FlowOptions options;
  options.timing.clock_period = generated.calibrated_clock_period;
  // Paranoid flow-integrity checking: validate every stage boundary and
  // cross-check the incremental timing engine against a fresh STA rebuild.
  // Costs a few full STA runs -- fine for a demo, leave kOff in production.
  options.check_level = check::CheckLevel::kParanoid;
  std::cout << "Calibrated clock period: "
            << generated.calibrated_clock_period << " ns\n\n";

  const mbr::FlowResult result =
      mbr::run_composition_flow(generated.design, options);

  util::Table table({"metric", "base", "ours", "save"});
  const auto row = [&](const std::string& name, double base, double ours,
                       int precision = 0) {
    table.row().cell(name).cell(base, precision).cell(ours, precision);
    table.percent(base != 0 ? (base - ours) / base : 0.0);
  };
  row("cells", static_cast<double>(result.before.design.cells),
      static_cast<double>(result.after.design.cells));
  row("area (um2)", result.before.design.area, result.after.design.area);
  row("total registers",
      static_cast<double>(result.before.design.total_registers),
      static_cast<double>(result.after.design.total_registers));
  row("composable registers", result.before.composable_registers,
      result.after.composable_registers);
  row("clock buffers", result.before.clock_buffers,
      result.after.clock_buffers);
  row("clock cap (fF)", result.before.clock_cap, result.after.clock_cap);
  row("clock wire (um)", result.before.clock_wire, result.after.clock_wire);
  row("signal wire (um)", result.before.signal_wire,
      result.after.signal_wire);
  row("TNS (ns)", result.before.tns, result.after.tns, 2);
  row("failing endpoints", result.before.failing_endpoints,
      result.after.failing_endpoints);
  row("overflow edges", result.before.overflow_edges,
      result.after.overflow_edges);
  table.print(std::cout);

  std::cout << "\nComposition: " << result.mbrs_created << " new MBRs from "
            << result.registers_merged << " registers ("
            << result.incomplete_mbrs << " incomplete, "
            << result.rejected_at_mapping << " rejected at mapping)\n";
  std::cout << "Legalization: " << result.legalization.cells_moved
            << " MBRs placed, " << result.legalization.cells_evicted
            << " gates evicted, max displacement "
            << result.legalization.max_displacement << " um\n";
  std::cout << "Scan: " << result.restitch.chains << " chains re-stitched ("
            << result.restitch.links << " links)\n";
  std::cout << "Useful skew applied to " << result.skew.size()
            << " new MBRs\n";
  std::cout << "Runtime: " << result.compose_seconds
            << " s composition, " << result.total_seconds << " s total\n";
  return 0;
}
