// Using a custom MBR library: how the available bit-widths, incomplete-MBR
// cells and drive variants shape what composition can do (Secs. 3 and 4.1).
//
// The same generated design is composed against three libraries:
//   (a) pairs only       -- widths {1, 2}
//   (b) the default      -- widths {1, 2, 4, 8}
//   (c) odd-width rich   -- widths {1, 2, 3, 4, 8}
// More widths mean more valid clique sizes, so deeper merging.
#include <iostream>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "util/table.hpp"

using namespace mbrc;

int main() {
  util::Table table({"library widths", "cells", "total regs", "merged",
                     "incomplete", "clock cap (fF)", "register save"});

  const std::vector<std::pair<std::string, lib::DefaultLibraryOptions>> setups =
      [] {
        std::vector<std::pair<std::string, lib::DefaultLibraryOptions>> v;
        lib::DefaultLibraryOptions pairs;
        pairs.widths = {1, 2};
        v.emplace_back("{1,2}", pairs);
        v.emplace_back("{1,2,4,8}", lib::DefaultLibraryOptions{});
        lib::DefaultLibraryOptions odd;
        odd.include_width_3 = true;
        v.emplace_back("{1,2,3,4,8}", odd);
        return v;
      }();

  for (const auto& [label, lib_options] : setups) {
    const lib::Library library = lib::make_default_library(lib_options);

    benchgen::DesignProfile profile;
    profile.register_cells = 1200;
    profile.comb_per_register = 5.0;
    profile.seed = 99;
    // The generator needs widths that exist in this library.
    profile.width_mix = {{1, 0.7}, {2, 0.3}};

    benchgen::GeneratedDesign generated =
        benchgen::generate_design(library, profile);

    mbr::FlowOptions options;
    options.timing.clock_period = generated.calibrated_clock_period;
    const mbr::FlowResult result =
        mbr::run_composition_flow(generated.design, options);

    table.row()
        .cell(label)
        .cell(result.after.design.cells)
        .cell(result.after.design.total_registers)
        .cell(result.registers_merged)
        .cell(result.incomplete_mbrs)
        .cell(result.after.clock_cap, 0)
        .percent(1.0 -
                 static_cast<double>(result.after.design.total_registers) /
                     static_cast<double>(result.before.design.total_registers));
  }

  std::cout << "=== Composition vs library richness ===\n\n";
  table.print(std::cout);
  std::cout << "\nWider libraries admit more clique sizes (Sec. 3), so more "
               "registers merge\nand the clock capacitance falls further; "
               "3-bit cells absorb odd-sized runs\nthat otherwise need "
               "incomplete 4-bit cells.\n";
  return 0;
}
