// Quickstart: the paper's six-register worked example (Figs. 1-3), end to
// end through the public API: compatibility graph -> candidate enumeration
// with placement-aware weights -> the set-partitioning ILP -> the selected
// MBRs. Run it with no arguments.
#include <iostream>

#include "mbr/candidates.hpp"
#include "mbr/composition.hpp"
#include "mbr/worked_example.hpp"

using namespace mbrc;

namespace {

std::string member_names(const std::vector<int>& nodes) {
  std::string s;
  for (int n : nodes) s += mbr::WorkedExample::node_name(n);
  return s;
}

}  // namespace

int main() {
  // 1. Build the example: registers A..D (1-bit), E (4-bit), F (2-bit) with
  //    Fig. 2's placement; the library has {1,2,3,4,8}-bit MBRs.
  const mbr::WorkedExample example = mbr::make_worked_example();
  const mbr::CompatibilityGraph& graph = example.graph;

  std::cout << "Compatibility graph (Fig. 1):\n";
  for (int i = 0; i < graph.node_count(); ++i) {
    std::cout << "  " << mbr::WorkedExample::node_name(i) << graph.node(i).bits
              << " -- ";
    for (int j : graph.neighbors(i))
      std::cout << mbr::WorkedExample::node_name(j);
    std::cout << '\n';
  }

  // 2. Enumerate candidate MBRs with the Sec. 3.2 weights.
  std::vector<int> subgraph(graph.node_count());
  for (int i = 0; i < graph.node_count(); ++i) subgraph[i] = i;
  const mbr::BlockerIndex blockers(graph);

  mbr::EnumerationOptions enum_options;
  enum_options.allow_incomplete = true;
  // Lift the flow's 5% incomplete-area cap so the paper's AE/ACE incomplete
  // candidates appear in the listing (the ILP still doesn't pick them).
  enum_options.incomplete_area_overhead = 10.0;
  const mbr::EnumerationResult enumeration = mbr::enumerate_candidates(
      graph, *example.library, blockers, subgraph, enum_options);

  std::cout << "\nCandidates and weights (Fig. 3):\n";
  for (const mbr::Candidate& c : enumeration.candidates) {
    std::cout << "  " << member_names(c.nodes) << ": bits=" << c.bits
              << " width=" << c.mapped_width << " blockers=" << c.blockers
              << " w=" << c.weight << (c.is_incomplete() ? " (incomplete)" : "")
              << '\n';
  }

  // 3. Solve the set-partitioning ILP: every register in exactly one
  //    selected candidate, minimum total weight.
  const ilp::SetPartitionResult solved =
      mbr::solve_subgraph(subgraph, enumeration.candidates);
  std::cout << "\nILP selection (objective " << solved.objective << "):\n";
  for (int index : solved.chosen) {
    const mbr::Candidate& c = enumeration.candidates[index];
    std::cout << "  " << member_names(c.nodes) << " -> " << c.mapped_width
              << "-bit MBR\n";
  }
  std::cout << "\nRegisters: " << graph.node_count() << " -> "
            << solved.chosen.size() << '\n';
  return 0;
}
