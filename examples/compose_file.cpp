// File-based composition: load a placed design from the mbrc text format,
// run the incremental MBR composition flow, save the result, and print the
// metric deltas. This is the "tool" entry point a downstream user scripts
// against.
//
//   ./compose_file in.mbrc out.mbrc [clock_period_ns] [jobs]
//
// `jobs` sets the parallel runtime's thread count (default: hardware
// threads; 1 = serial). The composed result is bit-identical either way.
//
// With no arguments, the program writes a demo: it generates a design,
// saves it, round-trips it through this same path and reports the result.
#include <iostream>
#include <string>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "netlist/io.hpp"

using namespace mbrc;

namespace {

int compose(const lib::Library& library, const std::string& in_path,
            const std::string& out_path, double clock_period, int jobs) {
  auto design = netlist::load_design_file(library, in_path);
  if (!design) {
    std::cerr << "cannot open " << in_path << '\n';
    return 1;
  }
  std::cout << "Loaded " << in_path << ": "
            << design->stats().total_registers << " registers, "
            << design->stats().cells << " cells\n";

  mbr::FlowOptions options;
  options.timing.clock_period = clock_period;
  if (jobs > 0) options.jobs = jobs;
  const mbr::FlowResult result = mbr::run_composition_flow(*design, options);

  std::cout << "Composed " << result.mbrs_created << " MBRs from "
            << result.registers_merged << " registers; total "
            << result.before.design.total_registers << " -> "
            << result.after.design.total_registers << " registers, clock cap "
            << result.before.clock_cap << " -> " << result.after.clock_cap
            << " fF, TNS " << result.before.tns << " -> " << result.after.tns
            << " ns\n";

  if (!netlist::save_design_file(*design, out_path)) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  std::cout << "Saved " << out_path << "\n\nStage timings (jobs="
            << options.jobs << "):\n"
            << runtime::format_stage_table(result.stages);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const lib::Library library = lib::make_default_library();

  if (argc >= 3) {
    double period = 0.5;
    int jobs = 0;
    try {
      if (argc >= 4) period = std::stod(argv[3]);
      if (argc >= 5) jobs = std::stoi(argv[4]);
    } catch (const std::exception&) {
      std::cerr << "usage: compose_file <in.mbrc> <out.mbrc> [period_ns] "
                   "[jobs] (numeric arguments)\n";
      return 1;
    }
    return compose(library, argv[1], argv[2], period, jobs);
  }

  // Demo mode: generate -> save -> compose from the file -> save.
  std::cout << "(demo mode: pass <in.mbrc> <out.mbrc> [period_ns] to run on "
               "your own design)\n\n";
  benchgen::DesignProfile profile;
  profile.register_cells = 800;
  profile.comb_per_register = 5.0;
  profile.seed = 7;
  benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);
  if (!netlist::save_design_file(generated.design, "demo_in.mbrc")) {
    std::cerr << "cannot write demo_in.mbrc\n";
    return 1;
  }
  std::cout << "Wrote demo_in.mbrc (" << generated.design.cell_count()
            << " cells, calibrated period "
            << generated.calibrated_clock_period << " ns)\n";
  return compose(library, "demo_in.mbrc", "demo_out.mbrc",
                 generated.calibrated_clock_period, 0);
}
