// Scan-aware composition (Sec. 2's scan compatibility and Sec. 4.1's scan
// mapping rules), on a small hand-built design:
//
//   - partition 0 holds six scan flops, three of them locked in an ordered
//     scan section (s0 < s1 < s2);
//   - partition 1 holds four free scan flops.
//
// The example shows how the ordered section forces either an internal-chain
// MBR over a *contiguous* run or a per-bit-scan cell, how partitions never
// mix, and how the chains are re-stitched after composition.
#include <iostream>

#include "mbr/flow.hpp"
#include "mbr/worked_example.hpp"
#include "sta/sta.hpp"

using namespace mbrc;

namespace {

netlist::PinId scan_pin(const netlist::Design& design, netlist::CellId cell,
                        netlist::PinRole role) {
  for (netlist::PinId p : design.cell(cell).pins)
    if (design.pin(p).role == role) return p;
  return netlist::PinId{};
}

void print_chain(const netlist::Design& design, int partition) {
  // Find the head (unconnected SI) and walk SO -> SI links.
  netlist::CellId cursor;
  for (netlist::CellId reg : design.registers()) {
    if (design.cell(reg).scan.partition != partition) continue;
    const netlist::PinId si = scan_pin(design, reg, netlist::PinRole::kScanIn);
    if (si.valid() && !design.pin(si).net.valid()) cursor = reg;
  }
  std::cout << "  partition " << partition << ": ";
  while (cursor.valid()) {
    std::cout << design.cell(cursor).name << " ";
    const netlist::PinId so =
        scan_pin(design, cursor, netlist::PinRole::kScanOut);
    const netlist::NetId net = design.pin(so).net;
    if (!net.valid() || design.net(net).sinks.empty()) break;
    cursor = design.pin(design.net(net).sinks.front()).cell;
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  const lib::Library library = lib::make_default_library();
  netlist::Design design(&library, {0, 0, 120, 36});

  const auto* sdff = library.register_by_name("DFFQ_B1_X1");
  const auto* inv = library.comb_by_name("INV_X1");
  const netlist::NetId clock = design.create_net(true);
  const netlist::NetId scan_enable = design.create_net();
  const netlist::CellId se_driver = design.add_comb("se_drv", inv, {0, 0});
  design.connect(design.cell(se_driver).pins.back(), scan_enable);

  // Registers with simple D/Q connectivity (self-loops keep timing happy).
  auto add_flop = [&](const std::string& name, geom::Point pos, int partition,
                      int section, int order) {
    const netlist::CellId reg = design.add_register(name, sdff, pos);
    design.cell(reg).scan = {partition, section, order};
    design.connect(design.register_clock_pin(reg), clock);
    design.connect(
        design.register_control_pin(reg, netlist::PinRole::kScanEnable),
        scan_enable);
    const netlist::NetId loop = design.create_net();
    design.connect(design.register_q_pin(reg, 0), loop);
    design.connect(design.register_d_pin(reg, 0), loop);
    return reg;
  };

  // Partition 0: an ordered section of three, plus three free flops, all
  // placed close together so they are placement-compatible.
  add_flop("s0", {20, 9}, 0, /*section=*/0, /*order=*/0);
  add_flop("s1", {26, 9}, 0, 0, 1);
  add_flop("s2", {32, 9}, 0, 0, 2);
  add_flop("f0", {84, 9}, 0, -1, -1);
  add_flop("f1", {90, 9}, 0, -1, -1);
  add_flop("f2", {96, 9}, 0, -1, -1);
  // Partition 1: four free flops nearby -- never mergeable with partition 0.
  for (int i = 0; i < 4; ++i)
    add_flop("p1_" + std::to_string(i), {60.0 + 6 * i, 9}, 1, -1, -1);

  mbr::restitch_scan_chains(design);
  std::cout << "Initial scan chains:\n";
  print_chain(design, 0);
  print_chain(design, 1);

  // Compose, with the paranoid flow checker on: scan-chain integrity is
  // exactly the invariant this demo is about, so have every stage prove it.
  mbr::FlowOptions options;
  options.check_level = check::CheckLevel::kParanoid;
  options.timing.clock_period = 2.0;  // relaxed: scan demo, not a timing one
  // Both 3-flop groups map to incomplete 4-bit cells; scan cells carry extra
  // area, so the paper's default 5% incomplete-area budget is a hair short
  // here -- widen it to let the demo show the scan-mapping machinery.
  options.composition.enumeration.incomplete_area_overhead = 0.10;
  options.mapping.incomplete_area_overhead = 0.10;
  const mbr::FlowResult result = mbr::run_composition_flow(design, options);

  std::cout << "\nAfter composition (" << result.mbrs_created
            << " MBRs created):\n";
  for (netlist::CellId reg : design.registers()) {
    const netlist::Cell& cell = design.cell(reg);
    std::cout << "  " << cell.name << ": " << cell.reg->name
              << " partition=" << cell.scan.partition;
    if (cell.scan.section >= 0)
      std::cout << " section=" << cell.scan.section;
    if (cell.reg->scan_style == lib::ScanStyle::kPerBitPins)
      std::cout << " [per-bit scan pins]";
    std::cout << '\n';
  }

  std::cout << "\nRe-stitched scan chains:\n";
  print_chain(design, 0);
  print_chain(design, 1);

  std::cout << "\nNote: the ordered section {s0,s1,s2} may merge into one "
               "internal-chain MBR\n(contiguous orders) while registers of "
               "different partitions never merge;\nmixing section and free "
               "registers requires the per-bit-scan variant (Sec. 2).\n";
  design.check_consistency();
  return 0;
}
