// Determinism regression tests for the hazards mbrc-lint R1/R2 guard
// against: results must not depend on hash-map insertion (and hence
// iteration) order or on the relative order equal-keyed elements reach an
// unstable sort in.
//
//   - TimingEngine::apply_skew_diff collects changed registers from two
//     unordered maps; permuting the SkewMap's insertion order must leave
//     every arrival/required/slack bit-identical (and equal to the
//     from-scratch run_sta oracle).
//   - CompatibilityGraph construction appends edges in probe order;
//     permuting the add_edge order must produce the same finalized graph
//     and the same enumerated candidates.
//   - DesignChecker reports are part of flow output: placement and scan
//     diagnostics must come out in ascending row / scan-partition order,
//     not hash order.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "benchgen/generator.hpp"
#include "check/checker.hpp"
#include "mbr/candidates.hpp"
#include "mbr/compatibility.hpp"
#include "mbr/worked_example.hpp"
#include "sta/timing_engine.hpp"
#include "util/rng.hpp"

namespace mbrc {
namespace {

using netlist::CellId;

benchgen::GeneratedDesign make_design(const lib::Library& library,
                                      std::uint64_t seed) {
  benchgen::DesignProfile profile;
  profile.name = "det";
  profile.seed = seed;
  profile.register_cells = 180;
  profile.comb_per_register = 3.0;
  return benchgen::generate_design(library, profile);
}

void expect_bit_identical(const sta::TimingReport& got,
                          const sta::TimingReport& want) {
  ASSERT_EQ(got.arrival.size(), want.arrival.size());
  for (std::size_t i = 0; i < got.arrival.size(); ++i) {
    ASSERT_EQ(got.arrival[i], want.arrival[i]) << "arrival pin " << i;
    ASSERT_EQ(got.arrival_min[i], want.arrival_min[i]) << "min pin " << i;
    ASSERT_EQ(got.required[i], want.required[i]) << "required pin " << i;
  }
  ASSERT_EQ(got.endpoints.size(), want.endpoints.size());
  for (std::size_t i = 0; i < got.endpoints.size(); ++i) {
    ASSERT_EQ(got.endpoints[i].pin, want.endpoints[i].pin);
    ASSERT_EQ(got.endpoints[i].slack, want.endpoints[i].slack);
    ASSERT_EQ(got.endpoints[i].hold_slack, want.endpoints[i].hold_slack);
  }
}

TEST(SkewDeterminism, InsertionOrderDoesNotChangeTheReport) {
  const lib::Library library = lib::make_default_library();
  const auto generated = make_design(library, 4242);
  sta::TimingOptions options;
  options.clock_period = generated.calibrated_clock_period;

  // The same skew assignment, inserted forward, reversed, and shuffled:
  // three different unordered_map iteration orders into apply_skew_diff.
  const auto registers = generated.design.registers();
  std::vector<std::pair<CellId, double>> entries;
  for (std::size_t i = 0; i < registers.size(); i += 2)
    entries.emplace_back(registers[i],
                         0.01 * static_cast<double>(i % 17) - 0.08);

  std::vector<std::vector<std::pair<CellId, double>>> orders;
  orders.push_back(entries);
  orders.push_back({entries.rbegin(), entries.rend()});
  auto shuffled = entries;
  util::Rng rng(99);
  for (std::size_t i = shuffled.size(); i > 1; --i)
    std::swap(shuffled[i - 1],
              shuffled[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  orders.push_back(shuffled);

  std::vector<sta::TimingReport> reports;
  for (const auto& order : orders) {
    sta::SkewMap skew;
    for (const auto& [cell, value] : order) skew[cell] = value;
    sta::TimingEngine engine(generated.design, options);
    engine.update();        // seed the clean baseline
    engine.update(skew);    // exercises apply_skew_diff's changed-set path
    reports.push_back(engine.report());
  }

  const sta::TimingReport oracle =
      [&] {
        sta::SkewMap skew;
        for (const auto& [cell, value] : entries) skew[cell] = value;
        return sta::run_sta(generated.design, options, skew);
      }();
  for (const auto& report : reports) expect_bit_identical(report, oracle);
}

TEST(SkewDeterminism, PermutedUpdateSequencesConverge) {
  const lib::Library library = lib::make_default_library();
  const auto generated = make_design(library, 7);
  sta::TimingOptions options;
  options.clock_period = generated.calibrated_clock_period;
  const auto registers = generated.design.registers();

  // Two engines walk different intermediate skew states (so their changed
  // sets differ step to step) but end on the same final assignment.
  sta::SkewMap final_skew;
  for (std::size_t i = 0; i < registers.size(); i += 3)
    final_skew[registers[i]] = 0.005 * static_cast<double>(i % 11);

  sta::TimingEngine a(generated.design, options);
  sta::TimingEngine b(generated.design, options);
  sta::SkewMap half;
  std::size_t n = 0;
  for (const auto& [cell, value] : final_skew)
    if (++n % 2) half[cell] = value - 0.001;
  a.update(half);
  a.update(final_skew);
  b.update(final_skew);
  expect_bit_identical(a.report(), b.report());
  expect_bit_identical(a.report(),
                       sta::run_sta(generated.design, options, final_skew));
}

TEST(CompatibilityDeterminism, EdgeInsertionOrderIsCanonicalized) {
  // Same node set, same edge set, three different add_edge orders: the
  // finalized adjacency and the enumerated candidates must be identical.
  const mbr::WorkedExample example = mbr::make_worked_example();
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < example.graph.node_count(); ++a)
    for (int b = a + 1; b < example.graph.node_count(); ++b)
      if (example.graph.has_edge(a, b)) edges.emplace_back(a, b);
  ASSERT_FALSE(edges.empty());

  const auto build = [&](const std::vector<std::pair<int, int>>& order) {
    mbr::CompatibilityGraph graph;
    for (const auto& info : example.graph.nodes()) graph.add_node(info);
    for (const auto& [a, b] : order) graph.add_edge(a, b);
    graph.finalize();
    return graph;
  };

  std::vector<std::pair<int, int>> reversed(edges.rbegin(), edges.rend());
  auto swapped = edges;  // permute endpoints too: add_edge(b, a)
  for (auto& [a, b] : swapped) std::swap(a, b);

  const auto canonical = [&](const mbr::CompatibilityGraph& graph) {
    std::vector<std::string> names;
    mbr::BlockerIndex blockers(graph);
    std::vector<int> subgraph;
    for (int i = 0; i < graph.node_count(); ++i) subgraph.push_back(i);
    const auto result = mbr::enumerate_candidates(
        graph, *example.library, blockers, subgraph, {});
    for (const auto& c : result.candidates) {
      std::string name;
      for (int n : c.nodes) name += mbr::WorkedExample::node_name(n);
      names.push_back(name + ":" + std::to_string(c.weight));
    }
    return names;
  };

  const auto want = canonical(build(edges));
  EXPECT_EQ(canonical(build(reversed)), want);
  EXPECT_EQ(canonical(build(swapped)), want);
}

class CheckerOrderFixture : public ::testing::Test {
protected:
  CheckerOrderFixture() : library(lib::make_default_library()) {
    // Big enough that every scan partition is populated and overlaps can be
    // planted across many distinct rows.
    benchgen::DesignProfile profile;
    profile.name = "det-check";
    profile.seed = 31;
    profile.register_cells = 600;
    profile.comb_per_register = 2.0;
    generated.emplace(benchgen::generate_design(library, profile));
  }

  netlist::Design& design() { return generated->design; }

  /// Extracts the integer that follows `marker` in each violation of
  /// `check`, in report order.
  static std::vector<int> numbers_after(const check::CheckReport& report,
                                        const std::string& check,
                                        const std::string& marker) {
    std::vector<int> out;
    for (const auto& v : report.violations) {
      if (v.check != check) continue;
      const std::size_t pos = v.detail.find(marker);
      if (pos == std::string::npos) continue;
      out.push_back(std::stoi(v.detail.substr(pos + marker.size())));
    }
    return out;
  }

  lib::Library library;
  std::optional<benchgen::GeneratedDesign> generated;
};

TEST_F(CheckerOrderFixture, OverlapReportsComeOutInRowOrder) {
  // Plant overlaps in many distinct rows by stacking register pairs, then
  // require the placement diagnostics in ascending row order -- the report
  // is flow output, so it must not follow unordered_map iteration order.
  const auto regs = design().registers();
  ASSERT_GE(regs.size(), 40u);
  int planted = 0;
  for (std::size_t i = 0; i + 1 < regs.size() && planted < 12; i += 15) {
    design().cell(regs[i + 1]).position = design().cell(regs[i]).position;
    design().notify_moved(regs[i + 1]);
    ++planted;
  }
  ASSERT_GE(planted, 8);

  check::DesignChecker checker(design());
  checker.check_placement();
  const auto rows =
      numbers_after(checker.report(), "placement", "overlap in row ");
  ASSERT_GE(rows.size(), 4u) << checker.report().to_string();
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()))
      << checker.report().to_string();
}

TEST_F(CheckerOrderFixture, ScanReportsComeOutInPartitionOrder) {
  // Cut one SI link per scan partition; the resulting chain diagnostics
  // must be grouped by ascending partition id.
  std::vector<int> cut_partitions;
  for (CellId reg : design().registers()) {
    const netlist::Cell& cell = design().cell(reg);
    if (!cell.reg->function.is_scan || cell.scan.partition < 0) continue;
    if (std::find(cut_partitions.begin(), cut_partitions.end(),
                  cell.scan.partition) != cut_partitions.end())
      continue;
    for (netlist::PinId pin_id : cell.pins) {
      const netlist::Pin& p = design().pin(pin_id);
      if (p.role == netlist::PinRole::kScanIn && p.net.valid() &&
          design().net(p.net).driver.valid()) {
        design().disconnect(pin_id);
        cut_partitions.push_back(cell.scan.partition);
        break;
      }
    }
  }
  ASSERT_GE(cut_partitions.size(), 2u);

  check::DesignChecker checker(design());
  checker.check_scan_chains();
  const auto partitions =
      numbers_after(checker.report(), "scan", "scan partition ");
  ASSERT_GE(partitions.size(), 2u) << checker.report().to_string();
  EXPECT_TRUE(std::is_sorted(partitions.begin(), partitions.end()))
      << checker.report().to_string();
}

}  // namespace
}  // namespace mbrc
