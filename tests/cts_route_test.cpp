#include <gtest/gtest.h>

#include "cts/cts.hpp"
#include "lib/library.hpp"
#include "route/congestion.hpp"
#include "util/rng.hpp"

namespace mbrc {
namespace {

class ClockedFixture : public ::testing::Test {
protected:
  ClockedFixture()
      : library(lib::make_default_library()),
        design(&library, {0, 0, 300, 300}) {}

  // Sprinkles `count` registers of `cell_name` uniformly; all on one clock.
  std::vector<netlist::CellId> add_registers(const std::string& cell_name,
                                             int count,
                                             int gating_group = 0) {
    const auto* cell = library.register_by_name(cell_name);
    EXPECT_NE(cell, nullptr);
    if (!clock.valid()) clock = design.create_net(true);
    std::vector<netlist::CellId> out;
    for (int i = 0; i < count; ++i) {
      const geom::Point pos{rng.uniform_real(0, 280),
                            rng.uniform_real(0, 280)};
      const netlist::CellId reg = design.add_register(
          cell_name + "_" + std::to_string(counter++), cell, pos);
      design.cell(reg).gating_group = gating_group;
      design.connect(design.register_clock_pin(reg), clock);
      out.push_back(reg);
    }
    return out;
  }

  lib::Library library;
  netlist::Design design;
  netlist::NetId clock;
  util::Rng rng{99};
  int counter = 0;
};

TEST_F(ClockedFixture, TreeCoversAllSinks) {
  add_registers("DFFP_B1_X1", 200);
  const cts::ClockTreeStats stats = cts::estimate_clock_tree(design);
  EXPECT_EQ(stats.sinks, 200);
  EXPECT_GT(stats.buffers, 200 / 24);  // at least the fanout bound
  EXPECT_GT(stats.levels, 0);
  EXPECT_GT(stats.wire_length, 0.0);
  EXPECT_GT(stats.total_cap(), stats.sink_cap);
}

TEST_F(ClockedFixture, FewerSinksMeansSmallerTree) {
  add_registers("DFFP_B1_X1", 400);
  const cts::ClockTreeStats big = cts::estimate_clock_tree(design);

  // Remove half the registers: the tree must shrink in every respect.
  int removed = 0;
  for (netlist::CellId reg : design.registers()) {
    if (removed >= 200) break;
    design.remove_cell(reg);
    ++removed;
  }
  const cts::ClockTreeStats small = cts::estimate_clock_tree(design);
  EXPECT_EQ(small.sinks, 200);
  EXPECT_LT(small.buffers, big.buffers);
  EXPECT_LT(small.wire_length, big.wire_length);
  EXPECT_LT(small.total_cap(), big.total_cap());
}

TEST_F(ClockedFixture, MbrSinksCheaperThanSingleBits) {
  // 256 bits as 256 single-bit sinks vs 32 8-bit sinks.
  add_registers("DFFP_B1_X1", 256);
  const cts::ClockTreeStats singles = cts::estimate_clock_tree(design);

  netlist::Design mbr_design(&library, {0, 0, 300, 300});
  {
    const auto* cell = library.register_by_name("DFFP_B8_X1");
    const netlist::NetId clk = mbr_design.create_net(true);
    util::Rng rng2(99);
    for (int i = 0; i < 32; ++i) {
      const netlist::CellId reg = mbr_design.add_register(
          "m" + std::to_string(i), cell,
          {rng2.uniform_real(0, 280), rng2.uniform_real(0, 280)});
      mbr_design.connect(mbr_design.register_clock_pin(reg), clk);
    }
  }
  const cts::ClockTreeStats mbrs = cts::estimate_clock_tree(mbr_design);
  EXPECT_LT(mbrs.sink_cap, singles.sink_cap);
  EXPECT_LT(mbrs.buffers, singles.buffers);
  EXPECT_LT(mbrs.total_cap(), singles.total_cap());
}

TEST_F(ClockedFixture, GatingGroupsFormSeparateSubtrees) {
  add_registers("DFFP_B1_X1", 60, /*gating_group=*/0);
  add_registers("DFFP_B1_X1", 60, /*gating_group=*/1);
  const cts::ClockTreeStats split = cts::estimate_clock_tree(design);

  netlist::Design merged(&library, {0, 0, 300, 300});
  {
    const auto* cell = library.register_by_name("DFFP_B1_X1");
    const netlist::NetId clk = merged.create_net(true);
    util::Rng rng2(99);
    for (int i = 0; i < 120; ++i) {
      const netlist::CellId reg = merged.add_register(
          "r" + std::to_string(i), cell,
          {rng2.uniform_real(0, 280), rng2.uniform_real(0, 280)});
      merged.connect(merged.register_clock_pin(reg), clk);
    }
  }
  const cts::ClockTreeStats joint = cts::estimate_clock_tree(merged);
  // Split gating needs at least as many buffers (two subtrees + combiner).
  EXPECT_GE(split.buffers, joint.buffers);
}

TEST(Congestion, EmptyDesignHasNoOverflow) {
  lib::Library library = lib::make_default_library();
  netlist::Design design(&library, {0, 0, 100, 100});
  const route::CongestionMap map = route::estimate_congestion(design);
  EXPECT_EQ(map.overflow_edges(), 0);
  EXPECT_DOUBLE_EQ(map.total_overflow(), 0.0);
  EXPECT_DOUBLE_EQ(map.max_utilization(), 0.0);
}

TEST(Congestion, GridDimensions) {
  lib::Library library = lib::make_default_library();
  netlist::Design design(&library, {0, 0, 95, 45});
  route::RouteOptions options;
  options.gcell_size = 10.0;
  const route::CongestionMap map = route::estimate_congestion(design, options);
  EXPECT_EQ(map.width(), 10);
  EXPECT_EQ(map.height(), 5);
  EXPECT_EQ(map.gx_of(-5.0), 0);
  EXPECT_EQ(map.gx_of(96.0), 9);
}

TEST(Congestion, DemandFollowsNetBoundingBoxes) {
  lib::Library library = lib::make_default_library();
  netlist::Design design(&library, {0, 0, 100, 100});
  const auto* dff = library.register_by_name("DFFP_B1_X1");
  const netlist::CellId a = design.add_register("a", dff, {5, 5});
  const netlist::CellId b = design.add_register("b", dff, {85, 5});
  const netlist::NetId net = design.create_net();
  design.connect(design.register_q_pin(a, 0), net);
  design.connect(design.register_d_pin(b, 0), net);

  route::RouteOptions options;
  options.pin_demand = 0.0;
  const route::CongestionMap map = route::estimate_congestion(design, options);
  // Horizontal demand along row 0 within the net's bbox; nothing vertical.
  EXPECT_GT(map.h_demand(3, 0), 0.0);
  EXPECT_DOUBLE_EQ(map.v_demand(3, 0), 0.0);
  EXPECT_DOUBLE_EQ(map.h_demand(3, 5), 0.0);  // other rows untouched
}

TEST(Congestion, ClockNetsExcluded) {
  lib::Library library = lib::make_default_library();
  netlist::Design design(&library, {0, 0, 100, 100});
  const auto* dff = library.register_by_name("DFFP_B1_X1");
  const netlist::CellId a = design.add_register("a", dff, {5, 5});
  const netlist::CellId b = design.add_register("b", dff, {85, 85});
  const netlist::NetId clk = design.create_net(/*is_clock=*/true);
  design.connect(design.register_clock_pin(a), clk);
  design.connect(design.register_clock_pin(b), clk);
  route::RouteOptions options;
  options.pin_demand = 0.0;
  const route::CongestionMap map = route::estimate_congestion(design, options);
  EXPECT_DOUBLE_EQ(map.max_utilization(), 0.0);
}

// Regression for the pin-demand leak: degenerate (sub-2-pin) nets carry no
// routing, so they must not deposit pin-access demand either. The old code
// recorded pin demand while collecting pin positions, before the 2-pin
// routability check, so every dangling Q stub and driverless sink net
// inflated the congestion map a little.
TEST(Congestion, DegenerateNetsLeaveNoDemand) {
  lib::Library library = lib::make_default_library();
  netlist::Design design(&library, {0, 0, 100, 100});
  const auto* dff = library.register_by_name("DFFP_B2_X1");
  const netlist::CellId a = design.add_register("a", dff, {5, 5});
  const netlist::CellId b = design.add_register("b", dff, {85, 85});
  // A dangling driver stub (Q with no sinks) and a driverless sink net --
  // both common transients around rewiring -- plus an unconnected net.
  const netlist::NetId stub = design.create_net();
  design.connect(design.register_q_pin(a, 0), stub);
  const netlist::NetId floating = design.create_net();
  design.connect(design.register_d_pin(b, 0), floating);
  design.create_net();

  const route::CongestionMap map = route::estimate_congestion(design);
  EXPECT_DOUBLE_EQ(map.max_utilization(), 0.0);

  // A routable 2-pin net still deposits pin demand at both endpoints.
  design.connect(design.register_d_pin(b, 1), stub);
  const route::CongestionMap routed = route::estimate_congestion(design);
  EXPECT_GT(routed.max_utilization(), 0.0);
  EXPECT_GT(routed.h_demand(routed.gx_of(5), routed.gy_of(5)), 0.0);
}

TEST(Congestion, OverflowWhenCapacityTiny) {
  lib::Library library = lib::make_default_library();
  netlist::Design design(&library, {0, 0, 100, 100});
  const auto* dff = library.register_by_name("DFFP_B1_X1");
  util::Rng rng(5);
  // Many crossing nets through the center.
  std::vector<netlist::CellId> regs;
  for (int i = 0; i < 40; ++i)
    regs.push_back(design.add_register(
        "r" + std::to_string(i), dff,
        {rng.uniform_real(0, 95), rng.uniform_real(0, 95)}));
  for (int i = 0; i + 1 < 40; i += 2) {
    const netlist::NetId net = design.create_net();
    design.connect(design.register_q_pin(regs[i], 0), net);
    design.connect(design.register_d_pin(regs[i + 1], 0), net);
  }
  route::RouteOptions tiny;
  tiny.h_capacity = 0.01;
  tiny.v_capacity = 0.01;
  const route::CongestionMap map = route::estimate_congestion(design, tiny);
  EXPECT_GT(map.overflow_edges(), 0);
  EXPECT_GT(map.total_overflow(), 0.0);
  EXPECT_GT(map.max_utilization(), 1.0);
}

}  // namespace
}  // namespace mbrc
