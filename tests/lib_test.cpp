#include <gtest/gtest.h>

#include <set>

#include "lib/library.hpp"
#include "util/assert.hpp"

namespace mbrc::lib {
namespace {

class DefaultLibrary : public ::testing::Test {
protected:
  Library library = make_default_library();
};

TEST_F(DefaultLibrary, HasEveryFunctionWidthDriveCombination) {
  const DefaultLibraryOptions options;
  for (const RegisterFunction& f : options.functions) {
    const auto widths = library.available_widths(f);
    EXPECT_EQ(widths, (std::vector<int>{1, 2, 4, 8}));
    for (int w : widths) {
      const auto cells = library.cells_for(f, w);
      // 3 drive strengths, plus per-bit-scan variants for scan multibit.
      const std::size_t expected =
          (f.is_scan && w > 1) ? 6u : 3u;
      EXPECT_EQ(cells.size(), expected) << "width " << w;
    }
  }
}

TEST_F(DefaultLibrary, AreaSharingMakesPerBitAreaDecrease) {
  const RegisterFunction plain{};
  double last_per_bit = 1e9;
  for (int w : {1, 2, 4, 8}) {
    const auto cells = library.cells_for(plain, w);
    const RegisterCell* x1 = nullptr;
    for (const RegisterCell* c : cells)
      if (x1 == nullptr || c->drive_resistance > x1->drive_resistance) x1 = c;
    const double per_bit = x1->area_per_bit();
    EXPECT_LT(per_bit, last_per_bit) << "width " << w;
    last_per_bit = per_bit;
  }
}

TEST_F(DefaultLibrary, ClockCapPerBitDecreasesWithWidth) {
  const RegisterFunction plain{};
  double last = 1e9;
  for (int w : {1, 2, 4, 8}) {
    const RegisterCell* cell = library.cells_for(plain, w).front();
    const double per_bit = cell->clock_pin_cap / w;
    EXPECT_LT(per_bit, last);
    last = per_bit;
  }
}

TEST_F(DefaultLibrary, PinGeometryConsistent) {
  for (const RegisterCell& cell : library.registers()) {
    ASSERT_EQ(static_cast<int>(cell.d_pin_offsets.size()), cell.bits);
    ASSERT_EQ(static_cast<int>(cell.q_pin_offsets.size()), cell.bits);
    for (const geom::Point& p : cell.d_pin_offsets) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, cell.width + 1e-9);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, cell.height + 1e-9);
    }
    EXPECT_NEAR(cell.width * cell.height, cell.area, 1e-6);
  }
}

TEST_F(DefaultLibrary, LookupByName) {
  const RegisterCell* cell = library.register_by_name("DFFP_B4_X1");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->bits, 4);
  EXPECT_EQ(cell->function, RegisterFunction{});
  EXPECT_EQ(library.register_by_name("NO_SUCH_CELL"), nullptr);
  EXPECT_NE(library.comb_by_name("NAND2_X1"), nullptr);
  EXPECT_EQ(library.comb_by_name("NAND9_X9"), nullptr);
}

TEST_F(DefaultLibrary, DuplicateNameRejected) {
  Library lib;
  RegisterCell cell;
  cell.name = "X";
  cell.bits = 1;
  cell.d_pin_offsets = {{0, 0}};
  cell.q_pin_offsets = {{1, 0}};
  lib.add_register(cell);
  EXPECT_THROW(lib.add_register(cell), util::AssertionError);
}

TEST_F(DefaultLibrary, MappingPrefersStrongEnoughDrive) {
  // Replaced registers' strongest drive is X2 (resistance 1.2): the mapped
  // cell must not be weaker.
  MappingRequest request;
  request.function = RegisterFunction{};
  request.bits = 4;
  request.min_drive_resistance = 1.2;
  const RegisterCell* cell = library.map_register(request);
  ASSERT_NE(cell, nullptr);
  EXPECT_LE(cell->drive_resistance, 1.2 + 1e-9);
  // Among qualifying cells it favors low clock cap -> the weakest
  // qualifying drive (clock cap grows with strength in this library).
  EXPECT_NEAR(cell->drive_resistance, 1.2, 1e-9);
}

TEST_F(DefaultLibrary, MappingFallsBackToStrongestWhenAllTooWeak) {
  MappingRequest request;
  request.function = RegisterFunction{};
  request.bits = 8;
  request.min_drive_resistance = 0.01;  // stronger than anything available
  const RegisterCell* cell = library.map_register(request);
  ASSERT_NE(cell, nullptr);
  // Strongest available X4: resistance 2.4 / 4.
  EXPECT_NEAR(cell->drive_resistance, 0.6, 1e-9);
}

TEST_F(DefaultLibrary, MappingHonorsPerBitScanRequirement) {
  MappingRequest request;
  request.function = RegisterFunction{.is_scan = true};
  request.bits = 4;
  request.min_drive_resistance = 2.4;
  request.needs_per_bit_scan = true;
  const RegisterCell* cell = library.map_register(request);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->scan_style, ScanStyle::kPerBitPins);

  // Without the requirement, the internal-chain variant wins (external scan
  // is penalized, Sec. 4.1).
  request.needs_per_bit_scan = false;
  const RegisterCell* internal = library.map_register(request);
  ASSERT_NE(internal, nullptr);
  EXPECT_EQ(internal->scan_style, ScanStyle::kInternalChain);
}

TEST_F(DefaultLibrary, MappingUnknownWidthReturnsNull) {
  MappingRequest request;
  request.function = RegisterFunction{};
  request.bits = 5;
  EXPECT_EQ(library.map_register(request), nullptr);
}

TEST_F(DefaultLibrary, HasMultibit) {
  EXPECT_TRUE(library.has_multibit(RegisterFunction{}));
  // A function class not in the library at all:
  EXPECT_FALSE(library.has_multibit(RegisterFunction{.is_latch = true}));
}

TEST(LibraryOptions, Width3Variant) {
  DefaultLibraryOptions options;
  options.include_width_3 = true;
  const Library lib = make_default_library(options);
  const auto widths = lib.available_widths(RegisterFunction{});
  EXPECT_EQ(widths, (std::vector<int>{1, 2, 3, 4, 8}));
}

TEST(RegisterFunctionEncoding, DistinctPerFeature) {
  std::set<unsigned> codes;
  for (bool r : {false, true})
    for (bool s : {false, true})
      for (bool e : {false, true})
        for (bool q : {false, true})
          codes.insert(RegisterFunction{r, s, e, q, false}.encode());
  EXPECT_EQ(codes.size(), 16u);
}

}  // namespace
}  // namespace mbrc::lib
