// Observability layer tests: the JSON writer's structure and formatting
// guarantees, counter/histogram registry semantics (interning, snapshots,
// deltas), the StageStore accounting, and the span tracer's lifecycle and
// well-nestedness contract -- including a multi-thread stress run that the
// CI thread-sanitizer job executes to pin down the lock-free recording
// path.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mbr/flow.hpp"
#include "mbr/report.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/json_reader.hpp"
#include "obs/stage_store.hpp"
#include "obs/trace.hpp"

namespace mbrc::obs {
namespace {

// --- JsonWriter ------------------------------------------------------------

TEST(JsonWriter, CompactObjectWithNestedArray) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.kv("name", "flow").kv("jobs", 4).kv("on", true);
  w.key("xs").begin_array().value(1).value(2).end_array();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), R"({"name":"flow","jobs":4,"on":true,"xs":[1,2]})");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, DoublesUseShortestRoundTrip) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_array();
  w.value(0.1).value(1.0).value(2.5);
  w.end_array();
  EXPECT_EQ(os.str(), "[0.1,1,2.5]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriter, CompleteOnlyAfterTopLevelCloses) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  EXPECT_FALSE(w.complete());
  w.begin_object();
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

// --- Counter / Histogram registry ------------------------------------------

TEST(Counters, InterningReturnsStableReference) {
  Counter& a = counter("obs_test.intern");
  Counter& b = counter("obs_test.intern");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(2);
  EXPECT_EQ(a.value(), 5);
}

TEST(Counters, HistogramBucketsArePowersOfTwo) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);

  Histogram h;
  for (std::int64_t v : {0, 1, 2, 3, 4, 7, 8}) h.record(v);
  EXPECT_EQ(h.count(), 7);
  EXPECT_EQ(h.sum(), 25);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(2), 2);
  EXPECT_EQ(h.bucket(3), 2);
}

TEST(Counters, PercentileUsesFloorRankOverSortedSamples) {
  EXPECT_EQ(Histogram::percentile({}, 0.5), 0.0);
  EXPECT_EQ(Histogram::percentile({42.0}, 0.0), 42.0);
  EXPECT_EQ(Histogram::percentile({42.0}, 0.99), 42.0);

  std::vector<double> sorted;
  for (int i = 1; i <= 100; ++i) sorted.push_back(static_cast<double>(i));
  // Rank floor(q * n), clamped to the last sample: the convention the
  // service bench has always reported, now shared through this helper.
  EXPECT_EQ(Histogram::percentile(sorted, 0.50), 51.0);
  EXPECT_EQ(Histogram::percentile(sorted, 0.95), 96.0);
  EXPECT_EQ(Histogram::percentile(sorted, 0.99), 100.0);
  EXPECT_EQ(Histogram::percentile(sorted, 1.0), 100.0);
}

TEST(Counters, DeltaContainsOnlyTouchedEntries) {
  const CountersSnapshot before = counters_snapshot();
  counter("obs_test.delta.c").add(7);
  histogram("obs_test.delta.h").record(5);
  const CountersSnapshot delta =
      counters_delta(before, counters_snapshot());

  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters.at("obs_test.delta.c"), 7);
  ASSERT_EQ(delta.histograms.size(), 1u);
  const HistogramSnapshot& h = delta.histograms.at("obs_test.delta.h");
  EXPECT_EQ(h.count, 1);
  EXPECT_EQ(h.sum, 5);
  EXPECT_EQ(h.buckets, (std::map<int, std::int64_t>{{3, 1}}));
}

TEST(Counters, SnapshotsCompareByValue) {
  const CountersSnapshot before = counters_snapshot();
  counter("obs_test.eq.c").add(1);
  const CountersSnapshot a = counters_delta(before, counters_snapshot());
  CountersSnapshot b = a;
  EXPECT_EQ(a, b);
  b.counters["obs_test.eq.c"] = 2;
  EXPECT_NE(a, b);
}

TEST(Counters, FormatListsEntriesInNameOrder) {
  CountersSnapshot s;
  s.counters["b.second"] = 2;
  s.counters["a.first"] = 1;
  const std::string text = format_counters(s);
  const std::size_t first = text.find("a.first");
  const std::size_t second = text.find("b.second");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
}

// --- StageStore ------------------------------------------------------------

TEST(StageStoreTest, SlotsInternAndAccumulate) {
  StageStore store;
  StageStore::Slot& s = store.slot("compose");
  EXPECT_EQ(&s, &store.slot("compose"));
  s.record(0.5, 10);
  s.record(0.25, 6);
  const StageTable table = store.snapshot();
  ASSERT_TRUE(table.contains("compose"));
  EXPECT_DOUBLE_EQ(table.at("compose").seconds, 0.75);
  EXPECT_EQ(table.at("compose").calls, 2);
  EXPECT_EQ(table.at("compose").items, 16);
  EXPECT_NE(store.report().find("compose"), std::string::npos);
}

// --- Tracer / Span ---------------------------------------------------------

/// Asserts the per-thread completion-ordered event sequence is well-nested:
/// every deeper event is contained in the parent that completes after it,
/// nesting depth never skips a level, and whatever remains unparented is
/// top-level.
void check_well_nested(const std::vector<TraceEvent>& seq) {
  std::vector<TraceEvent> pending;
  for (const TraceEvent& e : seq) {
    while (!pending.empty() && pending.back().depth > e.depth) {
      const TraceEvent child = pending.back();
      pending.pop_back();
      ASSERT_EQ(child.depth, e.depth + 1)
          << "nesting skips a level under '" << e.name << "'";
      EXPECT_LE(e.start_us, child.start_us)
          << "'" << child.name << "' starts before parent '" << e.name << "'";
      EXPECT_GE(e.start_us + e.dur_us, child.start_us + child.dur_us)
          << "'" << child.name << "' outlives parent '" << e.name << "'";
    }
    pending.push_back(e);
  }
  for (const TraceEvent& e : pending)
    EXPECT_EQ(e.depth, 0) << "'" << e.name << "' never got a parent";
}

TEST(Trace, SpanWithoutTracerIsANoOp) {
  ASSERT_EQ(Tracer::active(), nullptr);
  {
    Span a("untraced");
    Span b("also-untraced");
  }
  EXPECT_EQ(Tracer::active(), nullptr);
}

TEST(Trace, CollectsNestedSpansWithDepths) {
  Tracer tracer;
  tracer.install();
  Tracer::set_thread_label("test-main");
  {
    Span outer("outer");
    { Span inner("inner"); }
  }
  tracer.uninstall();
  const TraceData data = tracer.take();

  ASSERT_EQ(data.events.size(), 2u);
  // Completion order: children before parents.
  EXPECT_EQ(data.events[0].name, "inner");
  EXPECT_EQ(data.events[0].depth, 1);
  EXPECT_EQ(data.events[1].name, "outer");
  EXPECT_EQ(data.events[1].depth, 0);
  EXPECT_EQ(data.events[0].tid, data.events[1].tid);
  check_well_nested(data.events);

  ASSERT_EQ(data.thread_names.size(), 1u);
  EXPECT_EQ(data.thread_names.begin()->second, "test-main");
}

TEST(Trace, SecondTracerDoesNotInheritEvents) {
  {
    Tracer first;
    first.install();
    { Span s("first-only"); }
    first.uninstall();
    EXPECT_EQ(first.take().events.size(), 1u);
  }
  Tracer second;
  second.install();
  { Span s("second-only"); }
  second.uninstall();
  const TraceData data = second.take();
  ASSERT_EQ(data.events.size(), 1u);
  EXPECT_EQ(data.events[0].name, "second-only");
}

TEST(Trace, ConcurrentSpansFromManyThreadsAreWellNested) {
  constexpr int kThreads = 4;
  constexpr int kIterations = 50;

  Tracer tracer;
  tracer.install();
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Tracer::set_thread_label("stress-" + std::to_string(t));
      started.fetch_add(1);
      while (started.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kIterations; ++i) {
        Span a("level0");
        Span b("level1");
        Span c("level2");
      }
    });
  }
  for (std::thread& th : threads) th.join();
  tracer.uninstall();
  const TraceData data = tracer.take();

  EXPECT_EQ(data.events.size(),
            static_cast<std::size_t>(kThreads * kIterations * 3));
  EXPECT_EQ(data.thread_names.size(), static_cast<std::size_t>(kThreads));

  std::map<std::uint32_t, std::vector<TraceEvent>> by_tid;
  for (const TraceEvent& e : data.events) by_tid[e.tid].push_back(e);
  EXPECT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, seq] : by_tid) {
    EXPECT_EQ(seq.size(), static_cast<std::size_t>(kIterations * 3));
    check_well_nested(seq);
  }
}

// --- Chrome trace export ---------------------------------------------------

/// Structural JSON validation: balanced braces/brackets outside strings and
/// a single top-level value. (CI additionally parses the real artifacts
/// with python3 -m json.tool.)
bool structurally_valid_json(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false, escaped = false, saw_top = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); saw_top = true; break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return stack.empty() && !in_string && saw_top;
}

TEST(Trace, ChromeExportIsStructurallyValidJson) {
  Tracer tracer;
  tracer.install();
  Tracer::set_thread_label("exporter \"main\"");  // exercises escaping
  {
    Span outer("outer");
    { Span inner("inner/with:punct"); }
  }
  tracer.uninstall();

  std::ostringstream os;
  write_chrome_trace(os, tracer.take());
  const std::string text = os.str();

  EXPECT_TRUE(structurally_valid_json(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("thread_name"), std::string::npos);
  EXPECT_NE(text.find("exporter \\\"main\\\""), std::string::npos);
}

TEST(Trace, EmptyTraceStillExportsValidDocument) {
  std::ostringstream os;
  write_chrome_trace(os, TraceData{});
  EXPECT_TRUE(structurally_valid_json(os.str())) << os.str();
}

// --- JsonReader ------------------------------------------------------------

TEST(JsonReader, ParsesScalarsStringsArraysObjects) {
  const JsonParseResult r = parse_json(
      R"({"a": 1.5, "b": [true, null, "x\nA"], "c": {"d": -2}})");
  ASSERT_TRUE(r.ok) << r.error;
  const JsonValue& v = r.value;
  EXPECT_EQ(v.number_or("a", 0.0), 1.5);
  const JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->array().size(), 3u);
  EXPECT_TRUE(b->array()[0].as_bool());
  EXPECT_TRUE(b->array()[1].is_null());
  EXPECT_EQ(b->array()[2].as_string(), "x\nA");
  ASSERT_NE(v.find("c"), nullptr);
  EXPECT_EQ(v.find("c")->int_or("d", 0), -2);
}

TEST(JsonReader, WriteParseRoundTripIsBitExactForDoubles) {
  // JsonWriter emits shortest-round-trip doubles, so write -> parse must
  // reproduce the exact bits (the service tests' byte-identity contract
  // leans on this).
  const double cases[] = {0.1,
                          1.0 / 3.0,
                          -0.0,
                          1e-300,
                          5e-324,
                          1.7976931348623157e308,
                          3.141592653589793,
                          -123456.789012345};
  for (double expected : cases) {
    std::ostringstream os;
    JsonWriter w(os, 0);
    w.begin_object().kv("v", expected).end_object();
    const JsonParseResult r = parse_json(os.str());
    ASSERT_TRUE(r.ok) << os.str() << ": " << r.error;
    const double parsed = r.value.number_or("v", 42.0);
    EXPECT_EQ(parsed, expected) << os.str();
    EXPECT_EQ(std::signbit(parsed), std::signbit(expected)) << os.str();
  }
}

TEST(JsonReader, NonFiniteDoublesRoundTripAsNull) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object()
      .kv("inf", std::numeric_limits<double>::infinity())
      .kv("nan", std::numeric_limits<double>::quiet_NaN())
      .end_object();
  const JsonParseResult r = parse_json(os.str());
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_NE(r.value.find("inf"), nullptr);
  EXPECT_TRUE(r.value.find("inf")->is_null());
  ASSERT_NE(r.value.find("nan"), nullptr);
  EXPECT_TRUE(r.value.find("nan")->is_null());
}

TEST(JsonReader, AsIntRejectsFractionsAndOutOfRange) {
  EXPECT_EQ(parse_json("42").value.as_int(), 42);
  EXPECT_EQ(parse_json("-7").value.as_int(), -7);
  EXPECT_FALSE(parse_json("1.5").value.as_int().has_value());
  EXPECT_FALSE(parse_json("1e300").value.as_int().has_value());
}

TEST(JsonReader, RejectsTrailingContentAndBadSyntax) {
  EXPECT_FALSE(parse_json("{} x").ok);
  EXPECT_FALSE(parse_json("{\"a\":}").ok);
  EXPECT_FALSE(parse_json("\"unterminated").ok);
  EXPECT_FALSE(parse_json("[1,]").ok);
  EXPECT_FALSE(parse_json("").ok);
}

TEST(JsonReader, DepthBoundStopsHostileNesting) {
  EXPECT_TRUE(
      parse_json(std::string(10, '[') + std::string(10, ']'), 64).ok);
  EXPECT_FALSE(
      parse_json(std::string(100, '[') + std::string(100, ']'), 64).ok);
}

TEST(JsonReader, DuplicateKeysKeepOrderAndLastWinsOnLookup) {
  const JsonParseResult r = parse_json(R"({"k": 1, "j": 2, "k": 3})");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.int_or("k", 0), 3);
  ASSERT_EQ(r.value.members().size(), 3u);
  EXPECT_EQ(r.value.members()[0].first, "k");
  EXPECT_EQ(r.value.members()[1].first, "j");
}

// --- flow report options echo ----------------------------------------------

namespace completeness {

/// Flattens every leaf of a parsed JSON object into "a.b.c" -> printed
/// value, so the echo can be compared structurally.
void flatten_leaves(const JsonValue& value, const std::string& prefix,
                    std::map<std::string, std::string>& out) {
  if (value.is_object()) {
    for (const auto& [key, member] : value.members())
      flatten_leaves(member, prefix.empty() ? key : prefix + "." + key, out);
    return;
  }
  std::ostringstream os;
  os.precision(17);
  if (value.is_bool())
    os << (value.as_bool() ? "true" : "false");
  else if (value.is_number())
    os << value.as_number();
  else if (value.is_string())
    os << value.as_string();
  else
    os << "null";
  out[prefix] = os.str();
}

std::map<std::string, std::string> echoed_options(
    const mbr::FlowOptions& options) {
  std::ostringstream os;
  mbr::write_flow_report(os, options, mbr::FlowResult{});
  const JsonParseResult parsed = parse_json(os.str());
  EXPECT_TRUE(parsed.ok) << parsed.error;
  const JsonValue* echo = parsed.value.find("options");
  EXPECT_NE(echo, nullptr);
  std::map<std::string, std::string> leaves;
  if (echo != nullptr) flatten_leaves(*echo, "", leaves);
  return leaves;
}

/// Every FlowOptions leaf changed away from its default. Extend together
/// with the echo in src/mbr/report.cpp and kExpectedPaths below.
mbr::FlowOptions fully_mutated(const mbr::FlowOptions& defaults) {
  mbr::FlowOptions o = defaults;
  o.timing.clock_period += 1.25;
  o.timing.wire_cap_per_um += 0.1;
  o.timing.wire_res_per_um += 0.001;
  o.timing.input_delay += 0.01;
  o.timing.output_margin += 0.02;
  o.timing.jobs += 2;
  o.composition.compatibility.slack_similarity += 0.05;
  o.composition.compatibility.slack_clamp += 0.1;
  o.composition.compatibility.sign_epsilon += 0.01;
  o.composition.compatibility.max_distance += 15.0;
  o.composition.compatibility.region.skew_balanced =
      !o.composition.compatibility.region.skew_balanced;
  o.composition.compatibility.region.delay_per_um += 0.0015;
  o.composition.compatibility.region.max_radius += 30.0;
  o.composition.partition.max_nodes -= 10;
  o.composition.enumeration.allow_incomplete =
      !o.composition.enumeration.allow_incomplete;
  o.composition.enumeration.incomplete_area_overhead += 0.05;
  o.composition.enumeration.use_weights =
      !o.composition.enumeration.use_weights;
  o.composition.enumeration.max_candidates_per_subgraph /= 2;
  o.composition.solver.max_nodes += 1234;
  o.composition.jobs += 1;
  o.mapping.incomplete_area_overhead += 0.075;
  o.placement.use_lp = !o.placement.use_lp;
  o.cts.wire_cap_per_um += 0.05;
  o.cts.load_utilization -= 0.15;
  o.cts.max_fanout -= 8;
  o.route.gcell_size -= 2.0;
  o.route.h_capacity -= 30.0;
  o.route.v_capacity -= 25.0;
  o.route.pin_demand += 0.05;
  o.allocator = o.allocator == mbr::Allocator::kIlp
                    ? mbr::Allocator::kHeuristic
                    : mbr::Allocator::kIlp;
  o.cost.alpha += 0.5;
  o.cost.beta += 0.25;
  o.cost.gamma += 0.1;
  o.debank_loop = !o.debank_loop;
  o.debank.slack_threshold += 0.04;
  o.debank.piece_bits += 1;
  o.debank.min_bits += 2;
  o.debank.max_banks_per_iteration += 4;
  o.debank.max_iterations += 3;
  o.debank.cost_epsilon += 1e-6;
  o.decompose_wide_mbrs = !o.decompose_wide_mbrs;
  o.decompose.min_bits -= 2;
  o.decompose.piece_bits -= 2;
  o.decompose.min_slack += 0.03;
  o.apply_useful_skew = !o.apply_useful_skew;
  o.skew_only_new_mbrs = !o.skew_only_new_mbrs;
  o.skew.iterations -= 4;
  o.skew.max_abs_skew += 0.25;
  o.skew.damping -= 0.2;
  o.skew.hold_margin += 0.005;
  o.size_new_mbrs = !o.size_new_mbrs;
  o.jobs += 5;
  o.check_level = o.check_level == check::CheckLevel::kOff
                      ? check::CheckLevel::kParanoid
                      : check::CheckLevel::kOff;
  o.trace = !o.trace;
  o.trace_path = "/tmp/mutated_trace.json";
  o.report_path = "/tmp/mutated_report.json";
  return o;
}

}  // namespace completeness

// The options echo must cover EVERY FlowOptions field: the exact key-path
// set is pinned here, and every leaf must track its field (differ between
// default and fully-mutated options). Adding a FlowOptions field without
// echoing it -- or echoing without pinning -- fails this test.
TEST(FlowReport, OptionsEchoIsComplete) {
  const std::vector<std::string> kExpectedPaths = {
      "allocator",
      "apply_useful_skew",
      "check_level",
      "composition.compatibility.max_distance",
      "composition.compatibility.region.delay_per_um",
      "composition.compatibility.region.max_radius",
      "composition.compatibility.region.skew_balanced",
      "composition.compatibility.sign_epsilon",
      "composition.compatibility.slack_clamp",
      "composition.compatibility.slack_similarity",
      "composition.enumeration.allow_incomplete",
      "composition.enumeration.incomplete_area_overhead",
      "composition.enumeration.max_candidates_per_subgraph",
      "composition.enumeration.use_weights",
      "composition.jobs",
      "composition.partition.max_nodes",
      "composition.solver.max_nodes",
      "cost.alpha",
      "cost.beta",
      "cost.gamma",
      "cts.load_utilization",
      "cts.max_fanout",
      "cts.wire_cap_per_um",
      "debank.cost_epsilon",
      "debank.max_banks_per_iteration",
      "debank.max_iterations",
      "debank.min_bits",
      "debank.piece_bits",
      "debank.slack_threshold",
      "debank_loop",
      "decompose.min_bits",
      "decompose.min_slack",
      "decompose.piece_bits",
      "decompose_wide_mbrs",
      "jobs",
      "mapping.incomplete_area_overhead",
      "placement.use_lp",
      "report_path",
      "route.gcell_size",
      "route.h_capacity",
      "route.pin_demand",
      "route.v_capacity",
      "size_new_mbrs",
      "skew.damping",
      "skew.hold_margin",
      "skew.iterations",
      "skew.max_abs_skew",
      "skew_only_new_mbrs",
      "timing.clock_period",
      "timing.input_delay",
      "timing.jobs",
      "timing.output_margin",
      "timing.wire_cap_per_um",
      "timing.wire_res_per_um",
      "trace",
      "trace_path",
  };

  const mbr::FlowOptions defaults;
  const std::map<std::string, std::string> base =
      completeness::echoed_options(defaults);
  const std::map<std::string, std::string> mutated =
      completeness::echoed_options(completeness::fully_mutated(defaults));

  std::vector<std::string> actual_paths;
  for (const auto& [path, value] : base) actual_paths.push_back(path);
  EXPECT_EQ(actual_paths, kExpectedPaths)
      << "options echo key set changed; update the echo in "
         "src/mbr/report.cpp and kExpectedPaths together";

  ASSERT_EQ(base.size(), mutated.size());
  for (const auto& [path, value] : base) {
    const auto it = mutated.find(path);
    ASSERT_NE(it, mutated.end()) << path;
    EXPECT_NE(it->second, value)
        << "echoed leaf '" << path
        << "' did not track its FlowOptions field under mutation";
  }
}

}  // namespace
}  // namespace mbrc::obs
