// Observability layer tests: the JSON writer's structure and formatting
// guarantees, counter/histogram registry semantics (interning, snapshots,
// deltas), the StageStore accounting, and the span tracer's lifecycle and
// well-nestedness contract -- including a multi-thread stress run that the
// CI thread-sanitizer job executes to pin down the lock-free recording
// path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/stage_store.hpp"
#include "obs/trace.hpp"

namespace mbrc::obs {
namespace {

// --- JsonWriter ------------------------------------------------------------

TEST(JsonWriter, CompactObjectWithNestedArray) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.kv("name", "flow").kv("jobs", 4).kv("on", true);
  w.key("xs").begin_array().value(1).value(2).end_array();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), R"({"name":"flow","jobs":4,"on":true,"xs":[1,2]})");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, DoublesUseShortestRoundTrip) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_array();
  w.value(0.1).value(1.0).value(2.5);
  w.end_array();
  EXPECT_EQ(os.str(), "[0.1,1,2.5]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriter, CompleteOnlyAfterTopLevelCloses) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  EXPECT_FALSE(w.complete());
  w.begin_object();
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

// --- Counter / Histogram registry ------------------------------------------

TEST(Counters, InterningReturnsStableReference) {
  Counter& a = counter("obs_test.intern");
  Counter& b = counter("obs_test.intern");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(2);
  EXPECT_EQ(a.value(), 5);
}

TEST(Counters, HistogramBucketsArePowersOfTwo) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);

  Histogram h;
  for (std::int64_t v : {0, 1, 2, 3, 4, 7, 8}) h.record(v);
  EXPECT_EQ(h.count(), 7);
  EXPECT_EQ(h.sum(), 25);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(2), 2);
  EXPECT_EQ(h.bucket(3), 2);
}

TEST(Counters, DeltaContainsOnlyTouchedEntries) {
  const CountersSnapshot before = counters_snapshot();
  counter("obs_test.delta.c").add(7);
  histogram("obs_test.delta.h").record(5);
  const CountersSnapshot delta =
      counters_delta(before, counters_snapshot());

  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters.at("obs_test.delta.c"), 7);
  ASSERT_EQ(delta.histograms.size(), 1u);
  const HistogramSnapshot& h = delta.histograms.at("obs_test.delta.h");
  EXPECT_EQ(h.count, 1);
  EXPECT_EQ(h.sum, 5);
  EXPECT_EQ(h.buckets, (std::map<int, std::int64_t>{{3, 1}}));
}

TEST(Counters, SnapshotsCompareByValue) {
  const CountersSnapshot before = counters_snapshot();
  counter("obs_test.eq.c").add(1);
  const CountersSnapshot a = counters_delta(before, counters_snapshot());
  CountersSnapshot b = a;
  EXPECT_EQ(a, b);
  b.counters["obs_test.eq.c"] = 2;
  EXPECT_NE(a, b);
}

TEST(Counters, FormatListsEntriesInNameOrder) {
  CountersSnapshot s;
  s.counters["b.second"] = 2;
  s.counters["a.first"] = 1;
  const std::string text = format_counters(s);
  const std::size_t first = text.find("a.first");
  const std::size_t second = text.find("b.second");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
}

// --- StageStore ------------------------------------------------------------

TEST(StageStoreTest, SlotsInternAndAccumulate) {
  StageStore store;
  StageStore::Slot& s = store.slot("compose");
  EXPECT_EQ(&s, &store.slot("compose"));
  s.record(0.5, 10);
  s.record(0.25, 6);
  const StageTable table = store.snapshot();
  ASSERT_TRUE(table.contains("compose"));
  EXPECT_DOUBLE_EQ(table.at("compose").seconds, 0.75);
  EXPECT_EQ(table.at("compose").calls, 2);
  EXPECT_EQ(table.at("compose").items, 16);
  EXPECT_NE(store.report().find("compose"), std::string::npos);
}

// --- Tracer / Span ---------------------------------------------------------

/// Asserts the per-thread completion-ordered event sequence is well-nested:
/// every deeper event is contained in the parent that completes after it,
/// nesting depth never skips a level, and whatever remains unparented is
/// top-level.
void check_well_nested(const std::vector<TraceEvent>& seq) {
  std::vector<TraceEvent> pending;
  for (const TraceEvent& e : seq) {
    while (!pending.empty() && pending.back().depth > e.depth) {
      const TraceEvent child = pending.back();
      pending.pop_back();
      ASSERT_EQ(child.depth, e.depth + 1)
          << "nesting skips a level under '" << e.name << "'";
      EXPECT_LE(e.start_us, child.start_us)
          << "'" << child.name << "' starts before parent '" << e.name << "'";
      EXPECT_GE(e.start_us + e.dur_us, child.start_us + child.dur_us)
          << "'" << child.name << "' outlives parent '" << e.name << "'";
    }
    pending.push_back(e);
  }
  for (const TraceEvent& e : pending)
    EXPECT_EQ(e.depth, 0) << "'" << e.name << "' never got a parent";
}

TEST(Trace, SpanWithoutTracerIsANoOp) {
  ASSERT_EQ(Tracer::active(), nullptr);
  {
    Span a("untraced");
    Span b("also-untraced");
  }
  EXPECT_EQ(Tracer::active(), nullptr);
}

TEST(Trace, CollectsNestedSpansWithDepths) {
  Tracer tracer;
  tracer.install();
  Tracer::set_thread_label("test-main");
  {
    Span outer("outer");
    { Span inner("inner"); }
  }
  tracer.uninstall();
  const TraceData data = tracer.take();

  ASSERT_EQ(data.events.size(), 2u);
  // Completion order: children before parents.
  EXPECT_EQ(data.events[0].name, "inner");
  EXPECT_EQ(data.events[0].depth, 1);
  EXPECT_EQ(data.events[1].name, "outer");
  EXPECT_EQ(data.events[1].depth, 0);
  EXPECT_EQ(data.events[0].tid, data.events[1].tid);
  check_well_nested(data.events);

  ASSERT_EQ(data.thread_names.size(), 1u);
  EXPECT_EQ(data.thread_names.begin()->second, "test-main");
}

TEST(Trace, SecondTracerDoesNotInheritEvents) {
  {
    Tracer first;
    first.install();
    { Span s("first-only"); }
    first.uninstall();
    EXPECT_EQ(first.take().events.size(), 1u);
  }
  Tracer second;
  second.install();
  { Span s("second-only"); }
  second.uninstall();
  const TraceData data = second.take();
  ASSERT_EQ(data.events.size(), 1u);
  EXPECT_EQ(data.events[0].name, "second-only");
}

TEST(Trace, ConcurrentSpansFromManyThreadsAreWellNested) {
  constexpr int kThreads = 4;
  constexpr int kIterations = 50;

  Tracer tracer;
  tracer.install();
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Tracer::set_thread_label("stress-" + std::to_string(t));
      started.fetch_add(1);
      while (started.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kIterations; ++i) {
        Span a("level0");
        Span b("level1");
        Span c("level2");
      }
    });
  }
  for (std::thread& th : threads) th.join();
  tracer.uninstall();
  const TraceData data = tracer.take();

  EXPECT_EQ(data.events.size(),
            static_cast<std::size_t>(kThreads * kIterations * 3));
  EXPECT_EQ(data.thread_names.size(), static_cast<std::size_t>(kThreads));

  std::map<std::uint32_t, std::vector<TraceEvent>> by_tid;
  for (const TraceEvent& e : data.events) by_tid[e.tid].push_back(e);
  EXPECT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, seq] : by_tid) {
    EXPECT_EQ(seq.size(), static_cast<std::size_t>(kIterations * 3));
    check_well_nested(seq);
  }
}

// --- Chrome trace export ---------------------------------------------------

/// Structural JSON validation: balanced braces/brackets outside strings and
/// a single top-level value. (CI additionally parses the real artifacts
/// with python3 -m json.tool.)
bool structurally_valid_json(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false, escaped = false, saw_top = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); saw_top = true; break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return stack.empty() && !in_string && saw_top;
}

TEST(Trace, ChromeExportIsStructurallyValidJson) {
  Tracer tracer;
  tracer.install();
  Tracer::set_thread_label("exporter \"main\"");  // exercises escaping
  {
    Span outer("outer");
    { Span inner("inner/with:punct"); }
  }
  tracer.uninstall();

  std::ostringstream os;
  write_chrome_trace(os, tracer.take());
  const std::string text = os.str();

  EXPECT_TRUE(structurally_valid_json(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("thread_name"), std::string::npos);
  EXPECT_NE(text.find("exporter \\\"main\\\""), std::string::npos);
}

TEST(Trace, EmptyTraceStillExportsValidDocument) {
  std::ostringstream os;
  write_chrome_trace(os, TraceData{});
  EXPECT_TRUE(structurally_valid_json(os.str())) << os.str();
}

}  // namespace
}  // namespace mbrc::obs
