#include <gtest/gtest.h>

#include "lib/library.hpp"
#include "place/legalizer.hpp"

namespace mbrc::place {
namespace {

TEST(RowGrid, RowGeometry) {
  RowGrid grid({0, 0, 100, 18}, {});
  EXPECT_EQ(grid.row_count(), 10);
  EXPECT_DOUBLE_EQ(grid.row_y(0), 0.0);
  EXPECT_DOUBLE_EQ(grid.row_y(3), 5.4);
  EXPECT_EQ(grid.row_of(5.4), 3);
  EXPECT_EQ(grid.row_of(6.0), 3);     // rounds to the nearest row
  EXPECT_EQ(grid.row_of(-100.0), 0);  // clamped
  EXPECT_EQ(grid.row_of(1000.0), 9);
}

TEST(RowGrid, OccupyReleaseIsFree) {
  RowGrid grid({0, 0, 100, 18}, {});
  EXPECT_TRUE(grid.is_free(0, 10, 5));
  EXPECT_TRUE(grid.occupy(0, 10, 5));
  EXPECT_FALSE(grid.is_free(0, 10, 5));
  EXPECT_FALSE(grid.is_free(0, 12, 5));   // overlaps tail
  EXPECT_FALSE(grid.is_free(0, 6, 5));    // overlaps head
  EXPECT_TRUE(grid.is_free(0, 15, 5));    // abuts on the right
  EXPECT_TRUE(grid.is_free(0, 5, 5));     // abuts on the left
  EXPECT_FALSE(grid.occupy(0, 12, 2));    // rejected, no change
  grid.release(0, 10);
  EXPECT_TRUE(grid.is_free(0, 10, 5));
  EXPECT_THROW(grid.release(0, 10), util::AssertionError);
}

TEST(RowGrid, RejectsOutOfCore) {
  RowGrid grid({0, 0, 100, 18}, {});
  EXPECT_FALSE(grid.is_free(0, -1, 5));
  EXPECT_FALSE(grid.is_free(0, 98, 5));
  EXPECT_FALSE(grid.is_free(-1, 10, 5));
  EXPECT_FALSE(grid.is_free(10, 10, 5));
}

TEST(RowGrid, OccupantsReporting) {
  RowGrid grid({0, 0, 100, 18}, {});
  grid.occupy(2, 10, 5, netlist::CellId{7});
  grid.occupy(2, 20, 5, netlist::CellId{8});
  const auto hits = grid.occupants(2, 12, 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].cell, netlist::CellId{7});
  EXPECT_EQ(hits[1].cell, netlist::CellId{8});
  EXPECT_TRUE(grid.occupants(2, 15, 5).empty());
}

TEST(RowGrid, FindNearestFreePrefersTarget) {
  RowGrid grid({0, 0, 100, 18}, {});
  const auto spot = grid.find_nearest_free({40.05, 5.4}, 4);
  ASSERT_TRUE(spot.has_value());
  EXPECT_NEAR(spot->x, 40.0, 0.21);  // snapped to the site grid
  EXPECT_NEAR(spot->y, 5.4, 1e-9);
}

TEST(RowGrid, FindNearestFreeAvoidsOccupied) {
  RowGrid grid({0, 0, 100, 3.6}, {});  // two rows
  // Fill row 0 completely.
  ASSERT_TRUE(grid.occupy(0, 0, 100));
  const auto spot = grid.find_nearest_free({50, 0}, 4);
  ASSERT_TRUE(spot.has_value());
  EXPECT_NEAR(spot->y, 1.8, 1e-9);  // pushed to row 1
}

TEST(RowGrid, FindNearestFreeFullGrid) {
  RowGrid grid({0, 0, 10, 1.8}, {});
  ASSERT_TRUE(grid.occupy(0, 0, 10));
  EXPECT_FALSE(grid.find_nearest_free({5, 0}, 2).has_value());
}

class LegalizeFixture : public ::testing::Test {
protected:
  LegalizeFixture()
      : library(lib::make_default_library()),
        design(&library, {0, 0, 60, 18}) {}

  lib::Library library;
  netlist::Design design;
};

TEST_F(LegalizeFixture, PlacesIntoFreeSpaceWithoutMoving) {
  const auto* cell = library.register_by_name("DFFP_B2_X1");
  const netlist::CellId reg = design.add_register("r", cell, {10.0, 3.6});
  RowGrid grid = build_occupancy(design, {reg});
  const LegalizeResult result = legalize_cells(design, grid, {reg});
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.cells_moved, 0);
  EXPECT_EQ(design.cell(reg).position, (geom::Point{10.0, 3.6}));
}

TEST_F(LegalizeFixture, EvictsCombCellsForRegisters) {
  // Pave several rows with combinational cells so no free spot is close,
  // then legalize an MBR into the paved area.
  const auto* gate = library.comb_by_name("NAND2_X1");
  int name = 0;
  for (int row = 0; row < 6; ++row) {
    for (int i = 0;; ++i) {
      const double x = i * gate->width;
      if (x + gate->width > 60) break;
      design.add_comb("g" + std::to_string(name++), gate, {x, row * 1.8});
    }
  }
  const auto* mbr_cell = library.register_by_name("DFFP_B8_X1");
  const netlist::CellId mbr =
      design.add_register("mbr", mbr_cell, {20.0, 3.6});

  RowGrid grid = build_occupancy(design, {mbr});
  const LegalizeResult result = legalize_cells(design, grid, {mbr});
  EXPECT_TRUE(result.success);
  EXPECT_GT(result.cells_evicted, 0);
  // The MBR stays in its target row at (nearly) its target x.
  EXPECT_NEAR(design.cell(mbr).position.y, 3.6, 1e-9);
  EXPECT_NEAR(design.cell(mbr).position.x, 20.0, 0.3);

  // No overlaps afterwards: rebuild occupancy from scratch must succeed for
  // every live cell.
  RowGrid check(design.core(), {});
  for (netlist::CellId id : design.live_cells()) {
    const netlist::Cell& c = design.cell(id);
    if (c.kind == netlist::CellKind::kPort) continue;
    EXPECT_TRUE(check.occupy(check.row_of(c.position.y), c.position.x,
                             c.width(), id))
        << "overlap at " << c.name;
  }
}

TEST_F(LegalizeFixture, NeverEvictsRegistersOrFixedCells) {
  const auto* reg_cell = library.register_by_name("DFFP_B2_X1");
  // A wall of registers across the target row.
  for (int i = 0; i < 9; ++i)
    design.add_register("wall" + std::to_string(i), reg_cell,
                        {i * reg_cell->width, 3.6});
  const auto* mbr_cell = library.register_by_name("DFFP_B4_X1");
  const netlist::CellId mbr =
      design.add_register("mbr", mbr_cell, {10.0, 3.6});

  RowGrid grid = build_occupancy(design, {mbr});
  const LegalizeResult result = legalize_cells(design, grid, {mbr});
  EXPECT_TRUE(result.success);
  // Must have moved to another row or beyond the wall, not on top of it.
  RowGrid check(design.core(), {});
  for (netlist::CellId id : design.live_cells()) {
    const netlist::Cell& c = design.cell(id);
    EXPECT_TRUE(check.occupy(check.row_of(c.position.y), c.position.x,
                             c.width(), id));
  }
}

TEST_F(LegalizeFixture, DisplacementAccounting) {
  const auto* cell = library.register_by_name("DFFP_B1_X1");
  const netlist::CellId a = design.add_register("a", cell, {10.0, 3.6});
  const netlist::CellId b = design.add_register("b", cell, {10.0, 3.6});
  RowGrid grid = build_occupancy(design, {a, b});
  const LegalizeResult result = legalize_cells(design, grid, {a, b});
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.cells_moved, 1);  // the second one had to shift
  EXPECT_GT(result.total_displacement, 0.0);
  EXPECT_GE(result.max_displacement, result.total_displacement / 2);
}

}  // namespace
}  // namespace mbrc::place
