#include <gtest/gtest.h>

#include "geom/convex_hull.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "util/rng.hpp"

namespace mbrc::geom {
namespace {

TEST(Point, ManhattanAndEuclidean) {
  EXPECT_DOUBLE_EQ(manhattan({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(euclidean({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(manhattan({-1, -2}, {-4, 2}), 7.0);
}

TEST(Point, CrossSign) {
  EXPECT_GT(cross({0, 0}, {1, 0}, {0, 1}), 0.0);  // CCW turn
  EXPECT_LT(cross({0, 0}, {0, 1}, {1, 0}), 0.0);  // CW turn
  EXPECT_DOUBLE_EQ(cross({0, 0}, {1, 1}, {2, 2}), 0.0);  // collinear
}

TEST(Rect, BasicGeometry) {
  const Rect r{1, 2, 5, 8};
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 6.0);
  EXPECT_DOUBLE_EQ(r.area(), 24.0);
  EXPECT_DOUBLE_EQ(r.half_perimeter(), 10.0);
  EXPECT_EQ(r.center(), (Point{3, 5}));
  EXPECT_FALSE(r.is_empty());
}

TEST(Rect, EmptyAndUniverseIdentities) {
  const Rect e = Rect::empty();
  const Rect u = Rect::universe();
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(e.is_empty());
  EXPECT_FALSE(u.is_empty());
  EXPECT_EQ(e.unite(r), r);
  EXPECT_EQ(r.unite(e), r);
  EXPECT_EQ(u.intersect(r), r);
  EXPECT_EQ(r.intersect(u), r);
  EXPECT_TRUE(e.intersect(r).is_empty());
}

TEST(Rect, ContainsAndOverlap) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains({0, 0}));       // boundary inclusive
  EXPECT_TRUE(r.contains({10, 10}));
  EXPECT_FALSE(r.contains_strict({0, 5}));
  EXPECT_TRUE(r.contains_strict({5, 5}));
  EXPECT_TRUE(r.overlaps({10, 10, 20, 20}));  // corner touch counts
  EXPECT_FALSE(r.overlaps({10.1, 0, 20, 10}));
  EXPECT_FALSE(r.overlaps(Rect::empty()));
}

TEST(Rect, IntersectIsCommutativeAndShrinking) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, -3, 20, 7};
  const Rect i = a.intersect(b);
  EXPECT_EQ(i, b.intersect(a));
  EXPECT_EQ(i, (Rect{5, 0, 10, 7}));
  EXPECT_LE(i.area(), a.area());
  EXPECT_LE(i.area(), b.area());
}

TEST(Rect, InflateExpandClamp) {
  const Rect r{2, 2, 4, 4};
  EXPECT_EQ(r.inflate(1), (Rect{1, 1, 5, 5}));
  EXPECT_TRUE(r.inflate(-2).is_empty() || r.inflate(-2).area() == 0.0);
  EXPECT_EQ(r.expand({10, 3}), (Rect{2, 2, 10, 4}));
  EXPECT_EQ(Rect::empty().expand({1, 1}), (Rect{1, 1, 1, 1}));
  EXPECT_EQ(r.clamp({0, 3}), (Point{2, 3}));
  EXPECT_EQ(r.clamp({3, 3}), (Point{3, 3}));
}

TEST(ConvexHull, SquareWithInteriorPoints) {
  const auto hull = convex_hull(
      {{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}, {2, 0}});
  ASSERT_EQ(hull.size(), 4u);  // collinear {2,0} and interior points dropped
  EXPECT_TRUE(convex_contains(hull, {2, 2}));
  EXPECT_TRUE(convex_contains(hull, {0, 0}));       // vertex
  EXPECT_TRUE(convex_contains(hull, {2, 0}));       // on edge
  EXPECT_FALSE(convex_contains(hull, {4.01, 2}));
  EXPECT_TRUE(convex_contains_strict(hull, {2, 2}));
  EXPECT_FALSE(convex_contains_strict(hull, {2, 0}));  // boundary not strict
  EXPECT_DOUBLE_EQ(convex_area(hull), 16.0);
}

TEST(ConvexHull, Degenerate) {
  EXPECT_TRUE(convex_hull({}).empty());
  EXPECT_EQ(convex_hull({{1, 1}}).size(), 1u);
  EXPECT_EQ(convex_hull({{1, 1}, {1, 1}}).size(), 1u);  // duplicates collapse
  const auto segment = convex_hull({{0, 0}, {2, 2}, {1, 1}});
  EXPECT_EQ(segment.size(), 2u);  // all collinear
  EXPECT_TRUE(convex_contains(segment, {1, 1}));
  EXPECT_FALSE(convex_contains(segment, {1, 0}));
  EXPECT_FALSE(convex_contains_strict(segment, {1, 1}));
}

TEST(ConvexHull, OfRects) {
  const auto hull = convex_hull_of_rects({{0, 0, 1, 1}, {3, 3, 4, 4}});
  EXPECT_EQ(hull.size(), 6u);  // hexagon
  EXPECT_TRUE(convex_contains(hull, {2, 2}));
  EXPECT_FALSE(convex_contains(hull, {0, 4}));
  EXPECT_FALSE(convex_contains(hull, {4, 0}));
}

// Property: every input point is contained in its hull, and the hull's
// vertices are input points.
TEST(ConvexHull, ContainmentProperty) {
  util::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Point> points;
    const int n = static_cast<int>(rng.uniform_int(3, 40));
    for (int i = 0; i < n; ++i)
      points.push_back({rng.uniform_real(-100, 100),
                        rng.uniform_real(-100, 100)});
    const auto hull = convex_hull(points);
    for (const Point& p : points)
      EXPECT_TRUE(convex_contains(hull, p))
          << "trial " << trial << " point " << p;
    for (const Point& v : hull) {
      EXPECT_NE(std::find(points.begin(), points.end(), v), points.end());
    }
  }
}

// Property: hull area is invariant under input permutation, and adding an
// interior point never changes the hull.
TEST(ConvexHull, StabilityProperty) {
  util::Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Point> points;
    for (int i = 0; i < 12; ++i)
      points.push_back({rng.uniform_real(0, 50), rng.uniform_real(0, 50)});
    auto hull = convex_hull(points);
    if (hull.size() < 3) continue;
    const double area = convex_area(hull);
    const Point centroid = hull[0] * (1.0 / 3) + hull[1] * (1.0 / 3) +
                           hull[2] * (1.0 / 3);
    points.push_back(centroid);
    EXPECT_NEAR(convex_area(convex_hull(points)), area, 1e-9);
  }
}

}  // namespace
}  // namespace mbrc::geom
