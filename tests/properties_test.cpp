// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// the same invariant checked across a grid of seeds, sizes and profiles.
#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "ilp/branch_and_bound.hpp"
#include "ilp/set_partition.hpp"
#include "mbr/flow.hpp"
#include "mbr/placement.hpp"
#include "util/rng.hpp"

namespace mbrc {
namespace {

// ---------------------------------------------------------------------
// Set partitioning: the specialized solver matches the generic MILP
// branch & bound on random instances of growing size.
struct SpParams {
  std::uint64_t seed;
  int elements;
  int extra_candidates;
};

class SetPartitionSweep : public ::testing::TestWithParam<SpParams> {};

TEST_P(SetPartitionSweep, MatchesGenericMilp) {
  const SpParams params = GetParam();
  util::Rng rng(params.seed);

  ilp::SetPartitionProblem problem;
  problem.element_count = params.elements;
  for (int e = 0; e < params.elements; ++e)
    problem.candidates.push_back({{e}, rng.uniform_real(0.5, 1.5)});
  for (int c = 0; c < params.extra_candidates; ++c) {
    ilp::SetPartitionCandidate cand;
    const int size =
        static_cast<int>(rng.uniform_int(2, std::min(5, params.elements)));
    std::vector<int> pool(params.elements);
    for (int e = 0; e < params.elements; ++e) pool[e] = e;
    for (int k = 0; k < size; ++k) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
      cand.elements.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    cand.weight = rng.uniform_real(0.1, 2.0);
    problem.candidates.push_back(std::move(cand));
  }

  const ilp::SetPartitionResult fast = ilp::solve_set_partition(problem);
  ASSERT_TRUE(fast.feasible);

  lp::Model model;
  for (std::size_t c = 0; c < problem.candidates.size(); ++c)
    model.add_binary("c" + std::to_string(c), problem.candidates[c].weight);
  for (int e = 0; e < problem.element_count; ++e) {
    std::vector<lp::Term> terms;
    for (std::size_t c = 0; c < problem.candidates.size(); ++c) {
      const auto& elems = problem.candidates[c].elements;
      if (std::find(elems.begin(), elems.end(), e) != elems.end())
        terms.push_back({static_cast<int>(c), 1.0});
    }
    model.add_constraint(std::move(terms), lp::Relation::kEqual, 1.0);
  }
  const lp::Solution generic = ilp::solve_ilp(model);
  ASSERT_EQ(generic.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(fast.objective, generic.objective, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Random, SetPartitionSweep,
    ::testing::Values(SpParams{1, 4, 6}, SpParams{2, 6, 10},
                      SpParams{3, 8, 14}, SpParams{4, 10, 20},
                      SpParams{5, 12, 24}, SpParams{6, 14, 30},
                      SpParams{7, 9, 40}, SpParams{8, 16, 16}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.elements);
    });

// ---------------------------------------------------------------------
// Placement: the weighted-median solver matches the paper's LP across
// pin counts, and both beat random probes.
class PlacementSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlacementSweep, MedianEqualsLp) {
  const int pins = GetParam();
  util::Rng rng(1000 + pins);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<mbr::PinBox> boxes;
    for (int i = 0; i < pins; ++i) {
      const double x = rng.uniform_real(0, 250);
      const double y = rng.uniform_real(0, 250);
      boxes.push_back({{x, y, x + rng.uniform_real(0, 50),
                        y + rng.uniform_real(0, 50)},
                       {rng.uniform_real(0, 15), rng.uniform_real(0, 2)}});
    }
    const geom::Rect region{0, 0, 300, 300};
    const double f_median = mbr::placement_objective(
        boxes, mbr::optimal_position_median(boxes, region));
    const double f_lp = mbr::placement_objective(
        boxes, mbr::optimal_position_lp(boxes, region));
    ASSERT_NEAR(f_median, f_lp, 1e-6) << "pins=" << pins;
    for (int probe = 0; probe < 20; ++probe) {
      const geom::Point p{rng.uniform_real(0, 300), rng.uniform_real(0, 300)};
      ASSERT_GE(mbr::placement_objective(boxes, p) + 1e-9, f_median);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PinCounts, PlacementSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------
// Flow: the headline invariants hold across profiles and seeds.
struct FlowParams {
  std::uint64_t seed;
  int registers;
  double eight_bit_fraction;
};

class FlowSweep : public ::testing::TestWithParam<FlowParams> {};

TEST_P(FlowSweep, InvariantsHold) {
  const FlowParams params = GetParam();
  const lib::Library library = lib::make_default_library();

  benchgen::DesignProfile profile;
  profile.seed = params.seed;
  profile.register_cells = params.registers;
  profile.comb_per_register = 4.0;
  const double rest = 1.0 - params.eight_bit_fraction;
  profile.width_mix = {{1, rest * 0.5},
                       {2, rest * 0.3},
                       {4, rest * 0.2},
                       {8, params.eight_bit_fraction}};

  benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);
  mbr::FlowOptions options;
  options.timing.clock_period = generated.calibrated_clock_period;
  const mbr::FlowResult r =
      mbr::run_composition_flow(generated.design, options);
  generated.design.check_consistency();

  // Register accounting.
  EXPECT_EQ(r.before.design.total_registers - r.registers_merged +
                r.mbrs_created,
            r.after.design.total_registers);
  // Registers never increase; clock tree never grows.
  EXPECT_LE(r.after.design.total_registers, r.before.design.total_registers);
  EXPECT_LE(r.after.clock_cap, r.before.clock_cap * 1.0001);
  // Area essentially flat (5% incomplete rule is per-MBR, tiny in total).
  EXPECT_LE(r.after.design.area, r.before.design.area * 1.005);
  // Timing not collapsed (small adversarial profiles carry more noise than
  // the calibrated D1..D5 runs, hence the looser band here).
  EXPECT_GE(r.after.tns, r.before.tns * 1.15 - 0.5);
  EXPECT_TRUE(r.legalization.success);
  // Hold stays clean (hold-aware skew + sizing).
  EXPECT_EQ(r.after.failing_hold_endpoints, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, FlowSweep,
    ::testing::Values(FlowParams{11, 400, 0.05}, FlowParams{12, 400, 0.40},
                      FlowParams{13, 700, 0.10}, FlowParams{14, 700, 0.55},
                      FlowParams{15, 1000, 0.25}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_r" +
             std::to_string(info.param.registers);
    });

// ---------------------------------------------------------------------
// Weight formula: structural properties over the full (b, n) grid.
struct WeightParams {
  int bits;
};
class WeightSweep : public ::testing::TestWithParam<int> {};

TEST_P(WeightSweep, MonotoneAndDominated) {
  const int b = GetParam();
  // Clean weight decreases with size.
  if (b > 1)
    EXPECT_LT(mbr::candidate_weight(b, 0), mbr::candidate_weight(b - 1, 0));
  // Weight grows with blockers until it hits infinity at n >= b.
  double previous = mbr::candidate_weight(b, 0);
  for (int n = 1; n < b; ++n) {
    const double w = mbr::candidate_weight(b, n);
    EXPECT_GT(w, previous);
    previous = w;
  }
  EXPECT_TRUE(std::isinf(mbr::candidate_weight(b, b)));
  // A blocked candidate never beats its singleton decomposition: the worst
  // case is b single-bit members costing b in total.
  for (int n = 1; n < b; ++n)
    EXPECT_GT(mbr::candidate_weight(b, n), static_cast<double>(b));
}

INSTANTIATE_TEST_SUITE_P(Bits, WeightSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace mbrc
