// The parallel runtime's determinism contract at flow level: running the
// full composition flow with jobs = 1 (the serial reference path), 4 and 8
// produces the identical CompositionPlan, bit-identical Metrics and a
// bit-identical work-counter snapshot (DESIGN.md §11).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "obs/counters.hpp"

namespace mbrc {
namespace {

mbr::FlowResult run_with_jobs(const lib::Library& library, int jobs,
                              mbr::Allocator allocator) {
  benchgen::DesignProfile profile;
  profile.name = "par";
  profile.seed = 21;
  profile.register_cells = 400;
  profile.comb_per_register = 5.0;

  benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);

  mbr::FlowOptions options;
  options.timing.clock_period = generated.calibrated_clock_period;
  options.allocator = allocator;
  options.jobs = jobs;
  mbr::FlowResult result =
      mbr::run_composition_flow(generated.design, options);
  generated.design.check_consistency();
  return result;
}

std::vector<std::pair<std::int32_t, double>> sorted_skew(
    const sta::SkewMap& skew) {
  std::vector<std::pair<std::int32_t, double>> out;
  out.reserve(skew.size());
  for (const auto& [cell, value] : skew) out.emplace_back(cell.index, value);
  std::sort(out.begin(), out.end());
  return out;
}

void expect_metrics_identical(const mbr::Metrics& a, const mbr::Metrics& b) {
  EXPECT_EQ(a.design.cells, b.design.cells);
  EXPECT_EQ(a.design.total_registers, b.design.total_registers);
  EXPECT_EQ(a.design.register_bits, b.design.register_bits);
  EXPECT_EQ(a.design.area, b.design.area);
  EXPECT_EQ(a.composable_registers, b.composable_registers);
  // Bit-exact doubles: the parallel path must reproduce the serial
  // arithmetic, not approximate it.
  EXPECT_EQ(a.wns, b.wns);
  EXPECT_EQ(a.tns, b.tns);
  EXPECT_EQ(a.failing_endpoints, b.failing_endpoints);
  EXPECT_EQ(a.total_endpoints, b.total_endpoints);
  EXPECT_EQ(a.hold_wns, b.hold_wns);
  EXPECT_EQ(a.failing_hold_endpoints, b.failing_hold_endpoints);
  EXPECT_EQ(a.clock_buffers, b.clock_buffers);
  EXPECT_EQ(a.clock_cap, b.clock_cap);
  EXPECT_EQ(a.clock_power_uw, b.clock_power_uw);
  EXPECT_EQ(a.leakage_nw, b.leakage_nw);
  EXPECT_EQ(a.clock_wire, b.clock_wire);
  EXPECT_EQ(a.signal_wire, b.signal_wire);
  EXPECT_EQ(a.overflow_edges, b.overflow_edges);
  EXPECT_EQ(a.max_congestion, b.max_congestion);
}

void expect_plans_identical(const mbr::CompositionPlan& a,
                            const mbr::CompositionPlan& b) {
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.subgraph_count, b.subgraph_count);
  EXPECT_EQ(a.candidate_count, b.candidate_count);
  EXPECT_EQ(a.ilp_nodes, b.ilp_nodes);
  EXPECT_EQ(a.truncated_subgraphs, b.truncated_subgraphs);
  ASSERT_EQ(a.selections.size(), b.selections.size());
  for (std::size_t i = 0; i < a.selections.size(); ++i) {
    const mbr::Selection& sa = a.selections[i];
    const mbr::Selection& sb = b.selections[i];
    EXPECT_EQ(sa.candidate.nodes, sb.candidate.nodes);
    EXPECT_EQ(sa.candidate.bits, sb.candidate.bits);
    EXPECT_EQ(sa.candidate.mapped_width, sb.candidate.mapped_width);
    EXPECT_EQ(sa.candidate.blockers, sb.candidate.blockers);
    EXPECT_EQ(sa.candidate.weight, sb.candidate.weight);
    EXPECT_EQ(sa.candidate.needs_per_bit_scan, sb.candidate.needs_per_bit_scan);
    EXPECT_EQ(sa.members, sb.members);
  }
}

void expect_results_identical(const mbr::FlowResult& a,
                              const mbr::FlowResult& b) {
  expect_plans_identical(a.plan, b.plan);
  EXPECT_EQ(a.mbrs_created, b.mbrs_created);
  EXPECT_EQ(a.registers_merged, b.registers_merged);
  EXPECT_EQ(a.rejected_at_mapping, b.rejected_at_mapping);
  EXPECT_EQ(a.incomplete_mbrs, b.incomplete_mbrs);
  EXPECT_EQ(sorted_skew(a.skew), sorted_skew(b.skew));
  expect_metrics_identical(a.before, b.before);
  expect_metrics_identical(a.after, b.after);
}

TEST(ParallelFlow, IlpFlowIsBitIdenticalAcrossJobCounts) {
  const lib::Library library = lib::make_default_library();
  const mbr::FlowResult serial =
      run_with_jobs(library, 1, mbr::Allocator::kIlp);
  const mbr::FlowResult four = run_with_jobs(library, 4, mbr::Allocator::kIlp);
  const mbr::FlowResult eight =
      run_with_jobs(library, 8, mbr::Allocator::kIlp);

  EXPECT_GT(serial.mbrs_created, 0);
  expect_results_identical(serial, four);
  expect_results_identical(serial, eight);
}

TEST(ParallelFlow, HeuristicFlowIsBitIdenticalAcrossJobCounts) {
  const lib::Library library = lib::make_default_library();
  const mbr::FlowResult serial =
      run_with_jobs(library, 1, mbr::Allocator::kHeuristic);
  const mbr::FlowResult four =
      run_with_jobs(library, 4, mbr::Allocator::kHeuristic);

  EXPECT_GT(serial.mbrs_created, 0);
  expect_results_identical(serial, four);
}

TEST(ParallelFlow, CountersAreBitIdenticalAcrossJobCounts) {
  // The flow's counter delta is deterministic *output*, not measurement:
  // work counts (solver nodes, repaired pins, cliques) are integer sums of
  // per-call quantities, so the snapshot must match exactly at any jobs
  // value. This is the enforced half of the observability determinism
  // split; stage seconds and spans are the measurement-only half.
  const lib::Library library = lib::make_default_library();
  const mbr::FlowResult serial =
      run_with_jobs(library, 1, mbr::Allocator::kIlp);
  const mbr::FlowResult four = run_with_jobs(library, 4, mbr::Allocator::kIlp);

  EXPECT_FALSE(serial.counters.counters.empty());
  EXPECT_FALSE(serial.counters.histograms.empty());
  EXPECT_EQ(serial.counters, four.counters)
      << "jobs=1:\n" << obs::format_counters(serial.counters)
      << "jobs=4:\n" << obs::format_counters(four.counters);
}

TEST(ParallelFlow, TraceIsEmptyWhenTracingIsOff) {
  const lib::Library library = lib::make_default_library();
  const mbr::FlowResult result =
      run_with_jobs(library, 1, mbr::Allocator::kHeuristic);
  EXPECT_TRUE(result.trace.empty());
}

TEST(ParallelFlow, TracedFlowRecordsSpans) {
  benchgen::DesignProfile profile;
  profile.name = "traced";
  profile.seed = 33;
  profile.register_cells = 200;
  profile.comb_per_register = 4.0;

  const lib::Library library = lib::make_default_library();
  benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);

  mbr::FlowOptions options;
  options.timing.clock_period = generated.calibrated_clock_period;
  options.jobs = 4;
  options.trace = true;  // no trace_path: in-memory capture only
  const mbr::FlowResult result =
      mbr::run_composition_flow(generated.design, options);

  ASSERT_FALSE(result.trace.empty());
  std::set<std::string> names;
  for (const obs::TraceEvent& e : result.trace.events) {
    names.insert(e.name);
    EXPECT_GE(e.dur_us, 0);
    EXPECT_GE(e.depth, 0);
  }
  EXPECT_TRUE(names.contains("flow"));
  EXPECT_TRUE(names.contains("plan.subgraph"));
  ASSERT_FALSE(result.trace.thread_names.empty());
  // The installing thread is labeled by run_composition_flow itself.
  EXPECT_EQ(result.trace.thread_names.begin()->second, "flow");
}

TEST(ParallelFlow, StageTableIsPopulated) {
  const lib::Library library = lib::make_default_library();
  const mbr::FlowResult result =
      run_with_jobs(library, 4, mbr::Allocator::kIlp);
  EXPECT_TRUE(result.stages.contains("evaluate.before"));
  EXPECT_TRUE(result.stages.contains("sta.plan"));
  EXPECT_TRUE(result.stages.contains("plan"));
  EXPECT_TRUE(result.stages.contains("apply"));
  EXPECT_TRUE(result.stages.contains("evaluate.after"));
  for (const auto& [name, stats] : result.stages) {
    EXPECT_GE(stats.calls, 1) << name;
    EXPECT_GE(stats.seconds, 0.0) << name;
  }
}

}  // namespace
}  // namespace mbrc
