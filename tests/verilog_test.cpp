#include <gtest/gtest.h>

#include <sstream>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "netlist/verilog.hpp"

namespace mbrc::netlist {
namespace {

class VerilogFixture : public ::testing::Test {
protected:
  lib::Library library = lib::make_default_library();
};

TEST_F(VerilogFixture, EmitsModulePortsWiresAndInstances) {
  Design design(&library, {0, 0, 100, 36});
  const auto* dff = library.register_by_name("DFFR_B2_X1");
  const CellId reg = design.add_register("my_reg", dff, {10, 9});
  const CellId in = design.add_port("din", true, {0, 18});
  const CellId out = design.add_port("dout", false, {100, 18});

  const NetId clock = design.create_net(true);
  design.connect(design.register_clock_pin(reg), clock);
  const NetId din_net = design.create_net();
  design.connect(design.cell(in).pins[0], din_net);
  design.connect(design.register_d_pin(reg, 0), din_net);
  const NetId dout_net = design.create_net();
  design.connect(design.register_q_pin(reg, 1), dout_net);
  design.connect(design.cell(out).pins[0], dout_net);

  std::ostringstream os;
  write_verilog(design, os, "top");
  const std::string v = os.str();

  EXPECT_NE(v.find("module top (din, dout);"), std::string::npos);
  EXPECT_NE(v.find("input din;"), std::string::npos);
  EXPECT_NE(v.find("output dout;"), std::string::npos);
  EXPECT_NE(v.find("DFFR_B2_X1 my_reg ("), std::string::npos);
  EXPECT_NE(v.find(".D0(din)"), std::string::npos);
  EXPECT_NE(v.find(".Q1(dout)"), std::string::npos);
  EXPECT_NE(v.find(".CLK("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Unconnected pins (D1, Q0, RN) are omitted, not emitted dangling.
  EXPECT_EQ(v.find(".D1("), std::string::npos);
  EXPECT_EQ(v.find(".RN("), std::string::npos);
}

TEST_F(VerilogFixture, SanitizesAwkwardNames) {
  Design design(&library, {0, 0, 50, 18});
  const auto* dff = library.register_by_name("DFFP_B1_X1");
  design.add_register("weird.name[3]", dff, {10, 9});
  std::ostringstream os;
  write_verilog(design, os, "1bad-module");
  const std::string v = os.str();
  EXPECT_NE(v.find("module n_1bad_module"), std::string::npos);
  EXPECT_NE(v.find("weird_name_3_"), std::string::npos);
  EXPECT_EQ(v.find('['), std::string::npos);
}

TEST_F(VerilogFixture, ComposedDesignStillWritable) {
  benchgen::DesignProfile profile;
  profile.register_cells = 200;
  profile.comb_per_register = 3.0;
  benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);
  mbr::FlowOptions options;
  options.timing.clock_period = generated.calibrated_clock_period;
  const mbr::FlowResult result =
      mbr::run_composition_flow(generated.design, options);

  std::ostringstream os;
  write_verilog(generated.design, os, "top");
  const std::string v = os.str();
  // Every new MBR instance appears once (instances are named mbrc_<k>).
  int mbrc_instances = 0;
  for (std::size_t at = v.find("mbrc_"); at != std::string::npos;
       at = v.find("mbrc_", at + 1))
    ++mbrc_instances;
  EXPECT_EQ(mbrc_instances, result.mbrs_created);
  // No dead members linger.
  EXPECT_EQ(v.find("dead"), std::string::npos);
}

}  // namespace
}  // namespace mbrc::netlist
