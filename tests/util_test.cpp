#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace mbrc::util {
namespace {

TEST(Assert, PassesOnTrue) {
  EXPECT_NO_THROW(MBRC_ASSERT(1 + 1 == 2));
  EXPECT_NO_THROW(MBRC_ASSERT_MSG(true, "never shown"));
}

TEST(Assert, ThrowsWithContext) {
  try {
    MBRC_ASSERT_MSG(false, "the extra context");
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the extra context"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)c;
  }
  Rng d(43);
  bool any_diff = false;
  Rng e(42);
  for (int i = 0; i < 100; ++i) any_diff |= d() != e();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, SplitIsReproducibleAndIndependentOfParentPosition) {
  // Same (seed, stream) -> same sub-stream, regardless of how many draws
  // the parent has made before splitting.
  Rng fresh(42);
  Rng advanced(42);
  for (int i = 0; i < 57; ++i) (void)advanced();
  Rng child_a = fresh.split(3);
  Rng child_b = advanced.split(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child_a(), child_b());
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng with_split(42);
  Rng without_split(42);
  (void)with_split.split(0);
  (void)with_split.split(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(with_split(), without_split());
}

TEST(Rng, SplitStreamsAreDistinct) {
  // Different streams (and the parent itself) produce different sequences.
  Rng parent(42);
  Rng s0 = parent.split(0);
  Rng s1 = parent.split(1);
  bool s0_vs_s1 = false, s0_vs_parent = false;
  Rng parent_copy(42);
  for (int i = 0; i < 100; ++i) {
    const auto a = s0();
    s0_vs_s1 |= a != s1();
    s0_vs_parent |= a != parent_copy();
  }
  EXPECT_TRUE(s0_vs_s1);
  EXPECT_TRUE(s0_vs_parent);

  // Adjacent streams across many indices stay pairwise distinct on their
  // first draw (no structural collisions from the index arithmetic).
  std::set<std::uint64_t> first_draws;
  for (std::uint64_t stream = 0; stream < 256; ++stream) {
    Rng child = parent.split(stream);
    first_draws.insert(child());
  }
  EXPECT_EQ(first_draws.size(), 256u);
}

TEST(Rng, SeedAccessorSurvivesDraws) {
  Rng rng(1234);
  for (int i = 0; i < 10; ++i) (void)rng();
  EXPECT_EQ(rng.seed(), 1234u);
  EXPECT_EQ(rng.split(5).seed(), Rng(1234).split(5).seed());
}

TEST(Rng, UniformIntInRangeAndCoversRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 2000 draws
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformRealBoundsAndMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform_real(2.0, 4.0);
    ASSERT_GE(v, 2.0);
    ASSERT_LT(v, 4.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, ChanceFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  // Burn a little CPU; elapsed must be non-decreasing.
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  const double t1 = sw.seconds();
  EXPECT_GE(t1, 0.0);
  sw.reset();
  EXPECT_LE(sw.seconds(), t1 + 1.0);
  EXPECT_NEAR(sw.milliseconds(), sw.seconds() * 1e3, 50.0);  // separate reads
}

TEST(Table, AlignsAndFormats) {
  Table t({"name", "count"});
  t.row().cell(std::string("short")).cell(42);
  t.row().cell(std::string("a-much-longer-name")).cell(7);
  t.row().cell(std::string("pct")).percent(0.2912);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("29.1 %"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.cell(1), AssertionError);
}

}  // namespace
}  // namespace mbrc::util
