// End-to-end smoke: generate a small design, run the composition flow, and
// check the paper's headline properties hold (register count drops, netlist
// stays consistent, timing does not collapse).
#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"

namespace mbrc {
namespace {

TEST(FlowSmoke, SmallDesignEndToEnd) {
  const lib::Library library = lib::make_default_library();

  benchgen::DesignProfile profile;
  profile.name = "smoke";
  profile.seed = 7;
  profile.register_cells = 400;
  profile.comb_per_register = 5.0;

  benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);
  netlist::Design& design = generated.design;
  design.check_consistency();

  mbr::FlowOptions options;
  options.timing.clock_period = generated.calibrated_clock_period;

  const mbr::FlowResult result = mbr::run_composition_flow(design, options);
  design.check_consistency();

  // Composition happened and reduced the register count.
  EXPECT_GT(result.mbrs_created, 0);
  EXPECT_LT(result.after.design.total_registers,
            result.before.design.total_registers);
  // Every merge removes members and adds one MBR.
  EXPECT_EQ(result.before.design.total_registers - result.registers_merged +
                result.mbrs_created,
            result.after.design.total_registers);
  // Register bits are conserved (no incomplete MBR drops bits; extra
  // physical bits on incomplete cells are not counted as register bits of
  // members).
  EXPECT_GE(result.after.design.register_bits,
            result.before.design.register_bits);

  // Clock capacitance should not increase (the point of the exercise).
  EXPECT_LE(result.after.clock_cap, result.before.clock_cap * 1.001);

  // Timing does not collapse: TNS may improve but must not degrade much.
  EXPECT_GE(result.after.tns, result.before.tns * 1.10 - 0.5);

  // Legalization succeeded and moved cells by bounded amounts.
  EXPECT_TRUE(result.legalization.success);
}

}  // namespace
}  // namespace mbrc
