// Flight-recorder contract tests (src/obs/flight_recorder.hpp): bounded
// per-thread rings, sanitized details, JSON dumps that always parse, and
// race-free snapshots under churn — the latter runs under TSan in CI, so
// the seqlock discipline is checked by the tool, not by inspection.
//
// The recorder is process-global and other tests in this binary may have
// recorded events, so assertions count events this test planted (by a
// unique detail prefix) rather than expecting an empty world.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/json_reader.hpp"

namespace mbrc::obs::flight {
namespace {

std::vector<Event> mine(std::string_view prefix) {
  std::vector<Event> events;
  for (Event& event : snapshot())
    if (event.detail.rfind(prefix, 0) == 0) events.push_back(std::move(event));
  return events;
}

TEST(FlightRecorderTest, RecordsAndSnapshotsInOrder) {
  set_thread_label("frt-basic");
  record(EventKind::kRequest, "frt1 open", 7, 1);
  record(EventKind::kEdit, "frt1 move", 7, 2);
  record(EventKind::kRollback, "frt1 base", 7, 3);

  const std::vector<Event> events = mine("frt1 ");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kRequest);
  EXPECT_EQ(events[1].kind, EventKind::kEdit);
  EXPECT_EQ(events[2].kind, EventKind::kRollback);
  EXPECT_EQ(events[0].detail, "frt1 open");
  EXPECT_EQ(events[0].a, 7);
  EXPECT_EQ(events[0].b, 1);
  EXPECT_EQ(events[0].thread_label, "frt-basic");
  // Same thread, recorded in order: timestamps are monotone.
  EXPECT_LE(events[0].t_us, events[1].t_us);
  EXPECT_LE(events[1].t_us, events[2].t_us);
}

TEST(FlightRecorderTest, RingWrapKeepsTheMostRecentEvents) {
  for (int i = 0; i < static_cast<int>(kRingCapacity) + 50; ++i)
    record(EventKind::kNote, "frt2 n" + std::to_string(i), i);

  const std::vector<Event> events = mine("frt2 ");
  // The ring bounds retention; the oldest overflowed events are gone.
  ASSERT_LE(events.size(), kRingCapacity);
  ASSERT_GE(events.size(), 32u);
  // What survives is the most recent tail, ending at the last record.
  EXPECT_EQ(events.back().a, static_cast<int>(kRingCapacity) + 49);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_EQ(events[i].a, events[i - 1].a + 1);
}

TEST(FlightRecorderTest, DetailIsSanitizedAndTruncated) {
  record(EventKind::kNote, "frt3 \"quoted\\path\"\n\ttail");
  std::string long_detail = "frt3-long ";
  long_detail.append(100, 'x');
  record(EventKind::kNote, long_detail);

  bool saw_sanitized = false;
  bool saw_truncated = false;
  for (const Event& event : mine("frt3")) {
    if (event.detail.rfind("frt3 ", 0) == 0) {
      saw_sanitized = true;
      EXPECT_EQ(event.detail, "frt3 _quoted_path___tail");
    }
    if (event.detail.rfind("frt3-long", 0) == 0) {
      saw_truncated = true;
      EXPECT_EQ(event.detail.size(), kDetailBytes);
    }
  }
  EXPECT_TRUE(saw_sanitized);
  EXPECT_TRUE(saw_truncated);
}

TEST(FlightRecorderTest, DumpToFileRoundTripsThroughTheJsonReader) {
  record(EventKind::kCheckFailure, "frt4 planted", 1, 2);
  const std::string path = testing::TempDir() + "flight_dump_test.json";
  ASSERT_TRUE(dump_to_file(path, "unit test"));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const JsonParseResult parsed = parse_json(buffer.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.string_or("kind", ""), "flight_recorder");
  EXPECT_EQ(parsed.value.string_or("trigger", ""), "unit test");
  EXPECT_EQ(parsed.value.int_or("schema", -1), 1);
  const JsonValue* events = parsed.value.find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(parsed.value.int_or("events_retained", -1),
            static_cast<std::int64_t>(events->array().size()));
  bool found = false;
  for (const JsonValue& event : events->array())
    if (event.string_or("detail", "") == "frt4 planted") {
      found = true;
      EXPECT_EQ(event.string_or("kind", ""), "check_failure");
      EXPECT_EQ(event.int_or("a", -1), 1);
      EXPECT_EQ(event.int_or("b", -1), 2);
    }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

// The TSan target: four writer threads churn their rings while a reader
// snapshots and a dumper serializes, all concurrently. Correctness here is
// "no torn event escapes": every event read back is internally consistent
// (detail matches its a payload), which the seqlock guarantees.
TEST(FlightRecorderTest, ConcurrentChurnAndSnapshotStaysConsistent) {
  constexpr int kWriters = 4;
  constexpr int kEventsPerWriter = 2000;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const Event& event : snapshot()) {
        if (event.detail.rfind("frt5 w", 0) != 0) continue;
        // detail "frt5 w<writer> e<i>" must agree with a = writer*X + i.
        const std::size_t space = event.detail.find(" e");
        ASSERT_NE(space, std::string::npos) << event.detail;
        const int writer = std::stoi(event.detail.substr(6, space - 6));
        const int i = std::stoi(event.detail.substr(space + 2));
        EXPECT_EQ(event.a, writer * kEventsPerWriter + i) << event.detail;
      }
    }
  });
  std::thread dumper([&] {
    std::ostringstream sink;
    while (!stop.load(std::memory_order_acquire)) write_json(sink, "churn");
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([w] {
      set_thread_label("frt5-w" + std::to_string(w));
      for (int i = 0; i < kEventsPerWriter; ++i)
        record(EventKind::kNote,
               "frt5 w" + std::to_string(w) + " e" + std::to_string(i),
               w * kEventsPerWriter + i);
    });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  dumper.join();

  // After the writers quiesce each ring holds its writer's tail.
  std::size_t churn_events = 0;
  for (const Event& event : mine("frt5 ")) {
    ++churn_events;
    EXPECT_EQ(event.kind, EventKind::kNote);
  }
  EXPECT_GE(churn_events, kWriters * 32u);
}

}  // namespace
}  // namespace mbrc::obs::flight
