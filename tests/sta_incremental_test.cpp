// The incremental timing engine's correctness contract: after ANY sequence
// of skew updates, placement moves, register sizing swaps and structural
// merges, TimingEngine::update() is bit-identical to a from-scratch
// run_sta() -- every arrival, required time and endpoint slack, at jobs = 1
// and jobs > 1. The engine must also actually be incremental: topology-
// preserving edit sequences may trigger exactly one full build.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "benchgen/generator.hpp"
#include "mbr/heuristic.hpp"
#include "mbr/mapping.hpp"
#include "mbr/placement.hpp"
#include "mbr/rewire.hpp"
#include "sta/timing_engine.hpp"
#include "util/rng.hpp"

namespace mbrc {
namespace {

benchgen::GeneratedDesign make_design(const lib::Library& library,
                                      std::uint64_t seed) {
  benchgen::DesignProfile profile;
  profile.name = "inc";
  profile.seed = seed;
  profile.register_cells = 220;
  profile.comb_per_register = 4.0;
  return benchgen::generate_design(library, profile);
}

void expect_same(const std::vector<double>& got, const std::vector<double>& want,
                 const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << what << " diverges at pin " << i;
}

// Bit-exact equality (EXPECT_EQ, not EXPECT_NEAR): the engine recomputes
// each value as a max/min gather over the same operand set the oracle folds.
void expect_report_matches_oracle(const sta::TimingReport& got,
                                  const sta::TimingReport& want,
                                  const std::string& context) {
  SCOPED_TRACE(context);
  expect_same(got.arrival, want.arrival, "arrival");
  expect_same(got.arrival_min, want.arrival_min, "arrival_min");
  expect_same(got.required, want.required, "required");
  expect_same(got.required_min, want.required_min, "required_min");
  ASSERT_EQ(got.endpoints.size(), want.endpoints.size());
  for (std::size_t i = 0; i < got.endpoints.size(); ++i) {
    ASSERT_EQ(got.endpoints[i].pin.index, want.endpoints[i].pin.index)
        << "endpoint " << i;
    ASSERT_EQ(got.endpoints[i].slack, want.endpoints[i].slack)
        << "endpoint " << i;
    ASSERT_EQ(got.endpoints[i].hold_slack, want.endpoints[i].hold_slack)
        << "endpoint " << i;
  }
}

// One mutation round: random per-register skew nudges, a placement move
// (journaled via notify_moved) and a drive-variant swap. All topology-
// preserving, so the engine must absorb them without a rebuild.
void mutate_round(netlist::Design& design, sta::SkewMap& skew, util::Rng& rng) {
  const auto registers = design.registers();
  ASSERT_FALSE(registers.empty());
  auto pick = [&] {
    return registers[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(registers.size()) - 1))];
  };

  const int nudges = static_cast<int>(rng.uniform_int(1, 6));
  for (int i = 0; i < nudges; ++i) {
    const netlist::CellId reg = pick();
    if (rng.chance(0.2))
      skew.erase(reg);
    else
      skew[reg] = rng.uniform_real(-0.15, 0.15);
  }

  if (rng.chance(0.7)) {
    const netlist::CellId reg = pick();
    netlist::Cell& cell = design.cell(reg);
    const geom::Rect& core = design.core();
    cell.position.x = std::clamp(cell.position.x + rng.uniform_real(-8.0, 8.0),
                                 core.xlo, core.xhi - cell.width());
    cell.position.y = std::clamp(cell.position.y + rng.uniform_real(-8.0, 8.0),
                                 core.ylo, core.yhi - cell.height());
    design.notify_moved(reg);
  }

  if (rng.chance(0.5)) {
    const netlist::CellId reg = pick();
    const netlist::Cell& cell = design.cell(reg);
    auto variants =
        design.library().cells_for(cell.reg->function, cell.reg->bits);
    std::erase_if(variants, [&](const lib::RegisterCell* v) {
      return v->scan_style != cell.reg->scan_style;
    });
    if (variants.size() > 1) {
      const auto* variant = variants[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(variants.size()) - 1))];
      if (variant != cell.reg) design.swap_register_cell(reg, variant);
    }
  }
}

void run_randomized_sequence(int jobs) {
  const lib::Library library = lib::make_default_library();
  benchgen::GeneratedDesign generated = make_design(library, 77);
  netlist::Design& design = generated.design;

  sta::TimingOptions options;
  options.clock_period = generated.calibrated_clock_period;
  options.jobs = jobs;

  sta::TimingEngine engine(design, options);
  sta::SkewMap skew;
  util::Rng rng(0xabc0 + static_cast<std::uint64_t>(jobs));

  expect_report_matches_oracle(engine.update(skew),
                               sta::run_sta(design, options, skew), "initial build");
  EXPECT_EQ(engine.stats().full_builds, 1u);

  for (int round = 0; round < 12; ++round) {
    mutate_round(design, skew, rng);
    expect_report_matches_oracle(engine.update(skew),
                                 sta::run_sta(design, options, skew),
                                 "round " + std::to_string(round));
  }
  // Every round was topology-preserving: the first build must be the only
  // one, and the repairs must have touched a non-trivial cone.
  EXPECT_EQ(engine.stats().full_builds, 1u);
  EXPECT_EQ(engine.stats().incremental_updates, 12u);
}

TEST(StaIncremental, RandomEditSequenceMatchesOracleSerial) {
  run_randomized_sequence(1);
}

TEST(StaIncremental, RandomEditSequenceMatchesOracleParallel) {
  run_randomized_sequence(4);
}

TEST(StaIncremental, SkewOnlyUpdatesRepairSmallCones) {
  const lib::Library library = lib::make_default_library();
  benchgen::GeneratedDesign generated = make_design(library, 91);
  netlist::Design& design = generated.design;

  sta::TimingOptions options;
  options.clock_period = generated.calibrated_clock_period;

  sta::TimingEngine engine(design, options);
  engine.update();
  const auto registers = design.registers();

  sta::SkewMap skew;
  skew[registers[registers.size() / 2]] = 0.05;
  engine.update(skew);
  EXPECT_EQ(engine.stats().full_builds, 1u);
  EXPECT_GT(engine.stats().last_repaired_pins, 0u);
  // One register's cones are a small fraction of the graph.
  EXPECT_LT(engine.stats().last_repaired_pins,
            static_cast<std::size_t>(design.pin_count()) / 4);
  expect_report_matches_oracle(engine.report(), sta::run_sta(design, options, skew),
                               "single-register skew");

  // No-op update: nothing dirty, nothing repaired.
  engine.update(skew);
  EXPECT_EQ(engine.stats().last_repaired_pins, 0u);
}

TEST(StaIncremental, StructuralMergeRebuildsThenStaysIncremental) {
  const lib::Library library = lib::make_default_library();
  benchgen::GeneratedDesign generated = make_design(library, 33);
  netlist::Design& design = generated.design;

  sta::TimingOptions options;
  options.clock_period = generated.calibrated_clock_period;
  options.jobs = 2;

  sta::TimingEngine engine(design, options);
  const sta::TimingReport planning = engine.update();  // copy for planning
  EXPECT_EQ(engine.stats().full_builds, 1u);

  // Apply a few real merges (map -> place -> rewire): structural edits that
  // must force exactly one rebuild on the next update.
  const mbr::CompositionPlan plan =
      mbr::plan_composition_heuristic(design, planning);
  int applied = 0;
  for (const mbr::Selection* selection : plan.merges()) {
    const auto mapping =
        mbr::map_candidate(design, plan.graph, selection->candidate);
    if (!mapping) continue;
    const geom::Point position =
        mbr::place_mbr(design, plan.graph, selection->candidate, *mapping);
    mbr::rewire_candidate(design, plan.graph, selection->candidate, *mapping,
                          position, "inc_mbr_" + std::to_string(applied));
    if (++applied == 3) break;
  }
  ASSERT_GT(applied, 0) << "benchgen design produced no applicable merges";
  design.check_consistency();

  expect_report_matches_oracle(engine.update(), sta::run_sta(design, options),
                               "post-merge rebuild");
  EXPECT_EQ(engine.stats().full_builds, 2u);

  // Back to incremental service after the rebuild.
  sta::SkewMap skew;
  util::Rng rng(2024);
  for (int round = 0; round < 4; ++round) {
    mutate_round(design, skew, rng);
    expect_report_matches_oracle(engine.update(skew),
                                 sta::run_sta(design, options, skew),
                                 "post-merge round " + std::to_string(round));
  }
  EXPECT_EQ(engine.stats().full_builds, 2u);
}

}  // namespace
}  // namespace mbrc
