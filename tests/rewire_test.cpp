#include <gtest/gtest.h>

#include "check/checker.hpp"
#include "mbr/composition.hpp"
#include "mbr/mapping.hpp"
#include "mbr/rewire.hpp"
#include "sta/sta.hpp"

namespace mbrc::mbr {
namespace {

using netlist::CellId;
using netlist::Design;
using netlist::NetId;
using netlist::PinId;
using netlist::PinRole;

// Four 1-bit reset-flops in a row, each with a dedicated driver gate on D
// and a dedicated load gate on Q, sharing clock and reset nets.
class RewireFixture : public ::testing::Test {
protected:
  RewireFixture()
      : library(lib::make_default_library()),
        design(&library, {0, 0, 120, 36}) {
    const auto* dff = library.register_by_name("DFFR_B1_X1");
    const auto* inv = library.comb_by_name("INV_X1");
    clock = design.create_net(true);
    reset = design.create_net();
    const CellId reset_driver = design.add_comb("rst", inv, {0, 0});
    design.connect(comb_out(reset_driver), reset);

    for (int i = 0; i < 4; ++i) {
      const CellId reg = design.add_register("r" + std::to_string(i), dff,
                                             {20.0 + i * 6.0, 9.0});
      design.connect(design.register_clock_pin(reg), clock);
      design.connect(design.register_control_pin(reg, PinRole::kReset),
                     reset);

      const CellId driver =
          design.add_comb("drv" + std::to_string(i), inv, {10.0, 9.0 + i});
      d_nets.push_back(design.create_net());
      design.connect(comb_out(driver), d_nets.back());
      design.connect(design.register_d_pin(reg, 0), d_nets.back());

      const CellId load =
          design.add_comb("load" + std::to_string(i), inv, {60.0, 9.0 + i});
      q_nets.push_back(design.create_net());
      design.connect(design.register_q_pin(reg, 0), q_nets.back());
      design.connect(comb_in(load), q_nets.back());
      registers.push_back(reg);
    }

    // Build the compatibility graph over the real design.
    timing = sta::run_sta(design, sta::TimingOptions{});
    graph = build_compatibility_graph(design, timing, {});
    EXPECT_EQ(graph.node_count(), 4);
  }

  PinId comb_out(CellId cell) {
    for (PinId p : design.cell(cell).pins)
      if (design.pin(p).is_output) return p;
    return PinId{};
  }
  PinId comb_in(CellId cell) {
    for (PinId p : design.cell(cell).pins)
      if (!design.pin(p).is_output) return p;
    return PinId{};
  }

  // Builds a candidate over graph nodes covering all four registers.
  Candidate four_bit_candidate() {
    Candidate c;
    for (int i = 0; i < 4; ++i) c.nodes.push_back(i);
    c.bits = 4;
    c.mapped_width = 4;
    c.common_region = geom::Rect{0, 0, 120, 36};
    return c;
  }

  lib::Library library;
  Design design;
  NetId clock, reset;
  std::vector<NetId> d_nets, q_nets;
  std::vector<CellId> registers;
  sta::TimingReport timing;
  CompatibilityGraph graph;
};

TEST_F(RewireFixture, MergePreservesBitConnectivity) {
  const Candidate candidate = four_bit_candidate();
  const auto mapping = map_candidate(design, graph, candidate);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ(mapping->cell->bits, 4);
  EXPECT_EQ(mapping->cell->function.has_reset, true);

  const CellId mbr = rewire_candidate(design, graph, candidate, *mapping,
                                      {30, 9}, "mbr0");
  design.check_consistency();

  // Members are gone.
  for (CellId reg : registers) EXPECT_TRUE(design.cell(reg).dead);

  // Every former D net now drives exactly one MBR D pin, same for Q.
  for (std::size_t i = 0; i < mapping->member_order.size(); ++i) {
    const int node = mapping->member_order[i];
    const int bit = mapping->bit_offset[i];
    const PinId d = design.register_d_pin(mbr, bit);
    const PinId q = design.register_q_pin(mbr, bit);
    // The member order maps node index -> original register r<node>.
    EXPECT_EQ(design.pin(d).net, d_nets[node]) << "bit " << bit;
    EXPECT_EQ(design.pin(q).net, q_nets[node]) << "bit " << bit;
    EXPECT_EQ(design.net(q_nets[node]).driver, q);
  }

  // Shared control connectivity.
  EXPECT_EQ(design.pin(design.register_clock_pin(mbr)).net, clock);
  EXPECT_EQ(
      design.pin(design.register_control_pin(mbr, PinRole::kReset)).net,
      reset);

  // One register instead of four.
  EXPECT_EQ(design.registers().size(), 1u);
  EXPECT_EQ(design.stats().register_bits, 4);

  // STA still runs and sees the same endpoints count (4 D bits).
  const sta::TimingReport after = sta::run_sta(design, sta::TimingOptions{});
  EXPECT_EQ(after.total_endpoints(), timing.total_endpoints());
}

TEST_F(RewireFixture, IncompleteMergeLeavesSparePinsUnconnected) {
  // Merge only three registers into an (incomplete) 4-bit cell.
  Candidate candidate;
  candidate.nodes = {0, 1, 2};
  candidate.bits = 3;
  candidate.mapped_width = 4;
  candidate.common_region = geom::Rect{0, 0, 120, 36};
  MappingOptions loose;
  loose.incomplete_area_overhead = 10.0;
  const auto mapping = map_candidate(design, graph, candidate, loose);
  ASSERT_TRUE(mapping.has_value());

  const CellId mbr = rewire_candidate(design, graph, candidate, *mapping,
                                      {30, 9}, "mbr0");
  design.check_consistency();
  // Bits 0..2 connected, bit 3 tied off.
  EXPECT_TRUE(design.pin(design.register_d_pin(mbr, 2)).net.valid());
  EXPECT_FALSE(design.pin(design.register_d_pin(mbr, 3)).net.valid());
  EXPECT_FALSE(design.pin(design.register_q_pin(mbr, 3)).net.valid());
  // The fourth register survives.
  EXPECT_EQ(design.registers().size(), 2u);
}

TEST_F(RewireFixture, MappingRejectsOversizedIncomplete) {
  Candidate candidate;
  candidate.nodes = {0, 1};  // 2 bits on a 4-bit cell: huge area overhead
  candidate.bits = 2;
  candidate.mapped_width = 4;
  candidate.common_region = geom::Rect{0, 0, 120, 36};
  std::string why;
  const auto mapping = map_candidate(design, graph, candidate, {}, &why);
  EXPECT_FALSE(mapping.has_value());
  EXPECT_NE(why.find("area"), std::string::npos);
}

class ScanFixture : public ::testing::Test {
protected:
  ScanFixture()
      : library(lib::make_default_library()),
        design(&library, {0, 0, 200, 36}) {}

  CellId add_scan_register(const std::string& name, geom::Point pos,
                           int partition, int section = -1, int order = -1) {
    const auto* cell = library.register_by_name("DFFQ_B1_X1");
    const CellId reg = design.add_register(name, cell, pos);
    design.cell(reg).scan = {partition, section, order};
    return reg;
  }

  lib::Library library;
  netlist::Design design;
};

TEST_F(ScanFixture, RestitchLinksChainsPerPartition) {
  for (int i = 0; i < 5; ++i)
    add_scan_register("p0_" + std::to_string(i), {i * 10.0, 9.0}, 0);
  for (int i = 0; i < 3; ++i)
    add_scan_register("p1_" + std::to_string(i), {i * 10.0, 18.0}, 1);

  const RestitchStats stats = restitch_scan_chains(design);
  EXPECT_EQ(stats.chains, 2);
  EXPECT_EQ(stats.registers, 8);
  EXPECT_EQ(stats.links, 4 + 2);  // n-1 links per partition
  design.check_consistency();

  // Every SI except one per partition is connected; same for SO.
  int unconnected_si = 0;
  for (netlist::CellId reg : design.registers())
    for (netlist::PinId p : design.cell(reg).pins)
      if (design.pin(p).role == PinRole::kScanIn &&
          !design.pin(p).net.valid())
        ++unconnected_si;
  EXPECT_EQ(unconnected_si, 2);  // the two chain heads
}

TEST_F(ScanFixture, RestitchPreservesSectionOrder) {
  // Section 0 with explicit order, plus free registers.
  const CellId s2 = add_scan_register("s2", {50, 9}, 0, 0, 2);
  const CellId s0 = add_scan_register("s0", {90, 9}, 0, 0, 0);
  const CellId s1 = add_scan_register("s1", {10, 9}, 0, 0, 1);
  const CellId free = add_scan_register("free", {70, 9}, 0);

  restitch_scan_chains(design);

  // Walk the chain from its head and record the visit order.
  std::vector<CellId> order;
  CellId cursor;
  for (netlist::CellId reg : design.registers()) {
    const netlist::PinId si =
        design.register_control_pin(reg, PinRole::kScanIn);
    netlist::PinId si_pin;
    for (netlist::PinId p : design.cell(reg).pins)
      if (design.pin(p).role == PinRole::kScanIn) si_pin = p;
    (void)si;
    if (!design.pin(si_pin).net.valid()) cursor = reg;  // chain head
  }
  ASSERT_TRUE(cursor.valid());
  while (cursor.valid()) {
    order.push_back(cursor);
    netlist::PinId so;
    for (netlist::PinId p : design.cell(cursor).pins)
      if (design.pin(p).role == PinRole::kScanOut) so = p;
    const netlist::NetId net = design.pin(so).net;
    if (!net.valid() || design.net(net).sinks.empty()) break;
    cursor = design.pin(design.net(net).sinks.front()).cell;
  }
  ASSERT_EQ(order.size(), 4u);
  // Ordered section first, in order; the free register last.
  EXPECT_EQ(order[0], s0);
  EXPECT_EQ(order[1], s1);
  EXPECT_EQ(order[2], s2);
  EXPECT_EQ(order[3], free);
}

TEST_F(ScanFixture, PerBitScanCellChainsThroughEveryBit) {
  const auto* pbs = library.register_by_name("DFFQ_B4_X1_PBS");
  const CellId mbr = design.add_register("mbr", pbs, {10, 9});
  design.cell(mbr).scan.partition = 0;
  add_scan_register("single", {60, 9}, 0);

  const RestitchStats stats = restitch_scan_chains(design);
  // 4 per-bit elements + 1 single = 5 elements -> 4 links.
  EXPECT_EQ(stats.links, 4);
}

// restitch_scan_chains' full contract, phrased as the flow's own integrity
// checks: after restitching a mix of partitions, ordered sections and a
// per-bit-scan MBR, the chains must satisfy every scan invariant the
// DesignChecker knows (one acyclic chain per partition, full coverage,
// section order) on top of clean structure and nets.
TEST_F(ScanFixture, RestitchSatisfiesCheckerInvariants) {
  for (int i = 0; i < 4; ++i)
    add_scan_register("p0_" + std::to_string(i), {i * 12.0, 9.0}, 0, 0, i);
  add_scan_register("p0_free", {60, 9}, 0);
  const auto* pbs = library.register_by_name("DFFQ_B4_X1_PBS");
  const CellId mbr = design.add_register("mbr", pbs, {80, 9});
  design.cell(mbr).scan.partition = 1;
  add_scan_register("p1_tail", {120, 9}, 1);

  restitch_scan_chains(design);

  check::DesignChecker clean(design);
  clean.check_structure().check_nets().check_scan_chains();
  EXPECT_TRUE(clean.report().ok()) << clean.report().to_string();

  // Sabotage one link: cutting an SI input splits the partition-0 chain in
  // two, which the checker must flag as a scan violation.
  for (netlist::CellId reg : design.registers()) {
    if (design.cell(reg).name != "p0_2") continue;
    for (netlist::PinId p : design.cell(reg).pins)
      if (design.pin(p).role == PinRole::kScanIn && design.pin(p).net.valid())
        design.disconnect(p);
  }
  check::DesignChecker broken(design);
  broken.check_scan_chains();
  ASSERT_FALSE(broken.report().ok());
  EXPECT_EQ(broken.report().violations.front().check, "scan");
}

}  // namespace
}  // namespace mbrc::mbr
