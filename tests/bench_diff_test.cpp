// Drives the mbrc-bench-diff comparison engine over in-memory documents:
// direction classification, the regression threshold, name-keyed config
// pairing, and the schema gates the CLI's exit codes hang off.
#include <gtest/gtest.h>

#include <string>

#include "diff.hpp"
#include "obs/json_reader.hpp"

namespace mbrc::benchdiff {
namespace {

obs::JsonValue parse(const std::string& text) {
  const obs::JsonParseResult parsed = obs::parse_json(text);
  EXPECT_TRUE(parsed.ok) << parsed.error;
  return parsed.value;
}

const char* kBaseline = R"({
  "schema": 1, "bench": "service_throughput", "daemon_jobs": 4,
  "configs": [
    {"name": "serial", "edits_per_second": 1000.0,
     "query_latency_us": {"p50": 40.0, "p95": 80.0, "p99": 100.0},
     "errors": 0},
    {"name": "concurrent_4", "edits_per_second": 2000.0,
     "query_latency_us": {"p50": 60.0, "p95": 90.0, "p99": 120.0},
     "errors": 0}
  ],
  "concurrent_4_vs_serial_speedup": 2.0
})";

TEST(BenchDiffTest, ClassifiesMetricDirectionByName) {
  EXPECT_EQ(classify_metric("edits_per_second"), Direction::kHigherBetter);
  EXPECT_EQ(classify_metric("concurrent_4_vs_serial_speedup"),
            Direction::kHigherBetter);
  EXPECT_EQ(classify_metric("p50"), Direction::kLowerBetter);
  EXPECT_EQ(classify_metric("p95"), Direction::kLowerBetter);
  EXPECT_EQ(classify_metric("p99"), Direction::kLowerBetter);
  EXPECT_EQ(classify_metric("p50_us"), Direction::kLowerBetter);
  EXPECT_EQ(classify_metric("wall_seconds"), Direction::kLowerBetter);
  EXPECT_EQ(classify_metric("errors"), Direction::kLowerBetter);
  EXPECT_EQ(classify_metric("daemon_jobs"), Direction::kInfo);
  EXPECT_EQ(classify_metric("queue_depth_max"), Direction::kInfo);
  EXPECT_EQ(classify_metric("schema"), Direction::kInfo);
}

TEST(BenchDiffTest, IdenticalDocumentsHaveNoRegressions) {
  const obs::JsonValue doc = parse(kBaseline);
  const DiffReport report = diff_benchmarks(doc, doc, {});
  EXPECT_TRUE(report.schema_ok) << report.error;
  EXPECT_EQ(report.regression_count(), 0u);
  EXPECT_FALSE(report.metrics.empty());
}

TEST(BenchDiffTest, ThroughputDropPastThresholdRegresses) {
  const obs::JsonValue before = parse(kBaseline);
  std::string degraded = kBaseline;
  // concurrent_4 throughput 2000 -> 1600: a planted 20% regression.
  degraded.replace(degraded.find("2000.0"), 6, "1600.0");
  const DiffReport report = diff_benchmarks(before, parse(degraded), {});
  EXPECT_TRUE(report.schema_ok) << report.error;
  ASSERT_EQ(report.regression_count(), 1u);
  for (const MetricDelta& m : report.metrics)
    if (m.regressed) {
      EXPECT_EQ(m.path, "configs[concurrent_4].edits_per_second");
      EXPECT_EQ(m.before, 2000.0);
      EXPECT_EQ(m.after, 1600.0);
    }
}

TEST(BenchDiffTest, MovesWithinThresholdPass) {
  const obs::JsonValue before = parse(kBaseline);
  std::string wobble = kBaseline;
  wobble.replace(wobble.find("2000.0"), 6, "1850.0");  // -7.5% < 10%
  wobble.replace(wobble.find("\"p50\": 60.0"), 11, "\"p50\": 64.0");  // +6.7%
  const DiffReport report = diff_benchmarks(before, parse(wobble), {});
  EXPECT_TRUE(report.schema_ok) << report.error;
  EXPECT_EQ(report.regression_count(), 0u);
}

TEST(BenchDiffTest, LatencyIncreasePastThresholdRegresses) {
  const obs::JsonValue before = parse(kBaseline);
  std::string degraded = kBaseline;
  degraded.replace(degraded.find("\"p99\": 100.0"), 12, "\"p99\": 140.0");
  const DiffReport report = diff_benchmarks(before, parse(degraded), {});
  ASSERT_EQ(report.regression_count(), 1u);
}

TEST(BenchDiffTest, AnyErrorFromZeroBaselineRegresses) {
  // No percentage of a zero baseline is tolerable: 0 -> 1 errors gates.
  const obs::JsonValue before = parse(kBaseline);
  std::string degraded = kBaseline;
  degraded.replace(degraded.rfind("\"errors\": 0"), 11, "\"errors\": 1");
  const DiffReport report = diff_benchmarks(before, parse(degraded), {});
  ASSERT_EQ(report.regression_count(), 1u);
}

TEST(BenchDiffTest, ThresholdIsConfigurable) {
  const obs::JsonValue before = parse(kBaseline);
  std::string degraded = kBaseline;
  degraded.replace(degraded.find("2000.0"), 6, "1900.0");  // -5%
  DiffOptions strict;
  strict.threshold = 0.02;
  EXPECT_EQ(diff_benchmarks(before, parse(degraded), strict)
                .regression_count(),
            1u);
  DiffOptions loose;
  loose.threshold = 0.10;
  EXPECT_EQ(
      diff_benchmarks(before, parse(degraded), loose).regression_count(), 0u);
}

TEST(BenchDiffTest, ConfigsPairByNameAcrossReordering) {
  const obs::JsonValue before = parse(kBaseline);
  // Same data with the configs array reversed: nothing regresses, because
  // elements pair by "name", not index.
  std::string reordered = R"({
    "schema": 1, "bench": "service_throughput", "daemon_jobs": 4,
    "configs": [
      {"name": "concurrent_4", "edits_per_second": 2000.0,
       "query_latency_us": {"p50": 60.0, "p95": 90.0, "p99": 120.0},
       "errors": 0},
      {"name": "serial", "edits_per_second": 1000.0,
       "query_latency_us": {"p50": 40.0, "p95": 80.0, "p99": 100.0},
       "errors": 0}
    ],
    "concurrent_4_vs_serial_speedup": 2.0
  })";
  const DiffReport report = diff_benchmarks(before, parse(reordered), {});
  EXPECT_TRUE(report.schema_ok) << report.error;
  EXPECT_EQ(report.regression_count(), 0u);
}

TEST(BenchDiffTest, NewFieldsAreFineMissingFieldsAreNot) {
  const obs::JsonValue before = parse(kBaseline);
  // Benches grow fields (queue_depth_max did exactly this): a key only in
  // `after` is not a mismatch.
  std::string grown = kBaseline;
  grown.replace(grown.find("\"errors\": 0"), 11,
                "\"queue_depth_max\": 4, \"errors\": 0");
  EXPECT_TRUE(diff_benchmarks(before, parse(grown), {}).schema_ok);

  // The reverse -- a metric that vanished -- is incompatible artifacts.
  const DiffReport shrunk =
      diff_benchmarks(parse(grown), before, {});
  EXPECT_FALSE(shrunk.schema_ok);
  EXPECT_NE(shrunk.error.find("queue_depth_max"), std::string::npos);
}

TEST(BenchDiffTest, DifferentBenchIdentityIsASchemaMismatch) {
  const obs::JsonValue before = parse(kBaseline);
  std::string other = kBaseline;
  other.replace(other.find("service_throughput"), 18, "parallel_scaling99");
  const DiffReport report = diff_benchmarks(before, parse(other), {});
  EXPECT_FALSE(report.schema_ok);
  EXPECT_NE(report.error.find("bench"), std::string::npos);
  EXPECT_TRUE(report.metrics.empty());
}

TEST(BenchDiffTest, FormatReportMarksRegressions) {
  const obs::JsonValue before = parse(kBaseline);
  std::string degraded = kBaseline;
  degraded.replace(degraded.find("2000.0"), 6, "1600.0");
  DiffOptions options;
  const DiffReport report = diff_benchmarks(before, parse(degraded), options);
  const std::string text = format_report(report, options);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("configs[concurrent_4].edits_per_second"),
            std::string::npos);
  EXPECT_NE(text.find("1 regression(s)"), std::string::npos);
}

}  // namespace
}  // namespace mbrc::benchdiff
