#include <gtest/gtest.h>

#include "ilp/branch_and_bound.hpp"
#include "ilp/set_partition.hpp"
#include "util/rng.hpp"

namespace mbrc::ilp {
namespace {

TEST(BranchAndBound, Knapsack) {
  lp::Model m;
  m.set_sense(lp::Sense::kMaximize);
  const int a = m.add_binary("a", 5);
  const int b = m.add_binary("b", 4);
  const int c = m.add_binary("c", 3);
  m.add_constraint({{a, 2}, {b, 3}, {c, 1}}, lp::Relation::kLessEqual, 5);
  const lp::Solution s = solve_ilp(m);
  ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9.0, 1e-9);  // a + b
}

TEST(BranchAndBound, IntegerRounding) {
  // LP relaxation optimum is fractional; ILP must branch.
  lp::Model m;
  m.set_sense(lp::Sense::kMaximize);
  const int x = m.add_variable("x", 0, 10, 1.0, true);
  const int y = m.add_variable("y", 0, 10, 1.0, true);
  m.add_constraint({{x, 2}, {y, 2}}, lp::Relation::kLessEqual, 7);
  const lp::Solution s = solve_ilp(m);
  ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
  EXPECT_NEAR(s.values[x] + s.values[y], 3.0, 1e-9);
}

TEST(BranchAndBound, InfeasibleInteger) {
  // 2x = 3 has a continuous solution but no integer one.
  lp::Model m;
  const int x = m.add_variable("x", 0, 10, 1.0, true);
  m.add_constraint({{x, 2}}, lp::Relation::kEqual, 3);
  EXPECT_EQ(solve_ilp(m).status, lp::SolveStatus::kInfeasible);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
  // max 3i + 2c s.t. i + c <= 4.5, i integer, c continuous.
  lp::Model m;
  m.set_sense(lp::Sense::kMaximize);
  const int i = m.add_variable("i", 0, 10, 3.0, true);
  const int c = m.add_continuous("c", 2.0, 0.0);
  m.add_constraint({{i, 1}, {c, 1}}, lp::Relation::kLessEqual, 4.5);
  const lp::Solution s = solve_ilp(m);
  ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[i], 4.0, 1e-6);
  EXPECT_NEAR(s.values[c], 0.5, 1e-6);
  EXPECT_NEAR(s.objective, 13.0, 1e-6);
}

TEST(SetPartition, PicksCheapestExactCover) {
  SetPartitionProblem p;
  p.element_count = 3;
  p.candidates = {{{0}, 1.0}, {{1}, 1.0},      {{2}, 1.0},
                  {{0, 1}, 1.5}, {{1, 2}, 1.1}, {{0, 1, 2}, 2.6}};
  const SetPartitionResult r = solve_set_partition(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, 2.1, 1e-9);  // {0} + {1,2}
  EXPECT_EQ(r.chosen, (std::vector<int>{0, 4}));
}

TEST(SetPartition, InfeasibleWithoutFullCover) {
  SetPartitionProblem p;
  p.element_count = 2;
  p.candidates = {{{0}, 1.0}};  // element 1 uncoverable
  EXPECT_FALSE(solve_set_partition(p).feasible);
}

TEST(SetPartition, OverlapForcesSingletons) {
  // The only multi-element candidates overlap, so one of them plus
  // singletons is optimal.
  SetPartitionProblem p;
  p.element_count = 3;
  p.candidates = {{{0}, 1.0},    {{1}, 1.0},    {{2}, 1.0},
                  {{0, 1}, 0.4}, {{1, 2}, 0.5}};
  const SetPartitionResult r = solve_set_partition(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, 1.4, 1e-9);  // {0,1} + {2}
}

TEST(SetPartition, EmptyProblemIsTriviallyFeasible) {
  const SetPartitionResult r = solve_set_partition({});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.objective, 0.0);
  EXPECT_TRUE(r.chosen.empty());
}

TEST(SetPartition, RejectsDuplicateElementInCandidate) {
  SetPartitionProblem p;
  p.element_count = 2;
  p.candidates = {{{0, 0}, 1.0}};
  EXPECT_THROW(solve_set_partition(p), util::AssertionError);
}

// Build a random set-partition instance whose feasibility is guaranteed by
// singletons; used by the cross-validation property below.
SetPartitionProblem random_instance(util::Rng& rng, int elements,
                                    int extra_candidates) {
  SetPartitionProblem p;
  p.element_count = elements;
  for (int e = 0; e < elements; ++e)
    p.candidates.push_back({{e}, rng.uniform_real(0.5, 1.5)});
  for (int c = 0; c < extra_candidates; ++c) {
    SetPartitionCandidate cand;
    const int size =
        static_cast<int>(rng.uniform_int(2, std::min(4, elements)));
    std::vector<int> pool(elements);
    for (int e = 0; e < elements; ++e) pool[e] = e;
    for (int k = 0; k < size; ++k) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
      cand.elements.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    cand.weight = rng.uniform_real(0.2, 2.0);
    p.candidates.push_back(std::move(cand));
  }
  return p;
}

// Property: the specialized set-partition solver and the generic
// simplex-based branch & bound agree on the optimal objective.
TEST(SetPartition, MatchesGenericBranchAndBound) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const SetPartitionProblem p =
        random_instance(rng, static_cast<int>(rng.uniform_int(3, 8)),
                        static_cast<int>(rng.uniform_int(2, 10)));
    const SetPartitionResult fast = solve_set_partition(p);
    ASSERT_TRUE(fast.feasible);

    lp::Model m;
    for (std::size_t c = 0; c < p.candidates.size(); ++c)
      m.add_binary("c" + std::to_string(c), p.candidates[c].weight);
    for (int e = 0; e < p.element_count; ++e) {
      std::vector<lp::Term> terms;
      for (std::size_t c = 0; c < p.candidates.size(); ++c) {
        const auto& elems = p.candidates[c].elements;
        if (std::find(elems.begin(), elems.end(), e) != elems.end())
          terms.push_back({static_cast<int>(c), 1.0});
      }
      m.add_constraint(std::move(terms), lp::Relation::kEqual, 1.0);
    }
    const lp::Solution generic = solve_ilp(m);
    ASSERT_EQ(generic.status, lp::SolveStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(fast.objective, generic.objective, 1e-6) << "trial " << trial;

    // The fast solver's chosen set is a valid partition.
    std::vector<int> cover(p.element_count, 0);
    for (int c : fast.chosen)
      for (int e : p.candidates[c].elements) ++cover[e];
    for (int e = 0; e < p.element_count; ++e) EXPECT_EQ(cover[e], 1);
  }
}

}  // namespace
}  // namespace mbrc::ilp
