// Flow-integrity checker tests: a clean generated design passes every
// check, each planted corruption is caught by the matching check (and only
// that check), and the flow's stage guard runs clean end to end at both
// checking levels.
#include <gtest/gtest.h>

#include <algorithm>

#include "benchgen/generator.hpp"
#include "check/checker.hpp"
#include "mbr/flow.hpp"
#include "sta/timing_engine.hpp"
#include "util/assert.hpp"

namespace mbrc::check {
namespace {

using netlist::CellId;
using netlist::NetId;
using netlist::PinId;

class CheckerFixture : public ::testing::Test {
protected:
  CheckerFixture() : library(lib::make_default_library()) {
    benchgen::DesignProfile profile;
    profile.seed = 77;
    profile.register_cells = 150;
    profile.comb_per_register = 3.0;
    generated.emplace(benchgen::generate_design(library, profile));
  }

  netlist::Design& design() { return generated->design; }

  /// All violations of the full structural check set (no timing).
  CheckReport full_report(const DesignChecker::Baseline& baseline) {
    DesignChecker checker(design());
    checker.check_structure()
        .check_nets()
        .check_placement()
        .check_scan_chains()
        .check_conservation(baseline);
    return checker.report();
  }

  static bool mentions(const CheckReport& report, const std::string& check) {
    return std::any_of(report.violations.begin(), report.violations.end(),
                       [&](const Violation& v) { return v.check == check; });
  }

  lib::Library library;
  std::optional<benchgen::GeneratedDesign> generated;
};

TEST_F(CheckerFixture, CleanDesignPassesEveryCheck) {
  const auto baseline = DesignChecker::capture(design());
  const CheckReport report = full_report(baseline);
  EXPECT_TRUE(report.ok()) << report.to_string();

  sta::TimingOptions timing;
  timing.clock_period = generated->calibrated_clock_period;
  sta::TimingEngine engine(design(), timing);
  DesignChecker checker(design());
  checker.check_timing(engine, {});
  EXPECT_TRUE(checker.report().ok()) << checker.report().to_string();
}

TEST_F(CheckerFixture, OffGridPlacementCaught) {
  const CellId reg = design().registers().front();
  design().cell(reg).position.y += 0.7;  // between rows
  design().notify_moved(reg);
  DesignChecker checker(design());
  checker.check_placement();
  ASSERT_TRUE(mentions(checker.report(), "placement"))
      << checker.report().to_string();
  EXPECT_NE(checker.report().to_string().find("row grid"), std::string::npos);
}

TEST_F(CheckerFixture, OverlapCaught) {
  const auto regs = design().registers();
  ASSERT_GE(regs.size(), 2u);
  design().cell(regs[1]).position = design().cell(regs[0]).position;
  design().notify_moved(regs[1]);
  DesignChecker checker(design());
  checker.check_placement();
  ASSERT_TRUE(mentions(checker.report(), "placement"));
  EXPECT_NE(checker.report().to_string().find("overlap"), std::string::npos);
}

TEST_F(CheckerFixture, OutsideCoreCaught) {
  const CellId reg = design().registers().front();
  design().cell(reg).position.x = design().core().xhi + 5.0;
  design().notify_moved(reg);
  DesignChecker checker(design());
  checker.check_placement();
  ASSERT_TRUE(mentions(checker.report(), "placement"));
  EXPECT_NE(checker.report().to_string().find("outside the core"),
            std::string::npos);
}

TEST_F(CheckerFixture, DanglingNetCaught) {
  // Disconnect the driver of a driven multi-sink signal net: its sinks float.
  for (std::int32_t i = 0; i < design().net_count(); ++i) {
    const netlist::Net& net = design().net(NetId{i});
    if (net.is_clock || !net.driver.valid() || net.sinks.empty()) continue;
    design().disconnect(net.driver);
    break;
  }
  DesignChecker checker(design());
  checker.check_nets();
  ASSERT_TRUE(mentions(checker.report(), "nets"))
      << checker.report().to_string();
  EXPECT_NE(checker.report().to_string().find("no driver"), std::string::npos);
}

TEST_F(CheckerFixture, CorruptedBackReferenceCaught) {
  // Point a connected input pin at a different net without fixing the sink
  // lists -- the classic half-finished rewire.
  for (std::int32_t i = 0; i < design().pin_count(); ++i) {
    netlist::Pin& p = design().pin(PinId{i});
    if (p.is_output || !p.net.valid()) continue;
    p.net = NetId{(p.net.index + 1) % design().net_count()};
    break;
  }
  DesignChecker checker(design());
  checker.check_structure();
  EXPECT_TRUE(mentions(checker.report(), "structure"))
      << checker.report().to_string();
}

TEST_F(CheckerFixture, LostRegisterBitsCaught) {
  const auto baseline = DesignChecker::capture(design());
  design().remove_cell(design().registers().front());
  DesignChecker checker(design());
  checker.check_conservation(baseline);
  ASSERT_TRUE(mentions(checker.report(), "conservation"));
  EXPECT_NE(checker.report().to_string().find("connected register bits"),
            std::string::npos);
}

TEST_F(CheckerFixture, BrokenScanLinkCaught) {
  // Cutting one mid-chain SI link splits a partition chain in two: the walk
  // from the single remaining head no longer covers every element, or a
  // second head appears.
  bool cut = false;
  for (CellId reg : design().registers()) {
    const netlist::Cell& cell = design().cell(reg);
    if (!cell.reg->function.is_scan || cell.scan.partition < 0) continue;
    for (PinId pin_id : cell.pins) {
      const netlist::Pin& p = design().pin(pin_id);
      if (p.role == netlist::PinRole::kScanIn && p.net.valid()) {
        design().disconnect(pin_id);
        cut = true;
        break;
      }
    }
    if (cut) break;
  }
  ASSERT_TRUE(cut) << "generated design has no stitched scan chain";
  DesignChecker checker(design());
  checker.check_scan_chains();
  EXPECT_TRUE(mentions(checker.report(), "scan"))
      << checker.report().to_string();
}

TEST_F(CheckerFixture, StaleTimingEngineCaught) {
  sta::TimingOptions timing;
  timing.clock_period = generated->calibrated_clock_period;
  sta::TimingEngine engine(design(), timing);
  engine.update();

  // Move a register far away *without* notify_moved: the engine's cached
  // report is now stale relative to a fresh run_sta, which is exactly the
  // corruption the paranoid level exists to catch.
  const CellId reg = design().registers().front();
  design().cell(reg).position.x = design().core().xlo;
  design().cell(reg).position.y = design().core().ylo;

  DesignChecker checker(design());
  checker.check_timing(engine, {});
  EXPECT_TRUE(mentions(checker.report(), "timing"))
      << checker.report().to_string();
}

TEST_F(CheckerFixture, EnforceStageThrowsWithStageName) {
  const auto baseline = DesignChecker::capture(design());
  const CellId reg = design().registers().front();
  design().cell(reg).position.y += 0.7;
  design().notify_moved(reg);

  // kOff never throws, whatever the state.
  enforce_stage(design(), "legalize", CheckLevel::kOff, {}, baseline, nullptr,
                {});
  try {
    enforce_stage(design(), "legalize", CheckLevel::kStageBoundaries, {},
                  baseline, nullptr, {});
    FAIL() << "expected a flow-integrity violation";
  } catch (const util::AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("stage 'legalize'"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(CheckerFixture, ExpectationsSkipLegitimatelyBrokenInvariants) {
  const auto baseline = DesignChecker::capture(design());
  const CellId reg = design().registers().front();
  design().cell(reg).position.y += 0.7;
  design().notify_moved(reg);
  StageExpectations expect;
  expect.placement_legal = false;  // mid-flow: apply ran, legalize has not
  enforce_stage(design(), "apply", CheckLevel::kStageBoundaries, expect,
                baseline, nullptr, {});  // no throw
}

// The acceptance-level smoke: a full composition flow runs clean under the
// strictest checking at both checking levels.
TEST(CheckerFlow, ParanoidFlowRunsClean) {
  const lib::Library library = lib::make_default_library();
  benchgen::DesignProfile profile;
  profile.seed = 9;
  profile.register_cells = 300;
  profile.comb_per_register = 4.0;
  for (const CheckLevel level :
       {CheckLevel::kStageBoundaries, CheckLevel::kParanoid}) {
    benchgen::GeneratedDesign generated =
        benchgen::generate_design(library, profile);
    mbr::FlowOptions options;
    options.timing.clock_period = generated.calibrated_clock_period;
    options.check_level = level;
    const mbr::FlowResult r =
        run_composition_flow(generated.design, options);
    EXPECT_GT(r.mbrs_created, 0) << to_string(level);
  }
}

TEST(CheckerFlow, ParanoidCoversDecomposeAndHeuristic) {
  const lib::Library library = lib::make_default_library();
  benchgen::DesignProfile profile;
  profile.seed = 21;
  profile.register_cells = 300;
  profile.width_mix = {{1, 0.3}, {2, 0.2}, {4, 0.2}, {8, 0.3}};
  benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);
  mbr::FlowOptions options;
  options.timing.clock_period = generated.calibrated_clock_period;
  options.check_level = CheckLevel::kParanoid;
  options.decompose_wide_mbrs = true;
  options.allocator = mbr::Allocator::kHeuristic;
  const mbr::FlowResult r = run_composition_flow(generated.design, options);
  EXPECT_GE(r.mbrs_created, 0);
}

}  // namespace
}  // namespace mbrc::check
