#include <gtest/gtest.h>

#include "lib/library.hpp"
#include "netlist/design.hpp"

namespace mbrc::netlist {
namespace {

class DesignFixture : public ::testing::Test {
protected:
  DesignFixture()
      : library(lib::make_default_library()),
        design(&library, {0, 0, 200, 200}) {}

  const lib::RegisterCell* reg_cell(const std::string& name) {
    const lib::RegisterCell* cell = library.register_by_name(name);
    EXPECT_NE(cell, nullptr) << name;
    return cell;
  }

  lib::Library library;
  Design design;
};

TEST_F(DesignFixture, RegisterPinsCreatedPerFunction) {
  const CellId plain =
      design.add_register("r0", reg_cell("DFFP_B2_X1"), {10, 10});
  // 2 D + 2 Q + clock = 5 pins.
  EXPECT_EQ(design.cell(plain).pins.size(), 5u);

  const CellId rst =
      design.add_register("r1", reg_cell("DFFR_B2_X1"), {20, 10});
  EXPECT_EQ(design.cell(rst).pins.size(), 6u);  // + reset

  const CellId scan =
      design.add_register("r2", reg_cell("DFFQ_B4_X1"), {30, 10});
  // 4 D + 4 Q + clk + SE + SI + SO = 12 (internal chain).
  EXPECT_EQ(design.cell(scan).pins.size(), 12u);

  const CellId pbs =
      design.add_register("r3", reg_cell("DFFQ_B4_X1_PBS"), {40, 10});
  // 4 D + 4 Q + clk + SE + 4 SI + 4 SO = 18.
  EXPECT_EQ(design.cell(pbs).pins.size(), 18u);
}

TEST_F(DesignFixture, PinLookupHelpers) {
  const CellId reg =
      design.add_register("r", reg_cell("DFFR_B4_X1"), {10, 10});
  for (int b = 0; b < 4; ++b) {
    const PinId d = design.register_d_pin(reg, b);
    ASSERT_TRUE(d.valid());
    EXPECT_EQ(design.pin(d).bit, b);
    EXPECT_FALSE(design.pin(d).is_output);
    const PinId q = design.register_q_pin(reg, b);
    ASSERT_TRUE(q.valid());
    EXPECT_TRUE(design.pin(q).is_output);
  }
  EXPECT_TRUE(design.register_clock_pin(reg).valid());
  EXPECT_TRUE(design.register_control_pin(reg, PinRole::kReset).valid());
  EXPECT_FALSE(design.register_control_pin(reg, PinRole::kEnable).valid());
}

TEST_F(DesignFixture, ConnectDisconnectMaintainsNets) {
  const CellId reg =
      design.add_register("r", reg_cell("DFFP_B1_X1"), {0, 0});
  const CellId gate = design.add_comb("g", library.comb_by_name("INV_X1"),
                                      {5, 5});
  const NetId net = design.create_net();

  const PinId q = design.register_q_pin(reg, 0);
  PinId gin;
  for (PinId p : design.cell(gate).pins)
    if (!design.pin(p).is_output) gin = p;

  design.connect(q, net);
  design.connect(gin, net);
  EXPECT_EQ(design.net(net).driver, q);
  ASSERT_EQ(design.net(net).sinks.size(), 1u);
  EXPECT_EQ(design.net(net).sinks[0], gin);
  design.check_consistency();

  design.disconnect(q);
  EXPECT_FALSE(design.net(net).driver.valid());
  EXPECT_FALSE(design.pin(q).net.valid());
  design.check_consistency();

  // Double connect must be rejected.
  design.connect(q, net);
  EXPECT_THROW(design.connect(q, net), util::AssertionError);
}

TEST_F(DesignFixture, TwoDriversRejected) {
  const CellId a = design.add_register("a", reg_cell("DFFP_B1_X1"), {0, 0});
  const CellId b = design.add_register("b", reg_cell("DFFP_B1_X1"), {9, 0});
  const NetId net = design.create_net();
  design.connect(design.register_q_pin(a, 0), net);
  EXPECT_THROW(design.connect(design.register_q_pin(b, 0), net),
               util::AssertionError);
}

TEST_F(DesignFixture, RemoveCellDisconnectsAndTombstones) {
  const CellId reg =
      design.add_register("r", reg_cell("DFFP_B1_X1"), {0, 0});
  const NetId net = design.create_net();
  design.connect(design.register_d_pin(reg, 0), net);

  EXPECT_EQ(design.registers().size(), 1u);
  design.remove_cell(reg);
  EXPECT_TRUE(design.cell(reg).dead);
  EXPECT_TRUE(design.net(net).sinks.empty());
  EXPECT_TRUE(design.registers().empty());
  EXPECT_TRUE(design.live_cells().empty());
  EXPECT_THROW(design.remove_cell(reg), util::AssertionError);
  design.check_consistency();
}

TEST_F(DesignFixture, StatsCountLiveCells) {
  design.add_register("r1", reg_cell("DFFP_B4_X1"), {0, 0});
  const CellId r2 =
      design.add_register("r2", reg_cell("DFFP_B1_X1"), {20, 0});
  design.add_comb("g", library.comb_by_name("NAND2_X1"), {40, 0});
  design.add_port("p", true, {0, 100});

  DesignStats stats = design.stats();
  EXPECT_EQ(stats.cells, 3);  // port not counted
  EXPECT_EQ(stats.total_registers, 2);
  EXPECT_EQ(stats.register_bits, 5);
  EXPECT_GT(stats.clock_pin_cap, 0.0);

  design.remove_cell(r2);
  stats = design.stats();
  EXPECT_EQ(stats.total_registers, 1);
  EXPECT_EQ(stats.register_bits, 4);
}

TEST_F(DesignFixture, HpwlAndWireLengthSplit) {
  const CellId a = design.add_register("a", reg_cell("DFFP_B1_X1"), {0, 0});
  const CellId b = design.add_register("b", reg_cell("DFFP_B1_X1"), {30, 40});
  const NetId data = design.create_net();
  design.connect(design.register_q_pin(a, 0), data);
  design.connect(design.register_d_pin(b, 0), data);

  const NetId clock = design.create_net(/*is_clock=*/true);
  design.connect(design.register_clock_pin(a), clock);
  design.connect(design.register_clock_pin(b), clock);

  const double data_hpwl = design.net_hpwl(data);
  EXPECT_GT(data_hpwl, 60.0);  // roughly |dx| + |dy| with pin offsets
  EXPECT_LT(data_hpwl, 80.0);

  const auto wl = design.wire_length();
  EXPECT_GT(wl.clock, 0.0);
  EXPECT_NEAR(wl.other, data_hpwl, 1e-9);

  // Single-pin nets contribute nothing.
  const NetId dangling = design.create_net();
  design.connect(design.register_q_pin(b, 0), dangling);
  EXPECT_DOUBLE_EQ(design.net_hpwl(dangling), 0.0);
}

TEST_F(DesignFixture, SwapRegisterCellPreservesConnectivity) {
  const CellId reg =
      design.add_register("r", reg_cell("DFFP_B4_X1"), {10, 10});
  const NetId net = design.create_net();
  design.connect(design.register_d_pin(reg, 2), net);

  const lib::RegisterCell* stronger = reg_cell("DFFP_B4_X4");
  design.swap_register_cell(reg, stronger);
  EXPECT_EQ(design.cell(reg).reg, stronger);
  EXPECT_EQ(design.pin(design.register_d_pin(reg, 2)).net, net);
  design.check_consistency();

  // Clock pin cap follows the new cell.
  const PinId clk = design.register_clock_pin(reg);
  EXPECT_DOUBLE_EQ(design.pin(clk).cap, stronger->clock_pin_cap);
}

TEST_F(DesignFixture, SwapRejectsIncompatibleCell) {
  const CellId reg =
      design.add_register("r", reg_cell("DFFP_B4_X1"), {10, 10});
  EXPECT_THROW(design.swap_register_cell(reg, reg_cell("DFFP_B2_X1")),
               util::AssertionError);
  EXPECT_THROW(design.swap_register_cell(reg, reg_cell("DFFR_B4_X1")),
               util::AssertionError);
}

TEST_F(DesignFixture, PinPositionsFollowCellMoves) {
  const CellId reg =
      design.add_register("r", reg_cell("DFFP_B1_X1"), {10, 10});
  const PinId d = design.register_d_pin(reg, 0);
  const geom::Point before = design.pin_position(d);
  design.cell(reg).position = {50, 70};
  const geom::Point after = design.pin_position(d);
  EXPECT_NEAR(after.x - before.x, 40.0, 1e-9);
  EXPECT_NEAR(after.y - before.y, 60.0, 1e-9);
}

TEST_F(DesignFixture, PortsHaveSinglePin) {
  const CellId in = design.add_port("in", true, {0, 50});
  const CellId out = design.add_port("out", false, {200, 50});
  ASSERT_EQ(design.cell(in).pins.size(), 1u);
  ASSERT_EQ(design.cell(out).pins.size(), 1u);
  EXPECT_TRUE(design.pin(design.cell(in).pins[0]).is_output);
  EXPECT_FALSE(design.pin(design.cell(out).pins[0]).is_output);
  EXPECT_DOUBLE_EQ(design.cell(in).area(), 0.0);
}

}  // namespace
}  // namespace mbrc::netlist
