#include <gtest/gtest.h>

#include <sstream>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "netlist/io.hpp"

namespace mbrc::netlist {
namespace {

class IoFixture : public ::testing::Test {
protected:
  lib::Library library = lib::make_default_library();
};

TEST_F(IoFixture, RoundTripSmallDesign) {
  Design design(&library, {0, 0, 100, 36});
  const auto* dff = library.register_by_name("DFFR_B2_X1");
  const CellId a = design.add_register("a", dff, {10, 9});
  design.cell(a).fixed = true;
  design.cell(a).scan = {1, 2, 3};
  design.cell(a).gating_group = 4;
  const CellId b = design.add_register("b", dff, {30, 9});
  const CellId port = design.add_port("in0", true, {0, 18});

  const NetId clock = design.create_net(true);
  design.connect(design.register_clock_pin(a), clock);
  design.connect(design.register_clock_pin(b), clock);
  const NetId data = design.create_net();
  design.connect(design.register_q_pin(a, 1), data);
  design.connect(design.register_d_pin(b, 0), data);
  const NetId from_port = design.create_net();
  design.connect(design.cell(port).pins[0], from_port);
  design.connect(design.register_d_pin(a, 0), from_port);

  std::stringstream buffer;
  save_design(design, buffer);
  Design loaded = load_design(library, buffer);

  EXPECT_EQ(loaded.cell_count(), design.cell_count());
  EXPECT_EQ(loaded.net_count(), design.net_count());
  const DesignStats before = design.stats();
  const DesignStats after = loaded.stats();
  EXPECT_EQ(before.total_registers, after.total_registers);
  EXPECT_EQ(before.register_bits, after.register_bits);
  EXPECT_DOUBLE_EQ(before.area, after.area);

  // Attributes survive.
  const CellId la{0};
  EXPECT_EQ(loaded.cell(la).name, "a");
  EXPECT_TRUE(loaded.cell(la).fixed);
  EXPECT_EQ(loaded.cell(la).scan.partition, 1);
  EXPECT_EQ(loaded.cell(la).scan.section, 2);
  EXPECT_EQ(loaded.cell(la).scan.order, 3);
  EXPECT_EQ(loaded.cell(la).gating_group, 4);

  // Wire lengths identical (connectivity + placement preserved).
  EXPECT_DOUBLE_EQ(design.wire_length().clock, loaded.wire_length().clock);
  EXPECT_DOUBLE_EQ(design.wire_length().other, loaded.wire_length().other);
}

TEST_F(IoFixture, SaveIsIdempotent) {
  benchgen::DesignProfile profile;
  profile.register_cells = 150;
  profile.comb_per_register = 3.0;
  benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);

  std::stringstream first;
  save_design(generated.design, first);
  Design loaded = load_design(library, first);
  std::stringstream second;
  save_design(loaded, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST_F(IoFixture, RoundTripSurvivesComposition) {
  benchgen::DesignProfile profile;
  profile.register_cells = 250;
  profile.comb_per_register = 3.0;
  profile.seed = 55;
  benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);

  std::stringstream buffer;
  save_design(generated.design, buffer);
  Design loaded = load_design(library, buffer);

  // The composition flow behaves identically on the loaded copy.
  mbr::FlowOptions options;
  options.timing.clock_period = generated.calibrated_clock_period;
  const mbr::FlowResult original =
      mbr::run_composition_flow(generated.design, options);
  const mbr::FlowResult reloaded = mbr::run_composition_flow(loaded, options);
  EXPECT_EQ(original.mbrs_created, reloaded.mbrs_created);
  EXPECT_EQ(original.after.design.total_registers,
            reloaded.after.design.total_registers);
  EXPECT_DOUBLE_EQ(original.after.clock_cap, reloaded.after.clock_cap);
}

TEST_F(IoFixture, TombstonesCompactedOnSave) {
  Design design(&library, {0, 0, 100, 36});
  const auto* dff = library.register_by_name("DFFP_B1_X1");
  design.add_register("keep0", dff, {10, 9});
  const CellId gone = design.add_register("gone", dff, {20, 9});
  design.add_register("keep1", dff, {30, 9});
  design.remove_cell(gone);

  std::stringstream buffer;
  save_design(design, buffer);
  Design loaded = load_design(library, buffer);
  EXPECT_EQ(loaded.cell_count(), 2);
  EXPECT_EQ(loaded.cell(CellId{1}).name, "keep1");
}

TEST_F(IoFixture, RejectsMalformedInput) {
  {
    std::stringstream bad("not-a-design\n");
    EXPECT_THROW(load_design(library, bad), util::AssertionError);
  }
  {
    std::stringstream bad("mbrc-design 1\ncell x register NO_CELL 0 0 "
                          "0 0 -1 -1 -1 0\n");
    EXPECT_THROW(load_design(library, bad), util::AssertionError);
  }
  {
    std::stringstream bad("mbrc-design 1\ncore 0 0 10 10\nnet signal 1 7 0\n");
    EXPECT_THROW(load_design(library, bad), util::AssertionError);
  }
  {
    std::stringstream bad("mbrc-design 1\n");  // no core
    EXPECT_THROW(load_design(library, bad), util::AssertionError);
  }
}

}  // namespace
}  // namespace mbrc::netlist
