#include <gtest/gtest.h>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace mbrc::lp {
namespace {

TEST(Simplex, TextbookMaximize) {
  Model m;
  const int x = m.add_continuous("x", 3.0, 0.0);
  const int y = m.add_continuous("y", 2.0, 0.0);
  m.set_sense(Sense::kMaximize);
  m.add_constraint({{x, 1}, {y, 1}}, Relation::kLessEqual, 4);
  m.add_constraint({{x, 1}, {y, 3}}, Relation::kLessEqual, 6);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-9);
  EXPECT_NEAR(s.values[x], 4.0, 1e-9);
  EXPECT_NEAR(s.values[y], 0.0, 1e-9);
}

TEST(Simplex, MinimizeWithGreaterEqual) {
  Model m;
  const int a = m.add_continuous("a", 1.0, 0.0);
  const int b = m.add_continuous("b", 1.0, 0.0);
  m.add_constraint({{a, 1}, {b, 2}}, Relation::kGreaterEqual, 3);
  m.add_constraint({{a, 3}, {b, 1}}, Relation::kGreaterEqual, 4);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
  EXPECT_NEAR(s.values[a], 1.0, 1e-9);
  EXPECT_NEAR(s.values[b], 1.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  Model m;
  const int x = m.add_continuous("x", 1.0, 0.0);
  const int y = m.add_continuous("y", 4.0, 0.0);
  m.add_constraint({{x, 1}, {y, 1}}, Relation::kEqual, 5);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);  // all mass on the cheap variable
  EXPECT_NEAR(s.values[x], 5.0, 1e-9);
}

TEST(Simplex, FreeVariableAbsoluteValue) {
  // min t s.t. t >= x - 3, t >= 3 - x with x free: optimum t = 0 at x = 3.
  Model m;
  const int x = m.add_continuous("x");
  const int t = m.add_continuous("t", 1.0, 0.0);
  m.add_constraint({{t, 1}, {x, -1}}, Relation::kGreaterEqual, -3);
  m.add_constraint({{t, 1}, {x, 1}}, Relation::kGreaterEqual, 3);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
  EXPECT_NEAR(s.values[x], 3.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const int x = m.add_continuous("x", 1.0, 0.0, 10.0);
  m.add_constraint({{x, 1}}, Relation::kGreaterEqual, 20);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const int x = m.add_continuous("x", 1.0, 0.0);
  m.set_sense(Sense::kMaximize);
  m.add_constraint({{x, -1}}, Relation::kLessEqual, 0);  // x >= 0, no cap
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, VariableUpperBoundsHonored) {
  Model m;
  const int x = m.add_continuous("x", 1.0, 0.0, 2.5);
  const int y = m.add_continuous("y", 1.0, 0.0, 2.5);
  m.set_sense(Sense::kMaximize);
  m.add_constraint({{x, 1}, {y, 1}}, Relation::kLessEqual, 10);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
}

TEST(Simplex, FixedVariable) {
  Model m;
  const int x = m.add_variable("x", 4.0, 4.0, 1.0);
  const int y = m.add_continuous("y", 1.0, 0.0);
  m.add_constraint({{x, 1}, {y, 1}}, Relation::kGreaterEqual, 7);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 4.0, 1e-9);
  EXPECT_NEAR(s.values[y], 3.0, 1e-9);
}

TEST(Simplex, NegativeLowerBounds) {
  Model m;
  const int x = m.add_continuous("x", 1.0, -5.0, 5.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], -5.0, 1e-9);
}

TEST(Simplex, DegenerateRedundantConstraints) {
  Model m;
  const int x = m.add_continuous("x", 1.0, 0.0);
  m.add_constraint({{x, 1}}, Relation::kGreaterEqual, 2);
  m.add_constraint({{x, 1}}, Relation::kGreaterEqual, 2);  // duplicate
  m.add_constraint({{x, 2}}, Relation::kGreaterEqual, 4);  // scaled duplicate
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
}

TEST(ModelFeasibility, ChecksBoundsConstraintsIntegrality) {
  Model m;
  const int x = m.add_binary("x", 1.0);
  const int y = m.add_continuous("y", 1.0, 0.0, 10.0);
  m.add_constraint({{x, 1}, {y, 1}}, Relation::kLessEqual, 5);
  EXPECT_TRUE(m.is_feasible({1.0, 4.0}));
  EXPECT_FALSE(m.is_feasible({0.5, 4.0}));   // fractional binary
  EXPECT_FALSE(m.is_feasible({1.0, 11.0}));  // bound violated
  EXPECT_FALSE(m.is_feasible({1.0, 4.5}));   // constraint violated
  EXPECT_FALSE(m.is_feasible({1.0}));        // wrong arity
}

// Property: on random feasible LPs (box + <= rows with nonnegative
// coefficients, so 0 is always feasible), the simplex optimum is feasible
// and no random feasible point beats it.
TEST(Simplex, RandomMaximizationDominance) {
  util::Rng rng(123);
  for (int trial = 0; trial < 40; ++trial) {
    Model m;
    const int n = static_cast<int>(rng.uniform_int(2, 6));
    for (int i = 0; i < n; ++i)
      m.add_variable("v" + std::to_string(i), 0.0,
                     rng.uniform_real(1.0, 10.0), rng.uniform_real(0.1, 3.0));
    m.set_sense(Sense::kMaximize);
    const int rows = static_cast<int>(rng.uniform_int(1, 4));
    for (int r = 0; r < rows; ++r) {
      std::vector<Term> terms;
      for (int i = 0; i < n; ++i)
        terms.push_back({i, rng.uniform_real(0.0, 2.0)});
      m.add_constraint(std::move(terms), Relation::kLessEqual,
                       rng.uniform_real(1.0, 12.0));
    }
    const Solution s = solve_lp(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << "trial " << trial;
    EXPECT_TRUE(m.is_feasible(s.values, 1e-6)) << "trial " << trial;

    for (int probe = 0; probe < 30; ++probe) {
      std::vector<double> x(n);
      for (int i = 0; i < n; ++i)
        x[i] = rng.uniform_real(0.0, m.variable(i).upper);
      if (!m.is_feasible(x)) continue;
      EXPECT_LE(m.objective_value(x), s.objective + 1e-6)
          << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace mbrc::lp
