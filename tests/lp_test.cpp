#include <gtest/gtest.h>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace mbrc::lp {
namespace {

TEST(Simplex, TextbookMaximize) {
  Model m;
  const int x = m.add_continuous("x", 3.0, 0.0);
  const int y = m.add_continuous("y", 2.0, 0.0);
  m.set_sense(Sense::kMaximize);
  m.add_constraint({{x, 1}, {y, 1}}, Relation::kLessEqual, 4);
  m.add_constraint({{x, 1}, {y, 3}}, Relation::kLessEqual, 6);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-9);
  EXPECT_NEAR(s.values[x], 4.0, 1e-9);
  EXPECT_NEAR(s.values[y], 0.0, 1e-9);
}

TEST(Simplex, MinimizeWithGreaterEqual) {
  Model m;
  const int a = m.add_continuous("a", 1.0, 0.0);
  const int b = m.add_continuous("b", 1.0, 0.0);
  m.add_constraint({{a, 1}, {b, 2}}, Relation::kGreaterEqual, 3);
  m.add_constraint({{a, 3}, {b, 1}}, Relation::kGreaterEqual, 4);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
  EXPECT_NEAR(s.values[a], 1.0, 1e-9);
  EXPECT_NEAR(s.values[b], 1.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  Model m;
  const int x = m.add_continuous("x", 1.0, 0.0);
  const int y = m.add_continuous("y", 4.0, 0.0);
  m.add_constraint({{x, 1}, {y, 1}}, Relation::kEqual, 5);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);  // all mass on the cheap variable
  EXPECT_NEAR(s.values[x], 5.0, 1e-9);
}

TEST(Simplex, FreeVariableAbsoluteValue) {
  // min t s.t. t >= x - 3, t >= 3 - x with x free: optimum t = 0 at x = 3.
  Model m;
  const int x = m.add_continuous("x");
  const int t = m.add_continuous("t", 1.0, 0.0);
  m.add_constraint({{t, 1}, {x, -1}}, Relation::kGreaterEqual, -3);
  m.add_constraint({{t, 1}, {x, 1}}, Relation::kGreaterEqual, 3);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
  EXPECT_NEAR(s.values[x], 3.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const int x = m.add_continuous("x", 1.0, 0.0, 10.0);
  m.add_constraint({{x, 1}}, Relation::kGreaterEqual, 20);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const int x = m.add_continuous("x", 1.0, 0.0);
  m.set_sense(Sense::kMaximize);
  m.add_constraint({{x, -1}}, Relation::kLessEqual, 0);  // x >= 0, no cap
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, VariableUpperBoundsHonored) {
  Model m;
  const int x = m.add_continuous("x", 1.0, 0.0, 2.5);
  const int y = m.add_continuous("y", 1.0, 0.0, 2.5);
  m.set_sense(Sense::kMaximize);
  m.add_constraint({{x, 1}, {y, 1}}, Relation::kLessEqual, 10);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
}

TEST(Simplex, FixedVariable) {
  Model m;
  const int x = m.add_variable("x", 4.0, 4.0, 1.0);
  const int y = m.add_continuous("y", 1.0, 0.0);
  m.add_constraint({{x, 1}, {y, 1}}, Relation::kGreaterEqual, 7);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 4.0, 1e-9);
  EXPECT_NEAR(s.values[y], 3.0, 1e-9);
}

TEST(Simplex, NegativeLowerBounds) {
  Model m;
  const int x = m.add_continuous("x", 1.0, -5.0, 5.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], -5.0, 1e-9);
}

TEST(Simplex, DegenerateRedundantConstraints) {
  Model m;
  const int x = m.add_continuous("x", 1.0, 0.0);
  m.add_constraint({{x, 1}}, Relation::kGreaterEqual, 2);
  m.add_constraint({{x, 1}}, Relation::kGreaterEqual, 2);  // duplicate
  m.add_constraint({{x, 2}}, Relation::kGreaterEqual, 4);  // scaled duplicate
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
}

// Regression for the hard-coded phase-1 feasibility cutoff. The hand-off
// from phase 1 used to compare the leftover artificial mass against a fixed
// 1e-6 regardless of SimplexOptions::tolerance or problem magnitude; the
// fix scales the user tolerance by the starting infeasibility (sum |rhs|
// over artificial rows).
TEST(Simplex, FeasibilityRespectsUserTolerance) {
  Model m;
  const int x = m.add_continuous("x", 1.0, 0.0, 10.0);
  // Out of reach by 5e-3: a genuine (small) infeasibility, large enough
  // that no pivot tie-breaking can absorb it.
  m.add_constraint({{x, 1}}, Relation::kGreaterEqual, 10.0 + 5e-3);

  // At the default 1e-9 tolerance the program is infeasible...
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);

  // ...but a caller asking for 1e-3 slop gets the near-feasible optimum:
  // the phase-1 cutoff is tolerance * sum|rhs| ~ 1e-2. (The old fixed 1e-6
  // cutoff ignored the option and still said infeasible.)
  SimplexOptions loose;
  loose.tolerance = 1e-3;
  const Solution s = solve_lp(m, loose);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 10.0, 1e-1);
}

TEST(Simplex, FeasibilityToleranceScalesWithMagnitude) {
  // Two equality rows consistent to 5e-11 *relative* precision -- far
  // tighter than any placement data -- but 0.5 apart in absolute terms.
  // At rhs magnitude 1e10 that gap is pivot-rounding noise and the program
  // must solve; the old absolute 1e-6 cutoff declared it infeasible.
  Model big;
  const int x = big.add_continuous("x", 1.0, 0.0);
  const int y = big.add_continuous("y", 0.0, 0.0);
  big.add_constraint({{x, 1}, {y, 1}}, Relation::kEqual, 1e10);
  big.add_constraint({{x, 1}, {y, 1}}, Relation::kEqual, 1e10 + 0.5);
  const Solution s = solve_lp(big);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x] + s.values[y], 1e10, 1.0);

  // The same absolute gap at unit scale is a real inconsistency.
  Model small;
  const int u = small.add_continuous("u", 1.0, 0.0);
  const int v = small.add_continuous("v", 0.0, 0.0);
  small.add_constraint({{u, 1}, {v, 1}}, Relation::kEqual, 1.0);
  small.add_constraint({{u, 1}, {v, 1}}, Relation::kEqual, 1.5);
  EXPECT_EQ(solve_lp(small).status, SolveStatus::kInfeasible);
}

TEST(Simplex, IterationLimitReported) {
  // Two >= rows force phase-1 work that cannot finish in one pivot.
  Model m;
  const int a = m.add_continuous("a", 1.0, 0.0);
  const int b = m.add_continuous("b", 1.0, 0.0);
  m.add_constraint({{a, 1}, {b, 2}}, Relation::kGreaterEqual, 3);
  m.add_constraint({{a, 3}, {b, 1}}, Relation::kGreaterEqual, 4);
  SimplexOptions strangled;
  strangled.max_iterations = 1;
  EXPECT_EQ(solve_lp(m, strangled).status, SolveStatus::kIterationLimit);
}

TEST(Simplex, BealeCyclingResolvedByBland) {
  // Beale's classic cycling example: Dantzig pricing with naive ratio
  // tie-breaking loops forever on these degenerate ties; the stall counter
  // must hand over to Bland's rule and still reach the optimum at 0.05.
  Model m;
  const int x1 = m.add_continuous("x1", 0.75, 0.0);
  const int x2 = m.add_continuous("x2", -150.0, 0.0);
  const int x3 = m.add_continuous("x3", 0.02, 0.0);
  const int x4 = m.add_continuous("x4", -6.0, 0.0);
  m.set_sense(Sense::kMaximize);
  m.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                   Relation::kLessEqual, 0.0);
  m.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                   Relation::kLessEqual, 0.0);
  m.add_constraint({{x3, 1.0}}, Relation::kLessEqual, 1.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.05, 1e-9);
  EXPECT_NEAR(s.values[x3], 1.0, 1e-9);
  EXPECT_TRUE(m.is_feasible(s.values, 1e-9));
}

TEST(Simplex, RedundantEqualityRowsDropped) {
  // The duplicated equality leaves a zero row after phase 1, so its
  // artificial stays basic at zero; eliminate_artificials must park it
  // without declaring the program infeasible.
  Model m;
  const int x = m.add_continuous("x", 1.0, 0.0);
  const int y = m.add_continuous("y", 0.0, 0.0);
  m.add_constraint({{x, 1}, {y, 1}}, Relation::kEqual, 5);
  m.add_constraint({{x, 2}, {y, 2}}, Relation::kEqual, 10);  // same hyperplane
  m.add_constraint({{x, 1}, {y, -1}}, Relation::kEqual, 1);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 3.0, 1e-9);
  EXPECT_NEAR(s.values[y], 2.0, 1e-9);
}

TEST(ModelFeasibility, ChecksBoundsConstraintsIntegrality) {
  Model m;
  const int x = m.add_binary("x", 1.0);
  const int y = m.add_continuous("y", 1.0, 0.0, 10.0);
  m.add_constraint({{x, 1}, {y, 1}}, Relation::kLessEqual, 5);
  EXPECT_TRUE(m.is_feasible({1.0, 4.0}));
  EXPECT_FALSE(m.is_feasible({0.5, 4.0}));   // fractional binary
  EXPECT_FALSE(m.is_feasible({1.0, 11.0}));  // bound violated
  EXPECT_FALSE(m.is_feasible({1.0, 4.5}));   // constraint violated
  EXPECT_FALSE(m.is_feasible({1.0}));        // wrong arity
}

// Property: on random feasible LPs (box + <= rows with nonnegative
// coefficients, so 0 is always feasible), the simplex optimum is feasible
// and no random feasible point beats it.
TEST(Simplex, RandomMaximizationDominance) {
  util::Rng rng(123);
  for (int trial = 0; trial < 40; ++trial) {
    Model m;
    const int n = static_cast<int>(rng.uniform_int(2, 6));
    for (int i = 0; i < n; ++i)
      m.add_variable("v" + std::to_string(i), 0.0,
                     rng.uniform_real(1.0, 10.0), rng.uniform_real(0.1, 3.0));
    m.set_sense(Sense::kMaximize);
    const int rows = static_cast<int>(rng.uniform_int(1, 4));
    for (int r = 0; r < rows; ++r) {
      std::vector<Term> terms;
      for (int i = 0; i < n; ++i)
        terms.push_back({i, rng.uniform_real(0.0, 2.0)});
      m.add_constraint(std::move(terms), Relation::kLessEqual,
                       rng.uniform_real(1.0, 12.0));
    }
    const Solution s = solve_lp(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << "trial " << trial;
    EXPECT_TRUE(m.is_feasible(s.values, 1e-6)) << "trial " << trial;

    for (int probe = 0; probe < 30; ++probe) {
      std::vector<double> x(n);
      for (int i = 0; i < n; ++i)
        x[i] = rng.uniform_real(0.0, m.variable(i).upper);
      if (!m.is_feasible(x)) continue;
      EXPECT_LE(m.objective_value(x), s.objective + 1e-6)
          << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace mbrc::lp
