#include <gtest/gtest.h>

#include <set>

#include "mbr/cliques.hpp"
#include "mbr/worked_example.hpp"
#include "util/rng.hpp"

namespace mbrc::mbr {
namespace {

CompatibilityGraph graph_with(int nodes,
                              const std::vector<std::pair<int, int>>& edges) {
  const WorkedExample example = make_worked_example();
  CompatibilityGraph g;
  for (int i = 0; i < nodes; ++i) g.add_node(example.graph.node(0));
  for (auto [u, v] : edges) g.add_edge(u, v);
  g.finalize();
  return g;
}

std::vector<int> all_nodes(const CompatibilityGraph& g) {
  std::vector<int> nodes(g.node_count());
  for (int i = 0; i < g.node_count(); ++i) nodes[i] = i;
  return nodes;
}

TEST(BronKerbosch, Triangle) {
  const auto g = graph_with(3, {{0, 1}, {1, 2}, {0, 2}});
  const auto cliques = maximal_cliques(g, all_nodes(g));
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], (std::vector<int>{0, 1, 2}));
}

TEST(BronKerbosch, PathGraph) {
  const auto g = graph_with(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto cliques = maximal_cliques(g, all_nodes(g));
  ASSERT_EQ(cliques.size(), 3u);  // the three edges
  EXPECT_EQ(cliques[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(cliques[1], (std::vector<int>{1, 2}));
  EXPECT_EQ(cliques[2], (std::vector<int>{2, 3}));
}

TEST(BronKerbosch, IsolatedNodesAreSingletonCliques) {
  const auto g = graph_with(3, {{0, 1}});
  const auto cliques = maximal_cliques(g, all_nodes(g));
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_EQ(cliques[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(cliques[1], (std::vector<int>{2}));
}

TEST(BronKerbosch, CompleteGraphHasOneClique) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 7; ++i)
    for (int j = i + 1; j < 7; ++j) edges.push_back({i, j});
  const auto g = graph_with(7, edges);
  const auto cliques = maximal_cliques(g, all_nodes(g));
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].size(), 7u);
}

TEST(BronKerbosch, WorkedExampleMaximalCliques) {
  const WorkedExample example = make_worked_example();
  const auto cliques =
      maximal_cliques(example.graph, all_nodes(example.graph));
  // Maximal cliques of Fig. 1: {A,B,C,D}, {A,C,E}, {B,C,F}.
  using WE = WorkedExample;
  const std::set<std::vector<int>> expected = {
      {WE::kA, WE::kB, WE::kC, WE::kD},
      {WE::kA, WE::kC, WE::kE},
      {WE::kB, WE::kC, WE::kF}};
  EXPECT_EQ(std::set<std::vector<int>>(cliques.begin(), cliques.end()),
            expected);
}

TEST(BronKerbosch, SubsetRestriction) {
  const WorkedExample example = make_worked_example();
  using WE = WorkedExample;
  const auto cliques =
      maximal_cliques(example.graph, {WE::kA, WE::kB, WE::kD});
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], (std::vector<int>{WE::kA, WE::kB, WE::kD}));
}

// Property: on random graphs, every reported clique is a real clique, is
// maximal, and every edge is covered by some clique.
TEST(BronKerbosch, RandomGraphProperties) {
  util::Rng rng(31);
  const WorkedExample example = make_worked_example();
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(4, 18));
    CompatibilityGraph g;
    for (int i = 0; i < n; ++i) g.add_node(example.graph.node(0));
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (rng.chance(0.35)) g.add_edge(i, j);
    g.finalize();

    const auto cliques = maximal_cliques(g, all_nodes(g));
    for (const auto& clique : cliques) {
      for (std::size_t a = 0; a < clique.size(); ++a)
        for (std::size_t b = a + 1; b < clique.size(); ++b)
          ASSERT_TRUE(g.has_edge(clique[a], clique[b]));
      // Maximality: no vertex adjacent to the whole clique.
      for (int v = 0; v < n; ++v) {
        if (std::find(clique.begin(), clique.end(), v) != clique.end())
          continue;
        bool adjacent_to_all = true;
        for (int m : clique)
          if (!g.has_edge(v, m)) {
            adjacent_to_all = false;
            break;
          }
        ASSERT_FALSE(adjacent_to_all) << "clique not maximal";
      }
    }
    // Edge coverage.
    for (int i = 0; i < n; ++i) {
      for (int j : g.neighbors(i)) {
        if (j < i) continue;
        bool covered = false;
        for (const auto& clique : cliques) {
          if (std::find(clique.begin(), clique.end(), i) != clique.end() &&
              std::find(clique.begin(), clique.end(), j) != clique.end()) {
            covered = true;
            break;
          }
        }
        ASSERT_TRUE(covered);
      }
    }
  }
}

class PartitionFixture : public ::testing::Test {
protected:
  PartitionFixture()
      : library(lib::make_default_library()),
        design(&library, {0, 0, 400, 40}) {
    // A line of registers along x; one graph node per register, fully
    // connected so partitioning is driven purely by geometry.
    const auto* cell = library.register_by_name("DFFP_B1_X1");
    const netlist::NetId clk = design.create_net(true);
    for (int i = 0; i < 64; ++i) {
      const netlist::CellId reg = design.add_register(
          "r" + std::to_string(i), cell, {i * 6.0, 10.0});
      design.connect(design.register_clock_pin(reg), clk);
      RegisterInfo info;
      info.cell = reg;
      info.lib_cell = cell;
      info.bits = 1;
      info.footprint = design.cell(reg).footprint();
      info.region = info.footprint.inflate(50);
      info.clock_net = clk;
      graph.add_node(info);
    }
    for (int i = 0; i < 64; ++i)
      for (int j = i + 1; j < 64; ++j) graph.add_edge(i, j);
    graph.finalize();
  }

  lib::Library library;
  netlist::Design design;
  CompatibilityGraph graph;
};

TEST_F(PartitionFixture, RespectsBoundAndCoversAllNodes) {
  PartitionOptions options;
  options.max_nodes = 30;
  auto component = graph.connected_components().front();
  const auto parts = partition_component(graph, design, component, options);
  std::set<int> seen;
  for (const auto& part : parts) {
    EXPECT_LE(static_cast<int>(part.size()), 30);
    for (int v : part) EXPECT_TRUE(seen.insert(v).second);  // disjoint
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST_F(PartitionFixture, GeometricSplitKeepsNeighborsTogether) {
  PartitionOptions options;
  options.max_nodes = 16;
  auto component = graph.connected_components().front();
  const auto parts = partition_component(graph, design, component, options);
  ASSERT_EQ(parts.size(), 4u);  // 64 / 16
  // The line is split by x: each part is a contiguous index range.
  for (const auto& part : parts) {
    for (std::size_t k = 1; k < part.size(); ++k)
      EXPECT_EQ(part[k], part[k - 1] + 1);
  }
}

TEST_F(PartitionFixture, SmallComponentLeftIntact) {
  PartitionOptions options;
  options.max_nodes = 64;
  auto component = graph.connected_components().front();
  const auto parts = partition_component(graph, design, component, options);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), 64u);
}

TEST_F(PartitionFixture, PartitionGraphHandlesWholeGraph) {
  PartitionOptions options;
  options.max_nodes = 10;
  const auto parts = partition_graph(graph, design, options);
  std::size_t total = 0;
  for (const auto& part : parts) {
    EXPECT_LE(part.size(), 10u);
    total += part.size();
  }
  EXPECT_EQ(total, 64u);
}

}  // namespace
}  // namespace mbrc::mbr
