#include <gtest/gtest.h>

#include <map>

#include "benchgen/generator.hpp"
#include "mbr/decompose.hpp"
#include "mbr/flow.hpp"
#include "sta/sta.hpp"

namespace mbrc::mbr {
namespace {

using netlist::CellId;
using netlist::NetId;
using netlist::PinRole;

class DecomposeFixture : public ::testing::Test {
protected:
  DecomposeFixture()
      : library(lib::make_default_library()),
        design(&library, {0, 0, 200, 36}) {
    clock = design.create_net(true);
  }

  // An 8-bit register with per-bit D/Q nets and shared clock/reset.
  CellId add_wide(const std::string& name, geom::Point pos,
                  bool with_reset = true) {
    const auto* cell = library.register_by_name(with_reset ? "DFFR_B8_X1"
                                                           : "DFFP_B8_X1");
    const CellId reg = design.add_register(name, cell, pos);
    design.connect(design.register_clock_pin(reg), clock);
    if (with_reset) {
      if (!reset.valid()) {
        reset = design.create_net();
        const auto* inv = library.comb_by_name("INV_X1");
        const CellId driver = design.add_comb("rst", inv, {0, 0});
        design.connect(design.cell(driver).pins.back(), reset);
      }
      design.connect(design.register_control_pin(reg, PinRole::kReset),
                     reset);
    }
    for (int b = 0; b < 8; ++b) {
      d_nets[name].push_back(design.create_net());
      design.connect(design.register_d_pin(reg, b), d_nets[name].back());
      q_nets[name].push_back(design.create_net());
      design.connect(design.register_q_pin(reg, b), q_nets[name].back());
    }
    return reg;
  }

  lib::Library library;
  netlist::Design design;
  NetId clock, reset;
  std::map<std::string, std::vector<NetId>> d_nets, q_nets;
};

TEST_F(DecomposeFixture, SplitsEightIntoTwoFours) {
  const CellId wide = add_wide("w", {50, 9});
  const DecomposeResult result = decompose_registers(design);
  EXPECT_EQ(result.registers_split, 1);
  EXPECT_EQ(result.pieces_created, 2);
  EXPECT_TRUE(design.cell(wide).dead);
  design.check_consistency();

  ASSERT_EQ(result.pieces.size(), 2u);
  for (int p = 0; p < 2; ++p) {
    const netlist::Cell& piece = design.cell(result.pieces[p]);
    EXPECT_EQ(piece.reg->bits, 4);
    EXPECT_EQ(piece.reg->function.has_reset, true);
    // Bit connectivity: piece p bit b == original bit p*4+b.
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(design.pin(design.register_d_pin(result.pieces[p], b)).net,
                d_nets["w"][p * 4 + b]);
      EXPECT_EQ(design.pin(design.register_q_pin(result.pieces[p], b)).net,
                q_nets["w"][p * 4 + b]);
    }
    EXPECT_EQ(design.register_clock_net(result.pieces[p]), clock);
    EXPECT_EQ(
        design.pin(design.register_control_pin(result.pieces[p],
                                                PinRole::kReset)).net,
        reset);
  }
  // Register bits conserved.
  EXPECT_EQ(design.stats().register_bits, 8);
}

TEST_F(DecomposeFixture, SkipsFixedAndSectionLocked) {
  const CellId fixed = add_wide("fixed", {20, 9});
  design.cell(fixed).fixed = true;
  const CellId sectioned = add_wide("sectioned", {60, 9});
  design.cell(sectioned).scan.section = 1;
  design.cell(sectioned).scan.order = 0;

  const DecomposeResult result = decompose_registers(design);
  EXPECT_EQ(result.registers_split, 0);
  EXPECT_FALSE(design.cell(fixed).dead);
  EXPECT_FALSE(design.cell(sectioned).dead);
}

TEST_F(DecomposeFixture, SkipsNarrowRegisters) {
  const auto* small = library.register_by_name("DFFP_B4_X1");
  design.add_register("small", small, {20, 9});
  const DecomposeResult result = decompose_registers(design);
  EXPECT_EQ(result.registers_split, 0);
}

TEST_F(DecomposeFixture, PieceWidthMustDivide) {
  add_wide("w", {50, 9});
  DecomposeOptions odd;
  odd.min_bits = 8;
  odd.piece_bits = 3;  // 8 % 3 != 0 -> skipped
  const DecomposeResult result = decompose_registers(design, odd);
  EXPECT_EQ(result.registers_split, 0);
}

TEST_F(DecomposeFixture, SlackGateUsesWorstConstrainedBit) {
  // Planted corruption scenario for the slack gate (S3 regression): wide
  // register "a" has a comfortable D side (short path from "s") and a
  // critical Q side (a deep inverter chain into "b"). The gate used to
  // average the two sides, and the comfortable D side dragged (d+q)/2
  // above min_slack -- so the critical bank was split even though its
  // pieces' feasible regions were pinned by the real slack. The gate must
  // key on the worst *constrained* bit, min(d, q).
  const CellId a = add_wide("a", {20, 9});
  const CellId s = add_wide("s", {10, 9});
  const CellId b = add_wide("b", {190, 9});
  const auto* inv = library.comb_by_name("INV_X1");

  const auto chain_pins = [&](CellId cell, bool output) {
    for (netlist::PinId p : design.cell(cell).pins)
      if (design.pin(p).is_output == output) return p;
    return netlist::PinId{};
  };
  // Short hop s.Q[0] -> inv -> a.D[0]: "a" gets a comfortable D slack.
  const CellId feed = design.add_comb("feed", inv, {15, 9});
  design.connect(chain_pins(feed, false), q_nets["s"][0]);
  design.connect(chain_pins(feed, true), d_nets["a"][0]);
  // Deep chain a.Q[0] -> inv* -> b.D[0] zig-zagging across the core:
  // "a"'s Q slack sinks below the gate (assertions below pin that).
  NetId prev = q_nets["a"][0];
  const int kStages = 8;
  for (int i = 0; i < kStages; ++i) {
    const double x = (i % 2 == 0) ? 190.0 : 30.0;
    const CellId stage =
        design.add_comb("chain" + std::to_string(i), inv, {x, 20});
    design.connect(chain_pins(stage, false), prev);
    if (i + 1 == kStages) {
      design.connect(chain_pins(stage, true), d_nets["b"][0]);
    } else {
      prev = design.create_net();
      design.connect(chain_pins(stage, true), prev);
    }
  }

  sta::TimingOptions timing;
  const sta::TimingReport report = sta::run_sta(design, timing);
  DecomposeOptions options;  // min_slack = 0.02

  // Preconditions that make this the regression scenario: Q critical, D
  // comfortable, and the old averaged gate would have passed.
  const double d = report.register_d_slack(design, a);
  const double q = report.register_q_slack(design, a);
  ASSERT_NE(d, sta::kNoRequired);
  ASSERT_NE(q, sta::kNoRequired);
  ASSERT_LT(q, options.min_slack) << "chain not deep enough";
  ASSERT_GE(d, options.min_slack);
  ASSERT_GE((d + q) / 2, options.min_slack)
      << "average would reject too: scenario lost its teeth";

  const DecomposeResult result =
      decompose_registers(design, options, &report);
  EXPECT_FALSE(design.cell(a).dead) << "critical bank must stay intact";
  EXPECT_FALSE(design.cell(b).dead) << "critical D side must gate too";
  // "s" (unconstrained D side, comfortable Q side) is the control: the
  // gate still opens for genuinely slack-rich registers.
  EXPECT_TRUE(design.cell(s).dead);
  EXPECT_EQ(result.registers_split, 1);
}

TEST_F(DecomposeFixture, TimingEndpointsPreserved) {
  add_wide("w", {50, 9});
  sta::TimingOptions timing;
  const int before = sta::run_sta(design, timing).total_endpoints();
  decompose_registers(design);
  const int after = sta::run_sta(design, timing).total_endpoints();
  EXPECT_EQ(before, after);
}

TEST(DecomposeFlow, EndToEndStructuralSafety) {
  // The paper defers decompose-and-recompose to future work; our
  // implementation shows why: on dense 8-bit-rich designs the stranded
  // pieces cost more clock capacitance than the cross-merges gain (see
  // bench/ablation_decompose). This test pins the structural guarantees:
  // the flow stays consistent, splits happen on slack-rich registers, no
  // data bit is lost, and the recombine pass bounds the damage.
  const lib::Library library = lib::make_default_library();
  benchgen::DesignProfile profile;
  profile.name = "d4ish";
  profile.seed = 404;
  profile.register_cells = 800;
  profile.comb_per_register = 4.0;
  profile.width_mix = {{1, 0.15}, {2, 0.10}, {4, 0.20}, {8, 0.55}};
  profile.failing_endpoint_fraction = 0.12;  // slack so the gate opens

  mbr::Metrics plain_after, decomposed_after;
  std::int64_t plain_connected = 0, decomposed_connected = 0;
  for (const bool decompose : {false, true}) {
    benchgen::GeneratedDesign generated =
        benchgen::generate_design(library, profile);
    // Connected D bits are invariant under any amount of re-grouping.
    const auto connected_bits = [&]() {
      std::int64_t bits = 0;
      for (netlist::CellId reg : generated.design.registers())
        for (int b = 0; b < generated.design.cell(reg).reg->bits; ++b)
          bits += generated.design
                      .pin(generated.design.register_d_pin(reg, b))
                      .net.valid();
      return bits;
    };
    const std::int64_t before_bits = connected_bits();
    FlowOptions options;
    options.timing.clock_period = generated.calibrated_clock_period;
    options.decompose_wide_mbrs = decompose;
    const FlowResult result =
        run_composition_flow(generated.design, options);
    generated.design.check_consistency();
    EXPECT_EQ(connected_bits(), before_bits);
    if (decompose) {
      decomposed_after = result.after;
      decomposed_connected = connected_bits();
      EXPECT_GT(result.decomposition.registers_split, 0);
    } else {
      plain_after = result.after;
      plain_connected = connected_bits();
      EXPECT_EQ(result.decomposition.registers_split, 0);
    }
  }
  EXPECT_EQ(plain_connected, decomposed_connected);
  // The recombine pass keeps the clock-cap regression bounded.
  EXPECT_LE(decomposed_after.clock_cap, plain_after.clock_cap * 1.20);
}

}  // namespace
}  // namespace mbrc::mbr
