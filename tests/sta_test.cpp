#include <gtest/gtest.h>

#include "lib/library.hpp"
#include "netlist/design.hpp"
#include "sta/feasible_region.hpp"
#include "sta/sta.hpp"
#include "sta/useful_skew.hpp"

namespace mbrc::sta {
namespace {

using netlist::CellId;
using netlist::Design;
using netlist::NetId;
using netlist::PinId;

// A two-stage pipeline: regA -> INV -> regB, with an input port feeding
// regA's D through a NAND and regB's Q driving an output port.
class PipelineFixture : public ::testing::Test {
protected:
  PipelineFixture()
      : library(lib::make_default_library()),
        design(&library, {0, 0, 200, 40}) {
    const auto* dff = library.register_by_name("DFFP_B1_X1");
    const auto* inv = library.comb_by_name("INV_X1");
    const auto* nand = library.comb_by_name("NAND2_X1");

    reg_a = design.add_register("a", dff, {20, 10});
    reg_b = design.add_register("b", dff, {120, 10});
    gate = design.add_comb("inv", inv, {70, 10});
    input_gate = design.add_comb("nand", nand, {5, 10});
    in_port = design.add_port("in", true, {0, 10});
    out_port = design.add_port("out", false, {200, 10});

    clock = design.create_net(true);
    design.connect(design.register_clock_pin(reg_a), clock);
    design.connect(design.register_clock_pin(reg_b), clock);

    // in -> nand(both inputs) -> a.D
    const NetId in_net = design.create_net();
    design.connect(design.cell(in_port).pins[0], in_net);
    for (PinId p : design.cell(input_gate).pins)
      if (!design.pin(p).is_output) design.connect(p, in_net);
    const NetId nand_out = design.create_net();
    design.connect(comb_out(input_gate), nand_out);
    design.connect(design.register_d_pin(reg_a, 0), nand_out);

    // a.Q -> inv -> b.D
    const NetId aq = design.create_net();
    design.connect(design.register_q_pin(reg_a, 0), aq);
    design.connect(comb_in(gate), aq);
    const NetId invout = design.create_net();
    design.connect(comb_out(gate), invout);
    design.connect(design.register_d_pin(reg_b, 0), invout);

    // b.Q -> out
    const NetId bq = design.create_net();
    design.connect(design.register_q_pin(reg_b, 0), bq);
    design.connect(design.cell(out_port).pins[0], bq);
  }

  PinId comb_out(CellId cell) {
    for (PinId p : design.cell(cell).pins)
      if (design.pin(p).is_output) return p;
    return PinId{};
  }
  PinId comb_in(CellId cell) {
    for (PinId p : design.cell(cell).pins)
      if (!design.pin(p).is_output) return p;
    return PinId{};
  }

  lib::Library library;
  Design design;
  CellId reg_a, reg_b, gate, input_gate, in_port, out_port;
  NetId clock;
};

TEST_F(PipelineFixture, EndpointsAndArrivalStructure) {
  TimingOptions options;
  options.clock_period = 1.0;
  const TimingReport report = run_sta(design, options);

  // Endpoints: a.D, b.D, out port.
  EXPECT_EQ(report.total_endpoints(), 3);

  const PinId ad = design.register_d_pin(reg_a, 0);
  const PinId bd = design.register_d_pin(reg_b, 0);
  EXPECT_GT(report.arrival[ad.index], 0.0);
  EXPECT_GT(report.arrival[bd.index], 0.0);
  // b.D arrival = clk->Q of a + wire + inv + wire: longer than a.D's short
  // input path.
  EXPECT_GT(report.arrival[bd.index], report.arrival[ad.index]);
}

TEST_F(PipelineFixture, SlackScalesWithClockPeriod) {
  TimingOptions fast;
  fast.clock_period = 0.05;
  TimingOptions slow;
  slow.clock_period = 2.0;
  const TimingReport r_fast = run_sta(design, fast);
  const TimingReport r_slow = run_sta(design, slow);
  EXPECT_LT(r_fast.wns(), 0.0);
  EXPECT_GT(r_fast.failing_endpoints(), 0);
  EXPECT_EQ(r_slow.failing_endpoints(), 0);
  EXPECT_DOUBLE_EQ(r_slow.tns(), 0.0);
  // Every endpoint's slack moves by exactly the period difference.
  for (std::size_t i = 0; i < r_fast.endpoints.size(); ++i) {
    EXPECT_NEAR(r_slow.endpoints[i].slack - r_fast.endpoints[i].slack,
                2.0 - 0.05, 1e-9);
  }
}

TEST_F(PipelineFixture, SkewShiftsSlacksWithKnownSigns) {
  TimingOptions options;
  options.clock_period = 1.0;
  const TimingReport base = run_sta(design, options);

  SkewMap skew;
  skew[reg_b] = 0.1;  // capture later at b
  const TimingReport shifted = run_sta(design, options, skew);

  // b.D slack improves by +0.1 (later capture).
  EXPECT_NEAR(shifted.register_d_slack(design, reg_b),
              base.register_d_slack(design, reg_b) + 0.1, 1e-9);
  // a.D is unaffected by b's skew.
  EXPECT_NEAR(shifted.register_d_slack(design, reg_a),
              base.register_d_slack(design, reg_a), 1e-9);
  // b.Q side (to the output port) degrades by 0.1.
  EXPECT_NEAR(shifted.register_q_slack(design, reg_b),
              base.register_q_slack(design, reg_b) - 0.1, 1e-9);
}

TEST_F(PipelineFixture, RegisterSlackHelpers) {
  TimingOptions options;
  options.clock_period = 1.0;
  const TimingReport report = run_sta(design, options);
  // a: D constrained by the input cone, Q by b.D through the inverter.
  EXPECT_NE(report.register_d_slack(design, reg_a), kNoRequired);
  EXPECT_NE(report.register_q_slack(design, reg_a), kNoRequired);
  // The Q-side slack of a equals the D slack of b (same path, no skew).
  EXPECT_NEAR(report.register_q_slack(design, reg_a),
              report.register_d_slack(design, reg_b), 1e-9);
}

TEST_F(PipelineFixture, CombinationalCycleDetected) {
  // Create a loop: inv output feeds the nand input net... build a dedicated
  // loop with two inverters.
  const auto* inv = library.comb_by_name("INV_X1");
  const CellId i1 = design.add_comb("loop1", inv, {150, 20});
  const CellId i2 = design.add_comb("loop2", inv, {160, 20});
  const NetId n1 = design.create_net();
  const NetId n2 = design.create_net();
  design.connect(comb_out(i1), n1);
  design.connect(comb_in(i2), n1);
  design.connect(comb_out(i2), n2);
  design.connect(comb_in(i1), n2);
  TimingOptions options;
  EXPECT_THROW(run_sta(design, options), util::AssertionError);
}

TEST_F(PipelineFixture, DeadCellsIgnored) {
  TimingOptions options;
  options.clock_period = 1.0;
  design.remove_cell(reg_b);
  const TimingReport report = run_sta(design, options);
  // b.D is gone; the out port is still connected to its (now undriven) net
  // but has no arrival, so it is not reported. Only a.D remains.
  EXPECT_EQ(report.total_endpoints(), 1);
}

TEST_F(PipelineFixture, UsefulSkewImprovesWorstSlack) {
  // Pick a period where b.D fails but a has margin.
  TimingOptions options;
  options.clock_period = 0.12;
  const TimingReport before = run_sta(design, options);
  ASSERT_LT(before.register_d_slack(design, reg_b), 0.0);

  UsefulSkewOptions skew_options;
  skew_options.iterations = 6;
  const UsefulSkewResult result =
      optimize_useful_skew(design, options, skew_options);
  EXPECT_GE(result.report.tns(), before.tns());
  EXPECT_GE(result.report.register_d_slack(design, reg_b),
            before.register_d_slack(design, reg_b));
}

TEST_F(PipelineFixture, UsefulSkewNeverCreatesNewViolations) {
  TimingOptions options;
  options.clock_period = 0.2;
  const TimingReport before = run_sta(design, options);
  const int failing_before = before.failing_endpoints();

  UsefulSkewOptions skew_options;
  const UsefulSkewResult result =
      optimize_useful_skew(design, options, skew_options);
  EXPECT_LE(result.report.failing_endpoints(), failing_before);
}

TEST_F(PipelineFixture, UsefulSkewRespectsAllowedSet) {
  TimingOptions options;
  options.clock_period = 0.12;
  std::unordered_set<CellId> allowed = {reg_a};
  const UsefulSkewResult result =
      optimize_useful_skew(design, options, {}, {}, &allowed);
  EXPECT_FALSE(result.skew.contains(reg_b));
}

TEST_F(PipelineFixture, FeasibleRegionGrowsWithSlack) {
  TimingOptions slack_rich;
  slack_rich.clock_period = 3.0;
  TimingOptions tight;
  tight.clock_period = 0.12;
  const TimingReport rich = run_sta(design, slack_rich);
  const TimingReport poor = run_sta(design, tight);

  FeasibleRegionOptions region_options;
  const geom::Rect big =
      timing_feasible_region(design, rich, reg_b, region_options);
  const geom::Rect small =
      timing_feasible_region(design, poor, reg_b, region_options);
  EXPECT_GT(big.area(), small.area());
  // The register's own footprint is always inside its region.
  EXPECT_TRUE(big.overlaps(design.cell(reg_b).footprint()));
  EXPECT_TRUE(small.overlaps(design.cell(reg_b).footprint()));
}

TEST_F(PipelineFixture, FeasibleRegionClampedToCore) {
  TimingOptions options;
  options.clock_period = 10.0;  // huge slack
  const TimingReport report = run_sta(design, options);
  const geom::Rect region =
      timing_feasible_region(design, report, reg_a, {});
  const geom::Rect core = design.core();
  EXPECT_GE(region.xlo, core.xlo);
  EXPECT_LE(region.xhi, core.xhi);
  EXPECT_GE(region.ylo, core.ylo);
  EXPECT_LE(region.yhi, core.yhi);
}

TEST(SlackToDistance, Conversion) {
  FeasibleRegionOptions options;
  options.delay_per_um = 0.002;
  options.max_radius = 100.0;
  EXPECT_DOUBLE_EQ(slack_to_distance(-0.5, options), 0.0);
  EXPECT_DOUBLE_EQ(slack_to_distance(0.0, options), 0.0);
  EXPECT_DOUBLE_EQ(slack_to_distance(0.1, options), 50.0);
  EXPECT_DOUBLE_EQ(slack_to_distance(10.0, options), 100.0);  // clamped
  EXPECT_DOUBLE_EQ(slack_to_distance(kNoRequired, options), 100.0);
}

}  // namespace
}  // namespace mbrc::sta

namespace mbrc::sta {
namespace {

// Hold-analysis tests appended alongside the setup suite above.
class HoldFixture : public ::testing::Test {
protected:
  HoldFixture()
      : library(lib::make_default_library()),
        design(&library, {0, 0, 100, 20}) {
    // Two registers with a very short direct path a.Q -> b.D: the classic
    // hold hazard; plus a longer path b.Q -> inv -> a.D.
    const auto* dff = library.register_by_name("DFFP_B1_X1");
    const auto* inv = library.comb_by_name("INV_X1");
    reg_a = design.add_register("a", dff, {10, 9});
    reg_b = design.add_register("b", dff, {14, 9});
    const netlist::CellId gate = design.add_comb("inv", inv, {50, 9});

    const netlist::NetId clock = design.create_net(true);
    design.connect(design.register_clock_pin(reg_a), clock);
    design.connect(design.register_clock_pin(reg_b), clock);

    const netlist::NetId short_net = design.create_net();
    design.connect(design.register_q_pin(reg_a, 0), short_net);
    design.connect(design.register_d_pin(reg_b, 0), short_net);

    const netlist::NetId bq = design.create_net();
    design.connect(design.register_q_pin(reg_b, 0), bq);
    netlist::PinId gin, gout;
    for (netlist::PinId p : design.cell(gate).pins)
      (design.pin(p).is_output ? gout : gin) = p;
    design.connect(gin, bq);
    const netlist::NetId back = design.create_net();
    design.connect(gout, back);
    design.connect(design.register_d_pin(reg_a, 0), back);
  }

  lib::Library library;
  netlist::Design design;
  netlist::CellId reg_a, reg_b;
};

TEST_F(HoldFixture, CleanWithoutSkew) {
  TimingOptions options;
  options.clock_period = 1.0;
  const TimingReport report = run_sta(design, options);
  EXPECT_EQ(report.failing_hold_endpoints(), 0);
  EXPECT_GE(report.hold_wns(), 0.0);
  // The short hop has little hold margin; the long path has plenty.
  const double short_margin = report.register_d_hold_slack(design, reg_b);
  const double long_margin = report.register_d_hold_slack(design, reg_a);
  EXPECT_LT(short_margin, long_margin);
  EXPECT_GE(short_margin, 0.0);
}

TEST_F(HoldFixture, CaptureSkewConsumesHoldSlack) {
  TimingOptions options;
  options.clock_period = 1.0;
  const TimingReport base = run_sta(design, options);
  const double margin = base.register_d_hold_slack(design, reg_b);
  ASSERT_GT(margin, 0.0);

  // Push b's clock later by more than the margin: the short hop now fails
  // hold.
  SkewMap skew;
  skew[reg_b] = margin + 0.02;
  const TimingReport shifted = run_sta(design, options, skew);
  EXPECT_GT(shifted.failing_hold_endpoints(), 0);
  EXPECT_LT(shifted.hold_wns(), 0.0);
  EXPECT_NEAR(shifted.register_d_hold_slack(design, reg_b),
              -0.02, 1e-9);
}

TEST_F(HoldFixture, LaunchSkewEarlierConsumesDownstreamHold) {
  TimingOptions options;
  options.clock_period = 1.0;
  const TimingReport base = run_sta(design, options);
  const double q_margin = base.register_q_hold_slack(design, reg_a);
  ASSERT_GT(q_margin, 0.0);

  SkewMap skew;
  skew[reg_a] = -(q_margin + 0.02);  // launch earlier than the margin allows
  const TimingReport shifted = run_sta(design, options, skew);
  EXPECT_GT(shifted.failing_hold_endpoints(), 0);
}

TEST_F(HoldFixture, UsefulSkewStaysHoldClean) {
  // Tight period: setup wants big skews, but the optimizer must not buy
  // setup slack with hold violations.
  TimingOptions options;
  options.clock_period = 0.08;
  const UsefulSkewResult result = optimize_useful_skew(design, options, {});
  EXPECT_EQ(result.report.failing_hold_endpoints(), 0)
      << "hold_wns=" << result.report.hold_wns();
}

}  // namespace
}  // namespace mbrc::sta
