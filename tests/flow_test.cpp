// Deeper end-to-end flow tests: invariants the paper claims, ablation
// switches, and determinism.
#include <gtest/gtest.h>

#include <optional>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"

namespace mbrc::mbr {
namespace {

class FlowFixture : public ::testing::Test {
protected:
  FlowFixture() : library(lib::make_default_library()) {
    profile.name = "flowtest";
    profile.seed = 4242;
    profile.register_cells = 600;
    profile.comb_per_register = 5.0;
  }

  FlowResult run(FlowOptions options = {},
                 std::optional<benchgen::GeneratedDesign>* keep = nullptr) {
    benchgen::GeneratedDesign generated =
        benchgen::generate_design(library, profile);
    options.timing.clock_period = generated.calibrated_clock_period;
    FlowResult result = run_composition_flow(generated.design, options);
    generated.design.check_consistency();
    if (keep) keep->emplace(std::move(generated));
    return result;
  }

  lib::Library library;
  benchgen::DesignProfile profile;
};

TEST_F(FlowFixture, HeadlineShape) {
  const FlowResult r = run();
  // Registers drop by a double-digit percentage.
  const double save =
      1.0 - static_cast<double>(r.after.design.total_registers) /
                static_cast<double>(r.before.design.total_registers);
  EXPECT_GT(save, 0.10);
  // Clock tree shrinks.
  EXPECT_LT(r.after.clock_cap, r.before.clock_cap);
  EXPECT_LE(r.after.clock_buffers, r.before.clock_buffers);
  EXPECT_LT(r.after.clock_wire, r.before.clock_wire);
  // Composable registers shrink faster than total (they are the target).
  EXPECT_LT(r.after.composable_registers, r.before.composable_registers);
  // Area does not blow up (incomplete MBRs capped at 5% of *their* members;
  // total area must stay within a fraction of a percent).
  EXPECT_LT(r.after.design.area, r.before.design.area * 1.005);
  // Timing: TNS within noise of the base (the paper reports no degradation).
  EXPECT_GE(r.after.tns, r.before.tns * 1.05);
  // Congestion within noise.
  EXPECT_LE(r.after.overflow_edges, r.before.overflow_edges * 1.10 + 5);
}

TEST_F(FlowFixture, AccountingIdentities) {
  const FlowResult r = run();
  EXPECT_EQ(r.before.design.total_registers - r.registers_merged +
                r.mbrs_created,
            r.after.design.total_registers);
  EXPECT_GE(r.registers_merged, 2 * r.mbrs_created);
  EXPECT_GE(r.incomplete_mbrs, 0);
  EXPECT_LE(r.incomplete_mbrs, r.mbrs_created);
  EXPECT_TRUE(r.legalization.success);
  EXPECT_GT(r.restitch.chains, 0);
}

TEST_F(FlowFixture, Deterministic) {
  const FlowResult a = run();
  const FlowResult b = run();
  EXPECT_EQ(a.mbrs_created, b.mbrs_created);
  EXPECT_EQ(a.registers_merged, b.registers_merged);
  EXPECT_EQ(a.after.design.total_registers, b.after.design.total_registers);
  EXPECT_DOUBLE_EQ(a.after.clock_cap, b.after.clock_cap);
  EXPECT_DOUBLE_EQ(a.after.tns, b.after.tns);
  EXPECT_EQ(a.after.overflow_edges, b.after.overflow_edges);
}

TEST_F(FlowFixture, IncompleteMbrsIncreaseMerging) {
  FlowOptions with;
  FlowOptions without;
  without.composition.enumeration.allow_incomplete = false;
  const FlowResult r_with = run(with);
  const FlowResult r_without = run(without);
  EXPECT_GE(r_with.registers_merged, r_without.registers_merged);
  EXPECT_EQ(r_without.incomplete_mbrs, 0);
}

TEST_F(FlowFixture, WeightsAblationTradesCongestionForCount) {
  FlowOptions weighted;
  FlowOptions unweighted;
  unweighted.composition.enumeration.use_weights = false;
  const FlowResult r_on = run(weighted);
  const FlowResult r_off = run(unweighted);
  // Weights-off merges at least as many registers (no blocked-candidate
  // refusals)...
  EXPECT_LE(r_off.after.design.total_registers,
            r_on.after.design.total_registers);
  // ...and the weighted flow never has more overflow than weights-off plus
  // noise (the paper's rationale for the weights).
  EXPECT_LE(r_on.after.overflow_edges,
            r_off.after.overflow_edges + 10);
}

TEST_F(FlowFixture, HeuristicAllocatorRunsEndToEnd) {
  FlowOptions options;
  options.allocator = Allocator::kHeuristic;
  const FlowResult r = run(options);
  EXPECT_GT(r.mbrs_created, 0);
  EXPECT_LT(r.after.design.total_registers,
            r.before.design.total_registers);
}

TEST_F(FlowFixture, SkewOnlyAppliesToNewMbrs) {
  std::optional<benchgen::GeneratedDesign> generated;
  FlowOptions options;
  const FlowResult r = run(options, &generated);
  for (const auto& [cell, value] : r.skew) {
    EXPECT_FALSE(generated->design.cell(cell).dead);
    // Every skewed cell is one of the freshly created MBRs (name prefix).
    EXPECT_EQ(generated->design.cell(cell).name.rfind("mbrc_", 0), 0u)
        << generated->design.cell(cell).name;
  }
}

TEST_F(FlowFixture, FlowNeverCreatesHoldViolations) {
  // Hold-aware useful skew and sizing: a hold-clean design stays hold-clean
  // through composition (the paper's "without degrading timing", min-delay
  // side).
  const FlowResult r = run();
  EXPECT_EQ(r.before.failing_hold_endpoints, 0);
  EXPECT_EQ(r.after.failing_hold_endpoints, 0);
  EXPECT_GE(r.after.hold_wns, 0.0);
}

TEST_F(FlowFixture, SkewDisabledLeavesMapEmpty) {
  FlowOptions options;
  options.apply_useful_skew = false;
  const FlowResult r = run(options);
  EXPECT_TRUE(r.skew.empty());
}

TEST_F(FlowFixture, PartitionBoundShrinksQoR) {
  FlowOptions normal;    // bound 30
  FlowOptions crippled;
  crippled.composition.partition.max_nodes = 4;
  const FlowResult r30 = run(normal);
  const FlowResult r4 = run(crippled);
  // The paper: bounds below ~20 lose QoR. With bound 4 the candidate space
  // collapses, so fewer registers are merged.
  EXPECT_LT(r4.registers_merged, r30.registers_merged);
}

TEST_F(FlowFixture, MappedCellsRespectDriveRule) {
  std::optional<benchgen::GeneratedDesign> generated;
  FlowOptions options;
  options.size_new_mbrs = false;  // keep the mapper's drive choice
  run(options, &generated);
  // For every new MBR, its drive resistance must not exceed the strongest
  // X1 default (2.4): trivially true; the stronger check -- it maps the
  // smallest clock-cap qualifying cell -- is covered in lib_test. Here we
  // check the flow-level outcome: no new MBR is weaker than the weakest
  // library drive.
  for (netlist::CellId reg : generated->design.registers()) {
    const netlist::Cell& cell = generated->design.cell(reg);
    if (cell.name.rfind("mbrc_", 0) != 0) continue;
    EXPECT_LE(cell.reg->drive_resistance, 2.4 + 1e-9);
  }
}

TEST(EvaluateDesign, StandaloneMetrics) {
  const lib::Library library = lib::make_default_library();
  benchgen::DesignProfile profile;
  profile.register_cells = 200;
  profile.comb_per_register = 3.0;
  benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);
  FlowOptions options;
  options.timing.clock_period = generated.calibrated_clock_period;
  const Metrics m = evaluate_design(generated.design, options);
  EXPECT_EQ(m.design.total_registers, 200);
  EXPECT_GT(m.composable_registers, 0);
  EXPECT_LE(m.composable_registers, 200);
  EXPECT_GT(m.total_endpoints, 0);
  EXPECT_GE(m.failing_endpoints, 0);
  EXPECT_GT(m.clock_cap, 0.0);
  EXPECT_GT(m.signal_wire, 0.0);
}

}  // namespace
}  // namespace mbrc::mbr
