// Deeper end-to-end flow tests: invariants the paper claims, ablation
// switches, and determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "sta/timing_engine.hpp"

namespace mbrc::mbr {
namespace {

class FlowFixture : public ::testing::Test {
protected:
  FlowFixture() : library(lib::make_default_library()) {
    profile.name = "flowtest";
    profile.seed = 4242;
    profile.register_cells = 600;
    profile.comb_per_register = 5.0;
  }

  FlowResult run(FlowOptions options = {},
                 std::optional<benchgen::GeneratedDesign>* keep = nullptr) {
    benchgen::GeneratedDesign generated =
        benchgen::generate_design(library, profile);
    options.timing.clock_period = generated.calibrated_clock_period;
    FlowResult result = run_composition_flow(generated.design, options);
    generated.design.check_consistency();
    if (keep) keep->emplace(std::move(generated));
    return result;
  }

  lib::Library library;
  benchgen::DesignProfile profile;
};

TEST_F(FlowFixture, HeadlineShape) {
  const FlowResult r = run();
  // Registers drop by a double-digit percentage.
  const double save =
      1.0 - static_cast<double>(r.after.design.total_registers) /
                static_cast<double>(r.before.design.total_registers);
  EXPECT_GT(save, 0.10);
  // Clock tree shrinks.
  EXPECT_LT(r.after.clock_cap, r.before.clock_cap);
  EXPECT_LE(r.after.clock_buffers, r.before.clock_buffers);
  EXPECT_LT(r.after.clock_wire, r.before.clock_wire);
  // Composable registers shrink faster than total (they are the target).
  EXPECT_LT(r.after.composable_registers, r.before.composable_registers);
  // Area does not blow up (incomplete MBRs capped at 5% of *their* members;
  // total area must stay within a fraction of a percent).
  EXPECT_LT(r.after.design.area, r.before.design.area * 1.005);
  // Timing: TNS within noise of the base (the paper reports no degradation).
  EXPECT_GE(r.after.tns, r.before.tns * 1.05);
  // Congestion within noise.
  EXPECT_LE(r.after.overflow_edges, r.before.overflow_edges * 1.10 + 5);
}

TEST_F(FlowFixture, AccountingIdentities) {
  const FlowResult r = run();
  EXPECT_EQ(r.before.design.total_registers - r.registers_merged +
                r.mbrs_created,
            r.after.design.total_registers);
  EXPECT_GE(r.registers_merged, 2 * r.mbrs_created);
  EXPECT_GE(r.incomplete_mbrs, 0);
  EXPECT_LE(r.incomplete_mbrs, r.mbrs_created);
  EXPECT_TRUE(r.legalization.success);
  EXPECT_GT(r.restitch.chains, 0);
}

TEST_F(FlowFixture, Deterministic) {
  const FlowResult a = run();
  const FlowResult b = run();
  EXPECT_EQ(a.mbrs_created, b.mbrs_created);
  EXPECT_EQ(a.registers_merged, b.registers_merged);
  EXPECT_EQ(a.after.design.total_registers, b.after.design.total_registers);
  EXPECT_DOUBLE_EQ(a.after.clock_cap, b.after.clock_cap);
  EXPECT_DOUBLE_EQ(a.after.tns, b.after.tns);
  EXPECT_EQ(a.after.overflow_edges, b.after.overflow_edges);
}

TEST_F(FlowFixture, IncompleteMbrsIncreaseMerging) {
  FlowOptions with;
  FlowOptions without;
  without.composition.enumeration.allow_incomplete = false;
  const FlowResult r_with = run(with);
  const FlowResult r_without = run(without);
  EXPECT_GE(r_with.registers_merged, r_without.registers_merged);
  EXPECT_EQ(r_without.incomplete_mbrs, 0);
}

TEST_F(FlowFixture, WeightsAblationTradesCongestionForCount) {
  FlowOptions weighted;
  FlowOptions unweighted;
  unweighted.composition.enumeration.use_weights = false;
  const FlowResult r_on = run(weighted);
  const FlowResult r_off = run(unweighted);
  // Weights-off merges at least as many registers (no blocked-candidate
  // refusals)...
  EXPECT_LE(r_off.after.design.total_registers,
            r_on.after.design.total_registers);
  // ...and the weighted flow never has more overflow than weights-off plus
  // noise (the paper's rationale for the weights).
  EXPECT_LE(r_on.after.overflow_edges,
            r_off.after.overflow_edges + 10);
}

TEST_F(FlowFixture, HeuristicAllocatorRunsEndToEnd) {
  FlowOptions options;
  options.allocator = Allocator::kHeuristic;
  const FlowResult r = run(options);
  EXPECT_GT(r.mbrs_created, 0);
  EXPECT_LT(r.after.design.total_registers,
            r.before.design.total_registers);
}

TEST_F(FlowFixture, SkewOnlyAppliesToNewMbrs) {
  std::optional<benchgen::GeneratedDesign> generated;
  FlowOptions options;
  const FlowResult r = run(options, &generated);
  for (const auto& [cell, value] : r.skew) {
    EXPECT_FALSE(generated->design.cell(cell).dead);
    // Every skewed cell is one of the freshly created MBRs (name prefix).
    EXPECT_EQ(generated->design.cell(cell).name.rfind("mbrc_", 0), 0u)
        << generated->design.cell(cell).name;
  }
}

TEST_F(FlowFixture, FlowNeverCreatesHoldViolations) {
  // Hold-aware useful skew and sizing: a hold-clean design stays hold-clean
  // through composition (the paper's "without degrading timing", min-delay
  // side).
  const FlowResult r = run();
  EXPECT_EQ(r.before.failing_hold_endpoints, 0);
  EXPECT_EQ(r.after.failing_hold_endpoints, 0);
  EXPECT_GE(r.after.hold_wns, 0.0);
}

TEST_F(FlowFixture, SkewDisabledLeavesMapEmpty) {
  FlowOptions options;
  options.apply_useful_skew = false;
  const FlowResult r = run(options);
  EXPECT_TRUE(r.skew.empty());
}

TEST_F(FlowFixture, PartitionBoundShrinksQoR) {
  FlowOptions normal;    // bound 30
  FlowOptions crippled;
  crippled.composition.partition.max_nodes = 4;
  const FlowResult r30 = run(normal);
  const FlowResult r4 = run(crippled);
  // The paper: bounds below ~20 lose QoR. With bound 4 the candidate space
  // collapses, so fewer registers are merged.
  EXPECT_LT(r4.registers_merged, r30.registers_merged);
}

TEST_F(FlowFixture, MappedCellsRespectDriveRule) {
  std::optional<benchgen::GeneratedDesign> generated;
  FlowOptions options;
  options.size_new_mbrs = false;  // keep the mapper's drive choice
  run(options, &generated);
  // For every new MBR, its drive resistance must not exceed the strongest
  // X1 default (2.4): trivially true; the stronger check -- it maps the
  // smallest clock-cap qualifying cell -- is covered in lib_test. Here we
  // check the flow-level outcome: no new MBR is weaker than the weakest
  // library drive.
  for (netlist::CellId reg : generated->design.registers()) {
    const netlist::Cell& cell = generated->design.cell(reg);
    if (cell.name.rfind("mbrc_", 0) != 0) continue;
    EXPECT_LE(cell.reg->drive_resistance, 2.4 + 1e-9);
  }
}

// Debank-loop tests run on a pressured variant of the flow profile: an
// 8-bit-rich width mix plus a high failing-endpoint fraction, so the
// post-composition design actually carries timing-critical MBRs for the
// loop to split.
class DebankFixture : public FlowFixture {
protected:
  DebankFixture() {
    profile.failing_endpoint_fraction = 0.50;
    profile.width_mix = {{1, 0.35}, {2, 0.20}, {4, 0.25}, {8, 0.20}};
  }

  static double combined(const CostModel& cost, const Metrics& m) {
    return cost.combined_cost(m.tns, m.clock_power_uw + 1e-3 * m.leakage_nw,
                              m.design.area);
  }
};

TEST_F(DebankFixture, LoopConvergesWithMonotoneCost) {
  FlowOptions options;
  options.debank_loop = true;
  const FlowResult r = run(options);
  // Terminates within the iteration budget.
  ASSERT_LE(r.debank_iterations.size(),
            static_cast<std::size_t>(options.debank.max_iterations));
  // The pressured profile must actually exercise the loop (otherwise the
  // monotonicity checks below are vacuous).
  ASSERT_FALSE(r.debank_iterations.empty());
  for (std::size_t i = 0; i < r.debank_iterations.size(); ++i) {
    const FlowResult::DebankIteration& it = r.debank_iterations[i];
    EXPECT_GT(it.banks_split, 0);
    EXPECT_GE(it.pieces_created, 2 * it.banks_split);
    if (it.accepted) {
      // Accepted iterations strictly improve the combined cost...
      EXPECT_LT(it.cost_after, it.cost_before);
    } else {
      // ...and a rejected iteration is reverted and ends the loop.
      EXPECT_EQ(i + 1, r.debank_iterations.size());
    }
    // The running best threads through: each iteration starts from the
    // last accepted cost (monotone non-increasing trajectory).
    if (i > 0 && r.debank_iterations[i - 1].accepted)
      EXPECT_DOUBLE_EQ(it.cost_before, r.debank_iterations[i - 1].cost_after);
  }
  // final_cost is the combined cost of the final metrics, and it never
  // exceeds the loop's entry cost (the first iteration's cost_before).
  EXPECT_DOUBLE_EQ(r.final_cost, combined(options.cost, r.after));
  EXPECT_LE(r.final_cost, r.debank_iterations.front().cost_before + 1e-9);
  // Hold protection: the loop may not mint hold violations.
  EXPECT_EQ(r.after.failing_hold_endpoints, 0);
}

TEST_F(DebankFixture, LoopImprovesTnsAtAlphaDominantCost) {
  FlowOptions plain;
  FlowOptions loop;
  loop.debank_loop = true;
  const FlowResult r_plain = run(plain);
  const FlowResult r_loop = run(loop);
  // Everything before the loop is deterministic and identical, so the loop
  // entry state equals the plain result; with the default alpha-dominant
  // cost (pure TNS), any accepted iteration strictly improved TNS.
  EXPECT_LE(r_loop.final_cost, r_plain.final_cost);
  const bool accepted_any =
      std::any_of(r_loop.debank_iterations.begin(),
                  r_loop.debank_iterations.end(),
                  [](const FlowResult::DebankIteration& it) {
                    return it.accepted;
                  });
  if (accepted_any) EXPECT_GT(r_loop.after.tns, r_plain.after.tns);
}

TEST_F(DebankFixture, BetaGammaDominantNeverRegressesPowerOrArea) {
  FlowOptions plain;
  FlowOptions loop;
  plain.cost.alpha = loop.cost.alpha = 0.02;
  plain.cost.beta = loop.cost.beta = 1.0;
  plain.cost.gamma = loop.cost.gamma = 0.3;
  loop.debank_loop = true;
  const FlowResult r_plain = run(plain);
  const FlowResult r_loop = run(loop);
  // The accept gate keys on the beta/gamma-dominant combined cost, so the
  // loop can only improve the power/area-weighted objective relative to
  // the plain flow -- debanking never buys timing with power or area here.
  EXPECT_LE(r_loop.final_cost, r_plain.final_cost);
}

TEST_F(DebankFixture, JobsInvariantBitIdentical) {
  FlowOptions serial_options;
  FlowOptions parallel_options;
  serial_options.debank_loop = parallel_options.debank_loop = true;
  serial_options.jobs = 1;
  parallel_options.jobs = 8;
  const FlowResult a = run(serial_options);
  const FlowResult b = run(parallel_options);
  // The determinism contract extends through the debank loop: counters,
  // the full iteration trajectory, and the final cost are bit-identical
  // at any jobs setting.
  EXPECT_TRUE(a.counters == b.counters);
  EXPECT_EQ(a.mbrs_created, b.mbrs_created);
  EXPECT_EQ(a.registers_merged, b.registers_merged);
  EXPECT_EQ(a.final_cost, b.final_cost);
  ASSERT_EQ(a.debank_iterations.size(), b.debank_iterations.size());
  for (std::size_t i = 0; i < a.debank_iterations.size(); ++i) {
    const FlowResult::DebankIteration& x = a.debank_iterations[i];
    const FlowResult::DebankIteration& y = b.debank_iterations[i];
    EXPECT_EQ(x.banks_split, y.banks_split);
    EXPECT_EQ(x.pieces_created, y.pieces_created);
    EXPECT_EQ(x.mbrs_created, y.mbrs_created);
    EXPECT_EQ(x.cost_before, y.cost_before);
    EXPECT_EQ(x.cost_after, y.cost_after);
    EXPECT_EQ(x.tns, y.tns);
    EXPECT_EQ(x.clock_power_uw, y.clock_power_uw);
    EXPECT_EQ(x.area, y.area);
    EXPECT_EQ(x.accepted, y.accepted);
  }
}

// Regression for the stale-report sizing bug: two coupled MBRs where the
// first swap physically degrades the second cell's timing. `b` drives the
// bit-7 D pin of the wide 8-bit MBR `a`; when the sizer upsizes `a` (X1 ->
// X4 for its own long Q path), `a`'s footprint grows and its D7 pin moves
// several microns away from `b`, stretching `b`'s Q net. `b` -- calibrated
// to sit a hair above zero slack before the swap -- goes underwater and
// must upsize to X2, but only a *fresh* post-swap report shows that. The
// old code queried the timing report once before the loop, so `b` kept its
// comfortable pre-swap slack and stayed at X1, leaving a setup violation
// the sizer was specifically asked to repair.
TEST(SizeNewMbrs, CoupledMbrsSizedAgainstFreshReport) {
  using netlist::CellId;
  using netlist::NetId;
  using netlist::PinId;

  const lib::Library library = lib::make_default_library();
  netlist::Design design(&library, {0, 0, 4000, 9});
  const auto* dff8 = library.register_by_name("DFFP_B8_X1");
  const auto* dff8_x4 = library.register_by_name("DFFP_B8_X4");
  const auto* dff2 = library.register_by_name("DFFP_B2_X1");
  const auto* dff1 = library.register_by_name("DFFP_B1_X1");
  ASSERT_NE(dff8, nullptr);
  ASSERT_NE(dff8_x4, nullptr);

  // b ----(~1500 um)----> a.D7        (b's Q path; endpoint at a)
  //                       a.Q0 ----(~2000 um)----> c.D0   (a's critical path)
  // All on row 0 with free space to the right of each cell, so widening
  // swaps are always placement-eligible.
  const CellId b = design.add_register("b", dff2, {0, 0});
  const CellId a = design.add_register("a", dff8, {1486, 0});
  const CellId c = design.add_register("c", dff1, {3480, 0});

  const NetId clock = design.create_net(true);
  for (CellId reg : {a, b, c})
    design.connect(design.register_clock_pin(reg), clock);

  const NetId bq = design.create_net();
  design.connect(design.register_q_pin(b, 0), bq);
  design.connect(design.register_d_pin(a, 7), bq);
  const NetId aq = design.create_net();
  design.connect(design.register_q_pin(a, 0), aq);
  design.connect(design.register_d_pin(c, 0), aq);

  // The sizer's own load estimate (wire term plus sink caps) sets the
  // decision thresholds.
  const auto sizer_load = [&](CellId reg) {
    double load = 0.0;
    for (int bit = 0; bit < design.cell(reg).reg->bits; ++bit) {
      const PinId q = design.register_q_pin(reg, bit);
      if (!design.pin(q).net.valid()) continue;
      load = std::max(load, design.net_hpwl(design.pin(q).net) * 0.2);
      for (PinId s : design.net(design.pin(q).net).sinks)
        load += design.pin(s).cap;
    }
    return load;
  };
  const double load_a = sizer_load(a);
  const double load_b = sizer_load(b);

  // Calibrate the clock period so b's Q slack sits `margin` above zero
  // (slack shifts 1:1 with the period): against the pre-swap report b
  // accepts X1 and never swaps.
  const double margin = 3e-3;
  sta::TimingOptions timing;
  timing.clock_period = 1.0;
  const sta::TimingReport coarse = run_sta(design, timing);
  const double qb_at_one = coarse.register_q_slack(design, b);
  ASSERT_NE(qb_at_one, sta::kNoRequired);
  timing.clock_period = 1.0 - qb_at_one + margin;

  // Preconditions that pin the scenario in the interesting window.
  const sta::TimingReport probe = run_sta(design, timing);
  const double qa = probe.register_q_slack(design, a);
  // a must skip X2 (repairs < 75% of its deficit) and accept X4:
  //   -2.4e-3 * load_a <= qa < -1.6e-3 * load_a, with ~10 ps to spare.
  ASSERT_LT(qa, -1.6e-3 * load_a - 0.01);
  ASSERT_GT(qa, -2.4e-3 * load_a + 0.01);
  // Both upsizes must clear the hold guard.
  ASSERT_GT(probe.register_q_hold_slack(design, a), 1.8e-3 * load_a + 0.01);
  ASSERT_GT(probe.register_q_hold_slack(design, b), 1.2e-3 * load_b + 0.01);

  // The coupling must dominate the margin: after a grows to X4, b's Q
  // slack (longer net, larger driver load, longer wire into a.D7) must
  // drop well below zero. Measured on a scratch copy.
  {
    netlist::Design scratch = design;
    scratch.swap_register_cell(a, dff8_x4);
    const sta::TimingReport swapped = run_sta(scratch, timing);
    ASSERT_LT(swapped.register_q_slack(scratch, b), -margin / 2)
        << "a's footprint growth no longer degrades b past the margin";
  }

  sta::TimingEngine engine(design, timing);
  size_new_mbrs(design, {a, b}, {}, engine);

  // `a` takes the X4 step its own deficit demands...
  EXPECT_DOUBLE_EQ(design.cell(a).reg->drive_resistance, 0.6);
  // ...and `b`, deciding on the fresh post-swap report, sees the slack its
  // stretched net just lost and upsizes to X2. (The stale report still
  // showed +margin, so the unfixed sizer left b at X1.)
  EXPECT_DOUBLE_EQ(design.cell(b).reg->drive_resistance, 1.2);

  const sta::TimingReport after = run_sta(design, timing);
  EXPECT_GE(after.register_q_slack(design, b), 0.0);
  EXPECT_GT(after.register_q_slack(design, a), qa);  // a's deficit shrank
  EXPECT_EQ(after.failing_hold_endpoints(), 0);
}

TEST(EvaluateDesign, StandaloneMetrics) {
  const lib::Library library = lib::make_default_library();
  benchgen::DesignProfile profile;
  profile.register_cells = 200;
  profile.comb_per_register = 3.0;
  benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);
  FlowOptions options;
  options.timing.clock_period = generated.calibrated_clock_period;
  const Metrics m = evaluate_design(generated.design, options);
  EXPECT_EQ(m.design.total_registers, 200);
  EXPECT_GT(m.composable_registers, 0);
  EXPECT_LE(m.composable_registers, 200);
  EXPECT_GT(m.total_endpoints, 0);
  EXPECT_GE(m.failing_endpoints, 0);
  EXPECT_GT(m.clock_cap, 0.0);
  EXPECT_GT(m.signal_wire, 0.0);
}

}  // namespace
}  // namespace mbrc::mbr
