// map_candidate (Sec. 4.1) in isolation: drive-resistance matching, clock
// cap preference, scan-style selection, bit ordering and the incomplete-MBR
// area fallback.
#include <gtest/gtest.h>

#include "mbr/mapping.hpp"
#include "mbr/worked_example.hpp"
#include "netlist/design.hpp"
#include "sta/sta.hpp"

namespace mbrc::mbr {
namespace {

using netlist::CellId;
using netlist::Design;

class MappingFixture : public ::testing::Test {
protected:
  MappingFixture()
      : library(lib::make_default_library()),
        design(&library, {0, 0, 300, 36}) {
    clock = design.create_net(true);
  }

  // Adds a register at `pos` and returns its graph node index.
  int add_node(const std::string& cell_name, geom::Point pos) {
    const auto* cell = library.register_by_name(cell_name);
    EXPECT_NE(cell, nullptr) << cell_name;
    const CellId reg =
        design.add_register("r" + std::to_string(counter++), cell, pos);
    design.connect(design.register_clock_pin(reg), clock);
    RegisterInfo info;
    info.cell = reg;
    info.lib_cell = cell;
    info.bits = cell->bits;
    info.footprint = design.cell(reg).footprint();
    info.region = info.footprint.inflate(60);
    info.drive_resistance = cell->drive_resistance;
    info.clock_net = clock;
    return graph.add_node(info);
  }

  Candidate candidate_over(std::vector<int> nodes, int mapped_width = 0) {
    Candidate c;
    c.nodes = std::move(nodes);
    for (int n : c.nodes) c.bits += graph.node(n).bits;
    c.mapped_width = mapped_width == 0 ? c.bits : mapped_width;
    c.common_region = {0, 0, 300, 36};
    return c;
  }

  lib::Library library;
  Design design;
  netlist::NetId clock;
  CompatibilityGraph graph;
  int counter = 0;
};

TEST_F(MappingFixture, DriveMatchesStrongestMember) {
  const int weak = add_node("DFFP_B2_X1", {10, 9});
  const int strong = add_node("DFFP_B2_X4", {20, 9});
  const auto mapping =
      map_candidate(design, graph, candidate_over({weak, strong}));
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ(mapping->cell->bits, 4);
  // Must be at least as strong as the X4 member (resistance 0.6).
  EXPECT_LE(mapping->cell->drive_resistance, 0.6 + 1e-9);
}

TEST_F(MappingFixture, WeakMembersGetWeakCell) {
  const int a = add_node("DFFP_B2_X1", {10, 9});
  const int b = add_node("DFFP_B2_X1", {20, 9});
  const auto mapping = map_candidate(design, graph, candidate_over({a, b}));
  ASSERT_TRUE(mapping.has_value());
  // X1 suffices, and it has the lowest clock-pin cap among qualifiers.
  EXPECT_NEAR(mapping->cell->drive_resistance, 2.4, 1e-9);
}

TEST_F(MappingFixture, BitOffsetsCoverMembersInOrder) {
  const int a = add_node("DFFP_B1_X1", {30, 9});
  const int b = add_node("DFFP_B2_X1", {10, 9});
  const int c = add_node("DFFP_B1_X1", {20, 9});
  const auto mapping =
      map_candidate(design, graph, candidate_over({a, b, c}));
  ASSERT_TRUE(mapping.has_value());
  ASSERT_EQ(mapping->member_order.size(), 3u);
  // Spatial order (x ascending): b (10), c (20), a (30).
  EXPECT_EQ(mapping->member_order[0], b);
  EXPECT_EQ(mapping->member_order[1], c);
  EXPECT_EQ(mapping->member_order[2], a);
  EXPECT_EQ(mapping->bit_offset, (std::vector<int>{0, 2, 3}));
}

TEST_F(MappingFixture, ScanSectionMembersLeadTheBitOrder) {
  const int free_node = add_node("DFFQ_B1_X1", {5, 9});
  const int free_node2 = add_node("DFFQ_B1_X1", {8, 9});
  const int s1 = add_node("DFFQ_B1_X1", {40, 9});
  const int s0 = add_node("DFFQ_B1_X1", {60, 9});
  graph.node_mutable(s0).scan = {0, 3, 0};
  graph.node_mutable(s1).scan = {0, 3, 1};
  graph.node_mutable(free_node).scan = {0, -1, -1};
  graph.node_mutable(free_node2).scan = {0, -1, -1};

  Candidate c = candidate_over({free_node, free_node2, s1, s0});
  c.needs_per_bit_scan = candidate_needs_per_bit_scan(graph, c.nodes);
  EXPECT_TRUE(c.needs_per_bit_scan);  // section + free mix
  const auto mapping = map_candidate(design, graph, c);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ(mapping->cell->scan_style, lib::ScanStyle::kPerBitPins);
  // Section members first, in section order, despite their x positions.
  EXPECT_EQ(mapping->member_order[0], s0);
  EXPECT_EQ(mapping->member_order[1], s1);
  EXPECT_EQ(mapping->member_order[2], free_node);
}

TEST_F(MappingFixture, IncompleteFallsBackToAreaFeasibleVariant) {
  // Strong member forces an X4 map; if the X4 8-bit cell busts the area
  // budget, the mapper falls back to the strongest variant that fits
  // rather than abandoning the merge.
  const int a = add_node("DFFP_B4_X4", {10, 9});
  const int b = add_node("DFFP_B2_X1", {20, 9});
  const int c = add_node("DFFP_B1_X1", {30, 9});
  Candidate cand = candidate_over({a, b, c}, /*mapped_width=*/8);
  ASSERT_TRUE(cand.is_incomplete());

  MappingOptions options;
  options.incomplete_area_overhead = 0.35;  // X1 fits, X4 does not
  std::string why;
  const auto mapping = map_candidate(design, graph, cand, options, &why);
  ASSERT_TRUE(mapping.has_value()) << why;
  double replaced = 0.0;
  for (int n : cand.nodes) replaced += graph.node(n).lib_cell->area;
  EXPECT_LE(mapping->cell->area, replaced * 1.35 + 1e-9);
  // It is not the weakest available either: strongest-fitting wins.
  const auto all = library.cells_for(lib::RegisterFunction{}, 8);
  double weakest = 0.0;
  for (const auto* v : all) weakest = std::max(weakest, v->drive_resistance);
  EXPECT_LE(mapping->cell->drive_resistance, weakest);
}

TEST_F(MappingFixture, RejectsWhenNothingFits) {
  const int a = add_node("DFFP_B1_X1", {10, 9});
  const int b = add_node("DFFP_B1_X1", {20, 9});
  Candidate cand = candidate_over({a, b}, /*mapped_width=*/8);
  std::string why;
  const auto mapping = map_candidate(design, graph, cand, {}, &why);
  EXPECT_FALSE(mapping.has_value());  // 2 bits on an 8-bit: hopeless area
  EXPECT_FALSE(why.empty());
}

TEST_F(MappingFixture, UnknownWidthRejected) {
  const int a = add_node("DFFP_B1_X1", {10, 9});
  const int b = add_node("DFFP_B1_X1", {20, 9});
  const int c = add_node("DFFP_B1_X1", {30, 9});
  Candidate cand = candidate_over({a, b, c});  // 3 bits, no 3-bit cell
  std::string why;
  EXPECT_FALSE(map_candidate(design, graph, cand, {}, &why).has_value());
  EXPECT_NE(why.find("no library cell"), std::string::npos);
}

}  // namespace
}  // namespace mbrc::mbr
