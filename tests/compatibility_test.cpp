#include <gtest/gtest.h>

#include "mbr/compatibility.hpp"
#include "mbr/worked_example.hpp"

namespace mbrc::mbr {
namespace {

// Builds a RegisterInfo for rule tests without a backing design.
RegisterInfo info_at(const lib::Library& library, geom::Point position,
                     double d_slack, double q_slack, double radius = 30.0) {
  RegisterInfo info;
  info.lib_cell = library.cells_for(lib::RegisterFunction{}, 1).front();
  info.bits = 1;
  info.footprint = {position.x, position.y, position.x + 2.5,
                    position.y + 1.8};
  info.region = info.footprint.inflate(radius);
  info.d_slack = d_slack;
  info.q_slack = q_slack;
  info.drive_resistance = 2.4;
  info.clock_net = netlist::NetId{0};
  return info;
}

class RuleFixture : public ::testing::Test {
protected:
  lib::Library library = lib::make_default_library();
  CompatibilityOptions options;
};

TEST_F(RuleFixture, FunctionalRequiresSameNets) {
  RegisterInfo a = info_at(library, {0, 0}, 0.1, 0.1);
  RegisterInfo b = info_at(library, {5, 0}, 0.1, 0.1);
  EXPECT_TRUE(functionally_compatible(a, b));
  b.clock_net = netlist::NetId{1};
  EXPECT_FALSE(functionally_compatible(a, b));
  b.clock_net = a.clock_net;
  b.gating_group = 3;
  EXPECT_FALSE(functionally_compatible(a, b));
  b.gating_group = a.gating_group;
  b.reset_net = netlist::NetId{9};
  EXPECT_FALSE(functionally_compatible(a, b));
}

TEST_F(RuleFixture, FunctionalRequiresSameClass) {
  RegisterInfo a = info_at(library, {0, 0}, 0.1, 0.1);
  RegisterInfo b = info_at(library, {5, 0}, 0.1, 0.1);
  b.lib_cell =
      library.cells_for(lib::RegisterFunction{.has_reset = true}, 1).front();
  EXPECT_FALSE(functionally_compatible(a, b));
}

TEST_F(RuleFixture, ScanRequiresSamePartition) {
  RegisterInfo a = info_at(library, {0, 0}, 0.1, 0.1);
  RegisterInfo b = info_at(library, {5, 0}, 0.1, 0.1);
  EXPECT_TRUE(scan_compatible(a, b));  // both unscanned (-1)
  a.scan.partition = 2;
  EXPECT_FALSE(scan_compatible(a, b));
  b.scan.partition = 2;
  EXPECT_TRUE(scan_compatible(a, b));
  // Different sections of the same partition remain pairwise compatible;
  // the per-bit-scan consequence is handled per candidate.
  a.scan.section = 0;
  b.scan.section = 1;
  EXPECT_TRUE(scan_compatible(a, b));
}

TEST_F(RuleFixture, PlacementRequiresOverlapAndProximity) {
  RegisterInfo a = info_at(library, {0, 0}, 0.1, 0.1, 10.0);
  RegisterInfo b = info_at(library, {15, 0}, 0.1, 0.1, 10.0);
  EXPECT_TRUE(placement_compatible(a, b, options));

  RegisterInfo far = info_at(library, {100, 0}, 0.1, 0.1, 10.0);
  EXPECT_FALSE(placement_compatible(a, far, options));  // regions disjoint

  RegisterInfo distant = info_at(library, {80, 0}, 0.1, 0.1, 200.0);
  CompatibilityOptions tight = options;
  tight.max_distance = 50.0;
  EXPECT_FALSE(placement_compatible(a, distant, tight));  // distance filter
}

TEST_F(RuleFixture, TimingRejectsOppositeSlackSigns) {
  // a wants a later clock (negative D), b wants an earlier one (negative Q):
  // merging them would pull the MBR's skew in opposite directions.
  RegisterInfo a = info_at(library, {0, 0}, -0.1, 0.15);
  RegisterInfo b = info_at(library, {5, 0}, 0.15, -0.1);
  CompatibilityOptions loose = options;
  loose.slack_similarity = 1.0;  // isolate the sign rule
  EXPECT_FALSE(timing_compatible(a, b, loose));
  // Same-direction profiles are fine.
  RegisterInfo c = info_at(library, {5, 0}, -0.05, 0.2);
  EXPECT_TRUE(timing_compatible(a, c, loose));
}

TEST_F(RuleFixture, TimingRequiresSimilarMagnitudes) {
  RegisterInfo a = info_at(library, {0, 0}, 0.05, 0.05);
  RegisterInfo b = info_at(library, {5, 0}, 0.05 + options.slack_similarity + 0.01,
                           0.05);
  EXPECT_FALSE(timing_compatible(a, b, options));
  RegisterInfo c = info_at(library, {5, 0}, 0.05 + options.slack_similarity - 0.01,
                           0.05);
  EXPECT_TRUE(timing_compatible(a, c, options));
  // Q-side similarity matters equally.
  RegisterInfo d = info_at(library, {5, 0}, 0.05,
                           0.05 + options.slack_similarity + 0.01);
  EXPECT_FALSE(timing_compatible(a, d, options));
}

TEST(WorkedExample, ReproducesFig1EdgeSet) {
  const WorkedExample example = make_worked_example();
  const CompatibilityGraph& g = example.graph;
  using WE = WorkedExample;
  // Fig. 1 edges.
  const std::vector<std::pair<int, int>> edges = {
      {WE::kA, WE::kB}, {WE::kA, WE::kC}, {WE::kA, WE::kD}, {WE::kA, WE::kE},
      {WE::kB, WE::kC}, {WE::kB, WE::kD}, {WE::kB, WE::kF}, {WE::kC, WE::kD},
      {WE::kC, WE::kE}, {WE::kC, WE::kF}};
  for (auto [u, v] : edges)
    EXPECT_TRUE(g.has_edge(u, v))
        << WE::node_name(u) << "-" << WE::node_name(v);
  EXPECT_EQ(g.edge_count(), static_cast<std::int64_t>(edges.size()));
  // Explicit non-edges from the figure.
  EXPECT_FALSE(g.has_edge(WE::kD, WE::kE));
  EXPECT_FALSE(g.has_edge(WE::kD, WE::kF));
  EXPECT_FALSE(g.has_edge(WE::kE, WE::kF));
  EXPECT_FALSE(g.has_edge(WE::kA, WE::kF));
  EXPECT_FALSE(g.has_edge(WE::kB, WE::kE));
}

TEST(CompatibilityGraph, ConnectedComponents) {
  const WorkedExample example = make_worked_example();
  // The worked example is one connected component of six nodes.
  const auto components = example.graph.connected_components();
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].size(), 6u);

  CompatibilityGraph g;
  for (int i = 0; i < 5; ++i) g.add_node(example.graph.node(0));
  g.add_edge(0, 1);
  g.add_edge(3, 4);
  g.finalize();
  const auto parts = g.connected_components();
  ASSERT_EQ(parts.size(), 3u);  // {0,1}, {2}, {3,4}
  EXPECT_EQ(parts[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(parts[1], (std::vector<int>{2}));
  EXPECT_EQ(parts[2], (std::vector<int>{3, 4}));
}

TEST(CompatibilityGraph, DuplicateEdgesCollapse) {
  const WorkedExample example = make_worked_example();
  CompatibilityGraph g;
  g.add_node(example.graph.node(0));
  g.add_node(example.graph.node(1));
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_EQ(g.neighbors(0).size(), 1u);
}

}  // namespace
}  // namespace mbrc::mbr
