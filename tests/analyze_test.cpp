// mbrc-analyze rule-engine tests: each A1-A4 rule is exercised against
// fixture sources with planted violations (and near-miss negatives), plus
// the cross-file spawn summary, the suppression-comment contract, baseline
// match/stale behavior and file:line:col accuracy. The fixtures are
// in-memory SourceFiles, so these tests pin down the analyzer's semantics
// independent of the state of src/.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze.hpp"

namespace mbrc::analyze {
namespace {

AnalyzeResult analyze_one(const std::string& content,
                          AnalyzeOptions options = {},
                          const std::vector<BaselineEntry>& baseline = {}) {
  return run_analyze({{"src/fixture.cpp", content}}, options, baseline);
}

/// Rules of the active (non-suppressed, non-baselined) findings.
std::vector<std::string> active_rules(const AnalyzeResult& result) {
  std::vector<std::string> rules;
  for (const analysis::Finding* f : result.active()) rules.push_back(f->rule);
  return rules;
}

// --- A1: arena escape -------------------------------------------------------

TEST(AnalyzeA1, ReturningArenaViewIsFlaggedWithDerivationChain) {
  const auto result = analyze_one(R"(
    int& pick(util::Arena& arena) {
      int* slot = static_cast<int*>(arena.allocate(4, 4));
      int& view = *slot;
      return view;
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"A1"});
  EXPECT_EQ(result.findings[0].line, 5);
  ASSERT_FALSE(result.findings[0].chain.empty());
  // The chain names the transitive derivation back to the arena.
  EXPECT_NE(result.findings[0].chain[0].find("arena"), std::string::npos);
}

TEST(AnalyzeA1, ReturningOwnedCopyIsNotFlagged) {
  const auto result = analyze_one(R"(
    std::vector<int> copy_out(util::ArenaVector<int>& scratch) {
      return std::vector<int>(scratch.begin(), scratch.end());
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

TEST(AnalyzeA1, StoringViewIntoOutParamIsFlagged) {
  const auto result = analyze_one(R"(
    void fill(util::Arena& arena, int*& out) {
      int* view = static_cast<int*>(arena.allocate(8, 8));
      out = view;
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"A1"});
  EXPECT_NE(result.findings[0].message.find("out"), std::string::npos);
}

TEST(AnalyzeA1, StoringViewIntoMemberIsFlagged) {
  const auto result = analyze_one(R"(
    struct Holder {
      void stash(util::Arena& arena) {
        const int* view = static_cast<const int*>(arena.allocate(4, 4));
        view_ = view;
      }
      const int* view_ = nullptr;
    };
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"A1"});
}

TEST(AnalyzeA1, InsertingViewIntoEscapingContainerIsFlagged) {
  const auto result = analyze_one(R"(
    void collect(util::Arena& arena, std::vector<int*>& sink) {
      int* view = static_cast<int*>(arena.allocate(8, 8));
      sink.push_back(view);
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"A1"});
}

TEST(AnalyzeA1, InsertingViewIntoLocalContainerIsNotFlagged) {
  const auto result = analyze_one(R"(
    int sum(util::Arena& arena) {
      int* view = static_cast<int*>(arena.allocate(8, 8));
      std::vector<int*> local;
      local.push_back(view);
      return static_cast<int>(local.size());
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

TEST(AnalyzeA1, DeferredTaskCapturingViewIsFlagged) {
  const auto result = analyze_one(R"(
    void kick(runtime::ThreadPool& pool, util::Arena& arena) {
      int* view = static_cast<int*>(arena.allocate(8, 8));
      pool.submit([view] { consume(view); });
    }
  )");
  const auto rules = active_rules(result);
  ASSERT_FALSE(rules.empty());
  EXPECT_EQ(rules[0], "A1");
}

TEST(AnalyzeA1, ArenaImplementationPathIsExempt) {
  const auto result = run_analyze({{"src/util/arena.hpp", R"(
    int& pick(util::Arena& arena) {
      int& view = *static_cast<int*>(arena.allocate(4, 4));
      return view;
    }
  )"}});
  EXPECT_TRUE(result.active().empty());
}

// --- A2: task-capture lifetime ----------------------------------------------

TEST(AnalyzeA2, RefCaptureWithNoWaitIsFlagged) {
  const auto result = analyze_one(R"(
    void launch(runtime::ThreadPool& pool) {
      int counter = 0;
      pool.submit([&counter] { counter++; });
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"A2"});
  EXPECT_NE(result.findings[0].message.find("no join/wait"),
            std::string::npos);
  ASSERT_FALSE(result.findings[0].chain.empty());
  EXPECT_NE(result.findings[0].chain[0].find("counter"), std::string::npos);
}

TEST(AnalyzeA2, ThrowingCallBetweenSubmitAndWaitIsFlagged) {
  const auto result = analyze_one(R"(
    int compute(runtime::ThreadPool& pool) {
      int total = 0;
      auto fut = pool.async([&total] { return 1; });
      risky_stage(total);
      return runtime::help_get(pool, std::move(fut));
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"A2"});
  bool names_gap_call = false;
  for (const auto& step : result.findings[0].chain)
    if (step.find("risky_stage") != std::string::npos) names_gap_call = true;
  EXPECT_TRUE(names_gap_call);
}

TEST(AnalyzeA2, CleanGapToWaitIsNotFlagged) {
  const auto result = analyze_one(R"(
    int compute(runtime::ThreadPool& pool) {
      int total = 0;
      auto fut = pool.async([&total] { return 1; });
      return runtime::help_get(pool, std::move(fut));
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

TEST(AnalyzeA2, WaitGuardDeclaredBeforeSubmissionSilences) {
  const auto result = analyze_one(R"(
    int compute(runtime::ThreadPool& pool) {
      int total = 0;
      runtime::FutureDrain drain(pool);
      auto fut = pool.async([&total] { return 1; });
      drain.watch(fut);
      risky_stage(total);
      return runtime::help_get(pool, std::move(fut));
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

TEST(AnalyzeA2, LoopBackEdgeThrowBypassesWaitAfterLoop) {
  const auto result = analyze_one(R"(
    void pump(runtime::ThreadPool& pool, std::istream& in) {
      std::string line;
      while (std::getline(in, line)) {
        pool.submit([&line] { consume(line); });
      }
      pool.wait();
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"A2"});
  bool names_back_edge = false;
  for (const auto& step : result.findings[0].chain)
    if (step.find("getline") != std::string::npos) names_back_edge = true;
  EXPECT_TRUE(names_back_edge);
}

TEST(AnalyzeA2, ValueCapturesAreNotFlagged) {
  const auto result = analyze_one(R"(
    void launch(runtime::ThreadPool& pool) {
      int counter = 0;
      pool.submit([counter] { consume(counter); });
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

TEST(AnalyzeA2, ValueCapturedLambdaWithRefCapturesIsFlagged) {
  const auto result = analyze_one(R"(
    void relay(runtime::ThreadPool& pool) {
      int shared = 0;
      auto work = [&shared] { shared++; };
      pool.submit([work] { work(); });
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"A2"});
  EXPECT_NE(result.findings[0].chain[0].find("work"), std::string::npos);
}

TEST(AnalyzeA2, CrossFileForwarderIsTracedIntoDeferredExecution) {
  // `enqueue` only queues the callable; the submitting file never sees a
  // ThreadPool. The call summary must carry the spawn across files.
  const std::vector<analysis::SourceFile> files = {
      {"src/runtime/queue.hpp", R"(
        struct Queue {
          void enqueue(std::function<void()> job) {
            jobs_.push_back(std::move(job));
          }
          std::vector<std::function<void()>> jobs_;
        };
      )"},
      {"src/mbr/producer.cpp", R"(
        void produce(Queue& q) {
          int local = 0;
          q.enqueue([&local] { local++; });
        }
      )"}};
  const auto result = run_analyze(files);
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"A2"});
  EXPECT_EQ(result.findings[0].path, "src/mbr/producer.cpp");
}

TEST(AnalyzeA2, ForwarderThatWaitsDoesNotSpawn) {
  // parallel_for-shaped: forwards its callable but drains before returning,
  // so call sites need no wait of their own.
  const std::vector<analysis::SourceFile> files = {
      {"src/runtime/each.hpp", R"(
        void for_each(runtime::ThreadPool& pool, std::function<void()> fn) {
          pool.submit(fn);
          pool.wait();
        }
      )"},
      {"src/mbr/user.cpp", R"(
        void iterate(runtime::ThreadPool& pool) {
          int local = 0;
          for_each(pool, [&local] { local++; });
        }
      )"}};
  const auto result = run_analyze(files);
  // The only finding allowed is inside for_each itself (its own submit has
  // a clean gap to the wait, so there is none).
  EXPECT_TRUE(result.active().empty());
}

// --- A3: strand discipline --------------------------------------------------

constexpr const char* kSessionFixture = R"(
    class Session {
     public:
      int design_ = 0;
      int revision_ = 0;
    };
    void peek(Session& session) {
      session.design_ = 7;
    }
  )";

TEST(AnalyzeA3, SessionFieldTouchedOutsideStrandIsFlagged) {
  const auto result =
      run_analyze({{"src/service/helper.cpp", kSessionFixture}});
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"A3"});
  EXPECT_NE(result.findings[0].message.find("strand"), std::string::npos);
  EXPECT_NE(result.findings[0].message.find("design_"), std::string::npos);
}

TEST(AnalyzeA3, NonServicePathIsOutOfScope) {
  // Same code outside the service layer: A3 is a service-layer contract.
  const auto result = run_analyze({{"src/mbr/helper.cpp", kSessionFixture}});
  EXPECT_TRUE(result.active().empty());
}

TEST(AnalyzeA3, SessionMembersAndEntryPointsAreAllowed) {
  const auto result = run_analyze({{"src/service/helper.cpp", R"(
    class Session {
     public:
      void bump(Session& other) { other.design_ = 1; }
      int design_ = 0;
    };
    void execute(Session& session) {
      session.design_ = 7;
    }
  )"}});
  EXPECT_TRUE(result.active().empty());
}

TEST(AnalyzeA3, LambdaPostedToTheStrandIsAllowed) {
  const auto result = run_analyze({{"src/service/helper.cpp", R"(
    class Session {
     public:
      int design_ = 0;
    };
    void relay(Daemon& daemon, Session& session) {
      daemon.post("name", [&session] { session.design_ = 9; });
    }
  )"}});
  EXPECT_TRUE(result.active().empty());
}

// --- A4: journal bypass -----------------------------------------------------

TEST(AnalyzeA4, CellPositionWriteWithoutNotifyIsFlagged) {
  const auto result = analyze_one(R"(
    void nudge(netlist::Design& design, CellId id) {
      netlist::Cell& cell = design.cell(id);
      cell.position.x = 4.0;
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"A4"});
  EXPECT_NE(result.findings[0].message.find("notify_moved"),
            std::string::npos);
}

TEST(AnalyzeA4, DirectAccessorChainWriteIsFlagged) {
  const auto result = analyze_one(R"(
    void nudge(netlist::Design& design, CellId id, Point p) {
      design.cell(id).position = p;
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"A4"});
}

TEST(AnalyzeA4, PositionWritePairedWithNotifyMovedIsAllowed) {
  const auto result = analyze_one(R"(
    void nudge(netlist::Design& design, CellId id, Point p) {
      netlist::Cell& cell = design.cell(id);
      cell.position = p;
      design.notify_moved(id);
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

TEST(AnalyzeA4, LocalStructWithPositionFieldIsNotACell) {
  const auto result = analyze_one(R"(
    double pick(netlist::Design& design) {
      struct Choice { double position = 0; };
      Choice best;
      best.position = 3.0;
      return best.position;
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

TEST(AnalyzeA4, PinNetRewireIsFlagged) {
  const auto result = analyze_one(R"(
    void rewire(netlist::Pin& pin, NetId net_id) {
      pin.net = net_id;
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"A4"});
  EXPECT_NE(result.findings[0].message.find("journal"), std::string::npos);
}

TEST(AnalyzeA4, RegisterVariantWriteIsFlagged) {
  const auto result = analyze_one(R"(
    void retag(netlist::Cell& cell, RegVariant next) {
      cell.reg = next;
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"A4"});
}

TEST(AnalyzeA4, JournaledDesignImplementationIsExempt) {
  const auto result = run_analyze({{"src/netlist/design.cpp", R"(
    void Design::set_position(CellId id, Point p) {
      cells_[id].position = p;
    }
  )"}});
  EXPECT_TRUE(result.active().empty());
}

// --- rule selection, suppression, baseline, positions -----------------------

TEST(AnalyzeOptionsTest, RulesFilterRestrictsWhatRuns) {
  // One fixture violating A2 and A4 at once; ask for A4 only.
  const std::string fixture = R"(
    void both(runtime::ThreadPool& pool, netlist::Pin& pin, NetId id) {
      int local = 0;
      pool.submit([&local] { local++; });
      pin.net = id;
    }
  )";
  AnalyzeOptions a4_only;
  a4_only.rules = {"A4"};
  EXPECT_EQ(active_rules(analyze_one(fixture, a4_only)),
            std::vector<std::string>{"A4"});
  const auto all = active_rules(analyze_one(fixture));
  EXPECT_EQ(all.size(), 2u);
}

TEST(AnalyzeSuppression, AllowCommentWithReasonSilences) {
  const auto result = analyze_one(R"(
    void launch(runtime::ThreadPool& pool) {
      int counter = 0;
      // mbrc-analyze: allow(A2, fixture proves the suppression path)
      pool.submit([&counter] { counter++; });
    }
  )");
  EXPECT_TRUE(result.active().empty());
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_TRUE(result.findings[0].suppressed);
  EXPECT_EQ(result.findings[0].suppress_reason,
            "fixture proves the suppression path");
  EXPECT_TRUE(result.bad_suppressions.empty());
  EXPECT_TRUE(result.clean());
}

TEST(AnalyzeSuppression, EmptyReasonIsItselfAFinding) {
  const auto result = analyze_one(R"(
    void launch(runtime::ThreadPool& pool) {
      int counter = 0;
      // mbrc-analyze: allow(A2)
      pool.submit([&counter] { counter++; });
    }
  )");
  // The finding stays active AND the reasonless allow is reported.
  EXPECT_EQ(active_rules(result), std::vector<std::string>{"A2"});
  ASSERT_EQ(result.bad_suppressions.size(), 1u);
  EXPECT_NE(result.bad_suppressions[0].message.find("reason"),
            std::string::npos);
  EXPECT_FALSE(result.clean());
}

TEST(AnalyzeSuppression, OtherToolsTagDoesNotSuppress) {
  const auto result = analyze_one(R"(
    void launch(runtime::ThreadPool& pool) {
      int counter = 0;
      // mbrc-lint: allow(A2, wrong tool tag)
      pool.submit([&counter] { counter++; });
    }
  )");
  EXPECT_EQ(active_rules(result), std::vector<std::string>{"A2"});
}

TEST(AnalyzeBaseline, RoundTrippedBaselineAbsorbsFindings) {
  const std::string fixture = R"(
    void launch(runtime::ThreadPool& pool) {
      int counter = 0;
      pool.submit([&counter] { counter++; });
    }
  )";
  const auto first = analyze_one(fixture);
  ASSERT_EQ(first.active().size(), 1u);

  const std::string serialized =
      analysis::format_baseline(first.findings, "mbrc-analyze");
  const auto result =
      analyze_one(fixture, {}, analysis::parse_baseline(serialized));
  EXPECT_TRUE(result.active().empty());
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_TRUE(result.findings[0].baselined);
  EXPECT_TRUE(result.stale_baseline.empty());
  EXPECT_TRUE(result.clean());
}

TEST(AnalyzeBaseline, StaleEntryFailsTheRun) {
  BaselineEntry stale;
  stale.rule = "A2";
  stale.path = "src/fixture.cpp";
  stale.key = 0x1234;  // matches no finding: the hazard was fixed
  const auto result = analyze_one(R"(
    void quiet() {}
  )", {}, {stale});
  EXPECT_TRUE(result.active().empty());
  ASSERT_EQ(result.stale_baseline.size(), 1u);
  EXPECT_EQ(result.stale_baseline[0].key, 0x1234u);
  EXPECT_FALSE(result.clean());
}

TEST(AnalyzePositions, FindingAnchorsTheSpawningCalleeToken) {
  const auto result = analyze_one(R"(
    void launch(runtime::ThreadPool& pool) {
      int counter = 0;
      pool.submit([&counter] { counter++; });
    }
  )");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].path, "src/fixture.cpp");
  // Fixture line 4, `submit` starts at byte column 12 of
  // `      pool.submit(...)`.
  EXPECT_EQ(result.findings[0].line, 4);
  EXPECT_EQ(result.findings[0].col, 12);
}

}  // namespace
}  // namespace mbrc::analyze
