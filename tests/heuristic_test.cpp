#include <gtest/gtest.h>

#include <set>

#include "ilp/set_partition.hpp"
#include "mbr/candidates.hpp"
#include "mbr/composition.hpp"
#include "mbr/heuristic.hpp"
#include "mbr/worked_example.hpp"

namespace mbrc::mbr {
namespace {

// plan_composition_heuristic needs a Design; these unit checks exercise its
// building blocks on the worked example instead, where the heuristic's
// behaviour is fully predictable.
TEST(HeuristicWorkedExample, GreedyPicksAbcdAndStrandsEandF) {
  const WorkedExample example = make_worked_example();
  std::vector<int> subgraph;
  for (int i = 0; i < example.graph.node_count(); ++i) subgraph.push_back(i);

  // Maximal cliques of Fig. 1: {A,B,C,D} (4 bits), {A,C,E} (6 bits -> trims),
  // {B,C,F} (4 bits). Greedy takes {A,B,C,D} first; the other two then
  // collide with committed members, stranding E and F.
  const auto cliques = maximal_cliques(example.graph, subgraph);
  ASSERT_EQ(cliques.size(), 3u);

  // The committed-first clique is the full 4-bit one.
  using WE = WorkedExample;
  std::set<std::vector<int>> clique_set(cliques.begin(), cliques.end());
  EXPECT_TRUE(clique_set.contains(
      std::vector<int>{WE::kA, WE::kB, WE::kC, WE::kD}));

  // Compare against the exact ILP: both reach 3 final registers on this
  // example, but the ILP's weighted objective is strictly better, because
  // the greedy {A,B,C,D}+E+F costs 1/4 + 1/4 + 1/2 = 1.0 while the ILP's
  // {A,C,D}+{B,F}+E costs 1/3 + 1/3 + 1/4 = 11/12.
  const BlockerIndex blockers(example.graph);
  const EnumerationResult enumeration = enumerate_candidates(
      example.graph, *example.library, blockers, subgraph);
  const ilp::SetPartitionResult ilp_result =
      solve_subgraph(subgraph, enumeration.candidates);
  ASSERT_TRUE(ilp_result.feasible);
  EXPECT_EQ(ilp_result.chosen.size(), 3u);
  const double greedy_cost = 0.25 + 0.25 + 0.5;
  EXPECT_LT(ilp_result.objective, greedy_cost);
}

TEST(HeuristicWorkedExample, TrimmedCliqueAlwaysFitsALibraryWidth) {
  // The 6-bit clique {A,C,E} has no 6-bit cell; the heuristic's trimming
  // must land on an available width or give up -- never emit an invalid
  // width (the flow-level mapper would reject it). Exercised indirectly:
  // enumerate the available widths and check 6 is absent while subsets fit.
  const WorkedExample example = make_worked_example();
  const auto widths =
      example.library->available_widths(lib::RegisterFunction{});
  EXPECT_EQ(widths, (std::vector<int>{1, 2, 3, 4, 8}));
  // {A,C,E} = 6 bits: not a width. {A,C} = 2: fits. {A,E} = 5: not a width
  // (only reachable as an incomplete 8, which the baseline does not use).
  EXPECT_FALSE(std::binary_search(widths.begin(), widths.end(), 6));
  EXPECT_TRUE(std::binary_search(widths.begin(), widths.end(), 2));
}

}  // namespace
}  // namespace mbrc::mbr
