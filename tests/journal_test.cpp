// Design snapshot / rollback property tests (the edit-journal contract the
// service's rollback request is built on).
//
// Property: snapshot -> any burst of edits (moves, sizing swaps, skew-ish
// journal appends, structural disconnects and cell removals) -> restore
// brings the netlist back bit-identically (save_design byte equality,
// check_consistency), while topology_version stays MONOTONIC -- restore
// never rewinds it, it bumps past every version handed out, so incremental
// observers (TimingEngine) rebuild instead of trusting stale cursors.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "benchgen/generator.hpp"
#include "netlist/io.hpp"
#include "sta/timing_engine.hpp"
#include "util/rng.hpp"

namespace mbrc {
namespace {

benchgen::GeneratedDesign make_design(const lib::Library& library,
                                      std::uint64_t seed) {
  benchgen::DesignProfile profile;
  profile.name = "journal";
  profile.seed = seed;
  profile.register_cells = 90;
  profile.comb_per_register = 3.0;
  return benchgen::generate_design(library, profile);
}

std::string serialized(const netlist::Design& design) {
  std::ostringstream os;
  netlist::save_design(design, os);
  return os.str();
}

/// One random edit burst. Mixes topology-preserving edits (journal appends)
/// with structural ones (topology bumps); `structural` controls whether the
/// destructive kinds are allowed.
void edit_burst(netlist::Design& design, util::Rng& rng, bool structural) {
  const auto registers = design.registers();
  ASSERT_GT(registers.size(), 8u);
  const auto pick = [&] {
    return registers[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(registers.size()) - 1))];
  };

  const int edits = static_cast<int>(rng.uniform_int(3, 12));
  for (int i = 0; i < edits; ++i) {
    const netlist::CellId reg = pick();
    netlist::Cell& cell = design.cell(reg);
    if (cell.dead) continue;
    const double roll = rng.uniform_real(0.0, 1.0);
    if (roll < 0.45) {
      const geom::Rect& core = design.core();
      cell.position.x =
          std::clamp(cell.position.x + rng.uniform_real(-5.0, 5.0), core.xlo,
                     core.xhi - cell.width());
      cell.position.y =
          std::clamp(cell.position.y + rng.uniform_real(-5.0, 5.0), core.ylo,
                     core.yhi - cell.height());
      design.notify_moved(reg);
    } else if (roll < 0.75) {
      auto variants =
          design.library().cells_for(cell.reg->function, cell.reg->bits);
      std::erase_if(variants, [&](const lib::RegisterCell* v) {
        return v->scan_style != cell.reg->scan_style;
      });
      if (variants.size() > 1) {
        const auto* variant =
            variants[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(variants.size()) - 1))];
        if (variant != cell.reg) design.swap_register_cell(reg, variant);
      }
    } else if (structural && roll < 0.9) {
      // Disconnect one D pin (a floating input is exactly the kind of
      // structural damage rollback must be able to undo).
      const netlist::PinId d = design.register_d_pin(reg, 0);
      if (design.pin(d).net.valid()) design.disconnect(d);
    } else if (structural) {
      design.remove_cell(reg);
    }
  }
}

TEST(JournalTest, RestoreIsBitIdenticalAfterRandomBursts) {
  const lib::Library library = lib::make_default_library();
  for (std::uint64_t seed : {3u, 17u, 99u}) {
    benchgen::GeneratedDesign generated = make_design(library, seed);
    netlist::Design& design = generated.design;
    util::Rng rng(0x10aded ^ seed);

    const std::string before = serialized(design);
    const std::uint64_t version_before = design.topology_version();
    const std::size_t journal_before = design.touched_cells().size();
    const netlist::Design::Snapshot snapshot = design.snapshot();

    edit_burst(design, rng, /*structural=*/true);
    // The burst genuinely changed the design (seeds are chosen so at least
    // one edit lands).
    EXPECT_NE(serialized(design), before);

    design.restore(snapshot);
    design.check_consistency();
    EXPECT_EQ(serialized(design), before) << "seed " << seed;
    EXPECT_EQ(design.touched_cells().size(), journal_before);
    // Monotonic, never rewound: restore bumps PAST every handed-out
    // version even though the state went back.
    EXPECT_GT(design.topology_version(), version_before);
  }
}

TEST(JournalTest, TopologyVersionNeverRewindsAcrossInterleavedRollbacks) {
  const lib::Library library = lib::make_default_library();
  benchgen::GeneratedDesign generated = make_design(library, 7);
  netlist::Design& design = generated.design;
  util::Rng rng(0xabcdef);

  const netlist::Design::Snapshot early = design.snapshot();
  std::uint64_t last_version = design.topology_version();
  const auto expect_monotonic = [&] {
    EXPECT_GE(design.topology_version(), last_version);
    last_version = design.topology_version();
  };

  edit_burst(design, rng, /*structural=*/true);
  expect_monotonic();
  const netlist::Design::Snapshot late = design.snapshot();
  const std::string late_state = serialized(design);

  design.restore(early);
  expect_monotonic();
  edit_burst(design, rng, /*structural=*/false);
  expect_monotonic();

  design.restore(late);
  expect_monotonic();
  EXPECT_EQ(serialized(design), late_state);

  // Restoring the same snapshot twice still bumps the version: observers
  // must rebuild each time (their cursors may exceed the restored journal).
  const std::uint64_t v = design.topology_version();
  design.restore(late);
  EXPECT_GT(design.topology_version(), v);
}

// The reason restore() bumps the version: a TimingEngine that synced past
// the snapshot's journal must rebuild on the next update and then be
// bit-identical to a fresh run_sta of the restored state.
TEST(JournalTest, TimingEngineRecoversExactlyAfterRollback) {
  const lib::Library library = lib::make_default_library();
  benchgen::GeneratedDesign generated = make_design(library, 21);
  netlist::Design& design = generated.design;

  sta::TimingOptions options;
  options.clock_period = generated.calibrated_clock_period;
  sta::TimingEngine engine(design, options);
  sta::SkewMap skew;
  engine.update(skew);  // full build; cursor at journal head

  const netlist::Design::Snapshot snapshot = design.snapshot();
  util::Rng rng(0x7e57);
  edit_burst(design, rng, /*structural=*/false);
  engine.update(skew);  // cursor now past the snapshot's journal length

  design.restore(snapshot);
  const sta::TimingReport& repaired = engine.update(skew);
  EXPECT_EQ(engine.stats().full_builds, 2u)
      << "restore must force a rebuild, not a stale incremental repair";

  const sta::TimingReport oracle = sta::run_sta(design, options, skew);
  ASSERT_EQ(repaired.arrival.size(), oracle.arrival.size());
  for (std::size_t i = 0; i < oracle.arrival.size(); ++i) {
    ASSERT_EQ(repaired.arrival[i], oracle.arrival[i]) << "pin " << i;
    ASSERT_EQ(repaired.required[i], oracle.required[i]) << "pin " << i;
  }
  ASSERT_EQ(repaired.endpoints.size(), oracle.endpoints.size());
  for (std::size_t i = 0; i < oracle.endpoints.size(); ++i)
    ASSERT_EQ(repaired.endpoints[i].slack, oracle.endpoints[i].slack);
}

// Snapshots survive multi-snapshot interleavings: the touched_cells journal
// is restored by VALUE (not just truncated), so a snapshot taken before an
// earlier restore still reproduces its exact journal.
TEST(JournalTest, JournalContentsRestoredByValue) {
  const lib::Library library = lib::make_default_library();
  benchgen::GeneratedDesign generated = make_design(library, 33);
  netlist::Design& design = generated.design;
  const auto registers = design.registers();

  design.notify_moved(registers[0]);
  design.notify_moved(registers[1]);
  const netlist::Design::Snapshot a = design.snapshot();
  const std::vector<netlist::CellId> journal_a = design.touched_cells();

  design.notify_moved(registers[2]);
  design.restore(a);
  EXPECT_EQ(design.touched_cells(), journal_a);

  design.notify_moved(registers[3]);
  design.restore(a);
  EXPECT_EQ(design.touched_cells(), journal_a);
}

}  // namespace
}  // namespace mbrc
