// Determinism enforced at the size where races actually surface.
//
// The parallel subgraph fan-out (cliques, candidate enumeration, ILP/LP
// solves) and the parallel compatibility build are contracted bit-identical
// at any jobs value; the small-design checks in parallel_flow_test.cpp keep
// a handful of pool tasks in flight, which barely exercises interleaving.
// Here a >=50x scaled benchgen profile (benchgen::scaled_profiles) drives
// six figures of registers through the planning stages at jobs 1 vs 8, and
// the bulk edge-insertion path is replayed in a permuted order to prove the
// graph canonicalization does not depend on insertion order.
//
// The combinational budget is cut to one gate per register: the planning
// stages under test never read the cones (they see registers, placement,
// control nets and endpoint slacks), while generating the full D1 cone load
// at 50x would multiply fixture time for no extra coverage.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

#include "benchgen/generator.hpp"
#include "mbr/composition.hpp"
#include "sta/sta.hpp"
#include "util/rng.hpp"

namespace mbrc {
namespace {

// 50x D1 (147k registers) by default; MBRC_SCALE_FACTOR overrides it so the
// TSan CI job can push the same parallel stages through a size its ~15x
// slowdown can afford.
int scale_factor() {
  const char* env = std::getenv("MBRC_SCALE_FACTOR");
  const int factor = env ? std::atoi(env) : 50;
  return factor >= 1 ? factor : 50;
}

struct ScaledFixture {
  lib::Library library = lib::make_default_library();
  std::optional<benchgen::GeneratedDesign> generated;
  sta::TimingReport timing;

  ScaledFixture() {
    benchgen::DesignProfile profile =
        benchgen::scaled_profiles(scale_factor()).front();
    profile.comb_per_register = 1.0;
    generated = benchgen::generate_design(library, profile);
    sta::TimingOptions options;
    options.clock_period = generated->calibrated_clock_period;
    timing = sta::run_sta(generated->design, options);
  }
};

ScaledFixture& fixture() {
  static ScaledFixture f;
  return f;
}

TEST(ScaledDeterminism, PlanIsBitIdenticalAcrossJobCounts) {
  ScaledFixture& f = fixture();
  mbr::CompositionOptions options;

  options.jobs = 1;
  const mbr::CompositionPlan serial =
      mbr::plan_composition(f.generated->design, f.timing, options);
  options.jobs = 8;
  const mbr::CompositionPlan wide =
      mbr::plan_composition(f.generated->design, f.timing, options);

  ASSERT_GT(serial.subgraph_count, scale_factor())
      << "scaled profile produced a trivial plan; the test lost its teeth";
  EXPECT_EQ(serial.graph.node_count(), wide.graph.node_count());
  EXPECT_EQ(serial.graph.edge_count(), wide.graph.edge_count());
  EXPECT_EQ(serial.subgraph_count, wide.subgraph_count);
  EXPECT_EQ(serial.candidate_count, wide.candidate_count);
  EXPECT_EQ(serial.ilp_nodes, wide.ilp_nodes);
  EXPECT_EQ(serial.truncated_subgraphs, wide.truncated_subgraphs);
  // Bit-identical, not nearly-equal: the reductions happen in subgraph
  // order on the calling thread, so even the float sum must match.
  EXPECT_EQ(serial.objective, wide.objective);

  ASSERT_EQ(serial.selections.size(), wide.selections.size());
  int mismatches = 0;
  for (std::size_t i = 0; i < serial.selections.size(); ++i) {
    const mbr::Selection& a = serial.selections[i];
    const mbr::Selection& b = wide.selections[i];
    if (a.candidate.nodes != b.candidate.nodes || a.members != b.members ||
        a.candidate.weight != b.candidate.weight) {
      ++mismatches;
      EXPECT_LE(mismatches, 5) << "selection " << i << " differs";
    }
  }
  EXPECT_EQ(mismatches, 0);
}

TEST(ScaledDeterminism, EdgeInsertionOrderDoesNotChangeTheGraph) {
  ScaledFixture& f = fixture();
  mbr::CompatibilityOptions options;
  options.jobs = 8;
  const mbr::CompatibilityGraph graph =
      mbr::build_compatibility_graph(f.generated->design, f.timing, options);

  // The real scaled edge set, as forward pairs.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < graph.node_count(); ++i)
    for (int j : graph.neighbors(i))
      if (j > i) edges.emplace_back(i, j);
  ASSERT_GT(static_cast<int>(edges.size()), 200 * scale_factor())
      << "scaled graph is unexpectedly sparse; fixture lost its teeth";

  // Deterministic Fisher-Yates permutation of the insertion order.
  util::Rng rng(7);
  for (std::size_t i = edges.size() - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i)));
    std::swap(edges[i], edges[j]);
  }

  mbr::CompatibilityGraph rebuilt;
  std::vector<int> degrees(static_cast<std::size_t>(graph.node_count()), 0);
  for (int i = 0; i < graph.node_count(); ++i) rebuilt.add_node(graph.node(i));
  for (const auto& [a, b] : edges) {
    ++degrees[static_cast<std::size_t>(a)];
    ++degrees[static_cast<std::size_t>(b)];
  }
  rebuilt.reserve_degrees(degrees);
  for (const auto& [a, b] : edges) rebuilt.add_edge(a, b);
  rebuilt.finalize();

  ASSERT_EQ(rebuilt.node_count(), graph.node_count());
  EXPECT_EQ(rebuilt.edge_count(), graph.edge_count());
  int mismatches = 0;
  for (int i = 0; i < graph.node_count(); ++i) {
    if (rebuilt.neighbors(i) != graph.neighbors(i)) {
      ++mismatches;
      EXPECT_LE(mismatches, 5) << "adjacency of node " << i << " differs";
    }
  }
  EXPECT_EQ(mismatches, 0);
}

}  // namespace
}  // namespace mbrc
