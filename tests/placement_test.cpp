#include <gtest/gtest.h>

#include "mbr/composition.hpp"
#include "mbr/mapping.hpp"
#include "mbr/placement.hpp"
#include "mbr/worked_example.hpp"
#include "util/rng.hpp"

namespace mbrc::mbr {
namespace {

std::vector<PinBox> random_boxes(util::Rng& rng, int count) {
  std::vector<PinBox> boxes;
  for (int i = 0; i < count; ++i) {
    const double x = rng.uniform_real(0, 300);
    const double y = rng.uniform_real(0, 300);
    boxes.push_back({{x, y, x + rng.uniform_real(0, 60),
                      y + rng.uniform_real(0, 60)},
                     {rng.uniform_real(0, 12), rng.uniform_real(0, 2)}});
  }
  return boxes;
}

TEST(PlacementObjective, SinglePinBoxMinimumIsZeroGrowth) {
  // One box: any corner that puts the pin inside the box adds nothing
  // beyond the box's own half-perimeter.
  const PinBox box{{10, 10, 30, 40}, {2, 1}};
  const geom::Rect region{0, 0, 100, 100};
  const geom::Point best = optimal_position_median({box}, region);
  const double objective = placement_objective({box}, best);
  EXPECT_NEAR(objective, box.box.half_perimeter(), 1e-9);
  EXPECT_GE(best.x + 2, 10.0 - 1e-9);
  EXPECT_LE(best.x + 2, 30.0 + 1e-9);
}

TEST(PlacementObjective, RespectsCornerRegion) {
  const PinBox box{{200, 200, 220, 220}, {0, 0}};
  const geom::Rect region{0, 0, 50, 50};  // far from the box
  const geom::Point best = optimal_position_median({box}, region);
  // Clamped to the region's nearest corner.
  EXPECT_NEAR(best.x, 50.0, 1e-9);
  EXPECT_NEAR(best.y, 50.0, 1e-9);
}

TEST(PlacementObjective, EmptyBoxesFallBackToRegionCenter) {
  const geom::Rect region{10, 10, 30, 30};
  EXPECT_EQ(optimal_position_median({}, region), region.center());
  EXPECT_EQ(optimal_position_lp({}, region), region.center());
}

// Property: the weighted-median solution and the paper's LP formulation
// return the same optimal objective (the argmin may differ on flat
// plateaus), and no random probe beats either.
TEST(PlacementSolvers, MedianMatchesLpProperty) {
  util::Rng rng(404);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    const auto boxes = random_boxes(rng, n);
    const geom::Rect region{0, 0, 320, 320};

    const geom::Point median = optimal_position_median(boxes, region);
    const geom::Point lp = optimal_position_lp(boxes, region);
    const double f_median = placement_objective(boxes, median);
    const double f_lp = placement_objective(boxes, lp);
    EXPECT_NEAR(f_median, f_lp, 1e-6) << "trial " << trial;

    for (int probe = 0; probe < 50; ++probe) {
      const geom::Point p{rng.uniform_real(0, 320), rng.uniform_real(0, 320)};
      EXPECT_GE(placement_objective(boxes, p) + 1e-9, f_median)
          << "trial " << trial;
    }
  }
}

// Property: with a constrained region, both solvers stay inside and still
// agree.
TEST(PlacementSolvers, ConstrainedRegionAgreement) {
  util::Rng rng(405);
  for (int trial = 0; trial < 25; ++trial) {
    const auto boxes = random_boxes(rng, 6);
    const double lo = rng.uniform_real(0, 150);
    const geom::Rect region{lo, lo, lo + rng.uniform_real(5, 100),
                            lo + rng.uniform_real(5, 100)};
    const geom::Point median = optimal_position_median(boxes, region);
    const geom::Point lp = optimal_position_lp(boxes, region);
    EXPECT_TRUE(region.contains(median));
    EXPECT_TRUE(region.contains(lp));
    EXPECT_NEAR(placement_objective(boxes, median),
                placement_objective(boxes, lp), 1e-6)
        << "trial " << trial;
  }
}

TEST(PlaceMbr, WorkedExamplePlacesInsideCommonRegion) {
  const WorkedExample example = make_worked_example();
  const BlockerIndex blockers(example.graph);
  std::vector<int> subgraph;
  for (int i = 0; i < example.graph.node_count(); ++i) subgraph.push_back(i);
  const EnumerationResult enumeration = enumerate_candidates(
      example.graph, *example.library, blockers, subgraph);

  // Pick the ACD candidate and place it; worked-example nodes have no
  // backing design, so build pin boxes from a design-free path: place_mbr
  // needs a Design only for connectivity, so use an empty design here and
  // check the corner-region logic through the exported pieces instead.
  const Candidate* acd = nullptr;
  for (const Candidate& c : enumeration.candidates)
    if (c.nodes == std::vector<int>{WorkedExample::kA, WorkedExample::kC,
                                    WorkedExample::kD})
      acd = &c;
  ASSERT_NE(acd, nullptr);
  EXPECT_FALSE(acd->common_region.is_empty());
  // The median solver constrained to the candidate's region stays inside.
  const geom::Point corner =
      optimal_position_median({}, acd->common_region);
  EXPECT_TRUE(acd->common_region.contains(corner));
}

}  // namespace
}  // namespace mbrc::mbr
