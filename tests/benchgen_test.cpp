#include <gtest/gtest.h>

#include <map>
#include <set>

#include "benchgen/generator.hpp"
#include "mbr/compatibility.hpp"
#include "place/legalizer.hpp"
#include "sta/sta.hpp"

namespace mbrc::benchgen {
namespace {

class GeneratorFixture : public ::testing::Test {
protected:
  lib::Library library = lib::make_default_library();

  DesignProfile small_profile() {
    DesignProfile p;
    p.register_cells = 500;
    p.comb_per_register = 4.0;
    p.seed = 77;
    return p;
  }
};

TEST_F(GeneratorFixture, ProducesRequestedRegisterCount) {
  const GeneratedDesign gen = generate_design(library, small_profile());
  EXPECT_EQ(gen.design.stats().total_registers, 500);
  gen.design.check_consistency();
}

TEST_F(GeneratorFixture, DeterministicPerSeed) {
  const GeneratedDesign a = generate_design(library, small_profile());
  const GeneratedDesign b = generate_design(library, small_profile());
  EXPECT_EQ(a.design.cell_count(), b.design.cell_count());
  EXPECT_EQ(a.design.net_count(), b.design.net_count());
  EXPECT_DOUBLE_EQ(a.calibrated_clock_period, b.calibrated_clock_period);
  for (int i = 0; i < a.design.cell_count(); ++i) {
    EXPECT_EQ(a.design.cell(netlist::CellId{i}).position,
              b.design.cell(netlist::CellId{i}).position);
  }
  DesignProfile other = small_profile();
  other.seed = 78;
  const GeneratedDesign c = generate_design(library, other);
  bool any_difference = a.design.cell_count() != c.design.cell_count();
  for (int i = 0; !any_difference && i < std::min(a.design.cell_count(),
                                                  c.design.cell_count());
       ++i)
    any_difference |= a.design.cell(netlist::CellId{i}).position !=
                      c.design.cell(netlist::CellId{i}).position;
  EXPECT_TRUE(any_difference);
}

TEST_F(GeneratorFixture, PlacementIsLegal) {
  const GeneratedDesign gen = generate_design(library, small_profile());
  place::RowGrid grid(gen.design.core(), {});
  for (netlist::CellId id : gen.design.live_cells()) {
    const netlist::Cell& cell = gen.design.cell(id);
    if (cell.kind == netlist::CellKind::kPort) continue;
    EXPECT_TRUE(grid.occupy(grid.row_of(cell.position.y), cell.position.x,
                            cell.width(), id))
        << "overlap: " << cell.name;
  }
}

TEST_F(GeneratorFixture, CalibrationHitsFailingFraction) {
  DesignProfile profile = small_profile();
  profile.failing_endpoint_fraction = 0.38;
  const GeneratedDesign gen = generate_design(library, profile);
  sta::TimingOptions timing;
  timing.clock_period = gen.calibrated_clock_period;
  const sta::TimingReport report = sta::run_sta(gen.design, timing);
  const double fraction = static_cast<double>(report.failing_endpoints()) /
                          report.total_endpoints();
  EXPECT_NEAR(fraction, 0.38, 0.06);
}

TEST_F(GeneratorFixture, WidthMixRoughlyHonored) {
  DesignProfile profile = small_profile();
  profile.register_cells = 2000;
  profile.width_mix = {{1, 0.5}, {2, 0.2}, {4, 0.2}, {8, 0.1}};
  const GeneratedDesign gen = generate_design(library, profile);
  std::map<int, int> histogram;
  for (netlist::CellId reg : gen.design.registers())
    ++histogram[gen.design.cell(reg).reg->bits];
  EXPECT_NEAR(histogram[1] / 2000.0, 0.5, 0.08);
  EXPECT_NEAR(histogram[2] / 2000.0, 0.2, 0.08);
  EXPECT_NEAR(histogram[8] / 2000.0, 0.1, 0.06);
}

TEST_F(GeneratorFixture, DesignerConstraintsApplied) {
  DesignProfile profile = small_profile();
  profile.register_cells = 2000;
  profile.fixed_fraction = 0.10;
  profile.size_only_fraction = 0.10;
  const GeneratedDesign gen = generate_design(library, profile);
  int fixed = 0, size_only = 0;
  for (netlist::CellId reg : gen.design.registers()) {
    fixed += gen.design.cell(reg).fixed;
    size_only += gen.design.cell(reg).size_only;
  }
  EXPECT_NEAR(fixed / 2000.0, 0.10, 0.04);
  EXPECT_NEAR(size_only / 2000.0, 0.10, 0.04);
  // Fixed/size-only registers are not composable.
  for (netlist::CellId reg : gen.design.registers()) {
    if (gen.design.cell(reg).fixed || gen.design.cell(reg).size_only)
      EXPECT_FALSE(mbr::is_composable(gen.design, reg));
  }
}

TEST_F(GeneratorFixture, ScanChainsAreStitched) {
  const GeneratedDesign gen = generate_design(library, small_profile());
  int scan_regs = 0, connected_si = 0;
  for (netlist::CellId reg : gen.design.registers()) {
    const netlist::Cell& cell = gen.design.cell(reg);
    if (!cell.reg->function.is_scan) continue;
    ++scan_regs;
    for (netlist::PinId p : cell.pins)
      if (gen.design.pin(p).role == netlist::PinRole::kScanIn &&
          gen.design.pin(p).net.valid())
        ++connected_si;
  }
  EXPECT_GT(scan_regs, 0);
  // All but one SI per partition is linked.
  EXPECT_GE(connected_si, scan_regs - 8);
}

TEST_F(GeneratorFixture, StandardProfilesMatchTableOneStructure) {
  const auto profiles = standard_profiles();
  ASSERT_EQ(profiles.size(), 5u);
  EXPECT_EQ(profiles[0].name, "D1");
  EXPECT_EQ(profiles[3].name, "D4");
  // D4 is the largest and 8-bit rich.
  EXPECT_GT(profiles[3].register_cells, profiles[0].register_cells);
  EXPECT_GT(profiles[3].width_mix.at(8), profiles[0].width_mix.at(8) * 3);
  // All seeds distinct (designs must differ).
  std::set<std::uint64_t> seeds;
  for (const auto& p : profiles) seeds.insert(p.seed);
  EXPECT_EQ(seeds.size(), 5u);
}

TEST_F(GeneratorFixture, ClockDomainsSeparateClockNets) {
  DesignProfile profile = small_profile();
  profile.clock_domains = 3;
  const GeneratedDesign gen = generate_design(library, profile);
  std::set<std::int32_t> clock_nets;
  for (netlist::CellId reg : gen.design.registers())
    clock_nets.insert(gen.design.register_clock_net(reg).index);
  EXPECT_EQ(clock_nets.size(), 3u);
}

}  // namespace
}  // namespace mbrc::benchgen
