#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/stage_timer.hpp"
#include "runtime/thread_pool.hpp"
#include "util/arena.hpp"

namespace mbrc::runtime {
namespace {

TEST(ThreadPool, DefaultJobsIsPositive) { EXPECT_GE(default_jobs(), 1); }

TEST(ThreadPool, ShutdownRunsAllSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i)
      pool.submit([&ran] { ran.fetch_add(1); });
    // Destructor joins the workers and drains any leftovers itself.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, ZeroWorkerPoolDrainsViaRunOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) pool.submit([&ran] { ran.fetch_add(1); });
  while (pool.run_one()) {
  }
  EXPECT_EQ(ran.load(), 10);
  EXPECT_FALSE(pool.run_one());
}

TEST(ThreadPool, AsyncReturnsValueAndRunsInlineWithoutWorkers) {
  ThreadPool pool(0);
  auto future = pool.async([] { return 41 + 1; });
  // No workers: the task must already have run inline.
  EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(future.get(), 42);

  ThreadPool threaded(2);
  auto f2 = threaded.async([] { return std::string("done"); });
  EXPECT_EQ(help_get(threaded, std::move(f2)), "done");
}

TEST(ThreadPool, AsyncPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.async([]() -> int {
    throw std::runtime_error("async boom");
  });
  EXPECT_THROW(help_get(pool, std::move(future)), std::runtime_error);
}

TEST(FutureDrain, DrainsWatchedFuturesOnScopeExit) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<bool> task_done{false};
  {
    FutureDrain drain(pool);
    auto future = pool.async([&] {
      while (!release.load()) std::this_thread::yield();
      task_done.store(true);
      return 7;
    });
    drain.watch(future);
    release.store(true);
    // Scope exits without consuming the future: the guard must block until
    // the task ran, or `release`/`task_done` would dangle under it.
  }
  EXPECT_TRUE(task_done.load());
}

TEST(FutureDrain, KeepsFrameAliveThroughExceptionalUnwind) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  auto run = [&] {
    std::atomic<bool> release{false};
    FutureDrain drain(pool);
    auto future = pool.async([&] {
      while (!release.load()) std::this_thread::yield();
      sum.fetch_add(41);
      return 0;
    });
    drain.watch(future);
    release.store(true);
    throw std::runtime_error("unwind before help_get");
  };
  EXPECT_THROW(run(), std::runtime_error);
  // The throw unwound past the normal wait, but the guard drained the task
  // before `release` and `sum`'s capture frame died.
  EXPECT_EQ(sum.load(), 41);
}

TEST(FutureDrain, SkipsFuturesAlreadyConsumed) {
  ThreadPool pool(2);
  FutureDrain drain(pool);
  auto future = pool.async([] { return 5; });
  drain.watch(future);
  EXPECT_EQ(help_get(pool, std::move(future)), 5);
  // Destructor sees an invalid future and must not wait on it.
}

TEST(ArenaPoison, ResetOverwritesOldAllocations) {
  util::Arena arena(64);
  arena.set_poison(true);
  auto* slot = static_cast<unsigned char*>(arena.allocate(16, 8));
  std::memset(slot, 0xAB, 16);
  arena.reset();
  // The dangling view now reads the 0xCD fill pattern, not stale data.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(slot[i], 0xCD);
}

TEST(ArenaPoison, DisabledResetLeavesBytesInPlace) {
  util::Arena arena(64);
  arena.set_poison(false);
  auto* slot = static_cast<unsigned char*>(arena.allocate(16, 8));
  std::memset(slot, 0xAB, 16);
  arena.reset();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(slot[i], 0xAB);
}

TEST(ArenaPoison, DefaultTracksBuildTypeMacro) {
  util::Arena arena;
  EXPECT_EQ(arena.poison(), MBRC_ARENA_POISON != 0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(&pool, 4, kCount, 16,
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, SerialShortCircuits) {
  // jobs <= 1 and null pool both run the plain loop, in order.
  std::vector<std::size_t> order;
  parallel_for(nullptr, 8, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));

  ThreadPool pool(2);
  order.clear();
  parallel_for(&pool, 1, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for(&pool, 4, 1000, 1,
                   [&](std::size_t i) {
                     ran.fetch_add(1);
                     if (i == 17) throw std::runtime_error("for boom");
                   }),
      std::runtime_error);
  // Cancellation is cooperative: some chunks after the throw may have run,
  // but the region must have stopped well short of the full range.
  EXPECT_GE(ran.load(), 1);
}

TEST(ParallelFor, NestedRegionsComplete) {
  // Outer region over 8 items, each spawning an inner region on the same
  // pool. Blocked outer tasks help drain the pool, so this must not
  // deadlock even with few workers.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> counts(8 * 64);
  parallel_for(&pool, 3, 8, [&](std::size_t outer) {
    parallel_for(&pool, 3, 64, 4, [&](std::size_t inner) {
      counts[outer * 64 + inner].fetch_add(1);
    });
  });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelTransform, MatchesSerialMapInOrder) {
  ThreadPool pool(4);
  std::vector<int> items(5000);
  std::iota(items.begin(), items.end(), 0);

  const auto square = [](const int& v) { return v * v; };
  const std::vector<int> serial =
      parallel_transform(nullptr, 1, items, square);
  const std::vector<int> parallel =
      parallel_transform(&pool, 4, items, square, 8);

  ASSERT_EQ(serial.size(), items.size());
  EXPECT_EQ(serial, parallel);
}

TEST(StageTimerTest, RecordsCallsItemsAndTime) {
  Metrics metrics;
  for (int i = 0; i < 3; ++i) {
    StageTimer timer(metrics, "stage.a");
    timer.add_items(10);
  }
  {
    StageTimer timer(metrics, "stage.b");
    timer.stop();
    timer.stop();  // idempotent: records once
  }

  const StageTable table = metrics.snapshot();
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.at("stage.a").calls, 3);
  EXPECT_EQ(table.at("stage.a").items, 30);
  EXPECT_GE(table.at("stage.a").seconds, 0.0);
  EXPECT_EQ(table.at("stage.b").calls, 1);

  const std::string report = format_stage_table(table);
  EXPECT_NE(report.find("stage.a"), std::string::npos);
  EXPECT_NE(report.find("stage.b"), std::string::npos);
}

TEST(StageTimerTest, ConcurrentRecordsAggregate) {
  Metrics metrics;
  ThreadPool pool(4);
  parallel_for(&pool, 4, 100, [&](std::size_t) {
    StageTimer timer(metrics, "hot");
    timer.add_items(1);
  });
  const StageTable table = metrics.snapshot();
  EXPECT_EQ(table.at("hot").calls, 100);
  EXPECT_EQ(table.at("hot").items, 100);
}

}  // namespace
}  // namespace mbrc::runtime
