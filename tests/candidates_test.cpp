#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "mbr/candidates.hpp"
#include "mbr/cliques.hpp"
#include "mbr/composition.hpp"
#include "mbr/worked_example.hpp"
#include "obs/counters.hpp"

namespace mbrc::mbr {
namespace {

std::string names(const std::vector<int>& nodes) {
  std::string s;
  for (int n : nodes) s += WorkedExample::node_name(n);
  return s;
}

TEST(CandidateWeight, Formula) {
  EXPECT_DOUBLE_EQ(candidate_weight(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(candidate_weight(3, 0), 1.0 / 3);
  EXPECT_DOUBLE_EQ(candidate_weight(8, 0), 0.125);
  EXPECT_DOUBLE_EQ(candidate_weight(2, 1), 4.0);   // b * 2^n
  EXPECT_DOUBLE_EQ(candidate_weight(3, 1), 6.0);   // the paper's ABC
  EXPECT_DOUBLE_EQ(candidate_weight(8, 1), 16.0);  // the paper's 8-bit case
  EXPECT_DOUBLE_EQ(candidate_weight(4, 1), 8.0);
  EXPECT_DOUBLE_EQ(candidate_weight(4, 3), 32.0);
  EXPECT_TRUE(std::isinf(candidate_weight(3, 3)));  // n >= b
  EXPECT_TRUE(std::isinf(candidate_weight(2, 5)));
}

TEST(CandidateWeight, PaperExampleTradeoff) {
  // Sec. 3.2: one blocked 8-bit (w=16) loses to a clean 4-bit plus a
  // blocked 4-bit (w = 0.25 + 8 = 8.25).
  EXPECT_GT(candidate_weight(8, 1),
            candidate_weight(4, 0) + candidate_weight(4, 1));
  // And clean big beats clean small pairs: 1/8 < 1/4 + 1/4.
  EXPECT_LT(candidate_weight(8, 0),
            2 * candidate_weight(4, 0));
}

class WorkedExampleCandidates : public ::testing::Test {
protected:
  WorkedExampleCandidates()
      : example(make_worked_example()), blockers(example.graph) {
    for (int i = 0; i < example.graph.node_count(); ++i) subgraph.push_back(i);
  }

  EnumerationResult enumerate(EnumerationOptions options = {}) {
    return enumerate_candidates(example.graph, *example.library, blockers,
                                subgraph, options);
  }

  WorkedExample example;
  BlockerIndex blockers;
  std::vector<int> subgraph;
};

TEST_F(WorkedExampleCandidates, Fig3WeightsExact) {
  EnumerationOptions options;
  options.incomplete_area_overhead = 10.0;  // list AE/ACE like the figure
  const EnumerationResult result = enumerate(options);

  std::map<std::string, const Candidate*> by_name;
  for (const Candidate& c : result.candidates) by_name[names(c.nodes)] = &c;

  const auto expect_weight = [&](const std::string& name, double weight,
                                 int blockers_n) {
    ASSERT_TRUE(by_name.contains(name)) << name;
    EXPECT_NEAR(by_name.at(name)->weight, weight, 1e-9) << name;
    EXPECT_EQ(by_name.at(name)->blockers, blockers_n) << name;
  };
  // Clean 2-bit pairs: 0.5 (Fig. 3).
  for (const std::string name : {"AB", "AC", "AD", "BD", "CD"})
    expect_weight(name, 0.5, 0);
  expect_weight("BC", 4.0, 1);    // blocked by D
  expect_weight("ABC", 6.0, 1);   // blocked by D
  for (const std::string name : {"ABD", "ACD", "BCD", "BF", "CF"})
    expect_weight(name, 1.0 / 3, 0);
  expect_weight("ABCD", 0.25, 0);
  expect_weight("BCF", 8.0, 1);   // 4 bits, blocked by D
  expect_weight("AE", 0.2, 0);    // 5 bits, incomplete 8
  expect_weight("ACE", 1.0 / 6, 0);
  // Singletons use the clean formula 1/b.
  expect_weight("A", 1.0, 0);
  expect_weight("E", 0.25, 0);
  expect_weight("F", 0.5, 0);

  // Incomplete mapping widths.
  EXPECT_EQ(by_name.at("AE")->mapped_width, 8);
  EXPECT_TRUE(by_name.at("AE")->is_incomplete());
  EXPECT_EQ(by_name.at("ABCD")->mapped_width, 4);
  EXPECT_FALSE(by_name.at("ABCD")->is_incomplete());
}

TEST_F(WorkedExampleCandidates, FlowAreaRuleRejectsWastefulIncomplete) {
  // With the paper's 5% overhead cap, AE and ACE disappear ("in reality,
  // incomplete register AE would have been rejected").
  const EnumerationResult result = enumerate();
  for (const Candidate& c : result.candidates) {
    EXPECT_NE(names(c.nodes), "AE");
    EXPECT_NE(names(c.nodes), "ACE");
  }
}

TEST_F(WorkedExampleCandidates, IncompleteDisabledDropsOddSizes) {
  EnumerationOptions options;
  options.allow_incomplete = false;
  const EnumerationResult result = enumerate(options);
  for (const Candidate& c : result.candidates) {
    EXPECT_FALSE(c.is_incomplete());
    EXPECT_EQ(c.bits, c.mapped_width);
  }
}

TEST_F(WorkedExampleCandidates, EveryCandidateIsACliqueWithCommonRegion) {
  EnumerationOptions options;
  options.incomplete_area_overhead = 10.0;
  const EnumerationResult result = enumerate(options);
  EXPECT_FALSE(result.truncated);
  for (const Candidate& c : result.candidates) {
    for (std::size_t a = 0; a < c.nodes.size(); ++a)
      for (std::size_t b = a + 1; b < c.nodes.size(); ++b)
        EXPECT_TRUE(example.graph.has_edge(c.nodes[a], c.nodes[b]))
            << names(c.nodes);
    EXPECT_FALSE(c.common_region.is_empty()) << names(c.nodes);
    // The common region is inside every member's region.
    for (int node : c.nodes) {
      const geom::Rect& r = example.graph.node(node).region;
      EXPECT_EQ(c.common_region.intersect(r), c.common_region)
          << names(c.nodes);
    }
  }
}

TEST_F(WorkedExampleCandidates, MatchesMaximalCliqueSubsetEnumeration) {
  // Equivalence with the paper's Bron-Kerbosch + sub-clique DP: every
  // candidate is a subset of some maximal clique, and every subset of a
  // maximal clique with a valid width and non-empty region appears.
  EnumerationOptions options;
  options.incomplete_area_overhead = 10.0;
  const EnumerationResult result = enumerate(options);
  const auto maximal = maximal_cliques(example.graph, subgraph);

  std::set<std::vector<int>> produced;
  for (const Candidate& c : result.candidates) produced.insert(c.nodes);

  for (const Candidate& c : result.candidates) {
    bool inside_some_maximal = false;
    for (const auto& m : maximal) {
      if (std::includes(m.begin(), m.end(), c.nodes.begin(), c.nodes.end())) {
        inside_some_maximal = true;
        break;
      }
    }
    EXPECT_TRUE(inside_some_maximal) << names(c.nodes);
  }

  // Exhaustively check subsets of each maximal clique (cliques are tiny).
  const auto widths =
      example.library->available_widths(lib::RegisterFunction{});
  for (const auto& m : maximal) {
    const int n = static_cast<int>(m.size());
    for (unsigned mask = 1; mask < (1u << n); ++mask) {
      std::vector<int> subset;
      int bits = 0;
      geom::Rect region = geom::Rect::universe();
      for (int i = 0; i < n; ++i) {
        if (mask >> i & 1) {
          subset.push_back(m[i]);
          bits += example.graph.node(m[i]).bits;
          region = region.intersect(example.graph.node(m[i]).region);
        }
      }
      const bool complete =
          std::binary_search(widths.begin(), widths.end(), bits);
      if (!complete) continue;  // incomplete rules tested separately
      if (region.is_empty()) continue;
      const int blocked =
          blockers.count_blockers(example.graph, subset);
      if (blocked >= bits) continue;  // weight infinity: dropped
      EXPECT_TRUE(produced.contains(subset)) << names(subset);
    }
  }
}

TEST_F(WorkedExampleCandidates, TruncationGuard) {
  EnumerationOptions options;
  options.max_candidates_per_subgraph = 5;
  const EnumerationResult result = enumerate(options);
  EXPECT_TRUE(result.truncated);
  // The cap holds, except that lost singletons are appended afterwards so
  // the downstream ILP stays feasible.
  EXPECT_LE(result.candidates.size(), 5u + 6u);
  int singletons = 0;
  for (const Candidate& c : result.candidates) singletons += c.is_singleton();
  EXPECT_EQ(singletons, 6);
}

TEST_F(WorkedExampleCandidates, TruncatedEnumerationKeepsIlpFeasible) {
  // Even a pathologically small candidate cap must leave the exact-cover
  // ILP solvable (every node retains its keep-as-is option).
  for (const std::size_t cap : {1u, 2u, 3u, 7u}) {
    EnumerationOptions options;
    options.max_candidates_per_subgraph = cap;
    const EnumerationResult result = enumerate(options);
    const ilp::SetPartitionResult solved =
        mbr::solve_subgraph(subgraph, result.candidates);
    EXPECT_TRUE(solved.feasible) << "cap " << cap;
  }
}

TEST(BlockerIndexTest, CountsOnlyNonMembersStrictlyInside) {
  const WorkedExample example = make_worked_example();
  const BlockerIndex index(example.graph);
  using WE = WorkedExample;
  // D is inside hull(A, B, C) (Fig. 2).
  EXPECT_EQ(index.count_blockers(example.graph, {WE::kA, WE::kB, WE::kC}), 1);
  // ...but a member never blocks its own candidate.
  EXPECT_EQ(
      index.count_blockers(example.graph, {WE::kA, WE::kB, WE::kC, WE::kD}),
      0);
  // Singletons have no hull to block.
  EXPECT_EQ(index.count_blockers(example.graph, {WE::kA}), 0);
}

TEST(PerBitScan, RuleMatrix) {
  const WorkedExample example = make_worked_example();
  CompatibilityGraph g;
  auto add = [&](int section, int order) {
    RegisterInfo info = example.graph.node(0);
    info.scan.partition = 0;
    info.scan.section = section;
    info.scan.order = order;
    return g.add_node(info);
  };
  const int free1 = add(-1, -1);
  const int free2 = add(-1, -1);
  const int s0_0 = add(0, 0);
  const int s0_1 = add(0, 1);
  const int s0_3 = add(0, 3);
  const int s1_0 = add(1, 0);

  // No ordering constraints at all.
  EXPECT_FALSE(candidate_needs_per_bit_scan(g, {free1, free2}));
  // One contiguous run of a single section.
  EXPECT_FALSE(candidate_needs_per_bit_scan(g, {s0_0, s0_1}));
  // Non-contiguous orders: the chain would have to leave and re-enter.
  EXPECT_TRUE(candidate_needs_per_bit_scan(g, {s0_0, s0_3}));
  // Two different ordered sections cross the MBR.
  EXPECT_TRUE(candidate_needs_per_bit_scan(g, {s0_0, s1_0}));
  // Ordered and free registers mixed.
  EXPECT_TRUE(candidate_needs_per_bit_scan(g, {s0_0, s0_1, free1}));
  // A single ordered register is fine.
  EXPECT_FALSE(candidate_needs_per_bit_scan(g, {s0_0}));
}

TEST(CostModelTest, DefaultReducesToPaperWeight) {
  const lib::Library library = lib::make_default_library();
  const lib::RegisterCell* cell = library.cheapest_cell({}, 4);
  ASSERT_NE(cell, nullptr);
  const CostModel defaults;
  EXPECT_FALSE(defaults.multi_objective());
  // alpha=1, beta=gamma=0: the candidate cost IS the paper weight,
  // bit-exactly, whatever cell would be created.
  for (const double w : {0.125, 1.0 / 3, 0.5, 4.0, 16.0}) {
    EXPECT_EQ(defaults.candidate_cost(w, cell), w);
    EXPECT_EQ(defaults.candidate_cost(w, nullptr), w);
  }

  CostModel priced;
  priced.beta = 0.1;
  priced.gamma = 0.05;
  EXPECT_TRUE(priced.multi_objective());
  EXPECT_DOUBLE_EQ(priced.candidate_cost(0.5, cell),
                   0.5 + 0.1 * cell->power_proxy() + 0.05 * cell->area);
}

TEST_F(WorkedExampleCandidates, TruncationGuardSingletonsCarryCostTerms) {
  // Regression (S1): the truncation guard used to append lost singletons
  // with the bare paper weight candidate_weight(bits, 0), silently dropping
  // the beta/gamma cost terms every regularly-enumerated candidate carries.
  // Under a multi-objective model that under-priced keeping a register
  // unmerged, so the truncated ILP was biased toward unmerged banks.
  EnumerationOptions costed;
  costed.cost.beta = 0.1;
  costed.cost.gamma = 0.05;
  const EnumerationResult full = enumerate(costed);
  std::map<std::string, double> full_weight;
  for (const Candidate& c : full.candidates)
    if (c.is_singleton()) full_weight[names(c.nodes)] = c.weight;
  ASSERT_FALSE(full_weight.empty());

  EnumerationOptions truncated = costed;
  truncated.max_candidates_per_subgraph = 1;
  const EnumerationResult result = enumerate(truncated);
  ASSERT_TRUE(result.truncated);
  int guarded = 0;
  for (const Candidate& c : result.candidates) {
    if (!c.is_singleton()) continue;
    ++guarded;
    const auto it = full_weight.find(names(c.nodes));
    ASSERT_NE(it, full_weight.end()) << names(c.nodes);
    // Identical to the untruncated enumeration's singleton pricing...
    EXPECT_DOUBLE_EQ(c.weight, it->second) << names(c.nodes);
    // ...which is strictly above the bare paper weight when beta/gamma on.
    EXPECT_GT(c.weight, candidate_weight(c.bits, 0)) << names(c.nodes);
  }
  EXPECT_EQ(guarded, 6);  // every worked-example node kept its keep-option
}

TEST(DroppedInfiniteWeight, TalliedAndFlushedToCounter) {
  // Two compatible 1-bit registers at diagonal corners; two strangers sit
  // strictly inside the pair's convex hull. The pair candidate has n=2
  // blockers >= b=2 bits -> infinite weight -> silently dropped by
  // enumeration. Regression (S2): that drop used to vanish without a
  // trace; it must be tallied in the result and flushed to the
  // flow.candidates.dropped_infinite_weight counter.
  const lib::Library library = lib::make_default_library();
  const lib::RegisterCell* unit = library.cheapest_cell({}, 1);
  ASSERT_NE(unit, nullptr);

  CompatibilityGraph graph;
  const auto add = [&](geom::Rect footprint) {
    RegisterInfo info;
    info.lib_cell = unit;
    info.bits = 1;
    info.footprint = footprint;
    info.region = {-100.0, -100.0, 100.0, 100.0};
    return graph.add_node(info);
  };
  const int a = add({0.0, 0.0, 1.0, 1.0});
  const int b = add({10.0, 10.0, 11.0, 11.0});
  add({4.0, 4.0, 5.0, 5.0});  // blocker, center (4.5, 4.5)
  add({5.0, 5.0, 6.0, 6.0});  // blocker, center (5.5, 5.5)
  graph.add_edge(a, b);
  graph.finalize();

  const BlockerIndex blockers(graph);
  ASSERT_EQ(blockers.count_blockers(graph, {a, b}), 2);

  const obs::CountersSnapshot before = obs::counters_snapshot();
  const EnumerationResult result =
      enumerate_candidates(graph, library, blockers, {a, b}, {});
  const obs::CountersSnapshot delta =
      obs::counters_delta(before, obs::counters_snapshot());

  EXPECT_EQ(result.dropped_infinite_weight, 1);
  const auto it =
      delta.counters.find("flow.candidates.dropped_infinite_weight");
  ASSERT_NE(it, delta.counters.end());
  EXPECT_EQ(it->second, 1);
  // The pair is gone but both keep-as-is singletons survived.
  int singletons = 0;
  for (const Candidate& c : result.candidates) singletons += c.is_singleton();
  EXPECT_EQ(singletons, 2);
  EXPECT_EQ(result.candidates.size(), 2u);
}

}  // namespace
}  // namespace mbrc::mbr
