// Randomized flow fuzzer (the adversarial half of src/check).
//
// Each seed derives a benchgen profile and a random flow configuration
// (ILP vs heuristic allocator, decomposition pre-pass, useful skew on/off,
// multi-objective cost knobs, bank/debank loop)
// and runs the full composition flow at CheckLevel::kParanoid twice -- at
// jobs=1 and jobs=4 -- so every stage boundary is validated against the
// structural invariants *and* the incremental engine is cross-checked
// against a fresh run_sta while the parallel runtime is active. Because the
// guard runs per stage, any integrity failure is reported as an
// util::AssertionError that already names the first broken stage; the test
// additionally saves the pristine input design as a .mbrc artifact so the
// failure reproduces outside the fuzzer:
//
//   MBRC_FUZZ_SEEDS         comma/space-separated seed list overriding the
//                           built-in 24 (lets CI pin a small fixed set and a
//                           developer replay one seed)
//   MBRC_FUZZ_ARTIFACT_DIR  where failing inputs are written
//                           (default: ./fuzz-artifacts)
//
// On top of the integrity checks, every run must keep the paper's
// no-degradation guarantees: register count never increases, area stays
// flat, the clock tree never grows, TNS stays within the calibrated band,
// a hold-clean design stays hold-clean, and the jobs=1 / jobs=4 runs are
// bit-identical.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/generator.hpp"
#include "mbr/flow.hpp"
#include "netlist/io.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace mbrc::mbr {
namespace {

std::vector<std::uint64_t> fuzz_seeds() {
  std::vector<std::uint64_t> seeds;
  if (const char* env = std::getenv("MBRC_FUZZ_SEEDS")) {
    std::string text(env);
    for (char& c : text)
      if (c == ',') c = ' ';
    std::istringstream is(text);
    std::uint64_t seed = 0;
    while (is >> seed) seeds.push_back(seed);
  }
  if (seeds.empty())
    for (std::uint64_t s = 1; s <= 24; ++s) seeds.push_back(s);
  return seeds;
}

std::string artifact_dir() {
  if (const char* env = std::getenv("MBRC_FUZZ_ARTIFACT_DIR")) return env;
  return "fuzz-artifacts";
}

/// Saves the pristine input so a failure replays without the fuzzer:
/// load the .mbrc and run the printed options by hand.
void dump_artifact(const netlist::Design& input, std::uint64_t seed,
                   const std::string& config) {
  const std::filesystem::path dir(artifact_dir());
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path =
      (dir / ("seed" + std::to_string(seed) + ".mbrc")).string();
  if (netlist::save_design_file(input, path))
    ADD_FAILURE() << "failing input saved to " << path << " (config: "
                  << config << ")";
  else
    ADD_FAILURE() << "could not save failing input to " << path;
}

class FlowFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowFuzz, ParanoidFlowKeepsEveryGuarantee) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);

  benchgen::DesignProfile profile;
  profile.name = "fuzz" + std::to_string(seed);
  profile.seed = seed * 7919 + 17;
  profile.register_cells = static_cast<int>(rng.uniform_int(150, 450));
  profile.comb_per_register = rng.uniform_real(2.0, 5.0);
  const double eight = rng.uniform_real(0.0, 0.5);
  profile.width_mix = {{1, (1.0 - eight) * 0.5},
                       {2, (1.0 - eight) * 0.3},
                       {4, (1.0 - eight) * 0.2},
                       {8, eight}};
  profile.scan_partitions = static_cast<int>(rng.uniform_int(1, 4));

  FlowOptions options;
  options.check_level = check::CheckLevel::kParanoid;
  options.allocator = rng.chance(0.5) ? Allocator::kIlp
                                      : Allocator::kHeuristic;
  options.decompose_wide_mbrs = rng.chance(0.5);
  options.apply_useful_skew = rng.chance(0.8);
  // Multi-objective cost knobs: half the seeds run the paper's pure-weight
  // objective, the rest price power and area in.
  if (rng.chance(0.5)) {
    options.cost.alpha = rng.uniform_real(0.0, 1.0);
    options.cost.beta = rng.uniform_real(0.0, 1.0);
    options.cost.gamma = rng.uniform_real(0.0, 0.5);
  }
  options.debank_loop = rng.chance(0.4);

  std::ostringstream config;
  config << "seed=" << seed << " regs=" << profile.register_cells
         << " allocator="
         << (options.allocator == Allocator::kIlp ? "ilp" : "heuristic")
         << " decompose=" << options.decompose_wide_mbrs
         << " skew=" << options.apply_useful_skew
         << " cost=" << options.cost.alpha << "/" << options.cost.beta
         << "/" << options.cost.gamma
         << " debank=" << options.debank_loop;
  SCOPED_TRACE(config.str());

  const lib::Library library = lib::make_default_library();
  const benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);
  options.timing.clock_period = generated.calibrated_clock_period;

  std::vector<FlowResult> results;
  for (const int jobs : {1, 4}) {
    netlist::Design design = generated.design;  // each run gets a fresh copy
    options.jobs = jobs;
    try {
      results.push_back(run_composition_flow(design, options));
      design.check_consistency();
    } catch (const util::AssertionError& e) {
      // The per-stage guard already names the first broken stage.
      dump_artifact(generated.design, seed, config.str());
      FAIL() << "jobs=" << jobs << ": " << e.what();
    }
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    const FlowResult& r = results[i];
    SCOPED_TRACE(i == 0 ? "jobs=1" : "jobs=4");
    // An accepted debank iteration deliberately trades register count (and
    // possibly area/clock cap) for the combined objective, so the paper's
    // structural no-degradation guarantees only bind when no split was
    // kept; the loop's own guarantee -- monotone non-increasing cost --
    // binds instead.
    bool debank_accepted = false;
    for (const FlowResult::DebankIteration& it : r.debank_iterations) {
      if (it.accepted) {
        debank_accepted = true;
        EXPECT_LT(it.cost_after, it.cost_before);
      }
    }
    if (!r.debank_iterations.empty())
      EXPECT_LE(r.final_cost, r.debank_iterations.front().cost_before + 1e-9);
    if (!debank_accepted) {
      // The paper's no-degradation guarantees.
      EXPECT_LE(r.after.design.total_registers,
                r.before.design.total_registers);
      EXPECT_LE(r.after.design.area, r.before.design.area * 1.005);
      EXPECT_LE(r.after.clock_cap, r.before.clock_cap * 1.0001);
      EXPECT_GE(r.after.tns, r.before.tns * 1.15 - 0.5);
      EXPECT_GE(r.after.wns, r.before.wns * 1.15 - 0.1);
    }
    if (r.before.failing_hold_endpoints == 0) {
      EXPECT_EQ(r.after.failing_hold_endpoints, 0);
      EXPECT_GE(r.after.hold_wns, 0.0);
    }
    EXPECT_TRUE(r.legalization.success);
    // Register accounting closes exactly (the decompose pre-pass adds split
    // and recombine terms the plain identity does not carry, and accepted
    // debank splits add pieces outside the merge ledger).
    if (!options.decompose_wide_mbrs && !debank_accepted)
      EXPECT_EQ(r.before.design.total_registers - r.registers_merged +
                    r.mbrs_created,
                r.after.design.total_registers);
  }

  // jobs=1 and jobs=4 are bit-identical (the parallel runtime's contract).
  const FlowResult& serial = results[0];
  const FlowResult& parallel = results[1];
  EXPECT_EQ(serial.mbrs_created, parallel.mbrs_created);
  EXPECT_EQ(serial.registers_merged, parallel.registers_merged);
  EXPECT_EQ(serial.after.design.total_registers,
            parallel.after.design.total_registers);
  EXPECT_EQ(serial.after.tns, parallel.after.tns);
  EXPECT_EQ(serial.after.wns, parallel.after.wns);
  EXPECT_EQ(serial.after.clock_cap, parallel.after.clock_cap);
  EXPECT_EQ(serial.after.overflow_edges, parallel.after.overflow_edges);
  EXPECT_EQ(serial.final_cost, parallel.final_cost);
  EXPECT_EQ(serial.debank_iterations.size(), parallel.debank_iterations.size());
  // Work counters are part of the determinism contract; in particular the
  // infinite-weight drop tally (candidates whose blocker count reaches
  // their bit width) must not depend on the parallel schedule.
  const auto dropped = [](const FlowResult& r) {
    const auto it =
        r.counters.counters.find("flow.candidates.dropped_infinite_weight");
    return it == r.counters.counters.end() ? std::int64_t{0} : it->second;
  };
  EXPECT_EQ(dropped(serial), dropped(parallel));
  EXPECT_GE(dropped(serial), 0);

  if (::testing::Test::HasFailure())
    dump_artifact(generated.design, seed, config.str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowFuzz, ::testing::ValuesIn(fuzz_seeds()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mbrc::mbr
