#include <gtest/gtest.h>

#include <map>
#include <set>

#include "benchgen/generator.hpp"
#include "ilp/branch_and_bound.hpp"
#include "mbr/composition.hpp"
#include "mbr/heuristic.hpp"
#include "mbr/worked_example.hpp"

namespace mbrc::mbr {
namespace {

std::string names(const std::vector<int>& nodes) {
  std::string s;
  for (int n : nodes) s += WorkedExample::node_name(n);
  return s;
}

class WorkedExampleIlp : public ::testing::Test {
protected:
  WorkedExampleIlp() : example(make_worked_example()), blockers(example.graph) {
    for (int i = 0; i < example.graph.node_count(); ++i) subgraph.push_back(i);
  }

  WorkedExample example;
  BlockerIndex blockers;
  std::vector<int> subgraph;
};

TEST_F(WorkedExampleIlp, SixRegistersBecomeThree) {
  const EnumerationResult enumeration = enumerate_candidates(
      example.graph, *example.library, blockers, subgraph);
  const ilp::SetPartitionResult solved =
      solve_subgraph(subgraph, enumeration.candidates);
  ASSERT_TRUE(solved.feasible);
  EXPECT_EQ(solved.chosen.size(), 3u);  // the paper's 6 -> 3
  // Optimal objective: 1/3 ({A,C,D} or {A,B,D}) + 1/3 (pair with F) + 1/4 (E).
  EXPECT_NEAR(solved.objective, 1.0 / 3 + 1.0 / 3 + 0.25, 1e-9);

  // The selection is an exact cover.
  std::set<int> covered;
  for (int index : solved.chosen)
    for (int node : enumeration.candidates[index].nodes)
      EXPECT_TRUE(covered.insert(node).second);
  EXPECT_EQ(covered.size(), 6u);

  // E stays a singleton (it only pairs into rejected incomplete MBRs).
  bool e_alone = false;
  for (int index : solved.chosen) {
    if (enumeration.candidates[index].nodes ==
        std::vector<int>{WorkedExample::kE})
      e_alone = true;
  }
  EXPECT_TRUE(e_alone);
}

TEST_F(WorkedExampleIlp, MatchesGenericBranchAndBound) {
  const EnumerationResult enumeration = enumerate_candidates(
      example.graph, *example.library, blockers, subgraph);
  const ilp::SetPartitionResult fast =
      solve_subgraph(subgraph, enumeration.candidates);

  lp::Model model;
  for (std::size_t c = 0; c < enumeration.candidates.size(); ++c)
    model.add_binary("c" + std::to_string(c),
                     enumeration.candidates[c].weight);
  for (int node : subgraph) {
    std::vector<lp::Term> terms;
    for (std::size_t c = 0; c < enumeration.candidates.size(); ++c) {
      const auto& nodes = enumeration.candidates[c].nodes;
      if (std::find(nodes.begin(), nodes.end(), node) != nodes.end())
        terms.push_back({static_cast<int>(c), 1.0});
    }
    model.add_constraint(std::move(terms), lp::Relation::kEqual, 1.0);
  }
  const lp::Solution generic = ilp::solve_ilp(model);
  ASSERT_EQ(generic.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(fast.objective, generic.objective, 1e-6);
}

TEST_F(WorkedExampleIlp, BlockedCandidatesNeverBeatSingletons) {
  // Structural property of the Sec. 3.2 weights: b * 2^n >= 2b while the
  // singleton decomposition costs at most b -- so a blocked candidate never
  // appears in an optimal solution.
  const EnumerationResult enumeration = enumerate_candidates(
      example.graph, *example.library, blockers, subgraph);
  const ilp::SetPartitionResult solved =
      solve_subgraph(subgraph, enumeration.candidates);
  for (int index : solved.chosen)
    EXPECT_EQ(enumeration.candidates[index].blockers, 0)
        << names(enumeration.candidates[index].nodes);
}

TEST(PlanComposition, ExactCoverOnGeneratedDesign) {
  const lib::Library library = lib::make_default_library();
  benchgen::DesignProfile profile;
  profile.register_cells = 300;
  profile.comb_per_register = 4.0;
  profile.seed = 21;
  benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);

  sta::TimingOptions timing;
  timing.clock_period = generated.calibrated_clock_period;
  const sta::TimingReport report = sta::run_sta(generated.design, timing);

  const CompositionPlan plan =
      plan_composition(generated.design, report, {});
  EXPECT_GT(plan.graph.node_count(), 0);
  EXPECT_GT(plan.subgraph_count, 0);
  EXPECT_EQ(plan.truncated_subgraphs, 0);

  // Every composable register appears in exactly one selection.
  std::map<netlist::CellId, int> coverage;
  for (const Selection& s : plan.selections) {
    EXPECT_EQ(s.members.size(), s.candidate.nodes.size());
    for (netlist::CellId member : s.members) ++coverage[member];
  }
  EXPECT_EQ(static_cast<int>(coverage.size()), plan.graph.node_count());
  for (const auto& [cell, count] : coverage) EXPECT_EQ(count, 1);

  // Merges reduce the planned register count below the node count.
  EXPECT_LT(plan.planned_register_count(), plan.graph.node_count());
  EXPECT_FALSE(plan.merges().empty());

  // Deterministic: planning again gives the same selections.
  const CompositionPlan again =
      plan_composition(generated.design, report, {});
  ASSERT_EQ(again.selections.size(), plan.selections.size());
  for (std::size_t i = 0; i < plan.selections.size(); ++i)
    EXPECT_EQ(again.selections[i].members, plan.selections[i].members);
  EXPECT_DOUBLE_EQ(again.objective, plan.objective);
}

TEST(PlanCompositionHeuristic, ValidPartitionAndIlpNoWorse) {
  const lib::Library library = lib::make_default_library();
  benchgen::DesignProfile profile;
  profile.register_cells = 400;
  profile.comb_per_register = 4.0;
  profile.seed = 33;
  benchgen::GeneratedDesign generated =
      benchgen::generate_design(library, profile);

  sta::TimingOptions timing;
  timing.clock_period = generated.calibrated_clock_period;
  const sta::TimingReport report = sta::run_sta(generated.design, timing);

  const CompositionPlan ilp = plan_composition(generated.design, report, {});
  const CompositionPlan heur =
      plan_composition_heuristic(generated.design, report, {});

  // Both are exact covers of the same node set.
  EXPECT_EQ(ilp.graph.node_count(), heur.graph.node_count());
  std::set<netlist::CellId> covered;
  for (const Selection& s : heur.selections)
    for (netlist::CellId member : s.members)
      EXPECT_TRUE(covered.insert(member).second);
  EXPECT_EQ(static_cast<int>(covered.size()), heur.graph.node_count());

  // The exact ILP never plans more registers than the greedy baseline
  // (Fig. 6's direction).
  EXPECT_LE(ilp.planned_register_count(), heur.planned_register_count());
}

}  // namespace
}  // namespace mbrc::mbr
