// mbrc-lint rule-engine tests: each R1-R6 rule is exercised against fixture
// sources with planted violations (and near-miss negatives), plus the
// suppression-comment contract and the baseline match/stale behavior. The
// fixtures are in-memory SourceFiles, so these tests pin down the scanner's
// semantics independent of the state of src/.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver.hpp"
#include "lint.hpp"

namespace mbrc::lint {
namespace {

LintResult lint_one(const std::string& content, LintOptions options = {},
                    const std::vector<BaselineEntry>& baseline = {}) {
  return run_lint({{"src/fixture.cpp", content}}, options, baseline);
}

/// Rules of the active (non-suppressed, non-baselined) findings.
std::vector<std::string> active_rules(const LintResult& result) {
  std::vector<std::string> rules;
  for (const Finding* f : result.active()) rules.push_back(f->rule);
  return rules;
}

// --- R1: unordered iteration feeding results -------------------------------

TEST(LintR1, RangeForOverUnorderedMapEmittingIsFlagged) {
  const auto result = lint_one(R"(
    void f(std::vector<int>& out) {
      std::unordered_map<int, int> counts;
      for (const auto& [key, value] : counts) {
        out.push_back(key);
      }
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"R1"});
  EXPECT_EQ(result.findings[0].line, 4);
  EXPECT_NE(result.findings[0].message.find("counts"), std::string::npos);
}

TEST(LintR1, OrderedMapIsNotFlagged) {
  const auto result = lint_one(R"(
    void f(std::vector<int>& out) {
      std::map<int, int> counts;
      for (const auto& [key, value] : counts) out.push_back(key);
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

TEST(LintR1, UnorderedIterationWithoutEmitIsNotFlagged) {
  const auto result = lint_one(R"(
    int f() {
      std::unordered_map<int, int> counts;
      int best = 0;
      for (const auto& [key, value] : counts) best = std::max(best, key);
      return best;
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

TEST(LintR1, AliasDeclaredInAnotherFileIsResolved) {
  // `SkewMap` is aliased to an unordered_map in one file and iterated in
  // another: the alias table is built across the whole file set.
  const std::vector<SourceFile> files = {
      {"src/sta/skew.hpp",
       "using SkewMap = std::unordered_map<CellId, double>;\n"},
      {"src/sta/user.cpp",
       R"(
         void g(const SkewMap& skew, std::vector<CellId>& out) {
           for (const auto& [cell, value] : skew) {
             out.push_back(cell);
           }
         }
       )"}};
  const auto result = run_lint(files, {}, {});
  ASSERT_EQ(result.active().size(), 1u);
  EXPECT_EQ(result.active()[0]->rule, "R1");
  EXPECT_EQ(result.active()[0]->path, "src/sta/user.cpp");
}

TEST(LintR1, MemberDeclaredInHeaderIteratedInCppIsFlagged) {
  // Member-convention names (trailing underscore) cross the header/impl
  // split; a same-named local in an unrelated file must NOT leak.
  const std::vector<SourceFile> files = {
      {"src/w/widget.hpp",
       "struct Widget { std::unordered_map<int, int> cache_; };\n"},
      {"src/w/widget.cpp",
       R"(
         void Widget::dump(std::vector<int>& out) {
           for (const auto& [k, v] : cache_) out.push_back(k);
         }
       )"}};
  const auto result = run_lint(files, {}, {});
  ASSERT_EQ(result.active().size(), 1u);
  EXPECT_EQ(result.active()[0]->rule, "R1");
}

TEST(LintR1, LocalNameDoesNotLeakAcrossFiles) {
  // `bins` is unordered in one file; an ordered `bins` in another file must
  // stay clean (locals are tracked per translation unit).
  const std::vector<SourceFile> files = {
      {"src/a.cpp",
       "void a() { std::unordered_map<int, int> bins; bins.clear(); }\n"},
      {"src/b.cpp",
       R"(
         void b(std::vector<int>& out) {
           std::map<int, int> bins;
           for (const auto& [k, v] : bins) out.push_back(k);
         }
       )"}};
  EXPECT_TRUE(run_lint(files, {}, {}).active().empty());
}

TEST(LintR1, BucketProbeIteratorIsFlagged) {
  // The spatial-hash probe pattern: an iterator obtained from find() on an
  // unordered container, whose bucket is then iterated into an emit call.
  const auto result = lint_one(R"(
    void probe(Graph& graph) {
      std::unordered_map<long, std::vector<int>> bins;
      const auto it = bins.find(42);
      if (it == bins.end()) return;
      for (int j : it->second) {
        graph.add_edge(0, j);
      }
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"R1"});
  EXPECT_NE(result.findings[0].message.find("it"), std::string::npos);
}

// --- R2: FP-only comparator tie-breaks -------------------------------------

TEST(LintR2, FpOnlyComparatorIsFlagged) {
  const auto result = lint_one(R"(
    struct Item { double weight; int id; };
    void f(std::vector<Item>& items) {
      std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
        return a.weight < b.weight;
      });
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"R2"});
  EXPECT_NE(result.findings[0].message.find("weight"), std::string::npos);
}

TEST(LintR2, IntegralTieBreakIsNotFlagged) {
  const auto result = lint_one(R"(
    struct Item { double weight; int id; };
    void f(std::vector<Item>& items) {
      std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
        if (a.weight != b.weight) return a.weight < b.weight;
        return a.id < b.id;
      });
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

TEST(LintR2, IntegralDisjunctInOneReturnIsNotFlagged) {
  // `x < y || (x == y && a < b)` ends on an integral comparison inside a
  // single return expression.
  const auto result = lint_one(R"(
    struct P { double x; int a; };
    void f(std::vector<P>& ps) {
      std::sort(ps.begin(), ps.end(), [](const P& pa, const P& pb) {
        return pa.x < pb.x || (pa.x == pb.x && pa.a < pb.a);
      });
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

TEST(LintR2, MinElementWithFpComparatorIsFlagged) {
  const auto result = lint_one(R"(
    struct Cell { double area; };
    const Cell* cheapest(const std::vector<Cell*>& cells) {
      return *std::min_element(cells.begin(), cells.end(),
                               [](const Cell* a, const Cell* b) {
                                 return a->area < b->area;
                               });
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"R2"});
}

TEST(LintR2, DoubleLambdaParametersAreFlagged) {
  const auto result = lint_one(R"(
    void f(std::vector<double>& xs) {
      std::sort(xs.begin(), xs.end(), [](double a, double b) {
        return a > b;
      });
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"R2"});
}

TEST(LintR2, PlainIntParametersDoNotInheritFpness) {
  // Regression: `double b;` elsewhere must not make an `a < b` comparator on
  // int parameters look floating-point.
  const auto result = lint_one(R"(
    double b = 0.5;
    void f(std::vector<int>& xs) {
      std::sort(xs.begin(), xs.end(), [](int a, int b) {
        return a < b;
      });
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

// --- R3: nondeterminism sources --------------------------------------------

TEST(LintR3, RandIsFlagged) {
  const auto result = lint_one("int f() { return rand() % 6; }\n");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"R3"});
}

TEST(LintR3, StdEngineTypesAreFlagged) {
  const auto result = lint_one(R"(
    void f() {
      std::random_device rd;
      std::mt19937 gen(rd());
    }
  )");
  EXPECT_EQ(result.active().size(), 2u);
  for (const Finding* f : result.active()) EXPECT_EQ(f->rule, "R3");
}

TEST(LintR3, SanctionedRngFileIsExempt) {
  const std::vector<SourceFile> files = {
      {"src/util/rng.hpp", "struct Rng { std::mt19937 engine; };\n"}};
  EXPECT_TRUE(run_lint(files, {}, {}).active().empty());
}

TEST(LintR3, StreamingAnAddressIsFlagged) {
  const auto result = lint_one(R"(
    void f(std::ostream& os, const Cell& cell) {
      os << &cell;
      os << static_cast<const void*>(cell.data());
    }
  )");
  EXPECT_EQ(result.active().size(), 2u);
  for (const Finding* f : result.active()) EXPECT_EQ(f->rule, "R3");
}

TEST(LintR3, MemberNamedRandIsNotFlagged) {
  EXPECT_TRUE(lint_one("int f(Rng& r) { return r.rand(); }\n")
                  .active()
                  .empty());
}

// --- R3 clock scoping: wall-clock reads outside the observability layer ----

TEST(LintR3Clock, SteadyClockOutsideSanctionedFilesIsFlagged) {
  const std::vector<SourceFile> files = {
      {"src/mbr/flow.cpp",
       "void f() { auto t = std::chrono::steady_clock::now(); }\n"}};
  const auto result = run_lint(files, {}, {});
  ASSERT_EQ(result.active().size(), 1u);
  EXPECT_EQ(result.active()[0]->rule, "R3");
  EXPECT_NE(result.active()[0]->message.find("steady_clock"),
            std::string::npos);
}

TEST(LintR3Clock, PosixClockCallsAreFlagged) {
  const std::vector<SourceFile> files = {
      {"src/sta/engine.cpp",
       R"(
         void f(timespec* ts, timeval* tv) {
           clock_gettime(CLOCK_MONOTONIC, ts);
           gettimeofday(tv, nullptr);
         }
       )"}};
  const auto result = run_lint(files, {}, {});
  EXPECT_EQ(result.active().size(), 2u);
  for (const Finding* f : result.active()) EXPECT_EQ(f->rule, "R3");
}

TEST(LintR3Clock, SanctionedMeasurementFilesAreExempt) {
  const std::vector<SourceFile> files = {
      {"src/obs/trace.cpp",
       "long now() { return std::chrono::steady_clock::now()"
       ".time_since_epoch().count(); }\n"},
      {"src/runtime/stage_timer.hpp",
       "using Clock = std::chrono::steady_clock;\n"},
      {"src/util/stopwatch.hpp",
       "using Clock = std::chrono::steady_clock;\n"}};
  EXPECT_TRUE(run_lint(files, {}, {}).active().empty());
}

TEST(LintR3Clock, ServiceLayerIsNotClockExempt) {
  // The composition daemon (src/service) must stay deterministic: it is
  // deliberately NOT in the clock-exempt path list, so a bare wall-clock
  // read there is a lint failure. Real clock uses (the socket accept
  // loop's idle timeout) carry per-site allow(R3) suppressions instead.
  const std::vector<SourceFile> files = {
      {"src/service/socket_server.cpp",
       "void f() { auto t = std::chrono::steady_clock::now(); }\n"}};
  const auto result = run_lint(files, {}, {});
  ASSERT_EQ(result.active().size(), 1u);
  EXPECT_EQ(result.active()[0]->rule, "R3");
  EXPECT_EQ(result.active()[0]->path, "src/service/socket_server.cpp");
}

TEST(LintR3Clock, ServiceClockReadWithReasonedAllowIsSuppressed) {
  const std::vector<SourceFile> files = {
      {"src/service/socket_server.cpp",
       "// mbrc-lint: allow(R3, idle timeout only closes connections; "
       "never alters any response payload)\n"
       "auto deadline = std::chrono::steady_clock::now();\n"}};
  const auto result = run_lint(files, {}, {});
  EXPECT_TRUE(result.active().empty());
  EXPECT_TRUE(result.clean());
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_TRUE(result.findings[0].suppressed);
}

TEST(LintR3Clock, FlightRecorderIsExemptViaTheObsPath) {
  // The flight recorder timestamps events with steady_clock; it lives in
  // src/obs/, the measurement layer that is clock-exempt wholesale, so no
  // per-site suppression is needed there.
  const std::vector<SourceFile> files = {
      {"src/obs/flight_recorder.cpp",
       "long now_us() { return std::chrono::steady_clock::now()"
       ".time_since_epoch().count(); }\n"}};
  EXPECT_TRUE(run_lint(files, {}, {}).active().empty());
}

TEST(LintR3Clock, DaemonLatencyClockNeedsItsReasonedAllow) {
  // The daemon's request-latency clock read (the stats verb's percentile
  // source) is in src/service/, NOT exempt: without the reasoned allow the
  // exact code fires, and with it (as daemon.cpp carries) it is clean.
  const std::vector<SourceFile> bare = {
      {"src/service/daemon.cpp",
       "using LatencyClock = std::chrono::steady_clock;\n"}};
  const auto fired = run_lint(bare, {}, {});
  ASSERT_EQ(fired.active().size(), 1u);
  EXPECT_EQ(fired.active()[0]->rule, "R3");
  EXPECT_EQ(fired.active()[0]->path, "src/service/daemon.cpp");

  const std::vector<SourceFile> reasoned = {
      {"src/service/daemon.cpp",
       "// mbrc-lint: allow(R3, request-latency measurement for the stats "
       "verb; measurement-only, no response content depends on it)\n"
       "using LatencyClock = std::chrono::steady_clock;\n"}};
  const auto suppressed = run_lint(reasoned, {}, {});
  EXPECT_TRUE(suppressed.active().empty());
  EXPECT_TRUE(suppressed.clean());
}

TEST(LintR3Clock, ServiceSystemClockIsAlsoFlagged) {
  // system_clock is worse than steady_clock for determinism (it can jump),
  // so the daemon must not read it either.
  const std::vector<SourceFile> files = {
      {"src/service/daemon.cpp",
       "long stamp() { return std::chrono::system_clock::now()"
       ".time_since_epoch().count(); }\n"}};
  const auto result = run_lint(files, {}, {});
  ASSERT_EQ(result.active().size(), 1u);
  EXPECT_EQ(result.active()[0]->rule, "R3");
  EXPECT_NE(result.active()[0]->message.find("system_clock"),
            std::string::npos);
}

TEST(LintR3Clock, DurationConstructorsAreNotClockReads) {
  // std::chrono::seconds(0) / microseconds(200) name spans of time, not
  // reads of the clock (the thread pool's condvar waits use them).
  const std::vector<SourceFile> files = {
      {"src/runtime/thread_pool.hpp",
       "void f() { wait_for(std::chrono::microseconds(200)); "
       "wait_for(std::chrono::seconds(0)); }\n"}};
  EXPECT_TRUE(run_lint(files, {}, {}).active().empty());
}

// --- R6: wall-clock values feeding flow decisions --------------------------

TEST(LintR6, StopwatchComparisonIsFlagged) {
  const auto result = lint_one(R"(
    bool over_budget() {
      util::Stopwatch clock;
      return clock.seconds() > 0.5;
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"R6"});
  EXPECT_NE(result.findings[0].message.find("clock"), std::string::npos);
}

TEST(LintR6, TimingVariableComparisonIsFlagged) {
  const auto result = lint_one(R"(
    void f(std::vector<int>& out) {
      util::Stopwatch clock;
      double elapsed = clock.seconds();
      if (elapsed > 1.0) out.push_back(1);
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"R6"});
  EXPECT_NE(result.findings[0].message.find("elapsed"), std::string::npos);
}

TEST(LintR6, ComparisonOnRightHandSideIsFlagged) {
  const auto result = lint_one(R"(
    bool f() {
      util::Stopwatch clock;
      return 0.5 < clock.seconds();
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"R6"});
}

TEST(LintR6, RecordingIntoReportFieldIsNotFlagged) {
  // The sanctioned pattern: timings flow *into* reports, never into
  // decisions.
  const auto result = lint_one(R"(
    void f(FlowResult& result) {
      util::Stopwatch total_clock;
      result.total_seconds = total_clock.seconds();
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

TEST(LintR6, ObservabilityLayerIsExempt) {
  const std::vector<SourceFile> files = {
      {"src/obs/stage_store.cpp",
       R"(
         bool slow(util::Stopwatch& clock) {
           return clock.seconds() > 1.0;
         }
       )"}};
  EXPECT_TRUE(run_lint(files, {}, {}).active().empty());
}

TEST(LintR6, NonTimingDoubleComparisonIsNotFlagged) {
  // A stopwatch in scope must not taint unrelated comparisons.
  const auto result = lint_one(R"(
    bool f(double slack) {
      util::Stopwatch clock;
      double best = slack;
      return best > 0.0;
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

// --- R4: crossing typed id spaces ------------------------------------------

TEST(LintR4, ConstructingOneIdFromAnotherIndexIsFlagged) {
  const auto result = lint_one(R"(
    CellId f(PinId pin) {
      return CellId{pin.index};
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"R4"});
  EXPECT_NE(result.findings[0].message.find("PinId"), std::string::npos);
}

TEST(LintR4, IndexArithmeticInsideConstructorIsFlagged) {
  const auto result = lint_one(R"(
    CellId next(CellId cell) {
      return CellId{cell.index + 1};
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"R4"});
  EXPECT_NE(result.findings[0].message.find("arithmetic"), std::string::npos);
}

TEST(LintR4, CrossTypeIndexComparisonIsFlagged) {
  const auto result = lint_one(R"(
    bool same(CellId cell, NetId net) {
      return cell.index == net.index;
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"R4"});
}

TEST(LintR4, SameTypeComparisonIsNotFlagged) {
  const auto result = lint_one(R"(
    bool less(CellId a, CellId b) {
      return a.index < b.index;
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

// --- R5: FP accumulation in parallel lambdas -------------------------------

TEST(LintR5, FpAccumulationInParallelForIsFlagged) {
  const auto result = lint_one(R"(
    void f(const std::vector<double>& xs) {
      double total = 0.0;
      parallel_for(pool, jobs, xs, [&](double x) {
        total += x;
      });
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"R5"});
  EXPECT_NE(result.findings[0].message.find("total"), std::string::npos);
}

TEST(LintR5, IntAccumulationIsNotFlagged) {
  const auto result = lint_one(R"(
    void f(const std::vector<int>& xs) {
      int total = 0;
      parallel_for(pool, jobs, xs, [&](int x) {
        total += x;
      });
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

TEST(LintR5, FpAccumulationOutsideParallelLambdaIsNotFlagged) {
  const auto result = lint_one(R"(
    double f(const std::vector<double>& xs) {
      double total = 0.0;
      for (double x : xs) total += x;
      return total;
    }
  )");
  EXPECT_TRUE(result.active().empty());
}

// --- Suppression comments --------------------------------------------------

const char* kSuppressedFixture = R"(
  void f(std::vector<int>& out) {
    std::unordered_map<int, int> counts;
    // mbrc-lint: allow(R1, order-insensitive because out is sorted afterwards)
    for (const auto& [key, value] : counts) {
      out.push_back(key);
    }
  }
)";

TEST(LintSuppression, AllowOnLineAboveSuppresses) {
  const auto result = lint_one(kSuppressedFixture);
  EXPECT_TRUE(result.active().empty());
  EXPECT_TRUE(result.clean());
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_TRUE(result.findings[0].suppressed);
  EXPECT_EQ(result.findings[0].suppress_reason,
            "order-insensitive because out is sorted afterwards");
}

TEST(LintSuppression, AllowOnSameLineSuppresses) {
  const auto result = lint_one(R"(
    void f(std::vector<int>& out) {
      std::unordered_map<int, int> counts;
      for (const auto& [key, value] : counts) {  // mbrc-lint: allow(R1, sorted later)
        out.push_back(key);
      }
    }
  )");
  EXPECT_TRUE(result.clean());
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_TRUE(result.findings[0].suppressed);
}

TEST(LintSuppression, EmptyReasonIsAnError) {
  const auto result = lint_one(R"(
    void f(std::vector<int>& out) {
      std::unordered_map<int, int> counts;
      // mbrc-lint: allow(R1)
      for (const auto& [key, value] : counts) {
        out.push_back(key);
      }
    }
  )");
  EXPECT_FALSE(result.clean());
  ASSERT_EQ(result.bad_suppressions.size(), 1u);
  EXPECT_NE(result.bad_suppressions[0].message.find("non-empty reason"),
            std::string::npos);
}

TEST(LintSuppression, WrongRuleNameDoesNotSuppress) {
  const auto result = lint_one(R"(
    void f(std::vector<int>& out) {
      std::unordered_map<int, int> counts;
      // mbrc-lint: allow(R2, wrong rule)
      for (const auto& [key, value] : counts) {
        out.push_back(key);
      }
    }
  )");
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"R1"});
}

// --- Baseline --------------------------------------------------------------

TEST(LintBaseline, EntryAbsorbsMatchingFinding) {
  const std::string fixture = R"(
    void f(std::vector<int>& out) {
      std::unordered_map<int, int> counts;
      for (const auto& [key, value] : counts) {
        out.push_back(key);
      }
    }
  )";
  const auto first = lint_one(fixture);
  ASSERT_EQ(first.active().size(), 1u);
  const Finding& f = *first.active()[0];

  const std::vector<BaselineEntry> baseline = {{f.rule, f.path, f.key}};
  const auto second = lint_one(fixture, {}, baseline);
  EXPECT_TRUE(second.clean());
  ASSERT_EQ(second.findings.size(), 1u);
  EXPECT_TRUE(second.findings[0].baselined);
}

TEST(LintBaseline, StaleEntryFailsTheRun) {
  // A baseline entry whose finding was fixed (or whose line was rewritten)
  // must be reported so the baseline monotonically shrinks.
  const std::vector<BaselineEntry> baseline = {
      {"R1", "src/fixture.cpp", 0xdeadbeefULL}};
  const auto result = lint_one("void f() {}\n", {}, baseline);
  EXPECT_TRUE(result.active().empty());
  ASSERT_EQ(result.stale_baseline.size(), 1u);
  EXPECT_EQ(result.stale_baseline[0].rule, "R1");
  EXPECT_FALSE(result.clean());
}

TEST(LintBaseline, KeySurvivesReindentationButNotRewrites) {
  const std::uint64_t k1 =
      baseline_key("R1", "src/a.cpp", "for (auto& x : m) {");
  const std::uint64_t k2 =
      baseline_key("R1", "src/a.cpp", "   for  (auto&  x :  m)  {  ");
  const std::uint64_t k3 =
      baseline_key("R1", "src/a.cpp", "for (auto& y : m) {");
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_NE(baseline_key("R2", "src/a.cpp", "for (auto& x : m) {"), k1);
}

TEST(LintBaseline, FormatRoundTrips) {
  const auto first = lint_one(R"(
    void f(std::vector<int>& out) {
      std::unordered_map<int, int> counts;
      for (const auto& [key, value] : counts) out.push_back(key);
    }
  )");
  ASSERT_EQ(first.active().size(), 1u);
  Finding f = *first.active()[0];
  const auto parsed = parse_baseline(format_baseline({f}));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].rule, f.rule);
  EXPECT_EQ(parsed[0].path, f.path);
  EXPECT_EQ(parsed[0].key, f.key);
}

// --- Rule selection --------------------------------------------------------

TEST(LintOptionsTest, RuleFilterRunsOnlySelectedRules) {
  const std::string fixture = R"(
    int f(std::vector<int>& out) {
      std::unordered_map<int, int> counts;
      for (const auto& [key, value] : counts) out.push_back(key);
      return rand();
    }
  )";
  LintOptions only_r3;
  only_r3.rules = {"R3"};
  const auto result = lint_one(fixture, only_r3);
  ASSERT_EQ(active_rules(result), std::vector<std::string>{"R3"});
}

// --- Positions --------------------------------------------------------------

TEST(LintPositions, FindingCarriesTheAnchorTokensColumn) {
  const auto result = lint_one(R"(
    void f(std::vector<int>& out) {
      std::unordered_map<int, int> counts;
      for (const auto& [key, value] : counts) {
        out.push_back(key);
      }
    }
  )");
  ASSERT_EQ(result.findings.size(), 1u);
  // The R1 anchor is the `for` keyword: fixture line 4, byte column 7.
  EXPECT_EQ(result.findings[0].line, 4);
  EXPECT_EQ(result.findings[0].col, 7);
  EXPECT_EQ(analysis::format_location(result.findings[0].path,
                                      result.findings[0].line,
                                      result.findings[0].col),
            "src/fixture.cpp:4:7");
}

}  // namespace
}  // namespace mbrc::lint
